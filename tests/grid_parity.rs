//! Serial-vs-engine parity with envelope coarsening off and on.
//!
//! The memory-scale refactor runs `BitStream::coarsen` (Algorithm 2.1
//! quantization) on the switch admission path whenever the
//! `SwitchConfig` carries a grid. Coarsening changes *which* bounds
//! the switches compute — but it must change them identically on both
//! drivers: the serial `signaling::Network` walk and the concurrent
//! sharded `AdmissionEngine` share the switch core, so for every
//! request, under any grid setting, both sides must return the same
//! verdict and the same guaranteed delay, and release must behave the
//! same. A divergence here would mean the quantization grid leaks into
//! driver-specific state.

use rtcac::bitstream::{CbrParams, Rate, Time, TrafficContract, VbrParams};
use rtcac::cac::{ConnectionId, Priority, SwitchConfig};
use rtcac::engine::{AdmissionEngine, EngineOutcome};
use rtcac::net::builders;
use rtcac::rational::ratio;
use rtcac::signaling::{CdvPolicy, Network, SetupOutcome, SetupRequest};

/// SplitMix64 — the same deterministic generator used across the test
/// suite.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }
}

fn seeded_request(rng: &mut Rng) -> SetupRequest {
    let contract = if rng.below(2) == 0 {
        let den = 4 + i128::from(rng.below(8));
        TrafficContract::cbr(CbrParams::new(Rate::new(ratio(1, den))).unwrap())
    } else {
        let peak_den = 3 + i128::from(rng.below(4));
        let sust_den = 12 + i128::from(rng.below(12));
        TrafficContract::vbr(
            VbrParams::new(
                Rate::new(ratio(1, peak_den)),
                Rate::new(ratio(1, sust_den)),
                2 + rng.below(4),
            )
            .unwrap(),
        )
    };
    SetupRequest::new(
        contract,
        Priority::new(rng.below(2) as u8),
        Time::from_integer(10_000),
    )
}

/// Runs one seeded setup/release churn through both drivers under
/// `config` and asserts step-by-step parity. Returns the admit count
/// so callers can prove the workload exercised both verdicts.
fn assert_parity(seed: u64, config: &SwitchConfig) -> (usize, usize) {
    let sr = builders::star_ring(5, 2).unwrap();
    let mut net = Network::new(sr.topology().clone(), config.clone(), CdvPolicy::Hard);
    let engine = AdmissionEngine::new(sr.topology().clone(), config.clone(), CdvPolicy::Hard);

    let mut rng = Rng(seed);
    let mut live: Vec<ConnectionId> = Vec::new();
    let (mut admitted, mut rejected) = (0usize, 0usize);
    for step in 0..120u64 {
        if rng.below(4) < 3 || live.is_empty() {
            let from = (rng.below(5) as usize, rng.below(2) as usize);
            let to = ((from.0 + 1 + rng.below(3) as usize) % 5, 0);
            let route = sr.terminal_route(from, to).unwrap();
            let request = seeded_request(&mut rng);
            let id = ConnectionId::new(1 + step);
            let serial = net.setup_with_id(id, &route, request).unwrap();
            let eng = engine.admit_with_id(id, &route, request).unwrap();
            match (&serial, &eng) {
                (
                    SetupOutcome::Connected(info),
                    EngineOutcome::Admitted {
                        guaranteed_delay, ..
                    },
                ) => {
                    assert_eq!(
                        info.guaranteed_delay(),
                        *guaranteed_delay,
                        "step {step}: guaranteed delay diverged"
                    );
                    live.push(id);
                    admitted += 1;
                }
                (SetupOutcome::Rejected(why), EngineOutcome::Rejected { rejection, .. }) => {
                    assert_eq!(
                        why.to_string(),
                        rejection.to_string(),
                        "step {step}: rejection reason diverged"
                    );
                    rejected += 1;
                }
                _ => panic!(
                    "step {step}: verdict diverged (serial connected={}, engine admitted={})",
                    serial.is_connected(),
                    matches!(eng, EngineOutcome::Admitted { .. })
                ),
            }
        } else {
            let id = live.swap_remove(rng.below(live.len() as u64) as usize);
            net.teardown(id).unwrap();
            engine.release(id).unwrap();
        }
    }
    assert!(net.orphaned_reservations().is_empty());
    assert_eq!(engine.publish_orphan_audit(), 0);
    assert!(net.verify_guarantees().unwrap().is_empty());
    assert!(engine.verify_guarantees().unwrap().is_empty());
    (admitted, rejected)
}

/// Parity with coarsening disabled: the pre-refactor baseline.
#[test]
fn serial_and_engine_agree_with_grid_off() {
    let config = SwitchConfig::uniform(2, Time::from_integer(48)).unwrap();
    for seed in [1, 0xA5A5, 0xDECAF] {
        let (admitted, rejected) = assert_parity(seed, &config);
        assert!(admitted > 0, "seed {seed}: nothing admitted");
        assert!(rejected > 0, "seed {seed}: nothing rejected");
    }
}

/// Parity with coarsening enabled: the quantization grid must change
/// both drivers' arithmetic identically.
#[test]
fn serial_and_engine_agree_with_grid_on() {
    for grid in [16, 64, 1024] {
        let config = SwitchConfig::uniform(2, Time::from_integer(48))
            .unwrap()
            .with_quantization(grid)
            .unwrap();
        for seed in [1, 0xA5A5, 0xDECAF] {
            let (admitted, rejected) = assert_parity(seed, &config);
            assert!(admitted > 0, "grid {grid} seed {seed}: nothing admitted");
            assert!(rejected > 0, "grid {grid} seed {seed}: nothing rejected");
        }
    }
}
