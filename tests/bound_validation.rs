//! Bound validation: the cell-level simulator must never observe a
//! queueing delay above the analytic worst-case bounds (experiment E6
//! of DESIGN.md).
//!
//! The CAC analysis is *conservative*: it assumes worst-case jitter
//! clumping at every hop, which a jitter-free simulation cannot even
//! reach. So `measured <= computed bound` must hold for every port,
//! every priority, and every traffic pattern, greedy or random.

use rtcac::bitstream::{CbrParams, Rate, Time, TrafficContract, VbrParams};
use rtcac::cac::{Priority, SwitchConfig};
use rtcac::net::{builders, Route};
use rtcac::rational::ratio;
use rtcac::signaling::{CdvPolicy, Network, SetupRequest};
use rtcac::sim::{Simulation, TrafficPattern};

fn vbr(pn: i128, pd: i128, sn: i128, sd: i128, mbs: u64) -> TrafficContract {
    TrafficContract::vbr(
        VbrParams::new(Rate::new(ratio(pn, pd)), Rate::new(ratio(sn, sd)), mbs).unwrap(),
    )
}

/// Establishes `contracts` over a 3-switch line and returns the
/// network plus the shared route.
fn line_network(contracts: &[TrafficContract]) -> (Network, Route) {
    let (topology, src, switches, dst) = builders::line(3).unwrap();
    let config = SwitchConfig::uniform(1, Time::from_integer(128)).unwrap();
    let mut network = Network::new(topology, config, CdvPolicy::Hard);
    let route = Route::from_nodes(
        network.topology(),
        std::iter::once(src)
            .chain(switches.iter().copied())
            .chain(std::iter::once(dst)),
    )
    .unwrap();
    for &c in contracts {
        let req = SetupRequest::new(c, Priority::HIGHEST, Time::from_integer(1_000));
        assert!(network.setup(&route, req).unwrap().is_connected());
    }
    (network, route)
}

/// Asserts measured port delays stay within the switch-computed bounds.
fn assert_within_bounds(network: &Network, report: &rtcac::sim::SimReport) {
    for ((link, priority), stats) in report.ports() {
        // Find the switch owning this port (link's sending node).
        let from = network.topology().link(*link).unwrap().from();
        let Ok(switch) = network.switch(from) else {
            continue; // end-system NIC port: shaped at source, no CAC bound
        };
        let bound = switch.computed_bound(*link, *priority).unwrap();
        assert!(
            Time::from_integer(stats.max_delay as i128) <= bound,
            "port {link} {priority}: measured {} > bound {bound}",
            stats.max_delay
        );
    }
}

#[test]
fn greedy_worst_case_stays_within_bounds_on_line() {
    // A mix of bursty connections; single source terminal means they
    // also share the access link (shaped, counted separately).
    let contracts = vec![
        vbr(1, 4, 1, 20, 8),
        vbr(1, 6, 1, 25, 4),
        vbr(1, 8, 1, 30, 12),
    ];
    let (network, _route) = line_network(&contracts);
    let sim = Simulation::from_network(&network);
    let report = sim.run(100_000);
    assert_eq!(report.total_drops(), 0);
    assert_within_bounds(&network, &report);
}

#[test]
fn random_traffic_stays_within_bounds_on_line() {
    let contracts = vec![vbr(1, 3, 1, 15, 10), vbr(1, 5, 1, 18, 6)];
    let (network, _) = line_network(&contracts);
    let mut sim = Simulation::new(network.topology());
    for (k, info) in network.connections().enumerate() {
        sim.add_connection(
            info.id(),
            info.route().clone(),
            info.request().priority(),
            info.request().contract(),
            TrafficPattern::Random {
                p_percent: 70,
                seed: 1000 + k as u64,
            },
        )
        .unwrap();
    }
    let report = sim.run(100_000);
    assert_within_bounds(&network, &report);
}

#[test]
fn contention_from_separate_terminals_stays_within_bounds() {
    // Several source terminals feeding one switch: real contention at
    // the shared output port.
    let mut topology = rtcac::net::Topology::new();
    let sources: Vec<_> = (0..4)
        .map(|k| topology.add_end_system(format!("src{k}")))
        .collect();
    let sw = topology.add_switch("sw");
    let sink = topology.add_end_system("sink");
    for &s in &sources {
        topology.add_link(s, sw).unwrap();
    }
    topology.add_link(sw, sink).unwrap();

    let config = SwitchConfig::uniform(1, Time::from_integer(64)).unwrap();
    let mut network = Network::new(topology, config, CdvPolicy::Hard);
    for (k, &s) in sources.iter().enumerate() {
        let route = Route::from_nodes(network.topology(), [s, sw, sink]).unwrap();
        let contract = vbr(1, 4, 1, 16 + k as i128, 4);
        let req = SetupRequest::new(contract, Priority::HIGHEST, Time::from_integer(64));
        assert!(network.setup(&route, req).unwrap().is_connected());
    }
    let sim = Simulation::from_network(&network);
    let report = sim.run(100_000);
    assert_eq!(report.total_drops(), 0);
    assert_within_bounds(&network, &report);
    // The shared port must actually have seen contention.
    let shared = network
        .topology()
        .find_link(sw, network.topology().nodes().last().unwrap().id())
        .unwrap();
    let stats = report.port(shared, Priority::HIGHEST).unwrap();
    assert!(stats.max_delay > 0, "expected queueing at the shared port");
}

#[test]
fn star_ring_broadcast_within_guarantees() {
    let sr = builders::star_ring(4, 2).unwrap();
    let config = SwitchConfig::uniform(1, Time::from_integer(32)).unwrap();
    let mut network = Network::new(sr.topology().clone(), config, CdvPolicy::Hard);
    for node in 0..4 {
        for term in 0..2 {
            let route = sr.ring_route_from_terminal(node, term, 3).unwrap();
            let contract = TrafficContract::cbr(CbrParams::new(Rate::new(ratio(1, 16))).unwrap());
            let req = SetupRequest::new(contract, Priority::HIGHEST, Time::from_integer(96));
            assert!(network.setup(&route, req).unwrap().is_connected());
        }
    }
    let sim = Simulation::from_network(&network);
    let report = sim.run(50_000);
    assert_eq!(report.total_drops(), 0);
    assert_within_bounds(&network, &report);
    // End-to-end: measured delay (minus per-hop transmission slots)
    // within the guaranteed bound.
    for info in network.connections() {
        let stats = report.connection(info.id()).unwrap();
        let hops = info.route().links().len() as u64;
        let queueing = stats.max_delay.saturating_sub(hops);
        assert!(
            Time::from_integer(queueing as i128) <= info.guaranteed_delay(),
            "{}: measured {} > guaranteed {}",
            info.id(),
            queueing,
            info.guaranteed_delay()
        );
    }
}

#[test]
fn priority_isolation_holds_in_simulation() {
    // Two priorities on one switch: high-priority delays must be
    // unaffected by heavy low-priority load, per the static-priority
    // FIFO model.
    let mut topology = rtcac::net::Topology::new();
    let a = topology.add_end_system("a");
    let b = topology.add_end_system("b");
    let sw = topology.add_switch("sw");
    let sink = topology.add_end_system("sink");
    topology.add_link(a, sw).unwrap();
    topology.add_link(b, sw).unwrap();
    topology.add_link(sw, sink).unwrap();
    let config =
        SwitchConfig::with_bounds([Time::from_integer(16), Time::from_integer(128)]).unwrap();
    let mut network = Network::new(topology, config, CdvPolicy::Hard);
    let ra = Route::from_nodes(network.topology(), [a, sw, sink]).unwrap();
    let rb = Route::from_nodes(network.topology(), [b, sw, sink]).unwrap();
    let hi = SetupRequest::new(
        vbr(1, 4, 1, 10, 2),
        Priority::HIGHEST,
        Time::from_integer(16),
    );
    let lo = SetupRequest::new(
        vbr(1, 2, 1, 4, 32),
        Priority::new(1),
        Time::from_integer(128),
    );
    assert!(network.setup(&ra, hi).unwrap().is_connected());
    assert!(network.setup(&rb, lo).unwrap().is_connected());
    let sim = Simulation::from_network(&network);
    let report = sim.run(100_000);
    assert_within_bounds(&network, &report);
    let shared = network.topology().find_link(sw, sink).unwrap();
    let hi_stats = report.port(shared, Priority::HIGHEST).unwrap();
    let lo_stats = report.port(shared, Priority::new(1)).unwrap();
    assert!(hi_stats.max_delay <= 2, "high priority nearly isolated");
    assert!(lo_stats.max_delay >= hi_stats.max_delay);
}
