//! Two adversarial validations:
//!
//! 1. **Jitter stress** — with bounded random link jitter injected, the
//!    simulator's measured delays must still respect the analytic
//!    bounds (which budget for far worse, deterministic clumping).
//! 2. **Peak-allocation failure** — a peak-bandwidth-allocated load
//!    that the bit-stream CAC would refuse actually *loses cells* in a
//!    bounded-queue simulation once realistic jitter is present, while
//!    the CAC-admitted load never does. This is the paper
//!    introduction's argument, demonstrated end to end.

use rtcac::bitstream::{CbrParams, Rate, Time, TrafficContract};
use rtcac::cac::{Priority, SwitchConfig};
use rtcac::net::{builders, Route, Topology};
use rtcac::rational::ratio;
use rtcac::signaling::{CdvPolicy, Network, SetupRequest};
use rtcac::sim::{Simulation, TrafficPattern};

fn cbr(n: i128, d: i128) -> TrafficContract {
    TrafficContract::cbr(CbrParams::new(Rate::new(ratio(n, d))).unwrap())
}

#[test]
fn jittered_simulation_stays_within_bounds() {
    // 3-switch line, three bursty connections, 8 slots of random link
    // jitter — well within the 32-cell-per-hop CDV the analysis
    // budgets via the advertised bounds.
    let (topology, src, switches, dst) = builders::line(3).unwrap();
    let config = SwitchConfig::uniform(1, Time::from_integer(32)).unwrap();
    let mut network = Network::new(topology, config, CdvPolicy::Hard);
    let route = Route::from_nodes(
        network.topology(),
        std::iter::once(src)
            .chain(switches.iter().copied())
            .chain(std::iter::once(dst)),
    )
    .unwrap();
    for _ in 0..3 {
        let req = SetupRequest::new(cbr(1, 8), Priority::HIGHEST, Time::from_integer(96));
        assert!(network.setup(&route, req).unwrap().is_connected());
    }
    for seed in [1u64, 7, 42] {
        let mut sim = Simulation::from_network(&network);
        sim.set_link_jitter(8, seed);
        let report = sim.run(120_000);
        assert_eq!(report.total_drops(), 0, "seed {seed}");
        for ((link, priority), stats) in report.ports() {
            let from = network.topology().link(*link).unwrap().from();
            let Ok(switch) = network.switch(from) else {
                continue;
            };
            // The advertised bound (32) is the hop guarantee the CDV
            // accumulation relies on; jittered measurements must stay
            // inside it.
            let advertised = switch.advertised_bound(*priority).unwrap();
            assert!(
                Time::from_integer(stats.max_delay as i128) <= advertised,
                "seed {seed} port {link}: measured {} > advertised {advertised}",
                stats.max_delay
            );
        }
    }
}

#[test]
fn jitter_increases_observed_delays() {
    // Sanity on the jitter mechanism itself: it should produce strictly
    // more end-to-end delay than the jitter-free run for at least one
    // connection (otherwise the stressor is a no-op).
    let (topology, src, switches, dst) = builders::line(2).unwrap();
    let config = SwitchConfig::uniform(1, Time::from_integer(64)).unwrap();
    let mut network = Network::new(topology, config, CdvPolicy::Hard);
    let route =
        Route::from_nodes(network.topology(), [src, switches[0], switches[1], dst]).unwrap();
    for _ in 0..2 {
        let req = SetupRequest::new(cbr(1, 4), Priority::HIGHEST, Time::from_integer(128));
        assert!(network.setup(&route, req).unwrap().is_connected());
    }
    let base = Simulation::from_network(&network).run(50_000);
    let mut jittered_sim = Simulation::from_network(&network);
    jittered_sim.set_link_jitter(6, 99);
    let jittered = jittered_sim.run(50_000);
    let base_max: u64 = base.connections().map(|(_, c)| c.max_delay).max().unwrap();
    let jit_max: u64 = jittered
        .connections()
        .map(|(_, c)| c.max_delay)
        .max()
        .unwrap();
    assert!(
        jit_max > base_max,
        "jitter had no effect: {base_max} vs {jit_max}"
    );
}

/// Builds the shared-port contention topology: `n` source terminals
/// into one switch, one output link.
fn funnel(
    n: usize,
) -> (
    Topology,
    Vec<rtcac::net::NodeId>,
    rtcac::net::NodeId,
    rtcac::net::NodeId,
) {
    let mut t = Topology::new();
    let sources: Vec<_> = (0..n)
        .map(|k| t.add_end_system(format!("src{k}")))
        .collect();
    let sw = t.add_switch("sw");
    let sink = t.add_end_system("sink");
    for &s in &sources {
        t.add_link(s, sw).unwrap();
    }
    t.add_link(sw, sink).unwrap();
    (t, sources, sw, sink)
}

#[test]
fn peak_allocation_loses_cells_where_cac_load_does_not() {
    // 8 CBR connections at PCR 1/8 each: peak allocation fills the
    // link to 100%. All sources start in phase (the worst case peak
    // allocation ignores); with a 4-cell queue, cells are lost.
    let n = 8;
    let (topology, sources, sw, sink) = funnel(n);
    let mut overloaded = Simulation::new(&topology);
    overloaded.set_queue_capacity(Some(4));
    for (k, &s) in sources.iter().enumerate() {
        let route = Route::from_nodes(&topology, [s, sw, sink]).unwrap();
        overloaded
            .add_connection(
                rtcac::cac::ConnectionId::new(k as u64),
                route,
                Priority::HIGHEST,
                cbr(1, 8),
                TrafficPattern::Greedy,
            )
            .unwrap();
    }
    let report = overloaded.run(50_000);
    assert!(
        report.total_drops() > 0,
        "peak-allocated in-phase load must overflow the 4-cell queue"
    );

    // The bit-stream CAC with a 4-cell advertised bound refuses part of
    // this load; what it does admit never drops a cell.
    let config = SwitchConfig::uniform(1, Time::from_integer(4)).unwrap();
    let mut network = Network::new(topology.clone(), config, CdvPolicy::Hard);
    let mut admitted = 0;
    for &s in &sources {
        let route = Route::from_nodes(network.topology(), [s, sw, sink]).unwrap();
        let req = SetupRequest::new(cbr(1, 8), Priority::HIGHEST, Time::from_integer(4));
        if network.setup(&route, req).unwrap().is_connected() {
            admitted += 1;
        }
    }
    assert!(admitted < n, "CAC must refuse part of the in-phase load");
    assert!(admitted > 0);
    let mut safe = Simulation::from_network(&network);
    safe.set_queue_capacity(Some(4));
    let report = safe.run(50_000);
    assert_eq!(
        report.total_drops(),
        0,
        "CAC-admitted load must be loss-free"
    );
}
