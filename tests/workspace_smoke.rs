//! One smoke test per subsystem, driven through the `rtcac` facade:
//! each exercises the crate's primary public entry point end to end,
//! so a re-export or API break in any member crate fails here first.

use std::sync::Arc;

use rtcac::bitstream::{BitStream, CbrParams, Rate, Time, TrafficContract, VbrParams};
use rtcac::cac::{Priority, SwitchConfig};
use rtcac::engine::{run_batch, AdmissionEngine};
use rtcac::net::builders;
use rtcac::obs::Registry;
use rtcac::rational::{ratio, Ratio};
use rtcac::rtnet::{workload, CdvMode};
use rtcac::signaling::{CdvPolicy, Network, SetupRequest};
use rtcac::sim::{Simulation, TrafficPattern};

fn cbr(num: i128, den: i128) -> TrafficContract {
    TrafficContract::cbr(CbrParams::new(Rate::new(ratio(num, den))).unwrap())
}

#[test]
fn rational_exact_arithmetic() {
    let third = ratio(1, 3);
    assert_eq!(third + third + third, Ratio::ONE);
    assert_eq!(ratio(2, 4), ratio(1, 2));
}

#[test]
fn bitstream_delay_bound() {
    let contract = TrafficContract::vbr(
        VbrParams::new(Rate::new(ratio(1, 4)), Rate::new(ratio(1, 20)), 8).unwrap(),
    );
    let arrival = contract.worst_case_stream().delay(Time::from_integer(16));
    let aggregate = BitStream::multiplex_all(std::iter::repeat_n(&arrival, 4));
    let bound = aggregate.delay_bound(&BitStream::zero()).unwrap();
    assert!(bound > Time::ZERO);
}

#[test]
fn net_builders_and_routes() {
    let sr = builders::star_ring(4, 2).unwrap();
    let route = sr.terminal_route((0, 0), (2, 1)).unwrap();
    assert!(route.hops() >= 3, "cross-ring route spans several links");
    assert!(sr.topology().switches().count() >= 4);
}

#[test]
fn cac_switch_admits_and_releases() {
    use rtcac::cac::{AdmissionDecision, ConnectionId, ConnectionRequest, Switch};
    use rtcac::net::LinkId;
    let mut switch = Switch::new(SwitchConfig::uniform(1, Time::from_integer(32)).unwrap());
    let request = ConnectionRequest::new(
        cbr(1, 8),
        Time::ZERO,
        LinkId::external(0),
        LinkId::external(1),
        Priority::HIGHEST,
    );
    let id = ConnectionId::new(1);
    assert!(matches!(
        switch.admit(id, request).unwrap(),
        AdmissionDecision::Admitted(_)
    ));
    assert_eq!(switch.connection_count(), 1);
    switch.release(id).unwrap();
    assert_eq!(switch.connection_count(), 0);
}

#[test]
fn cac_reservation_plan_core() {
    // The shared admission core behind both drivers: plan a route,
    // price it, reserve it against real switches through a minimal
    // HopDriver, and release in reverse order.
    use rtcac::cac::{
        release_order, AdmissionDecision, CacError, ConnectionId, HopDriver, PlannedHop,
        ReservationPlan, ReserveOutcome, RoutePlan, Switch,
    };
    use rtcac::net::NodeId;
    use std::collections::BTreeMap;

    let sr = builders::star_ring(4, 1).unwrap();
    let route = sr.terminal_route((0, 0), (2, 0)).unwrap();
    let plan = RoutePlan::from_route(sr.topology(), &route).unwrap();
    assert!(plan.hops().len() >= 2);

    let config = SwitchConfig::uniform(1, Time::from_integer(48)).unwrap();
    let advertised = config.bound(Priority::HIGHEST).unwrap();
    let priced = ReservationPlan::price::<CacError>(
        &plan,
        rtcac::cac::CdvPolicy::Hard,
        cbr(1, 16),
        Priority::HIGHEST,
        |_| Ok(advertised),
    )
    .unwrap();
    assert_eq!(priced.terminals().len(), 1);
    assert_eq!(
        priced.achievable(),
        Time::from_integer(48 * plan.hops().len() as i128)
    );

    struct Driver {
        id: ConnectionId,
        switches: BTreeMap<NodeId, Switch>,
    }
    impl HopDriver for Driver {
        type Error = CacError;
        fn admit(
            &mut self,
            _: usize,
            hop: &PlannedHop,
            request: rtcac::cac::ConnectionRequest,
        ) -> Result<AdmissionDecision, CacError> {
            self.switches
                .get_mut(&hop.node)
                .expect("planned hop has a switch")
                .admit(self.id, request)
        }
        fn rollback(&mut self, node: NodeId) -> Result<(), CacError> {
            self.switches
                .get_mut(&node)
                .expect("rolled-back hop has a switch")
                .release(self.id)
                .map(|_| ())
        }
    }
    let mut driver = Driver {
        id: ConnectionId::new(7),
        switches: plan
            .hops()
            .iter()
            .map(|h| (h.node, Switch::new(config.clone())))
            .collect(),
    };
    assert_eq!(
        priced.reserve(&mut driver).unwrap(),
        ReserveOutcome::Reserved
    );
    for switch in driver.switches.values() {
        assert_eq!(switch.connection_count(), 1);
    }
    for node in release_order(plan.hops().iter().map(|h| h.node)) {
        driver
            .switches
            .get_mut(&node)
            .unwrap()
            .release(driver.id)
            .unwrap();
    }
    for switch in driver.switches.values() {
        assert_eq!(switch.connection_count(), 0);
    }
}

#[test]
fn signaling_setup_roundtrip() {
    let sr = builders::star_ring(4, 1).unwrap();
    let config = SwitchConfig::uniform(1, Time::from_integer(48)).unwrap();
    let mut net = Network::new(sr.topology().clone(), config, CdvPolicy::Hard);
    let route = sr.terminal_route((0, 0), (1, 0)).unwrap();
    let outcome = net
        .setup(
            &route,
            SetupRequest::new(cbr(1, 16), Priority::HIGHEST, Time::from_integer(1_000)),
        )
        .unwrap();
    assert!(outcome.is_connected());
}

#[test]
fn engine_concurrent_batch() {
    let sr = builders::star_ring(4, 2).unwrap();
    let config = SwitchConfig::uniform(1, Time::from_integer(64)).unwrap();
    let engine = Arc::new(AdmissionEngine::new(
        sr.topology().clone(),
        config,
        CdvPolicy::Hard,
    ));
    let jobs = (0..4).map(|i| {
        (
            sr.terminal_route((i, 0), (i, 1)).unwrap(),
            SetupRequest::new(cbr(1, 8), Priority::HIGHEST, Time::from_integer(1_000)),
        )
    });
    let outcomes = run_batch(&engine, jobs, 2).unwrap();
    assert!(outcomes.iter().all(|o| o.as_ref().unwrap().is_admitted()));
    // A point-to-multipoint setup takes the same shared core path.
    let tree = sr.broadcast_tree(0, 0).unwrap();
    let outcome = engine
        .admit_multicast(
            &tree,
            SetupRequest::new(cbr(1, 16), Priority::HIGHEST, Time::from_integer(1_000)),
        )
        .unwrap();
    assert!(outcome.is_admitted());
    let stats = engine.stats();
    assert_eq!(stats.submitted, 5);
    assert_eq!(stats.mcast_admitted, 1);
    assert_eq!(
        stats.submitted,
        stats.admitted + stats.rejected + stats.aborted + stats.errored
    );
}

#[test]
fn sim_measures_admitted_traffic() {
    let sr = builders::star_ring(4, 1).unwrap();
    let config = SwitchConfig::uniform(1, Time::from_integer(48)).unwrap();
    let mut net = Network::new(sr.topology().clone(), config, CdvPolicy::Hard);
    let route = sr.terminal_route((0, 0), (1, 0)).unwrap();
    net.setup(
        &route,
        SetupRequest::new(cbr(1, 16), Priority::HIGHEST, Time::from_integer(1_000)),
    )
    .unwrap();
    let sim = Simulation::from_network(&net);
    let report = sim.run(2_000);
    assert_eq!(report.total_drops(), 0);
    let delivered: u64 = report.connections().map(|(_, c)| c.delivered).sum();
    assert!(delivered > 0, "greedy source must deliver cells");
    let _ = TrafficPattern::Greedy; // re-exported pattern enum
}

#[test]
fn rtnet_ring_analysis() {
    let analysis = workload::symmetric_with(8, 1, ratio(1, 2), CdvMode::Hard).unwrap();
    let e2e = analysis.end_to_end_bound(Priority::HIGHEST).unwrap();
    assert!(e2e > Time::ZERO);
    assert!(analysis.admissible().unwrap());
}

#[test]
fn serve_wire_service_roundtrip() {
    use rtcac::serve::{Client, Response, ServeConfig, Server};
    let server = Server::start(&ServeConfig {
        addr: "127.0.0.1:0".into(),
        nodes: 4,
        terminals: 2,
        workers: 2,
        ..ServeConfig::default()
    })
    .unwrap();
    let sr = builders::star_ring(4, 2).unwrap();
    let route = sr.terminal_route((0, 0), (0, 1)).unwrap();
    let links: Vec<u32> = route.links().iter().map(|l| l.index() as u32).collect();

    let mut client = Client::connect(server.addr()).unwrap();
    let request = SetupRequest::new(cbr(1, 16), Priority::HIGHEST, Time::from_integer(1_000));
    let Response::Admitted { id, .. } = client.setup(&links, request).unwrap() else {
        panic!("setup should be admitted on an empty ring");
    };
    assert!(matches!(
        client.query(id).unwrap(),
        Response::QueryResult { found: true, .. }
    ));
    assert!(matches!(
        client.release(id).unwrap(),
        Response::Released { .. }
    ));
    client.drain().unwrap();
    drop(client);
    assert!(server.join().is_clean());
}

#[test]
fn storm_generates_deterministic_scenarios() {
    use rtcac::storm::{compile_profile, generate, FuzzConfig, ProfileKind, TopologyKind};
    use rtcac::storm::{generate_topology, LrdVbrSource};
    use rtcac_sim::SimRng;

    // Same seed, same config → byte-identical scenario text.
    let config = FuzzConfig {
        topology: TopologyKind::FatTree,
        profile: Some(ProfileKind::Flap),
        ..FuzzConfig::default()
    };
    let a = generate(42, &config).unwrap().emit();
    let b = generate(42, &config).unwrap().emit();
    assert_eq!(a, b);
    assert!(a.contains("connect "), "scenarios carry traffic");

    // The LRD background source is deterministic per seed and busy at
    // every timescale.
    let mut r1 = SimRng::seed_from_u64(7);
    let mut r2 = SimRng::seed_from_u64(7);
    let source = LrdVbrSource::new(&mut r1, 4);
    let source2 = LrdVbrSource::new(&mut r2, 4);
    assert!(source.sources() > 0);
    for slot in 0..64 {
        assert_eq!(source.intensity(slot), source2.intensity(slot));
    }

    // Impairment profiles compile into a non-empty event schedule.
    let mut rng = SimRng::seed_from_u64(3);
    let topology = generate_topology(TopologyKind::StarOfRings, &mut rng).unwrap();
    let events = compile_profile(ProfileKind::Brownout, &topology, &mut rng, 100);
    assert!(!events.is_empty(), "brownout must schedule events");
}

#[test]
fn obs_registry_records_and_exposes() {
    let registry = Arc::new(Registry::new());
    registry.counter("smoke_total").add(2);
    registry.histogram("smoke_ns").record(1_500);
    registry.events().record("smoke", "hello");
    let snapshot = registry.snapshot();
    assert_eq!(snapshot.counter("smoke_total"), Some(2));
    assert_eq!(snapshot.histogram("smoke_ns").unwrap().count, 1);
    assert!(snapshot.to_prometheus().contains("smoke_total 2"));
    assert!(snapshot.to_json().contains("\"smoke_total\":2"));

    // The engine records into an explicit registry end to end.
    let sr = builders::star_ring(4, 1).unwrap();
    let config = SwitchConfig::uniform(1, Time::from_integer(64)).unwrap();
    let engine = Arc::new(AdmissionEngine::with_registry(
        sr.topology().clone(),
        config,
        CdvPolicy::Hard,
        Arc::clone(&registry),
    ));
    let jobs = (0..2).map(|i| {
        (
            sr.terminal_route((i, 0), ((i + 1) % 4, 0)).unwrap(),
            SetupRequest::new(cbr(1, 16), Priority::HIGHEST, Time::from_integer(1_000)),
        )
    });
    let _ = run_batch(&engine, jobs, 2).unwrap();
    let snapshot = registry.snapshot();
    assert_eq!(snapshot.counter("engine_setups_submitted_total"), Some(2));
    assert!(snapshot.histogram("engine_reserve_ns").unwrap().count >= 2);
}
