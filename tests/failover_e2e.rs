//! Failover end to end: after a ring link failure, the wrap-around
//! branch connections are re-established and the simulator confirms
//! their guarantees still hold on the surviving links.

use rtcac::bitstream::{CbrParams, Rate, Time, TrafficContract};
use rtcac::cac::{Priority, SwitchConfig};
use rtcac::net::builders;
use rtcac::rational::ratio;
use rtcac::rtnet::failover;
use rtcac::signaling::{CdvPolicy, Network, SetupRequest};
use rtcac::sim::Simulation;

#[test]
fn wrapped_connections_simulate_within_guarantees() {
    let ring = 5;
    let sr = builders::dual_star_ring(ring, 1).unwrap();
    let config = SwitchConfig::uniform(1, Time::from_integer(32)).unwrap();
    let mut network = Network::new(sr.topology().clone(), config, CdvPolicy::Hard);

    // Primary link 2 fails; every terminal re-establishes its broadcast
    // as two wrap-around branches.
    let failed = 2;
    let sources: Vec<(usize, usize)> = (0..ring).map(|n| (n, 0)).collect();
    let request = SetupRequest::new(
        TrafficContract::cbr(CbrParams::new(Rate::new(ratio(1, 20))).unwrap()),
        Priority::HIGHEST,
        Time::from_integer(10_000),
    );
    let report = failover::reestablish(&mut network, &sr, failed, &sources, request).unwrap();
    assert_eq!(report.lost, 0);
    assert_eq!(report.reestablished, ring);

    // No branch route uses the failed link.
    let dead = sr.ring_link(failed).unwrap();
    for info in network.connections() {
        assert!(!info.route().links().contains(&dead));
    }

    // Simulate the wrapped population with worst-case sources: no
    // drops, all port delays within computed bounds, and — crucially —
    // the failed link never carries a cell.
    let sim = Simulation::from_network(&network);
    let result = sim.run(80_000);
    assert_eq!(result.total_drops(), 0);
    assert!(
        result.port(dead, Priority::HIGHEST).is_none(),
        "dead link used"
    );
    for ((link, priority), stats) in result.ports() {
        let from = network.topology().link(*link).unwrap().from();
        let Ok(switch) = network.switch(from) else {
            continue;
        };
        let bound = switch.computed_bound(*link, *priority).unwrap();
        assert!(
            Time::from_integer(stats.max_delay as i128) <= bound,
            "port {link}: measured {} > bound {bound}",
            stats.max_delay
        );
    }
    // Both ring directions are in use after the wrap.
    let forward_used = (0..ring).filter(|&i| i != failed).any(|i| {
        result
            .port(sr.ring_link(i).unwrap(), Priority::HIGHEST)
            .is_some()
    });
    let backward_used = (0..ring).any(|i| {
        result
            .port(sr.reverse_link(i).unwrap(), Priority::HIGHEST)
            .is_some()
    });
    assert!(forward_used && backward_used);
}

#[test]
fn every_failure_location_is_survivable_at_moderate_load() {
    let ring = 4;
    for failed in 0..ring {
        let sr = builders::dual_star_ring(ring, 1).unwrap();
        let config = SwitchConfig::uniform(1, Time::from_integer(32)).unwrap();
        let mut network = Network::new(sr.topology().clone(), config, CdvPolicy::Hard);
        let sources: Vec<(usize, usize)> = (0..ring).map(|n| (n, 0)).collect();
        let request = SetupRequest::new(
            TrafficContract::cbr(CbrParams::new(Rate::new(ratio(1, 10))).unwrap()),
            Priority::HIGHEST,
            Time::from_integer(10_000),
        );
        let report = failover::reestablish(&mut network, &sr, failed, &sources, request).unwrap();
        assert_eq!(report.lost, 0, "failure at link {failed} lost broadcasts");
    }
}
