//! Full-stack connection lifecycle tests: distributed setup over
//! multi-switch topologies, rollback hygiene, capacity reuse, the
//! resident wire service, and policy comparisons.

use rtcac::bitstream::{CbrParams, Rate, Time, TrafficContract, VbrParams};
use rtcac::cac::{ConnectionId, Priority, SwitchConfig};
use rtcac::engine::AdmissionEngine;
use rtcac::net::{builders, Route};
use rtcac::rational::ratio;
use rtcac::serve::{Client, Response, ServeConfig, Server};
use rtcac::signaling::{CdvPolicy, Network, SetupOutcome, SetupRequest, SignalEvent};

fn cbr(n: i128, d: i128) -> TrafficContract {
    TrafficContract::cbr(CbrParams::new(Rate::new(ratio(n, d))).unwrap())
}

fn vbr(pn: i128, pd: i128, sn: i128, sd: i128, mbs: u64) -> TrafficContract {
    TrafficContract::vbr(
        VbrParams::new(Rate::new(ratio(pn, pd)), Rate::new(ratio(sn, sd)), mbs).unwrap(),
    )
}

fn line(n: usize, bound: i128, policy: CdvPolicy) -> (Network, Route) {
    let (topology, src, switches, dst) = builders::line(n).unwrap();
    let config = SwitchConfig::uniform(1, Time::from_integer(bound)).unwrap();
    let route = Route::from_nodes(
        &topology,
        std::iter::once(src)
            .chain(switches.iter().copied())
            .chain(std::iter::once(dst)),
    )
    .unwrap();
    (Network::new(topology, config, policy), route)
}

#[test]
fn fill_release_refill_reaches_same_capacity() {
    let (mut network, route) = line(3, 16, CdvPolicy::Hard);
    let request = SetupRequest::new(cbr(1, 12), Priority::HIGHEST, Time::from_integer(48));
    let mut first_round = Vec::new();
    while let SetupOutcome::Connected(info) = network.setup(&route, request).unwrap() {
        first_round.push(info.id());
        assert!(first_round.len() < 100, "capacity should be finite");
    }
    let capacity = first_round.len();
    assert!(capacity > 0);
    for id in first_round {
        network.teardown(id).unwrap();
    }
    // Exact arithmetic: the second fill reaches the same count.
    let mut second = 0;
    while network.setup(&route, request).unwrap().is_connected() {
        second += 1;
    }
    assert_eq!(second, capacity);
}

#[test]
fn no_orphan_reservations_after_many_mixed_operations() {
    let (mut network, route) = line(4, 64, CdvPolicy::Hard);
    let mut live: Vec<ConnectionId> = Vec::new();
    for round in 0..40u64 {
        if round % 3 == 2 && !live.is_empty() {
            let id = live.remove((round as usize * 7) % live.len());
            network.teardown(id).unwrap();
        } else {
            let contract = if round % 2 == 0 {
                cbr(1, 20)
            } else {
                vbr(1, 6, 1, 40, 5)
            };
            let req = SetupRequest::new(contract, Priority::HIGHEST, Time::from_integer(1_000));
            if let SetupOutcome::Connected(info) = network.setup(&route, req).unwrap() {
                live.push(info.id());
            }
        }
        // Invariant: every switch holds exactly the live set.
        for (node, _) in route.queueing_points(network.topology()).unwrap() {
            let sw = network.switch(node).unwrap();
            assert_eq!(sw.connection_count(), live.len(), "round {round}");
            for id in &live {
                assert!(sw.has_connection(*id));
            }
        }
    }
}

#[test]
fn soft_policy_admits_at_least_as_many_connections() {
    let count = |policy| {
        let (mut network, route) = line(6, 24, policy);
        let request = SetupRequest::new(
            vbr(1, 5, 1, 35, 6),
            Priority::HIGHEST,
            Time::from_integer(144),
        );
        let mut n = 0;
        while network.setup(&route, request).unwrap().is_connected() {
            n += 1;
            if n > 200 {
                break;
            }
        }
        n
    };
    let hard = count(CdvPolicy::Hard);
    let soft = count(CdvPolicy::SoftSqrt);
    assert!(soft >= hard, "soft {soft} < hard {hard}");
    assert!(hard > 0);
}

#[test]
fn rejection_reports_the_failing_switch_and_cleans_up() {
    let (mut network, route) = line(3, 4, CdvPolicy::Hard);
    // Very tight bound: saturate quickly with jitter-heavy connections.
    let request = SetupRequest::new(cbr(1, 6), Priority::HIGHEST, Time::from_integer(12));
    let mut outcome = network.setup(&route, request).unwrap();
    while outcome.is_connected() {
        outcome = network.setup(&route, request).unwrap();
    }
    let SetupOutcome::Rejected(rejection) = outcome else {
        panic!("expected rejection");
    };
    // The rejection names a switch on the route, and the event trace
    // holds matching REJECT bookkeeping.
    let reject_events = network
        .events()
        .iter()
        .filter(|e| matches!(e, SignalEvent::Rejected { .. }))
        .count();
    assert!(reject_events >= 1, "{rejection:?}");
    // Counts stay equal at all switches (no partial reservations).
    let counts: Vec<usize> = route
        .queueing_points(network.topology())
        .unwrap()
        .iter()
        .map(|&(node, _)| network.switch(node).unwrap().connection_count())
        .collect();
    assert!(counts.windows(2).all(|w| w[0] == w[1]), "{counts:?}");
}

#[test]
fn wire_service_matches_in_process_engine() {
    // The service is a thin façade: the same request sequence sent over
    // the wire must produce the same admissions as an in-process engine
    // on an identical star-ring.
    let config = ServeConfig {
        addr: "127.0.0.1:0".into(),
        metrics_addr: None,
        nodes: 4,
        terminals: 2,
        bound: Time::from_integer(64),
        workers: 2,
        ..ServeConfig::default()
    };
    let server = Server::start(&config).unwrap();
    let sr = builders::star_ring(4, 2).unwrap();
    let switch_config = SwitchConfig::uniform(1, Time::from_integer(64)).unwrap();
    let engine = AdmissionEngine::new(sr.topology().clone(), switch_config, CdvPolicy::Hard);
    let route = sr.terminal_route((0, 0), (2, 1)).unwrap();
    let links: Vec<u32> = route.links().iter().map(|l| l.index() as u32).collect();
    let request = SetupRequest::new(cbr(1, 9), Priority::HIGHEST, Time::from_integer(1_000));

    let mut client = Client::connect(server.addr()).unwrap();
    for _ in 0..12 {
        let local = engine.admit(&route, request).unwrap().is_established();
        let remote = matches!(
            client.setup(&links, request).unwrap(),
            Response::Admitted { .. }
        );
        assert_eq!(local, remote);
    }
    // Shutdown is a checked property: drain, close, and the final audit
    // must find no orphans and no guarantee violations.
    client.drain().unwrap();
    drop(client);
    let summary = server.join();
    assert!(summary.is_clean(), "{summary:?}");
}

#[test]
fn branching_traffic_only_affects_shared_ports() {
    // Y topology: two sources share switch s1; one exits to d1, the
    // other crosses s2 to d2. Admissions on the s2 branch must not
    // consume capacity on the d1 branch.
    let mut t = rtcac::net::Topology::new();
    let a = t.add_end_system("a");
    let b = t.add_end_system("b");
    let s1 = t.add_switch("s1");
    let s2 = t.add_switch("s2");
    let d1 = t.add_end_system("d1");
    let d2 = t.add_end_system("d2");
    t.add_link(a, s1).unwrap();
    t.add_link(b, s1).unwrap();
    t.add_link(s1, d1).unwrap();
    t.add_link(s1, s2).unwrap();
    t.add_link(s2, d2).unwrap();
    let config = SwitchConfig::uniform(1, Time::from_integer(32)).unwrap();
    let mut network = Network::new(t, config, CdvPolicy::Hard);
    let r1 = Route::from_nodes(network.topology(), [a, s1, d1]).unwrap();
    let r2 = Route::from_nodes(network.topology(), [b, s1, s2, d2]).unwrap();

    // Saturate the s2 branch.
    let big = SetupRequest::new(cbr(2, 5), Priority::HIGHEST, Time::from_integer(1_000));
    let mut n2 = 0;
    while network.setup(&r2, big).unwrap().is_connected() {
        n2 += 1;
    }
    assert!(n2 >= 2);
    // The d1 branch is still wide open.
    let small = SetupRequest::new(cbr(1, 3), Priority::HIGHEST, Time::from_integer(1_000));
    assert!(network.setup(&r1, small).unwrap().is_connected());
}
