//! End-to-end determinism of the concurrent admission engine: a seeded
//! batch of mixed CBR/VBR setups pushed through the worker pool must
//! yield exactly the accept/reject multiset of a serial replay through
//! `signaling::Network`.

use std::collections::BTreeMap;
use std::sync::Arc;

use rtcac::bitstream::{CbrParams, Rate, Time, TrafficContract, VbrParams};
use rtcac::cac::{Priority, SwitchConfig};
use rtcac::engine::{run_batch, AdmissionEngine};
use rtcac::net::{builders, Route};
use rtcac::rational::ratio;
use rtcac::signaling::{CdvPolicy, Network, SetupRequest};

/// SplitMix64 — the same deterministic generator used across the test
/// suite.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }
}

/// One contention class: every request in a class is identical and all
/// of its routes stay within one ring node's shard, so the per-class
/// admit count depends only on capacity — never on how concurrent
/// workers interleave across classes.
struct Class {
    route: Route,
    request: SetupRequest,
    count: usize,
}

fn seeded_classes(sr: &builders::StarRing, seed: u64) -> Vec<Class> {
    let mut rng = Rng(seed);
    (0..sr.ring_len())
        .map(|i| {
            let contract = if rng.below(2) == 0 {
                let den = 3 + i128::from(rng.below(6)); // rate in 1/3..1/8
                TrafficContract::cbr(CbrParams::new(Rate::new(ratio(1, den))).unwrap())
            } else {
                let peak_den = 2 + i128::from(rng.below(3)); // 1/2..1/4
                let sust_den = 8 + i128::from(rng.below(8)); // 1/8..1/15
                let mbs = 2 + rng.below(4);
                TrafficContract::vbr(
                    VbrParams::new(
                        Rate::new(ratio(1, peak_den)),
                        Rate::new(ratio(1, sust_den)),
                        mbs,
                    )
                    .unwrap(),
                )
            };
            let priority = Priority::new(rng.below(2) as u8);
            Class {
                route: sr.terminal_route((i, 0), (i, 1)).unwrap(),
                request: SetupRequest::new(contract, priority, Time::from_integer(10_000)),
                count: 3 + rng.below(4) as usize,
            }
        })
        .collect()
}

/// Interleaves the classes into one seeded submission order of
/// `(class index, route, request)` jobs.
fn submission_order(classes: &[Class], seed: u64) -> Vec<(usize, Route, SetupRequest)> {
    let mut jobs: Vec<(usize, Route, SetupRequest)> = classes
        .iter()
        .enumerate()
        .flat_map(|(i, c)| (0..c.count).map(move |_| (i, c.route.clone(), c.request)))
        .collect();
    // Seeded Fisher-Yates so the engine sees the classes interleaved.
    let mut rng = Rng(seed ^ 0xD1B5_4A32_D192_ED03);
    for k in (1..jobs.len()).rev() {
        jobs.swap(k, rng.below(k as u64 + 1) as usize);
    }
    jobs
}

/// The accept/reject multiset: per class, how many setups were
/// admitted and how many rejected.
fn multiset(
    jobs: &[(usize, Route, SetupRequest)],
    admitted: &[bool],
) -> BTreeMap<(usize, bool), usize> {
    let mut m = BTreeMap::new();
    for ((class, _, _), &ok) in jobs.iter().zip(admitted) {
        *m.entry((*class, ok)).or_insert(0) += 1;
    }
    m
}

fn engine_multiset(
    sr: &builders::StarRing,
    config: &SwitchConfig,
    jobs: &[(usize, Route, SetupRequest)],
    workers: usize,
) -> BTreeMap<(usize, bool), usize> {
    let engine = Arc::new(AdmissionEngine::new(
        sr.topology().clone(),
        config.clone(),
        CdvPolicy::Hard,
    ));
    let outcomes = run_batch(
        &engine,
        jobs.iter().map(|(_, r, q)| (r.clone(), *q)),
        workers,
    )
    .expect("no worker died");
    let admitted: Vec<bool> = outcomes
        .iter()
        .map(|o| o.as_ref().unwrap().is_admitted())
        .collect();
    let stats = engine.stats();
    assert_eq!(stats.completed() as usize, jobs.len());
    assert_outcome_invariant(&stats);
    assert_eq!(
        engine.connection_count() as u64,
        stats.admitted,
        "registry must hold exactly the committed connections"
    );
    multiset(jobs, &admitted)
}

/// Every submitted setup must land in exactly one outcome bucket: the
/// engine's documented accounting identity, asserted after every batch.
fn assert_outcome_invariant(stats: &rtcac::engine::EngineStats) {
    assert_eq!(
        stats.submitted,
        stats.admitted + stats.rejected + stats.aborted + stats.errored,
        "outcome counters must partition submissions: {stats:?}"
    );
    assert_eq!(stats.errored, 0, "well-formed batches never error");
}

fn serial_multiset(
    sr: &builders::StarRing,
    config: &SwitchConfig,
    jobs: &[(usize, Route, SetupRequest)],
) -> BTreeMap<(usize, bool), usize> {
    let mut net = Network::new(sr.topology().clone(), config.clone(), CdvPolicy::Hard);
    let admitted: Vec<bool> = jobs
        .iter()
        .map(|(_, route, request)| net.setup(route, *request).unwrap().is_connected())
        .collect();
    multiset(jobs, &admitted)
}

#[test]
fn concurrent_batch_matches_serial_network_replay() {
    let sr = builders::star_ring(8, 2).unwrap();
    let config = SwitchConfig::uniform(2, Time::from_integer(48)).unwrap();
    for seed in [7, 42, 1997] {
        let classes = seeded_classes(&sr, seed);
        let jobs = submission_order(&classes, seed);
        let serial = serial_multiset(&sr, &config, &jobs);
        for workers in [1, 4] {
            let concurrent = engine_multiset(&sr, &config, &jobs, workers);
            assert_eq!(
                concurrent, serial,
                "seed {seed}, {workers} workers: engine multiset diverged from serial replay"
            );
        }
    }
}

#[test]
fn engine_batches_are_run_to_run_deterministic() {
    let sr = builders::star_ring(6, 2).unwrap();
    let config = SwitchConfig::uniform(2, Time::from_integer(32)).unwrap();
    let classes = seeded_classes(&sr, 0xBEEF);
    let jobs = submission_order(&classes, 0xBEEF);
    let first = engine_multiset(&sr, &config, &jobs, 4);
    for _ in 0..4 {
        assert_eq!(engine_multiset(&sr, &config, &jobs, 4), first);
    }
}

#[test]
fn released_capacity_is_reusable_under_concurrency() {
    // Fill one shard through the pool, release everything, refill: the
    // exact-arithmetic engine must reach the same admitted count.
    let sr = builders::star_ring(4, 2).unwrap();
    let config = SwitchConfig::uniform(1, Time::from_integer(16)).unwrap();
    let engine = Arc::new(AdmissionEngine::new(
        sr.topology().clone(),
        config,
        CdvPolicy::Hard,
    ));
    let contract = TrafficContract::cbr(CbrParams::new(Rate::new(ratio(1, 10))).unwrap());
    let jobs = || {
        (0..12).map(|_| {
            (
                sr.terminal_route((0, 0), (0, 1)).unwrap(),
                SetupRequest::new(contract, Priority::HIGHEST, Time::from_integer(1_000)),
            )
        })
    };
    let first: Vec<_> = run_batch(&engine, jobs(), 4).expect("no worker died");
    assert_outcome_invariant(&engine.stats());
    let capacity = first
        .iter()
        .filter(|o| o.as_ref().unwrap().is_admitted())
        .count();
    assert!(capacity > 0 && capacity < 12);
    for outcome in first {
        if let rtcac::engine::EngineOutcome::Admitted { id, .. } = outcome.unwrap() {
            engine.release(id).unwrap();
        }
    }
    assert_eq!(engine.connection_count(), 0);
    let second = run_batch(&engine, jobs(), 4)
        .expect("no worker died")
        .iter()
        .filter(|o| o.as_ref().unwrap().is_admitted())
        .count();
    assert_eq!(second, capacity);
    assert_outcome_invariant(&engine.stats());
}
