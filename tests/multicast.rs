//! Point-to-multipoint (p2mp) VCs end to end: the ATM-native
//! realization of RTnet's cyclic-transmission broadcast. Covers tree
//! admission with per-branch CDV, per-leaf guarantees, rollback,
//! teardown, and simulator validation with cell duplication.

use rtcac::bitstream::{CbrParams, Rate, Time, TrafficContract, VbrParams};
use rtcac::cac::{Priority, SwitchConfig};
use rtcac::net::{builders, MulticastTree};
use rtcac::rational::ratio;
use rtcac::signaling::{CdvPolicy, MulticastOutcome, Network, SetupRequest};
use rtcac::sim::{Simulation, TrafficPattern};

fn cbr(n: i128, d: i128) -> TrafficContract {
    TrafficContract::cbr(CbrParams::new(Rate::new(ratio(n, d))).unwrap())
}

fn ring_network(nodes: usize, terms: usize, bound: i128) -> (Network, rtcac::net::StarRing) {
    let sr = builders::star_ring(nodes, terms).unwrap();
    let config = SwitchConfig::uniform(1, Time::from_integer(bound)).unwrap();
    (
        Network::new(sr.topology().clone(), config, CdvPolicy::Hard),
        sr,
    )
}

#[test]
fn broadcast_tree_setup_and_per_leaf_guarantees() {
    let (mut network, sr) = ring_network(4, 2, 32);
    let tree = sr.broadcast_tree(0, 0).unwrap();
    let request = SetupRequest::new(cbr(1, 20), Priority::HIGHEST, Time::from_integer(1_000));
    let info = match network.setup_multicast(&tree, request).unwrap() {
        MulticastOutcome::Connected(info) => info,
        other => panic!("expected connection, got {other:?}"),
    };
    // 7 leaves (all terminals but the source).
    assert_eq!(info.per_leaf().len(), 7);
    // Guarantee per leaf = 32 * switch ports on its path: the source
    // node's sibling terminal crosses 1 port; the farthest terminal
    // crosses 4 (its ring entry + 3 transit + its drop-off port counts
    // as the 4th).
    let delays: Vec<i128> = info
        .per_leaf()
        .iter()
        .map(|&(_, d)| d.as_ratio().numer())
        .collect();
    assert!(delays.contains(&32), "{delays:?}");
    assert!(delays.contains(&128), "{delays:?}");
    assert_eq!(info.guaranteed_delay(), Time::from_integer(128));
    // Every ring switch holds legs; node 0 holds ring-out + 1 drop-off,
    // others hold ring-out (except the last) + 2 drop-offs.
    let total_legs: usize = sr
        .ring_nodes()
        .iter()
        .map(|&n| network.switch(n).unwrap().connection_count())
        .sum();
    assert_eq!(
        total_legs,
        tree.queueing_points(network.topology()).unwrap().len()
    );

    // Teardown releases everything.
    network.teardown_multicast(info.id()).unwrap();
    for &n in sr.ring_nodes() {
        assert_eq!(network.switch(n).unwrap().connection_count(), 0);
    }
    assert!(network.teardown_multicast(info.id()).is_err());
}

#[test]
fn full_cyclic_broadcast_population_admits_and_simulates() {
    // Every terminal of a 4x2 RTnet broadcasts via a p2mp VC at a
    // symmetric load, mirrored into the simulator with duplication.
    let (mut network, sr) = ring_network(4, 2, 32);
    let load = ratio(1, 4);
    let pcr = load / ratio(8, 1);
    let mut infos = Vec::new();
    for node in 0..4 {
        for term in 0..2 {
            let tree = sr.broadcast_tree(node, term).unwrap();
            let request = SetupRequest::new(
                TrafficContract::cbr(CbrParams::new(Rate::new(pcr)).unwrap()),
                Priority::HIGHEST,
                Time::from_integer(10_000),
            );
            match network.setup_multicast(&tree, request).unwrap() {
                MulticastOutcome::Connected(info) => infos.push((info, tree)),
                other => panic!("broadcast {node}.{term} rejected: {other:?}"),
            }
        }
    }

    let mut sim = Simulation::new(network.topology());
    for (info, tree) in &infos {
        sim.add_multicast(
            info.id(),
            tree,
            Priority::HIGHEST,
            info.request().contract(),
            TrafficPattern::Greedy,
        )
        .unwrap();
    }
    let report = sim.run(60_000);
    assert_eq!(report.total_drops(), 0);
    for (info, tree) in &infos {
        let stats = report.connection(info.id()).unwrap();
        // Each emitted cell fans out to 7 leaves.
        assert!(stats.emitted > 0);
        assert!(stats.duplicated > 0);
        assert_eq!(
            stats.emitted + stats.duplicated,
            stats.delivered + stats.in_flight + stats.dropped
        );
        // Steady state: deliveries approach 7 per emission.
        let per_emission = stats.delivered as f64 / stats.emitted as f64;
        assert!(
            per_emission > 6.5 && per_emission <= 7.0 + 1e-9,
            "{per_emission}"
        );
        // Worst measured end-to-end delay (minus per-hop transmission
        // slots on the longest path) within the guarantee.
        let longest_path = tree
            .leaf_paths(network.topology())
            .unwrap()
            .iter()
            .map(|(_, p)| p.len())
            .max()
            .unwrap() as u64;
        let queueing = stats.max_delay.saturating_sub(longest_path);
        assert!(
            Time::from_integer(queueing as i128) <= info.guaranteed_delay(),
            "measured {queueing} > guaranteed {}",
            info.guaranteed_delay()
        );
    }

    // Per-port measured delays also fit the computed bounds.
    for ((link, priority), stats) in report.ports() {
        let from = network.topology().link(*link).unwrap().from();
        let Ok(switch) = network.switch(from) else {
            continue;
        };
        let bound = switch.computed_bound(*link, *priority).unwrap();
        assert!(
            Time::from_integer(stats.max_delay as i128) <= bound,
            "port {link}: measured {} > computed {bound}",
            stats.max_delay
        );
    }
}

#[test]
fn multicast_rejection_rolls_back_all_legs() {
    let (mut network, sr) = ring_network(4, 1, 4);
    // A fat broadcast that cannot fit the 4-cell queues once transit
    // clumping is accounted for.
    let request = SetupRequest::new(cbr(1, 3), Priority::HIGHEST, Time::from_integer(10_000));
    let mut rejected = false;
    for node in 0..4 {
        let tree = sr.broadcast_tree(node, 0).unwrap();
        match network.setup_multicast(&tree, request).unwrap() {
            MulticastOutcome::Connected(_) => {}
            MulticastOutcome::Rejected(_) => {
                rejected = true;
                break;
            }
        }
    }
    assert!(rejected, "tight queues must eventually reject");
    // No switch holds legs of the rejected id: leg counts per switch
    // must be consistent with the established multicast set only.
    let established: usize = network.multicast_connections().count();
    for &n in sr.ring_nodes() {
        let legs = network.switch(n).unwrap().connection_count();
        // Each established broadcast holds at most 1 ring leg + 1
        // drop-off leg per node here (terms = 1).
        assert!(legs <= established * 2, "node {n}: {legs} legs");
    }
}

#[test]
fn multicast_qos_gate_checks_worst_leaf() {
    let (mut network, sr) = ring_network(4, 2, 32);
    let tree = sr.broadcast_tree(0, 0).unwrap();
    // Worst leaf needs 128 cells; request only 100.
    let request = SetupRequest::new(cbr(1, 50), Priority::HIGHEST, Time::from_integer(100));
    match network.setup_multicast(&tree, request).unwrap() {
        MulticastOutcome::Rejected(r) => {
            assert!(r.to_string().contains("128"), "{r}");
        }
        other => panic!("expected qos rejection, got {other:?}"),
    }
}

#[test]
fn vbr_multicast_over_simple_tree() {
    // A two-switch tree with a bursty VBR source; checks duplication
    // across an inner branch.
    let mut t = rtcac::net::Topology::new();
    let src = t.add_end_system("src");
    let sw1 = t.add_switch("sw1");
    let sw2 = t.add_switch("sw2");
    let a = t.add_end_system("a");
    let b = t.add_end_system("b");
    let c = t.add_end_system("c");
    let up = t.add_link(src, sw1).unwrap();
    let da = t.add_link(sw1, a).unwrap();
    let trunk = t.add_link(sw1, sw2).unwrap();
    let db = t.add_link(sw2, b).unwrap();
    let dc = t.add_link(sw2, c).unwrap();
    let tree = MulticastTree::new(&t, [up, da, trunk, db, dc]).unwrap();

    let config = SwitchConfig::uniform(1, Time::from_integer(64)).unwrap();
    let mut network = Network::new(t, config, CdvPolicy::Hard);
    let contract = TrafficContract::vbr(
        VbrParams::new(Rate::new(ratio(1, 3)), Rate::new(ratio(1, 12)), 9).unwrap(),
    );
    let request = SetupRequest::new(contract, Priority::HIGHEST, Time::from_integer(128));
    let info = match network.setup_multicast(&tree, request).unwrap() {
        MulticastOutcome::Connected(info) => info,
        other => panic!("unexpected {other:?}"),
    };
    // sw1 holds 2 legs (da, trunk), sw2 holds 2 (db, dc).
    let sw1_node = info.tree().queueing_points(network.topology()).unwrap()[0].0;
    assert_eq!(network.switch(sw1_node).unwrap().connection_count(), 2);

    let mut sim = Simulation::new(network.topology());
    sim.add_multicast(
        info.id(),
        &tree,
        Priority::HIGHEST,
        contract,
        TrafficPattern::Greedy,
    )
    .unwrap();
    let report = sim.run(50_000);
    let stats = report.connection(info.id()).unwrap();
    // 3 leaves per emitted cell.
    let per_emission = stats.delivered as f64 / stats.emitted as f64;
    assert!(
        per_emission > 2.9 && per_emission <= 3.0 + 1e-9,
        "{per_emission}"
    );
    assert_eq!(report.total_drops(), 0);
}
