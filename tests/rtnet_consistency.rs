//! Consistency: the RTnet ring analysis (direct bit-stream algebra)
//! must agree *exactly* with the general per-switch CAC machinery when
//! both model the same set of broadcast connections.
//!
//! This pins the two independent implementations of §4.3 against each
//! other: `rtcac_rtnet::RingAnalysis` computes port aggregates
//! symbolically; `rtcac_cac::Switch` builds them from per-connection
//! admissions driven by the signaling layer.

use rtcac::bitstream::{CbrParams, Rate, Time, TrafficContract, VbrParams};
use rtcac::cac::{Priority, SwitchConfig};
use rtcac::net::builders;
use rtcac::rational::ratio;
use rtcac::rtnet::{CdvMode, RingAnalysis};
use rtcac::signaling::{CdvPolicy, Network, SetupRequest};

const RING: usize = 5;
const TERMS: usize = 2;
const BOUND: i128 = 64;

fn contracts() -> Vec<TrafficContract> {
    // One distinct contract per terminal (RING * TERMS of them).
    (0..(RING * TERMS) as i128)
        .map(|k| {
            if k % 3 == 0 {
                TrafficContract::cbr(CbrParams::new(Rate::new(ratio(1, 30 + k))).unwrap())
            } else {
                TrafficContract::vbr(
                    VbrParams::new(
                        Rate::new(ratio(1, 10 + k)),
                        Rate::new(ratio(1, 60 + 2 * k)),
                        (2 + k % 4) as u64,
                    )
                    .unwrap(),
                )
            }
        })
        .collect()
}

/// Builds the signaling-driven network with every terminal
/// broadcasting around the ring.
fn build_network() -> (Network, rtcac::net::StarRing) {
    let sr = builders::star_ring(RING, TERMS).unwrap();
    let config = SwitchConfig::uniform(1, Time::from_integer(BOUND)).unwrap();
    let mut network = Network::new(sr.topology().clone(), config, CdvPolicy::Hard);
    let contracts = contracts();
    let mut idx = 0;
    for node in 0..RING {
        for term in 0..TERMS {
            let route = sr.ring_route_from_terminal(node, term, RING - 1).unwrap();
            let request = SetupRequest::new(
                contracts[idx],
                Priority::HIGHEST,
                Time::from_integer(BOUND * (RING as i128 - 1)),
            );
            let outcome = network.setup(&route, request).unwrap();
            assert!(
                outcome.is_connected(),
                "test load must be admissible (conn {idx})"
            );
            idx += 1;
        }
    }
    (network, sr)
}

/// Builds the same load in the direct ring analysis.
fn build_analysis() -> RingAnalysis {
    let mut analysis =
        RingAnalysis::new(RING, vec![Time::from_integer(BOUND)], CdvMode::Hard).unwrap();
    let contracts = contracts();
    let mut idx = 0;
    for node in 0..RING {
        for _ in 0..TERMS {
            analysis
                .add_connection(node, contracts[idx].worst_case_stream(), Priority::HIGHEST)
                .unwrap();
            idx += 1;
        }
    }
    analysis
}

#[test]
fn ring_analysis_matches_switch_machinery_exactly() {
    let (network, sr) = build_network();
    let analysis = build_analysis();
    for port in 0..RING {
        let node = sr.ring_nodes()[port];
        let link = sr.ring_link(port).unwrap();
        let from_switch = network
            .switch(node)
            .unwrap()
            .computed_bound(link, Priority::HIGHEST)
            .unwrap();
        let from_analysis = analysis.port_bound(port, Priority::HIGHEST).unwrap();
        assert_eq!(
            from_switch, from_analysis,
            "port {port}: switch machinery {from_switch} vs ring analysis {from_analysis}"
        );
    }
}

#[test]
fn teardown_returns_bounds_to_lighter_values() {
    let (mut network, sr) = build_network();
    let node = sr.ring_nodes()[0];
    let link = sr.ring_link(0).unwrap();
    let before = network
        .switch(node)
        .unwrap()
        .computed_bound(link, Priority::HIGHEST)
        .unwrap();
    // Tear down every connection entering at node 1 (they transit port 0).
    let victims: Vec<_> = network
        .connections()
        .filter(|info| {
            info.route().source(network.topology()).unwrap() == sr.terminals(1).unwrap()[0]
                || info.route().source(network.topology()).unwrap() == sr.terminals(1).unwrap()[1]
        })
        .map(|info| info.id())
        .collect();
    assert_eq!(victims.len(), TERMS);
    for id in victims {
        network.teardown(id).unwrap();
    }
    let after = network
        .switch(node)
        .unwrap()
        .computed_bound(link, Priority::HIGHEST)
        .unwrap();
    assert!(after <= before, "removing load must not raise the bound");
}

#[test]
fn readmission_after_teardown_reproduces_identical_state() {
    let (mut network, sr) = build_network();
    let link = sr.ring_link(2).unwrap();
    let node = sr.ring_nodes()[2];
    let reference = network
        .switch(node)
        .unwrap()
        .computed_bound(link, Priority::HIGHEST)
        .unwrap();
    // Remove and re-establish one connection; exact arithmetic means
    // the recomputed state is bit-identical.
    let info = network.connections().next().unwrap().clone();
    network.teardown(info.id()).unwrap();
    let outcome = network.setup(info.route(), *info.request()).unwrap();
    assert!(outcome.is_connected());
    let recomputed = network
        .switch(node)
        .unwrap()
        .computed_bound(link, Priority::HIGHEST)
        .unwrap();
    assert_eq!(reference, recomputed);
}
