//! Paper-shape anchors: the headline quantitative claims of §5 that a
//! faithful reproduction must land on (EXPERIMENTS.md records the full
//! numbers).

use rtcac::cac::Priority;
use rtcac::rational::ratio;
use rtcac::rtnet::experiments::{fig10, fig11, fig12, fig13, table1};
use rtcac::rtnet::workload;

#[test]
fn fig10_n1_75_percent_under_one_millisecond() {
    // Paper: "For N = 1, up to 75% of cyclic traffic (115 Mbps) can be
    // supported with end-to-end queueing delays smaller than 370 cell
    // times (1 ms)."
    let analysis = workload::symmetric(16, 1, ratio(3, 4)).unwrap();
    assert!(analysis.admissible().unwrap());
    let e2e = analysis.end_to_end_bound(Priority::HIGHEST).unwrap();
    assert!(
        e2e.to_f64() <= 370.0,
        "N=1 at 75%: {} cells (paper: <= 370)",
        e2e.to_f64()
    );
    // And the bound is genuinely close to the 1 ms line, not trivially
    // small — the paper's operating point is tight.
    assert!(e2e.to_f64() >= 300.0, "bound suspiciously loose: {e2e}");
}

#[test]
fn fig10_n16_35_percent_within_one_millisecond() {
    // Paper: "With a maximum configuration of N = 16 ... about 35% of
    // cyclic traffic (55 Mbps) can be supported with an end-to-end
    // queueing delay bound of 370 cell times."
    let analysis = workload::symmetric(16, 16, ratio(7, 20)).unwrap();
    assert!(analysis.admissible().unwrap());
    let e2e = analysis.end_to_end_bound(Priority::HIGHEST).unwrap();
    assert!(
        (300.0..=420.0).contains(&e2e.to_f64()),
        "N=16 at 35%: {} cells (paper: about 370)",
        e2e.to_f64()
    );
}

#[test]
fn fig10_ordering_of_curves() {
    // More terminals per node = burstier node aggregates = larger
    // delays at equal load (the paper's Figure 10 curve ordering).
    let load = ratio(3, 10);
    let mut prev = 0.0;
    for n in [1usize, 4, 8, 16] {
        let analysis = workload::symmetric(16, n, load).unwrap();
        let e2e = analysis
            .end_to_end_bound(Priority::HIGHEST)
            .unwrap()
            .to_f64();
        assert!(e2e > prev, "N={n}: {e2e} not above {prev}");
        prev = e2e;
    }
}

#[test]
fn fig11_capacity_falls_with_asymmetry_and_burstiness() {
    let fig = fig11::run(fig11::Params {
        ring_nodes: 16,
        terminals: vec![1, 16],
        share_steps: 4,
        search_iters: 6,
    })
    .unwrap();
    let n1 = &fig.series[0];
    let n16 = &fig.series[1];
    // Capacity falls from p=0 to p=0.75 for both curves.
    assert!(n1.points[3].max_load < n1.points[0].max_load);
    assert!(n16.points[3].max_load < n16.points[0].max_load);
    // And N=16 is below N=1 in the interior.
    for k in 0..=3 {
        assert!(n16.points[k].max_load <= n1.points[k].max_load, "point {k}");
    }
}

#[test]
fn fig12_two_priorities_add_capacity() {
    let fig = fig12::run(fig12::Params {
        ring_nodes: 16,
        terminals: 16,
        share_steps: 2,
        search_iters: 6,
    })
    .unwrap();
    for p in &fig.points {
        assert!(p.two_priorities >= p.one_priority);
    }
    // The symmetric end gains substantially (paper's Figure 12 shows
    // a visible gap).
    let p0 = &fig.points[0];
    assert!(
        p0.two_priorities.to_f64() >= p0.one_priority.to_f64() + 0.05,
        "no gain at p=0: {:?}",
        p0
    );
}

#[test]
fn fig13_soft_cac_adds_capacity() {
    let fig = fig13::run(fig13::Params {
        ring_nodes: 16,
        terminals: 16,
        share_steps: 2,
        search_iters: 6,
    })
    .unwrap();
    for p in &fig.points {
        assert!(p.soft >= p.hard, "p={}: soft below hard", p.share);
    }
    assert!(
        fig.points.iter().any(|p| p.soft > p.hard),
        "soft CAC bought nothing anywhere"
    );
}

#[test]
fn table1_all_classes_supported_with_deadlines() {
    let table = table1::run(table1::Params::default()).unwrap();
    for row in &table.rows {
        assert!(row.admissible, "{}", row.class.name());
        assert!(row.meets_deadline, "{}", row.class.name());
    }
    // Bandwidths within a few percent of the paper's column.
    let expect = [32.0, 17.5, 6.8];
    for (row, &paper) in table.rows.iter().zip(&expect) {
        let ours = row.bandwidth_mbps.to_f64();
        assert!(
            (ours - paper).abs() / paper < 0.04,
            "{}: {ours} vs paper {paper}",
            row.class.name()
        );
    }
}

#[test]
fn fig10_full_default_run_has_paper_anchor_points() {
    let fig = fig10::run(fig10::Params::default()).unwrap();
    assert_eq!(fig.series.len(), 4);
    // N=1 series reaches at least 75% admissible load.
    assert!(fig.series[0].max_admissible_load >= ratio(3, 4));
    // N=16 series saturates below 55%.
    assert!(fig.series[3].max_admissible_load <= ratio(11, 20));
    // Every admissible point keeps the per-hop bound within the queue.
    for s in &fig.series {
        for p in &s.points {
            assert!(p.per_hop_cells <= 32.0 + 1e-9);
        }
    }
}
