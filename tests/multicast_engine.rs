//! Point-to-multipoint setups through the concurrent engine: the
//! sharded [`rtcac::engine::AdmissionEngine`] and the serial
//! [`rtcac::signaling::Network`] drive the same
//! [`rtcac::cac::ReservationPlan`] core, so under an identical setup
//! sequence they must produce identical decisions, identical per-leaf
//! bounds, and — after an aborted tree — bit-identical switch state.

use rtcac::bitstream::{CbrParams, Rate, Time, TrafficContract};
use rtcac::cac::{ConnectionId, Priority, SwitchConfig};
use rtcac::engine::{AdmissionEngine, EngineOutcome};
use rtcac::net::builders;
use rtcac::rational::ratio;
use rtcac::signaling::{CdvPolicy, MulticastOutcome, Network, SetupRejection, SetupRequest};
use rtcac::sim::SimRng;

fn cbr(n: i128, d: i128) -> TrafficContract {
    TrafficContract::cbr(CbrParams::new(Rate::new(ratio(n, d))).unwrap())
}

#[test]
fn engine_and_serial_agree_on_multicast_decisions_and_bounds() {
    // One broadcast tree per churn step on a 16-node star-ring, with
    // seeded random roots, rates, and hangups applied identically to
    // both drivers. Since both run the same serial order, every
    // decision and every per-leaf bound must match exactly.
    let sr = builders::star_ring(16, 1).unwrap();
    let config = SwitchConfig::uniform(1, Time::from_integer(64)).unwrap();
    let mut network = Network::new(sr.topology().clone(), config.clone(), CdvPolicy::Hard);
    let engine = AdmissionEngine::new(sr.topology().clone(), config, CdvPolicy::Hard);

    let mut rng = SimRng::seed_from_u64(42);
    let mut live: Vec<(ConnectionId, ConnectionId)> = Vec::new();
    let (mut connected, mut refused) = (0u64, 0u64);
    for _ in 0..48 {
        let root = rng.gen_below(16) as usize;
        let denominator = 8i128 << rng.gen_below(3);
        let request = SetupRequest::new(
            cbr(1, denominator),
            Priority::HIGHEST,
            Time::from_integer(1_000_000),
        );
        let tree = sr.broadcast_tree(root, 0).unwrap();
        let serial = network.setup_multicast(&tree, request).unwrap();
        let concurrent = engine.admit_multicast(&tree, request).unwrap();
        match (serial, concurrent) {
            (
                MulticastOutcome::Connected(info),
                EngineOutcome::Admitted {
                    id,
                    guaranteed_delay,
                },
            ) => {
                connected += 1;
                assert_eq!(info.guaranteed_delay(), guaranteed_delay);
                assert_eq!(
                    info.per_leaf(),
                    engine.per_leaf_bounds(id).unwrap().as_slice(),
                    "per-leaf bounds diverged for the tree rooted at {root}"
                );
                live.push((info.id(), id));
            }
            (MulticastOutcome::Rejected(_), EngineOutcome::Rejected { .. }) => refused += 1,
            (serial, concurrent) => {
                panic!("decisions diverged: serial {serial:?} vs engine {concurrent:?}")
            }
        }
        // Churn: sometimes hang one up, on both sides.
        if !live.is_empty() && rng.gen_below(100) < 30 {
            let (sid, eid) = live.swap_remove(rng.gen_below(live.len() as u64) as usize);
            network.teardown_multicast(sid).unwrap();
            engine.release(eid).unwrap();
        }
    }
    assert!(connected > 0, "churn must admit some trees");
    assert!(refused > 0, "churn must saturate and refuse some trees");

    // Both sides end clean: no orphans, no violated guarantees, and
    // the engine's multicast counters conserve.
    assert!(network.orphaned_reservations().is_empty());
    assert!(engine.orphaned_reservations().is_empty());
    assert!(network.verify_guarantees().unwrap().is_empty());
    assert!(engine.verify_guarantees().unwrap().is_empty());
    let stats = engine.stats();
    assert_eq!(stats.mcast_submitted, connected + refused);
    assert_eq!(stats.mcast_admitted, connected);
    assert_eq!(stats.mcast_rejected, refused);
}

#[test]
fn aborted_tree_commit_rolls_back_bit_identically() {
    // Saturate a mid-ring port with unicast fillers so a broadcast
    // reserves its early hops and is refused downstream: the abort
    // must rewind every touched shard — epoch, leg count, and computed
    // bound — to exactly the pre-setup state.
    let sr = builders::star_ring(4, 1).unwrap();
    let config = SwitchConfig::uniform(1, Time::from_integer(8)).unwrap();
    let engine = AdmissionEngine::new(sr.topology().clone(), config, CdvPolicy::Hard);

    let filler_route = sr.terminal_route((2, 0), (3, 0)).unwrap();
    for _ in 0..4 {
        let request = SetupRequest::new(cbr(1, 3), Priority::HIGHEST, Time::from_integer(1_000));
        engine.admit(&filler_route, request).unwrap();
    }

    let nodes: Vec<_> = sr.ring_nodes().to_vec();
    let snapshot = |engine: &AdmissionEngine| -> Vec<(u64, usize, Vec<Time>)> {
        nodes
            .iter()
            .map(|&node| {
                let bounds = engine
                    .topology()
                    .links_from(node)
                    .map(|l| {
                        engine
                            .computed_bound(node, l.id(), Priority::HIGHEST)
                            .unwrap()
                    })
                    .collect();
                (
                    engine.shard_epoch(node).unwrap(),
                    engine.shard_connection_count(node).unwrap(),
                    bounds,
                )
            })
            .collect()
    };
    let before = snapshot(&engine);
    let established_before = engine.connection_count();
    let aborted_before = engine.stats().aborted;

    let tree = sr.broadcast_tree(0, 0).unwrap();
    let request = SetupRequest::new(cbr(1, 3), Priority::HIGHEST, Time::from_integer(1_000));
    match engine.admit_multicast(&tree, request).unwrap() {
        EngineOutcome::Rejected {
            rejection: SetupRejection::Switch {
                hops_rolled_back, ..
            },
            ..
        } => assert!(
            hops_rolled_back > 0,
            "the refusal must land past the first hop so legs get rolled back"
        ),
        other => panic!("expected a mid-tree switch refusal, got {other:?}"),
    }

    assert_eq!(snapshot(&engine), before, "rollback must be bit-identical");
    assert_eq!(engine.connection_count(), established_before);
    assert_eq!(engine.stats().aborted, aborted_before + 1);
    assert!(engine.orphaned_reservations().is_empty());
    assert!(engine.verify_guarantees().unwrap().is_empty());
}
