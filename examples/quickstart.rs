//! Quickstart: the bit-stream CAC machinery in five minutes.
//!
//! Models two hard real-time sources, distorts them with network
//! jitter, and bounds their worst-case FIFO queueing delay at a shared
//! output port — the core loop of the paper's admission control.
//!
//! Run with: `cargo run --example quickstart`

use rtcac::bitstream::{BitStream, CbrParams, Rate, Time, TrafficContract, VbrParams};
use rtcac::rational::ratio;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Traffic contracts. A plant-control sensor streams CBR at 1/8
    //    of the link; a vision subsystem sends VBR bursts: peak 1/4,
    //    sustained 1/32, bursts of up to 12 cells.
    let sensor = TrafficContract::cbr(CbrParams::new(Rate::new(ratio(1, 8)))?);
    let camera = TrafficContract::vbr(VbrParams::new(
        Rate::new(ratio(1, 4)),
        Rate::new(ratio(1, 32)),
        12,
    )?);
    println!(
        "sensor contract: pcr={} scr={} mbs={}",
        sensor.pcr(),
        sensor.scr(),
        sensor.mbs()
    );
    println!(
        "camera contract: pcr={} scr={} mbs={}",
        camera.pcr(),
        camera.scr(),
        camera.mbs()
    );

    // 2. Algorithm 2.1: worst-case generation envelopes.
    let sensor_stream = sensor.worst_case_stream();
    let camera_stream = camera.worst_case_stream();
    println!("sensor worst-case stream: {sensor_stream}");
    println!("camera worst-case stream: {camera_stream}");

    // 3. Algorithm 3.1: upstream switches add jitter. Suppose both
    //    crossed two switches with 32-cell queues: CDV = 64 cell times.
    let cdv = Time::from_integer(64);
    let sensor_arrival = sensor_stream.delay(cdv);
    let camera_arrival = camera_stream.delay(cdv);
    println!("sensor arrival after {cdv} cells of jitter: {sensor_arrival}");
    println!("camera arrival after {cdv} cells of jitter: {camera_arrival}");

    // 4. Algorithm 3.2: they meet at one output port.
    let aggregate = sensor_arrival.multiplex(&camera_arrival);
    println!(
        "aggregate peak rate {} (> 1 means a queue must form)",
        aggregate.peak_rate()
    );

    // 5. Algorithm 4.1: the worst-case queueing delay at the port,
    //    with no higher-priority interference.
    let bound = aggregate.delay_bound(&BitStream::zero())?;
    println!("worst-case queueing delay at the port: {bound} cell times");
    println!(
        "(about {:.1} microseconds at 155 Mbps)",
        bound.to_f64() * 2.7
    );

    // 6. The same bound under interference from a higher-priority
    //    class occupying 1/4 of the link.
    let interference = BitStream::constant(Rate::new(ratio(1, 4)))?;
    let bound_interfered = aggregate.delay_bound(&interference)?;
    println!("with 25% higher-priority interference: {bound_interfered} cell times");
    assert!(bound_interfered >= bound);

    // 7. A switch would admit these connections only if the computed
    //    bound fits its advertised FIFO queue (32 cells here).
    let queue = Time::from_integer(32);
    println!(
        "fits a 32-cell FIFO queue alone: {} / under interference: {}",
        bound <= queue,
        bound_interfered <= queue,
    );
    Ok(())
}
