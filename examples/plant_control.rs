//! Plant-control scenario: cyclic transmission over an RTnet star-ring.
//!
//! Builds the paper's Figure 9 topology, runs the distributed
//! SETUP/REJECT/CONNECTED procedure to establish one broadcast
//! connection per terminal for each Table 1 cyclic class, and reports
//! the guaranteed end-to-end delay bounds and the rejection behaviour
//! when the ring saturates.
//!
//! Run with: `cargo run --release --example plant_control`

use rtcac::bitstream::Time;
use rtcac::cac::{Priority, SwitchConfig};
use rtcac::net::builders;
use rtcac::rational::ratio;
use rtcac::rtnet::cyclic;
use rtcac::signaling::{CdvPolicy, Network, SetupOutcome, SetupRequest};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small RTnet: 8 ring nodes, 2 terminals each (keeps the demo
    // fast; the benchmarks run the full 16x16 configuration).
    let ring_nodes = 8;
    let terminals = 2;
    let sr = builders::star_ring(ring_nodes, terminals)?;
    let config = SwitchConfig::uniform(1, Time::from_integer(32))?;
    let mut network = Network::new(sr.topology().clone(), config, CdvPolicy::Hard);

    println!("RTnet: {ring_nodes} ring nodes x {terminals} terminals, 32-cell queues, hard CAC");

    let total_terminals = (ring_nodes * terminals) as i128;
    let mut established = 0usize;
    let mut rejected = 0usize;

    for class in cyclic::ALL_CLASSES {
        println!(
            "\n== {} class: period {} ms, {} KB, {:.1} Mbps total ==",
            class.name(),
            class.period_ms(),
            class.memory_kb(),
            class.bandwidth_mbps().to_f64(),
        );
        // Each terminal broadcasts its 1/(16N) share of the class.
        let contract = class.contract_for_share(ratio(1, total_terminals))?;
        let qos = class.delay_cells();
        for node in 0..ring_nodes {
            for term in 0..terminals {
                // Broadcast: all the way around the ring.
                let route = sr.ring_route_from_terminal(node, term, ring_nodes - 1)?;
                let request = SetupRequest::new(contract, Priority::HIGHEST, qos);
                match network.setup(&route, request)? {
                    SetupOutcome::Connected(info) => {
                        established += 1;
                        if node == 0 && term == 0 {
                            println!(
                                "  terminal t{node}.{term}: CONNECTED, guaranteed delay {} cells ({:.2} ms)",
                                info.guaranteed_delay(),
                                info.guaranteed_delay().to_f64() / 370.0,
                            );
                        }
                    }
                    SetupOutcome::Rejected(why) => {
                        rejected += 1;
                        if rejected == 1 {
                            println!("  first rejection: {why}");
                        }
                    }
                }
            }
        }
    }

    println!("\nestablished {established} connections, rejected {rejected}");

    // Show the switch-level state at ring node 0.
    let node0 = sr.ring_nodes()[0];
    let sw = network.switch(node0)?;
    println!(
        "ring node 0: {} reservations, sustained load on its ring link {:.3}",
        sw.connection_count(),
        sw.sustained_load(sr.ring_link(0)?).to_f64(),
    );

    // Saturate: keep adding high-speed class traffic until REJECT.
    println!("\nsaturating with extra high-speed connections:");
    let extra = cyclic::HIGH_SPEED.contract_for_share(ratio(1, 4))?;
    let mut extras = 0;
    loop {
        let route = sr.ring_route_from_terminal(0, 0, ring_nodes - 1)?;
        let request = SetupRequest::new(extra, Priority::HIGHEST, Time::from_integer(10_000));
        match network.setup(&route, request)? {
            SetupOutcome::Connected(_) => extras += 1,
            SetupOutcome::Rejected(why) => {
                println!("  admitted {extras} extra connections, then: {why}");
                break;
            }
        }
        if extras > 64 {
            println!("  (stopped after 64 extras)");
            break;
        }
    }
    Ok(())
}
