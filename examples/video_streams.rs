//! Bursty VBR streams with two priority levels and soft CAC.
//!
//! Demonstrates the parts of the scheme beyond CBR: VBR contracts for
//! bursty (video-like) real-time traffic, priority separation between
//! a control class and a video class, and the extra capacity the soft
//! CDV accumulation buys on long routes.
//!
//! Run with: `cargo run --release --example video_streams`

use rtcac::bitstream::{Rate, Time, TrafficContract, VbrParams};
use rtcac::cac::{Priority, SwitchConfig};
use rtcac::net::{builders, Route};
use rtcac::rational::ratio;
use rtcac::signaling::{CdvPolicy, Network, SetupOutcome, SetupRequest};

fn video_contract() -> Result<TrafficContract, Box<dyn std::error::Error>> {
    // A bursty stream: peak 1/3 of the link, 4% average, 24-cell
    // bursts (a frame).
    Ok(TrafficContract::vbr(VbrParams::new(
        Rate::new(ratio(1, 3)),
        Rate::new(ratio(1, 25)),
        24,
    )?))
}

fn control_contract() -> Result<TrafficContract, Box<dyn std::error::Error>> {
    // Tight control loop: CBR-like VBR, 2% of the link, tiny bursts.
    Ok(TrafficContract::vbr(VbrParams::new(
        Rate::new(ratio(1, 10)),
        Rate::new(ratio(1, 50)),
        2,
    )?))
}

fn fill(policy: CdvPolicy) -> Result<(usize, usize), Box<dyn std::error::Error>> {
    // A 5-switch backbone: control at priority 0 (16-cell queues),
    // video at priority 1 (96-cell queues).
    let (topology, src, switches, dst) = builders::line(5)?;
    let config = SwitchConfig::with_bounds([Time::from_integer(16), Time::from_integer(96)])?;
    let mut network = Network::new(topology, config, policy);
    let route = Route::from_nodes(
        network.topology(),
        std::iter::once(src)
            .chain(switches.iter().copied())
            .chain(std::iter::once(dst)),
    )?;

    // Admit a fixed control population first.
    let mut control = 0;
    for _ in 0..4 {
        let req = SetupRequest::new(
            control_contract()?,
            Priority::HIGHEST,
            Time::from_integer(16 * 5),
        );
        if network.setup(&route, req)?.is_connected() {
            control += 1;
        }
    }

    // Then pack video connections until the network says REJECT.
    let mut video = 0;
    loop {
        let req = SetupRequest::new(
            video_contract()?,
            Priority::new(1),
            Time::from_integer(96 * 5),
        );
        match network.setup(&route, req)? {
            SetupOutcome::Connected(_) => video += 1,
            SetupOutcome::Rejected(why) => {
                println!("  [{policy:?}] rejection after {video} video streams: {why}");
                break;
            }
        }
        if video >= 64 {
            break;
        }
    }
    Ok((control, video))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("backbone: 5 switches; control @ p0 (16-cell), video @ p1 (96-cell)\n");

    let (control_hard, video_hard) = fill(CdvPolicy::Hard)?;
    let (control_soft, video_soft) = fill(CdvPolicy::SoftSqrt)?;

    println!();
    println!("hard CAC : {control_hard} control + {video_hard} video streams");
    println!("soft CAC : {control_soft} control + {video_soft} video streams");
    println!(
        "soft CDV accumulation admitted {} extra video stream(s) on this route",
        video_soft.saturating_sub(video_hard)
    );
    assert!(video_soft >= video_hard);
    Ok(())
}
