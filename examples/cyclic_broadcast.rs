//! Cyclic transmission as true point-to-multipoint VCs.
//!
//! Builds a small RTnet, establishes one p2mp broadcast per terminal
//! (up the access link, around the ring, down to every other
//! terminal), prints the per-leaf guarantees, and validates the whole
//! population in the cell-level simulator — cells duplicate at every
//! branch switch, exactly like ATM p2mp hardware.
//!
//! Run with: `cargo run --release --example cyclic_broadcast`

use rtcac::bitstream::{CbrParams, Rate, Time, TrafficContract};
use rtcac::cac::{Priority, SwitchConfig};
use rtcac::net::builders;
use rtcac::rational::ratio;
use rtcac::signaling::{CdvPolicy, MulticastOutcome, Network, SetupRequest};
use rtcac::sim::{Simulation, TrafficPattern};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ring_nodes = 4;
    let terminals = 2;
    let sr = builders::star_ring(ring_nodes, terminals)?;
    let config = SwitchConfig::uniform(1, Time::from_integer(32))?;
    let mut network = Network::new(sr.topology().clone(), config, CdvPolicy::Hard);

    // 20% total cyclic load split over all 8 terminals.
    let pcr = ratio(1, 5) / ratio((ring_nodes * terminals) as i128, 1);
    let contract = TrafficContract::cbr(CbrParams::new(Rate::new(pcr))?);

    println!("establishing {} p2mp broadcasts…", ring_nodes * terminals);
    let mut established = Vec::new();
    for node in 0..ring_nodes {
        for term in 0..terminals {
            let tree = sr.broadcast_tree(node, term)?;
            let request =
                SetupRequest::new(contract, Priority::HIGHEST, Time::from_integer(10_000));
            match network.setup_multicast(&tree, request)? {
                MulticastOutcome::Connected(info) => {
                    if node == 0 && term == 0 {
                        println!(
                            "  t{node}.{term}: {} leaves, worst guarantee {} cells; per-leaf:",
                            info.per_leaf().len(),
                            info.guaranteed_delay()
                        );
                        for (leaf, d) in info.per_leaf() {
                            println!("    {leaf}: {d} cells");
                        }
                    }
                    established.push((info, tree));
                }
                MulticastOutcome::Rejected(why) => {
                    println!("  t{node}.{term}: REJECTED ({why})");
                }
            }
        }
    }
    println!(
        "established {}/{}",
        established.len(),
        ring_nodes * terminals
    );

    // Validate with duplicated cells in the simulator.
    let mut sim = Simulation::new(network.topology());
    for (info, tree) in &established {
        sim.add_multicast(
            info.id(),
            tree,
            Priority::HIGHEST,
            info.request().contract(),
            TrafficPattern::Greedy,
        )?;
    }
    let report = sim.run(100_000);
    println!("\nsimulated 100k slots: drops = {}", report.total_drops());
    let (info, _) = &established[0];
    let stats = report.connection(info.id()).expect("stats exist");
    println!(
        "t0.0: emitted {} cells, duplicated {} copies, delivered {} leaf-cells, max e2e {} slots",
        stats.emitted, stats.duplicated, stats.delivered, stats.max_delay
    );
    println!(
        "fan-out check: {:.2} deliveries per emitted cell (leaves = {})",
        stats.delivered as f64 / stats.emitted as f64,
        info.per_leaf().len()
    );
    assert_eq!(report.total_drops(), 0);
    Ok(())
}
