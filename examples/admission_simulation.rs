//! Cross-validation: analytic delay bounds vs cell-level simulation.
//!
//! Establishes a set of hard real-time connections with the CAC
//! machinery, mirrors them into the slotted simulator with greedy
//! (worst-case) sources, and compares the measured maximum queueing
//! delays against the analytic guarantees. The measurement must never
//! exceed the guarantee — and seeing *how close* it gets shows how
//! tight the worst-case analysis is.
//!
//! Run with: `cargo run --release --example admission_simulation`

use rtcac::bitstream::{Rate, Time, TrafficContract, VbrParams};
use rtcac::cac::{Priority, SwitchConfig};
use rtcac::net::{builders, Route};
use rtcac::rational::ratio;
use rtcac::signaling::{CdvPolicy, Network, SetupRequest};
use rtcac::sim::Simulation;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Two switches in a line; four bursty VBR connections.
    let (topology, src, switches, dst) = builders::line(2)?;
    let config = SwitchConfig::uniform(1, Time::from_integer(64))?;
    let mut network = Network::new(topology, config, CdvPolicy::Hard);
    let route = Route::from_nodes(network.topology(), [src, switches[0], switches[1], dst])?;

    for k in 0..4i128 {
        let contract = TrafficContract::vbr(VbrParams::new(
            Rate::new(ratio(1, 5 + k)),
            Rate::new(ratio(1, 30 + k)),
            6,
        )?);
        let req = SetupRequest::new(contract, Priority::HIGHEST, Time::from_integer(128));
        let outcome = network.setup(&route, req)?;
        println!(
            "connection {k}: {}",
            if outcome.is_connected() {
                "CONNECTED"
            } else {
                "REJECTED"
            }
        );
    }

    // Analytic guarantees.
    let guaranteed: Vec<(String, f64)> = network
        .connections()
        .map(|info| (info.id().to_string(), info.guaranteed_delay().to_f64()))
        .collect();

    // Mirror into the simulator with worst-case greedy sources.
    let sim = Simulation::from_network(&network);
    let report = sim.run(200_000);

    println!("\nper-connection end-to-end delays (slots), 200k-slot run:");
    for (id, stats) in report.connections() {
        let guarantee = guaranteed
            .iter()
            .find(|(name, _)| name == &id.to_string())
            .map(|&(_, g)| g)
            .unwrap_or(f64::NAN);
        // The end-to-end measurement includes one transmission slot per
        // hop (3 here) on top of pure queueing delay.
        let measured_queueing = stats.max_delay.saturating_sub(3) as f64;
        println!(
            "  {id}: measured max queueing {measured_queueing:>5.0} cells, guaranteed {guarantee:>6.1} cells, headroom {:.0}%",
            100.0 * (1.0 - measured_queueing / guarantee)
        );
        assert!(
            measured_queueing <= guarantee,
            "simulation exceeded the analytic guarantee!"
        );
    }

    let worst_port = report.max_port_delay(Priority::HIGHEST);
    println!("\nworst per-port queueing delay observed: {worst_port} cells");
    println!("drops anywhere: {}", report.total_drops());
    println!("\nall measurements within the analytic guarantees ✔");
    Ok(())
}
