//! Observability handles for the signaling layer.
//!
//! All handles are pre-resolved once (in [`NetworkMetrics::resolve`])
//! and are no-ops when no [`rtcac_obs`] registry is installed, so the
//! hot setup path pays only a branch per recording when observability
//! is off.

use std::sync::Arc;

use rtcac_bitstream::Time;
use rtcac_obs::{Counter, Histogram, Registry};

/// Pre-resolved metric handles used by [`crate::Network`].
///
/// `Clone` because `Network` is `Clone`; clones share the same
/// underlying metric cells, which is the desired aggregate view.
#[derive(Debug, Clone, Default)]
pub(crate) struct NetworkMetrics {
    hop_admitted: Counter,
    hop_rejected: Counter,
    setups_connected: Counter,
    setups_rejected_qos: Counter,
    setups_rejected_switch: Counter,
    teardowns: Counter,
    cdv_cells: Histogram,
}

impl NetworkMetrics {
    /// Resolves every handle from `registry`.
    pub fn resolve(registry: &Registry) -> NetworkMetrics {
        NetworkMetrics {
            hop_admitted: registry
                .counter_with("signaling_hop_checks_total", &[("outcome", "admitted")]),
            hop_rejected: registry
                .counter_with("signaling_hop_checks_total", &[("outcome", "rejected")]),
            setups_connected: registry
                .counter_with("signaling_setups_total", &[("outcome", "connected")]),
            setups_rejected_qos: registry
                .counter_with("signaling_setups_total", &[("outcome", "rejected_qos")]),
            setups_rejected_switch: registry
                .counter_with("signaling_setups_total", &[("outcome", "rejected_switch")]),
            teardowns: registry.counter("signaling_teardowns_total"),
            cdv_cells: registry.histogram("signaling_cdv_cells"),
        }
    }

    /// Resolves from the process-global registry, or all-noop handles
    /// if none is installed.
    pub fn from_global() -> NetworkMetrics {
        match rtcac_obs::global() {
            Some(registry) => NetworkMetrics::resolve(registry),
            None => NetworkMetrics::default(),
        }
    }

    /// Re-resolves every handle against an explicit registry (used by
    /// tests and embedders that avoid the process-global one).
    pub fn rebind(&mut self, registry: &Arc<Registry>) {
        *self = NetworkMetrics::resolve(registry);
    }

    /// One per-hop admission check that admitted, with the CDV the hop
    /// was checked against (recorded in whole cell times, rounded up).
    pub fn hop_admitted(&self, cdv: Time) {
        self.hop_admitted.inc();
        self.record_cdv(cdv);
    }

    /// One per-hop admission check that rejected (ends the setup).
    pub fn hop_rejected(&self, cdv: Time) {
        self.hop_rejected.inc();
        self.record_cdv(cdv);
    }

    fn record_cdv(&self, cdv: Time) {
        if self.cdv_cells.is_live() {
            let cells = cdv.as_ratio().ceil();
            self.cdv_cells.record(u64::try_from(cells).unwrap_or(0));
        }
    }

    /// A setup reached CONNECTED.
    pub fn setup_connected(&self) {
        self.setups_connected.inc();
    }

    /// A setup was refused by the QoS feasibility gate.
    pub fn setup_rejected_qos(&self) {
        self.setups_rejected_qos.inc();
    }

    /// A setup was refused by some switch along the route.
    pub fn setup_rejected_switch(&self) {
        self.setups_rejected_switch.inc();
    }

    /// A connection was torn down.
    pub fn teardown(&self) {
        self.teardowns.inc();
    }
}
