//! Observability handles for the signaling layer.
//!
//! All handles are pre-resolved once (in [`NetworkMetrics::resolve`])
//! and are no-ops when no [`rtcac_obs`] registry is installed, so the
//! hot setup path pays only a branch per recording when observability
//! is off.

use std::sync::Arc;

use rtcac_bitstream::Time;
use rtcac_obs::{Counter, Gauge, Histogram, Registry};

/// Pre-resolved metric handles used by [`crate::Network`].
///
/// `Clone` because `Network` is `Clone`; clones share the same
/// underlying metric cells, which is the desired aggregate view.
#[derive(Debug, Clone, Default)]
pub(crate) struct NetworkMetrics {
    hop_admitted: Counter,
    hop_rejected: Counter,
    setups_connected: Counter,
    setups_rejected_qos: Counter,
    setups_rejected_switch: Counter,
    setups_rejected_route_down: Counter,
    teardowns_released: Counter,
    teardowns_unknown: Counter,
    teardowns_failover: Counter,
    link_failures: Counter,
    link_heals: Counter,
    node_failures: Counter,
    node_heals: Counter,
    crankback_attempts: Counter,
    crankback_connected: Counter,
    crankback_exhausted: Counter,
    reroute_backoff_cells: Histogram,
    orphaned_reservations: Gauge,
    cdv_cells: Histogram,
}

impl NetworkMetrics {
    /// Resolves every handle from `registry`.
    pub fn resolve(registry: &Registry) -> NetworkMetrics {
        NetworkMetrics {
            hop_admitted: registry
                .counter_with("signaling_hop_checks_total", &[("outcome", "admitted")]),
            hop_rejected: registry
                .counter_with("signaling_hop_checks_total", &[("outcome", "rejected")]),
            setups_connected: registry
                .counter_with("signaling_setups_total", &[("outcome", "connected")]),
            setups_rejected_qos: registry
                .counter_with("signaling_setups_total", &[("outcome", "rejected_qos")]),
            setups_rejected_switch: registry
                .counter_with("signaling_setups_total", &[("outcome", "rejected_switch")]),
            setups_rejected_route_down: registry.counter_with(
                "signaling_setups_total",
                &[("outcome", "rejected_route_down")],
            ),
            teardowns_released: registry
                .counter_with("signaling_teardowns_total", &[("outcome", "released")]),
            teardowns_unknown: registry
                .counter_with("signaling_teardowns_total", &[("outcome", "unknown")]),
            teardowns_failover: registry
                .counter_with("signaling_teardowns_total", &[("outcome", "failover")]),
            link_failures: registry
                .counter_with("signaling_element_failures_total", &[("element", "link")]),
            link_heals: registry
                .counter_with("signaling_element_heals_total", &[("element", "link")]),
            node_failures: registry
                .counter_with("signaling_element_failures_total", &[("element", "node")]),
            node_heals: registry
                .counter_with("signaling_element_heals_total", &[("element", "node")]),
            crankback_attempts: registry.counter("signaling_crankback_attempts_total"),
            crankback_connected: registry.counter_with(
                "signaling_crankback_setups_total",
                &[("outcome", "connected")],
            ),
            crankback_exhausted: registry.counter_with(
                "signaling_crankback_setups_total",
                &[("outcome", "exhausted")],
            ),
            reroute_backoff_cells: registry.histogram("signaling_reroute_backoff_cells"),
            orphaned_reservations: registry.gauge("signaling_orphaned_reservations"),
            cdv_cells: registry.histogram("signaling_cdv_cells"),
        }
    }

    /// Resolves from the process-global registry, or all-noop handles
    /// if none is installed.
    pub fn from_global() -> NetworkMetrics {
        match rtcac_obs::global() {
            Some(registry) => NetworkMetrics::resolve(registry),
            None => NetworkMetrics::default(),
        }
    }

    /// Re-resolves every handle against an explicit registry (used by
    /// tests and embedders that avoid the process-global one).
    pub fn rebind(&mut self, registry: &Arc<Registry>) {
        *self = NetworkMetrics::resolve(registry);
    }

    /// One per-hop admission check that admitted, with the CDV the hop
    /// was checked against (recorded in whole cell times, rounded up).
    pub fn hop_admitted(&self, cdv: Time) {
        self.hop_admitted.inc();
        self.record_cdv(cdv);
    }

    /// One per-hop admission check that rejected (ends the setup).
    pub fn hop_rejected(&self, cdv: Time) {
        self.hop_rejected.inc();
        self.record_cdv(cdv);
    }

    fn record_cdv(&self, cdv: Time) {
        if self.cdv_cells.is_live() {
            let cells = cdv.as_ratio().ceil();
            self.cdv_cells.record(u64::try_from(cells).unwrap_or(0));
        }
    }

    /// A setup reached CONNECTED.
    pub fn setup_connected(&self) {
        self.setups_connected.inc();
    }

    /// A setup was refused by the QoS feasibility gate.
    pub fn setup_rejected_qos(&self) {
        self.setups_rejected_qos.inc();
    }

    /// A setup was refused by some switch along the route.
    pub fn setup_rejected_switch(&self) {
        self.setups_rejected_switch.inc();
    }

    /// A setup was refused because its route crosses a dead element.
    pub fn setup_rejected_route_down(&self) {
        self.setups_rejected_route_down.inc();
    }

    /// A connection was torn down by an explicit, successful teardown.
    pub fn teardown(&self) {
        self.teardowns_released.inc();
    }

    /// A teardown was requested for a connection that does not exist
    /// (never set up, or already torn down).
    pub fn teardown_unknown(&self) {
        self.teardowns_unknown.inc();
    }

    /// A connection was force-released because an element on its route
    /// failed.
    pub fn teardown_failover(&self) {
        self.teardowns_failover.inc();
    }

    /// A link or node changed health.
    pub fn element_failed(&self, is_node: bool) {
        if is_node {
            self.node_failures.inc();
        } else {
            self.link_failures.inc();
        }
    }

    /// A link or node was restored.
    pub fn element_healed(&self, is_node: bool) {
        if is_node {
            self.node_heals.inc();
        } else {
            self.link_heals.inc();
        }
    }

    /// One route attempt inside a crankback setup.
    pub fn crankback_attempt(&self) {
        self.crankback_attempts.inc();
    }

    /// A crankback setup finished, CONNECTED or out of retries, with
    /// the total deterministic backoff it accrued (in cell times).
    pub fn crankback_finished(&self, connected: bool, backoff_cells: u64) {
        if connected {
            self.crankback_connected.inc();
        } else {
            self.crankback_exhausted.inc();
        }
        self.reroute_backoff_cells.record(backoff_cells);
    }

    /// Publishes the current orphaned-reservation audit result (must
    /// be 0 after every recovery action).
    pub fn set_orphaned(&self, count: u64) {
        self.orphaned_reservations.set(count);
    }
}
