//! Distributed establishment of hard real-time connections — the
//! paper's connection setup sequence (§4.1) and CDV accumulation
//! schemes (§4.3, discussion 1).
//!
//! A source end system requests a connection by sending a SETUP message
//! carrying `(PCR, SCR, MBS, D)` along a preselected route. Every
//! switch on the route runs the §4.3 CAC check with the cell delay
//! variation (CDV) accumulated over its *upstream* switches; the first
//! failing switch answers REJECT (releasing upstream reservations), and
//! a SETUP that reaches the destination yields CONNECTED.
//!
//! Two CDV accumulation policies are provided ([`CdvPolicy`]):
//!
//! - **Hard** — the sum of upstream advertised bounds: the true worst
//!   case, required for hard real-time guarantees;
//! - **SoftSqrt** — the square root of the sum of squares: a less
//!   conservative estimate for soft real-time connections (the paper's
//!   Figure 13 quantifies the capacity gained).
//!
//! [`Network`] drives the whole procedure over a
//! [`Topology`](rtcac_net::Topology) and records an auditable
//! [`SignalEvent`] trace. The centralized connection-management style
//! planned for the next RTnet version (§4.3, discussion 3) is the
//! `rtcac-serve` crate: a resident TCP service dispatching a wire
//! protocol onto the concurrent admission engine.
//!
//! # Examples
//!
//! ```
//! use rtcac_bitstream::{CbrParams, Rate, Time, TrafficContract};
//! use rtcac_cac::{Priority, SwitchConfig};
//! use rtcac_net::{builders, Route};
//! use rtcac_rational::ratio;
//! use rtcac_signaling::{CdvPolicy, Network, SetupOutcome, SetupRequest};
//!
//! // Two switches in a line, 32-cell FIFO queues.
//! let (topology, src, switches, dst) = builders::line(2)?;
//! let config = SwitchConfig::uniform(1, Time::from_integer(32))?;
//! let mut network = Network::new(topology, config, CdvPolicy::Hard);
//!
//! let route = Route::from_nodes(
//!     network.topology(),
//!     [src, switches[0], switches[1], dst],
//! )?;
//! let contract = TrafficContract::cbr(CbrParams::new(Rate::new(ratio(1, 8)))?);
//! let request = SetupRequest::new(contract, Priority::HIGHEST, Time::from_integer(100));
//!
//! match network.setup(&route, request)? {
//!     SetupOutcome::Connected(info) => {
//!         // Guaranteed end-to-end queueing delay: both hops' bounds.
//!         assert_eq!(info.guaranteed_delay(), Time::from_integer(64));
//!     }
//!     SetupOutcome::Rejected(r) => panic!("unexpected rejection: {r:?}"),
//! }
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod message;
mod metrics;
mod multicast;
mod network;

pub use error::SignalError;
pub use message::{SetupRejection, SignalEvent};
pub use multicast::{MulticastInfo, MulticastOutcome};
pub use network::{
    ConnectionInfo, CrankbackAttempt, CrankbackOutcome, CrankbackPolicy, FailureImpact,
    GuaranteeViolation, Network, SetupOutcome, SetupRequest, LOCAL_INJECTION,
};
pub use rtcac_cac::CdvPolicy;
