//! Central connection admission control server (§4.3, discussion 3).
//!
//! The first RTnet generation performs CAC off-line for permanent
//! connections; the next one runs a central connection-management
//! server that sets up and tears down switched real-time connections
//! on-line. [`CacServer`] models that server: it owns the network-wide
//! switch state and processes setup/teardown requests sequentially,
//! keeping acceptance statistics.

use rtcac_cac::ConnectionId;
use rtcac_net::Route;

use crate::{Network, SetupOutcome, SetupRequest, SignalError};

/// Aggregate statistics of a [`CacServer`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Connections currently established.
    pub active: usize,
    /// Total setups accepted since start.
    pub accepted: u64,
    /// Total setups rejected since start.
    pub rejected: u64,
    /// Total teardowns processed since start.
    pub released: u64,
}

/// A central CAC server: the single point through which all real-time
/// connections of a network are established and released.
///
/// # Examples
///
/// ```
/// use rtcac_bitstream::{CbrParams, Rate, Time, TrafficContract};
/// use rtcac_cac::{Priority, SwitchConfig};
/// use rtcac_net::{builders, Route};
/// use rtcac_rational::ratio;
/// use rtcac_signaling::{CacServer, CdvPolicy, Network, SetupRequest};
///
/// let (topology, src, switches, dst) = builders::line(2)?;
/// let config = SwitchConfig::uniform(1, Time::from_integer(32))?;
/// let mut server = CacServer::new(Network::new(topology, config, CdvPolicy::Hard));
///
/// let route = Route::from_nodes(
///     server.network().topology(),
///     [src, switches[0], switches[1], dst],
/// )?;
/// let contract = TrafficContract::cbr(CbrParams::new(Rate::new(ratio(1, 10)))?);
/// let request = SetupRequest::new(contract, Priority::HIGHEST, Time::from_integer(100));
/// let outcome = server.request_setup(&route, request)?;
/// assert!(outcome.is_connected());
/// assert_eq!(server.stats().accepted, 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct CacServer {
    network: Network,
    stats: ServerStats,
}

impl CacServer {
    /// Creates a server managing the given network.
    pub fn new(network: Network) -> CacServer {
        CacServer {
            network,
            stats: ServerStats::default(),
        }
    }

    /// The managed network (switch states, topology, event trace).
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// Acceptance statistics.
    pub fn stats(&self) -> ServerStats {
        self.stats
    }

    /// Processes a setup request, updating statistics.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Network::setup`].
    pub fn request_setup(
        &mut self,
        route: &Route,
        request: SetupRequest,
    ) -> Result<SetupOutcome, SignalError> {
        let outcome = self.network.setup(route, request)?;
        match &outcome {
            SetupOutcome::Connected(_) => {
                self.stats.accepted += 1;
                self.stats.active += 1;
            }
            SetupOutcome::Rejected(_) => self.stats.rejected += 1,
        }
        Ok(outcome)
    }

    /// Processes a teardown, updating statistics.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Network::teardown`].
    pub fn request_teardown(&mut self, id: ConnectionId) -> Result<(), SignalError> {
        self.network.teardown(id)?;
        self.stats.released += 1;
        self.stats.active = self.stats.active.saturating_sub(1);
        Ok(())
    }

    /// Consumes the server, returning the managed network.
    pub fn into_network(self) -> Network {
        self.network
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CdvPolicy;
    use rtcac_bitstream::{CbrParams, Rate, Time, TrafficContract};
    use rtcac_cac::{Priority, SwitchConfig};
    use rtcac_net::builders;
    use rtcac_rational::ratio;

    fn server() -> (CacServer, Route) {
        let (topology, src, sw, dst) = builders::line(2).unwrap();
        let config = SwitchConfig::uniform(1, Time::from_integer(32)).unwrap();
        let route = Route::from_nodes(&topology, [src, sw[0], sw[1], dst]).unwrap();
        (
            CacServer::new(Network::new(topology, config, CdvPolicy::Hard)),
            route,
        )
    }

    fn request(num: i128, den: i128) -> SetupRequest {
        SetupRequest::new(
            TrafficContract::cbr(CbrParams::new(Rate::new(ratio(num, den))).unwrap()),
            Priority::HIGHEST,
            Time::from_integer(10_000),
        )
    }

    #[test]
    fn stats_track_lifecycle() {
        let (mut server, route) = server();
        let outcome = server.request_setup(&route, request(1, 10)).unwrap();
        let id = match outcome {
            SetupOutcome::Connected(info) => info.id(),
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!(server.stats().accepted, 1);
        assert_eq!(server.stats().active, 1);
        server.request_teardown(id).unwrap();
        assert_eq!(server.stats().released, 1);
        assert_eq!(server.stats().active, 0);
    }

    #[test]
    fn stats_count_rejections() {
        let (mut server, route) = server();
        let mut rejections = 0;
        for _ in 0..6 {
            let outcome = server.request_setup(&route, request(2, 5)).unwrap();
            if !outcome.is_connected() {
                rejections += 1;
            }
        }
        assert!(rejections > 0);
        assert_eq!(server.stats().rejected, rejections);
        assert_eq!(
            server.stats().accepted as usize,
            server.network().connections().count()
        );
    }

    #[test]
    fn into_network_preserves_state() {
        let (mut server, route) = server();
        server.request_setup(&route, request(1, 10)).unwrap();
        let network = server.into_network();
        assert_eq!(network.connections().count(), 1);
    }
}
