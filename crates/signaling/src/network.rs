//! The [`Network`]: CAC-managed switches over a topology, driving the
//! distributed setup procedure.

use std::collections::BTreeMap;

use rtcac_bitstream::{Time, TrafficContract};
use rtcac_cac::{
    AdmissionDecision, ConnectionId, ConnectionRequest, Priority, Switch, SwitchConfig,
};
use rtcac_net::{LinkId, NodeId, Route, Topology};

use crate::metrics::NetworkMetrics;
use crate::{CdvPolicy, SetupRejection, SignalError, SignalEvent};

/// Identifier used as the "incoming link" when a route originates at a
/// switch itself (local traffic injection; no physical incoming link
/// exists).
///
/// Public so that alternative setup drivers (e.g. the concurrent
/// `rtcac-engine`) produce bit-identical [`ConnectionRequest`]s and
/// therefore identical admission decisions.
pub const LOCAL_INJECTION: LinkId = LinkId::external(u32::MAX);

/// The connection parameters carried in a SETUP message: traffic
/// contract, priority, and the requested end-to-end queueing delay
/// bound `D` (paper §4.1: `(PCR, SCR, MBS, D)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SetupRequest {
    contract: TrafficContract,
    priority: Priority,
    delay_bound: Time,
}

impl SetupRequest {
    /// Creates a setup request.
    pub fn new(contract: TrafficContract, priority: Priority, delay_bound: Time) -> SetupRequest {
        SetupRequest {
            contract,
            priority,
            delay_bound,
        }
    }

    /// The traffic contract.
    pub fn contract(&self) -> TrafficContract {
        self.contract
    }

    /// The transmission priority.
    pub fn priority(&self) -> Priority {
        self.priority
    }

    /// The requested end-to-end queueing delay bound.
    pub fn delay_bound(&self) -> Time {
        self.delay_bound
    }
}

/// A successfully established connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConnectionInfo {
    id: ConnectionId,
    request: SetupRequest,
    route: Route,
    guaranteed_delay: Time,
    per_hop_bounds: Vec<(NodeId, Time)>,
}

impl ConnectionInfo {
    /// The connection's identifier.
    pub fn id(&self) -> ConnectionId {
        self.id
    }

    /// The original setup request.
    pub fn request(&self) -> &SetupRequest {
        &self.request
    }

    /// The route the connection follows.
    pub fn route(&self) -> &Route {
        &self.route
    }

    /// The guaranteed end-to-end queueing delay bound: the sum of the
    /// advertised per-hop bounds (fixed regardless of load, per the
    /// paper's design).
    pub fn guaranteed_delay(&self) -> Time {
        self.guaranteed_delay
    }

    /// The advertised bound at each switch crossed, in route order.
    pub fn per_hop_bounds(&self) -> &[(NodeId, Time)] {
        &self.per_hop_bounds
    }
}

/// The outcome of a setup attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SetupOutcome {
    /// CONNECTED: the connection is established end to end.
    Connected(ConnectionInfo),
    /// REJECT: some switch refused, or the QoS is unachievable; any
    /// upstream reservations have been rolled back.
    Rejected(SetupRejection),
}

impl SetupOutcome {
    /// Whether the setup succeeded.
    pub fn is_connected(&self) -> bool {
        matches!(self, SetupOutcome::Connected(_))
    }
}

/// A network of CAC-managed switches over a [`Topology`], implementing
/// the distributed setup procedure of §4.1. See the crate-level example.
#[derive(Debug, Clone)]
pub struct Network {
    topology: Topology,
    switches: BTreeMap<NodeId, Switch>,
    policy: CdvPolicy,
    connections: BTreeMap<ConnectionId, ConnectionInfo>,
    multicast: BTreeMap<ConnectionId, crate::MulticastInfo>,
    events: Vec<SignalEvent>,
    next_id: u64,
    metrics: NetworkMetrics,
}

impl Network {
    /// Creates a network giving every switch node of the topology the
    /// same configuration.
    pub fn new(topology: Topology, config: SwitchConfig, policy: CdvPolicy) -> Network {
        let switches = topology
            .switches()
            .map(|n| (n.id(), Switch::new(config.clone())))
            .collect();
        Network {
            topology,
            switches,
            policy,
            connections: BTreeMap::new(),
            multicast: BTreeMap::new(),
            events: Vec::new(),
            next_id: 1,
            metrics: NetworkMetrics::from_global(),
        }
    }

    /// Rebinds this network's observability handles to an explicit
    /// [`rtcac_obs::Registry`] instead of the process-global one
    /// (useful for tests and embedders that keep registries isolated).
    pub fn set_registry(&mut self, registry: &std::sync::Arc<rtcac_obs::Registry>) {
        self.metrics.rebind(registry);
    }

    /// Replaces the configuration of one switch (e.g. to give a core
    /// switch deeper queues). Existing connections are kept.
    ///
    /// # Errors
    ///
    /// Returns [`SignalError::NoSwitchAt`] if the node is not a managed
    /// switch.
    pub fn configure_switch(
        &mut self,
        node: NodeId,
        config: SwitchConfig,
    ) -> Result<(), SignalError> {
        match self.switches.get_mut(&node) {
            Some(s) if s.connection_count() == 0 => {
                *s = Switch::new(config);
                Ok(())
            }
            Some(_) => Err(SignalError::Cac(rtcac_cac::CacError::BadConfig(
                "cannot reconfigure a switch with established connections",
            ))),
            None => Err(SignalError::NoSwitchAt(node)),
        }
    }

    /// The underlying topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The CDV accumulation policy in force.
    pub fn policy(&self) -> CdvPolicy {
        self.policy
    }

    /// The managed switch at a node.
    ///
    /// # Errors
    ///
    /// Returns [`SignalError::NoSwitchAt`] for non-switch nodes.
    pub fn switch(&self, node: NodeId) -> Result<&Switch, SignalError> {
        self.switches
            .get(&node)
            .ok_or(SignalError::NoSwitchAt(node))
    }

    /// The recorded signaling trace.
    pub fn events(&self) -> &[SignalEvent] {
        &self.events
    }

    /// Established connections.
    pub fn connections(&self) -> impl Iterator<Item = &ConnectionInfo> + '_ {
        self.connections.values()
    }

    /// Looks up an established connection.
    pub fn connection(&self, id: ConnectionId) -> Option<&ConnectionInfo> {
        self.connections.get(&id)
    }

    /// Established multicast connections.
    pub fn multicast_connections(&self) -> impl Iterator<Item = &crate::MulticastInfo> + '_ {
        self.multicast.values()
    }

    /// Looks up an established multicast connection.
    pub fn multicast_connection(&self, id: ConnectionId) -> Option<&crate::MulticastInfo> {
        self.multicast.get(&id)
    }

    pub(crate) fn allocate_id(&mut self) -> ConnectionId {
        let id = ConnectionId::new(self.next_id);
        self.next_id += 1;
        id
    }

    pub(crate) fn switch_mut(&mut self, node: NodeId) -> Result<&mut Switch, SignalError> {
        self.switches
            .get_mut(&node)
            .ok_or(SignalError::NoSwitchAt(node))
    }

    pub(crate) fn push_event(&mut self, event: SignalEvent) {
        self.events.push(event);
    }

    pub(crate) fn insert_multicast(&mut self, info: crate::MulticastInfo) {
        self.multicast.insert(info.id(), info);
    }

    pub(crate) fn remove_multicast(&mut self, id: ConnectionId) -> Option<crate::MulticastInfo> {
        self.multicast.remove(&id)
    }

    /// The smallest end-to-end delay bound the route can guarantee for
    /// a priority: the sum of advertised per-hop bounds.
    ///
    /// # Errors
    ///
    /// Returns [`SignalError::NoSwitchAt`] or propagated CAC/topology
    /// errors for invalid routes or priorities.
    pub fn achievable_delay(&self, route: &Route, priority: Priority) -> Result<Time, SignalError> {
        let mut total = Time::ZERO;
        for (node, _) in route.queueing_points(&self.topology)? {
            let switch = self.switch(node)?;
            total += switch.advertised_bound(priority)?;
        }
        Ok(total)
    }

    /// Attempts to establish a connection along `route`, emulating the
    /// SETUP / REJECT / CONNECTED exchange. On rejection at hop `k`,
    /// hops `1..k` are rolled back.
    ///
    /// Returns the assigned [`ConnectionId`] via
    /// [`ConnectionInfo::id`] on success.
    ///
    /// # Errors
    ///
    /// Returns an error only for API misuse (invalid route, unmanaged
    /// node, unknown priority); a connection that simply does not fit
    /// yields [`SetupOutcome::Rejected`].
    pub fn setup(
        &mut self,
        route: &Route,
        request: SetupRequest,
    ) -> Result<SetupOutcome, SignalError> {
        let id = ConnectionId::new(self.next_id);
        let outcome = self.setup_with_id(id, route, request)?;
        if outcome.is_connected() {
            self.next_id += 1;
        }
        Ok(outcome)
    }

    /// [`Network::setup`] with an explicit connection id (used by the
    /// central server façade).
    ///
    /// # Errors
    ///
    /// As [`Network::setup`], plus [`SignalError::DuplicateConnection`].
    pub fn setup_with_id(
        &mut self,
        id: ConnectionId,
        route: &Route,
        request: SetupRequest,
    ) -> Result<SetupOutcome, SignalError> {
        if self.connections.contains_key(&id) {
            return Err(SignalError::DuplicateConnection(id));
        }
        let points = route.queueing_points(&self.topology)?;

        // The QoS feasibility gate: the fixed advertised bounds are the
        // only guarantee the network gives, so the requested bound must
        // cover their sum.
        let mut per_hop = Vec::with_capacity(points.len());
        for &(node, _) in &points {
            let bound = self.switch(node)?.advertised_bound(request.priority())?;
            per_hop.push((node, bound));
        }
        let achievable: Time = per_hop.iter().map(|&(_, b)| b).sum();
        if request.delay_bound() < achievable {
            self.metrics.setup_rejected_qos();
            return Ok(SetupOutcome::Rejected(SetupRejection::QosUnsatisfiable {
                requested: request.delay_bound(),
                achievable,
            }));
        }

        // Walk the route, admitting hop by hop with accumulated CDV.
        let mut admitted_at: Vec<NodeId> = Vec::with_capacity(points.len());
        let mut upstream_bounds: Vec<Time> = Vec::with_capacity(points.len());
        for (hop, &(node, out_link)) in points.iter().enumerate() {
            let cdv = self.policy.accumulate(&upstream_bounds)?;
            let in_link = route
                .incoming_link(&self.topology, node)?
                .unwrap_or(LOCAL_INJECTION);
            let conn_request = ConnectionRequest::new(
                request.contract(),
                cdv,
                in_link,
                out_link,
                request.priority(),
            );
            let switch = self
                .switches
                .get_mut(&node)
                .ok_or(SignalError::NoSwitchAt(node))?;
            match switch.admit(id, conn_request)? {
                AdmissionDecision::Admitted(_) => {
                    self.metrics.hop_admitted(cdv);
                    admitted_at.push(node);
                    self.events.push(SignalEvent::SetupForwarded {
                        connection: id,
                        switch: node,
                        out_link,
                        cdv,
                    });
                    upstream_bounds.push(per_hop[hop].1);
                }
                AdmissionDecision::Rejected(reason) => {
                    self.metrics.hop_rejected(cdv);
                    self.metrics.setup_rejected_switch();
                    // REJECT travels upstream: roll back reservations.
                    for &up in admitted_at.iter().rev() {
                        self.switches
                            .get_mut(&up)
                            .expect("admitted switch exists")
                            .release(id)?;
                    }
                    self.events.push(SignalEvent::Rejected {
                        connection: id,
                        switch: node,
                        reason,
                    });
                    return Ok(SetupOutcome::Rejected(SetupRejection::Switch {
                        at: node,
                        reason,
                        hops_rolled_back: admitted_at.len(),
                    }));
                }
            }
        }

        let info = ConnectionInfo {
            id,
            request,
            route: route.clone(),
            guaranteed_delay: achievable,
            per_hop_bounds: per_hop,
        };
        self.metrics.setup_connected();
        self.events.push(SignalEvent::Connected {
            connection: id,
            guaranteed_delay: achievable,
        });
        self.connections.insert(id, info.clone());
        Ok(SetupOutcome::Connected(info))
    }

    /// Tears down an established connection, releasing every switch
    /// reservation on its route.
    ///
    /// # Errors
    ///
    /// Returns [`SignalError::UnknownConnection`] if the id is not
    /// established.
    pub fn teardown(&mut self, id: ConnectionId) -> Result<(), SignalError> {
        let info = self
            .connections
            .remove(&id)
            .ok_or(SignalError::UnknownConnection(id))?;
        for (node, _) in info.route.queueing_points(&self.topology)? {
            self.switches
                .get_mut(&node)
                .ok_or(SignalError::NoSwitchAt(node))?
                .release(id)?;
        }
        self.metrics.teardown();
        self.events.push(SignalEvent::Released { connection: id });
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtcac_bitstream::{CbrParams, Rate, VbrParams};
    use rtcac_net::builders;
    use rtcac_rational::ratio;

    fn cbr(num: i128, den: i128) -> TrafficContract {
        TrafficContract::cbr(CbrParams::new(Rate::new(ratio(num, den))).unwrap())
    }

    fn line_net(switches: usize, bound: i128) -> (Network, Route) {
        let (topology, src, sw, dst) = builders::line(switches).unwrap();
        let config = SwitchConfig::uniform(1, Time::from_integer(bound)).unwrap();
        let route = Route::from_nodes(
            &topology,
            std::iter::once(src)
                .chain(sw.iter().copied())
                .chain(std::iter::once(dst)),
        )
        .unwrap();
        (Network::new(topology, config, CdvPolicy::Hard), route)
    }

    #[test]
    fn setup_and_teardown_roundtrip() {
        let (mut net, route) = line_net(3, 32);
        let req = SetupRequest::new(cbr(1, 8), Priority::HIGHEST, Time::from_integer(200));
        let outcome = net.setup(&route, req).unwrap();
        let info = match outcome {
            SetupOutcome::Connected(info) => info,
            other => panic!("expected connection, got {other:?}"),
        };
        assert_eq!(info.guaranteed_delay(), Time::from_integer(96));
        assert_eq!(info.per_hop_bounds().len(), 3);
        assert_eq!(net.connections().count(), 1);
        // All three switches hold the reservation.
        for (node, _) in info.route().queueing_points(net.topology()).unwrap() {
            assert_eq!(net.switch(node).unwrap().connection_count(), 1);
        }
        net.teardown(info.id()).unwrap();
        assert_eq!(net.connections().count(), 0);
        for (node, _) in route.queueing_points(net.topology()).unwrap() {
            assert_eq!(net.switch(node).unwrap().connection_count(), 0);
        }
    }

    #[test]
    fn qos_gate_rejects_impossible_bounds() {
        let (mut net, route) = line_net(3, 32);
        let req = SetupRequest::new(cbr(1, 8), Priority::HIGHEST, Time::from_integer(50));
        match net.setup(&route, req).unwrap() {
            SetupOutcome::Rejected(SetupRejection::QosUnsatisfiable {
                requested,
                achievable,
            }) => {
                assert_eq!(requested, Time::from_integer(50));
                assert_eq!(achievable, Time::from_integer(96));
            }
            other => panic!("expected qos rejection, got {other:?}"),
        }
        assert_eq!(net.connections().count(), 0);
    }

    #[test]
    fn rejection_rolls_back_upstream_reservations() {
        let (mut net, route) = line_net(2, 1_000);
        // Saturate the line with big CBR connections until one is
        // rejected mid-route; afterwards no switch may hold a partial
        // reservation.
        let mut rejected = false;
        for _ in 0..5 {
            let req = SetupRequest::new(cbr(2, 5), Priority::HIGHEST, Time::from_integer(100_000));
            match net.setup(&route, req).unwrap() {
                SetupOutcome::Connected(_) => {}
                SetupOutcome::Rejected(SetupRejection::Switch { .. }) => {
                    rejected = true;
                    break;
                }
                other => panic!("unexpected outcome {other:?}"),
            }
        }
        assert!(rejected, "link must eventually saturate");
        // Connection counts must be equal on every switch (no orphans).
        let counts: Vec<usize> = route
            .queueing_points(net.topology())
            .unwrap()
            .iter()
            .map(|&(node, _)| net.switch(node).unwrap().connection_count())
            .collect();
        assert!(counts.windows(2).all(|w| w[0] == w[1]), "{counts:?}");
    }

    #[test]
    fn events_trace_protocol() {
        let (mut net, route) = line_net(2, 32);
        let req = SetupRequest::new(cbr(1, 8), Priority::HIGHEST, Time::from_integer(100));
        let outcome = net.setup(&route, req).unwrap();
        assert!(outcome.is_connected());
        let kinds: Vec<&'static str> = net
            .events()
            .iter()
            .map(|e| match e {
                SignalEvent::SetupForwarded { .. } => "setup",
                SignalEvent::Rejected { .. } => "reject",
                SignalEvent::Connected { .. } => "connected",
                SignalEvent::Released { .. } => "released",
            })
            .collect();
        assert_eq!(kinds, vec!["setup", "setup", "connected"]);
    }

    #[test]
    fn cdv_grows_along_route() {
        let (mut net, route) = line_net(3, 32);
        let req = SetupRequest::new(cbr(1, 8), Priority::HIGHEST, Time::from_integer(200));
        net.setup(&route, req).unwrap();
        let cdvs: Vec<Time> = net
            .events()
            .iter()
            .filter_map(|e| match e {
                SignalEvent::SetupForwarded { cdv, .. } => Some(*cdv),
                _ => None,
            })
            .collect();
        assert_eq!(
            cdvs,
            vec![Time::ZERO, Time::from_integer(32), Time::from_integer(64)]
        );
    }

    #[test]
    fn soft_policy_accumulates_less_cdv() {
        let (topology, src, sw, dst) = builders::line(4).unwrap();
        let config = SwitchConfig::uniform(1, Time::from_integer(32)).unwrap();
        let route = Route::from_nodes(
            &topology,
            std::iter::once(src)
                .chain(sw.iter().copied())
                .chain(std::iter::once(dst)),
        )
        .unwrap();
        let mut net = Network::new(topology, config, CdvPolicy::SoftSqrt);
        let req = SetupRequest::new(cbr(1, 8), Priority::HIGHEST, Time::from_integer(500));
        net.setup(&route, req).unwrap();
        let cdvs: Vec<Time> = net
            .events()
            .iter()
            .filter_map(|e| match e {
                SignalEvent::SetupForwarded { cdv, .. } => Some(*cdv),
                _ => None,
            })
            .collect();
        // Last hop: hard would be 96; soft is sqrt(3)*32 ~ 55.4.
        assert!(cdvs[3] < Time::from_integer(60));
        assert!(cdvs[3] > Time::from_integer(55));
    }

    #[test]
    fn duplicate_and_unknown_ids() {
        let (mut net, route) = line_net(2, 32);
        let req = SetupRequest::new(cbr(1, 8), Priority::HIGHEST, Time::from_integer(100));
        let id = ConnectionId::new(77);
        net.setup_with_id(id, &route, req).unwrap();
        assert!(matches!(
            net.setup_with_id(id, &route, req),
            Err(SignalError::DuplicateConnection(_))
        ));
        assert!(matches!(
            net.teardown(ConnectionId::new(99)),
            Err(SignalError::UnknownConnection(_))
        ));
    }

    #[test]
    fn achievable_delay_reports_route_total() {
        let (net, route) = line_net(3, 32);
        assert_eq!(
            net.achievable_delay(&route, Priority::HIGHEST).unwrap(),
            Time::from_integer(96)
        );
    }

    #[test]
    fn configure_switch_rules() {
        let (mut net, route) = line_net(2, 32);
        let node = route.queueing_points(net.topology()).unwrap()[0].0;
        let deeper = SwitchConfig::uniform(1, Time::from_integer(64)).unwrap();
        net.configure_switch(node, deeper.clone()).unwrap();
        assert_eq!(
            net.switch(node)
                .unwrap()
                .advertised_bound(Priority::HIGHEST)
                .unwrap(),
            Time::from_integer(64)
        );
        // Established connections forbid reconfiguration.
        let req = SetupRequest::new(cbr(1, 8), Priority::HIGHEST, Time::from_integer(200));
        net.setup(&route, req).unwrap();
        assert!(net.configure_switch(node, deeper).is_err());
        // Unknown node.
        assert!(matches!(
            net.configure_switch(
                NodeId::external(999),
                SwitchConfig::uniform(1, Time::ONE).unwrap()
            ),
            Err(SignalError::NoSwitchAt(_))
        ));
    }

    #[test]
    fn explicit_registry_counts_hops_and_outcomes() {
        use std::sync::Arc;
        let registry = Arc::new(rtcac_obs::Registry::new());
        let (mut net, route) = line_net(3, 32);
        net.set_registry(&registry);
        // One connected setup (3 hops), one QoS rejection, one teardown.
        let ok = SetupRequest::new(cbr(1, 8), Priority::HIGHEST, Time::from_integer(200));
        let outcome = net.setup(&route, ok).unwrap();
        let id = match outcome {
            SetupOutcome::Connected(info) => info.id(),
            other => panic!("expected connection, got {other:?}"),
        };
        let qos = SetupRequest::new(cbr(1, 8), Priority::HIGHEST, Time::from_integer(10));
        assert!(!net.setup(&route, qos).unwrap().is_connected());
        net.teardown(id).unwrap();

        let snap = registry.snapshot();
        assert_eq!(snap.counter_total("signaling_hop_checks_total"), 3);
        assert_eq!(snap.counter_total("signaling_setups_total"), 2);
        assert_eq!(snap.counter("signaling_teardowns_total"), Some(1));
        // Hop CDVs were 0, 32, 64 cell times: three observations, the
        // largest being 64.
        let cdv = snap.histogram("signaling_cdv_cells").unwrap();
        assert_eq!(cdv.count, 3);
        assert_eq!(cdv.max, 64);
    }

    #[test]
    fn vbr_setup_over_line() {
        let (mut net, route) = line_net(3, 64);
        let contract = TrafficContract::vbr(
            VbrParams::new(Rate::new(ratio(1, 2)), Rate::new(ratio(1, 10)), 12).unwrap(),
        );
        let req = SetupRequest::new(contract, Priority::HIGHEST, Time::from_integer(400));
        assert!(net.setup(&route, req).unwrap().is_connected());
    }
}
