//! The [`Network`]: CAC-managed switches over a topology, driving the
//! distributed setup procedure.

use std::collections::BTreeMap;

use rtcac_bitstream::{Time, TrafficContract};
use rtcac_cac::{
    release_order, AdmissionDecision, AdmissionReport, AdmissionVerdict, ConnectionId,
    ConnectionRequest, HopDriver, PlannedHop, Priority, ReservationPlan, ReserveOutcome, RoutePlan,
    Switch, SwitchConfig,
};
use rtcac_net::{LinkId, NodeId, Route, Topology};
use rtcac_obs::Tracer;

use crate::metrics::NetworkMetrics;
use crate::{CdvPolicy, SetupRejection, SignalError, SignalEvent};

// Re-exported from the shared admission core so alternative setup
// drivers (e.g. the concurrent `rtcac-engine`) produce bit-identical
// `ConnectionRequest`s and therefore identical admission decisions.
pub use rtcac_cac::LOCAL_INJECTION;

/// The connection parameters carried in a SETUP message: traffic
/// contract, priority, and the requested end-to-end queueing delay
/// bound `D` (paper §4.1: `(PCR, SCR, MBS, D)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SetupRequest {
    contract: TrafficContract,
    priority: Priority,
    delay_bound: Time,
}

impl SetupRequest {
    /// Creates a setup request.
    pub fn new(contract: TrafficContract, priority: Priority, delay_bound: Time) -> SetupRequest {
        SetupRequest {
            contract,
            priority,
            delay_bound,
        }
    }

    /// The traffic contract.
    pub fn contract(&self) -> TrafficContract {
        self.contract
    }

    /// The transmission priority.
    pub fn priority(&self) -> Priority {
        self.priority
    }

    /// The requested end-to-end queueing delay bound.
    pub fn delay_bound(&self) -> Time {
        self.delay_bound
    }
}

/// A successfully established connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConnectionInfo {
    id: ConnectionId,
    request: SetupRequest,
    route: Route,
    guaranteed_delay: Time,
    per_hop_bounds: Vec<(NodeId, Time)>,
}

impl ConnectionInfo {
    /// The connection's identifier.
    pub fn id(&self) -> ConnectionId {
        self.id
    }

    /// The original setup request.
    pub fn request(&self) -> &SetupRequest {
        &self.request
    }

    /// The route the connection follows.
    pub fn route(&self) -> &Route {
        &self.route
    }

    /// The guaranteed end-to-end queueing delay bound: the sum of the
    /// advertised per-hop bounds (fixed regardless of load, per the
    /// paper's design).
    pub fn guaranteed_delay(&self) -> Time {
        self.guaranteed_delay
    }

    /// The advertised bound at each switch crossed, in route order.
    pub fn per_hop_bounds(&self) -> &[(NodeId, Time)] {
        &self.per_hop_bounds
    }
}

/// The outcome of a setup attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SetupOutcome {
    /// CONNECTED: the connection is established end to end.
    Connected(ConnectionInfo),
    /// REJECT: some switch refused, or the QoS is unachievable; any
    /// upstream reservations have been rolled back.
    Rejected(SetupRejection),
}

impl SetupOutcome {
    /// Whether the setup succeeded.
    pub fn is_connected(&self) -> bool {
        matches!(self, SetupOutcome::Connected(_))
    }
}

/// A network of CAC-managed switches over a [`Topology`], implementing
/// the distributed setup procedure of §4.1. See the crate-level example.
#[derive(Debug, Clone)]
pub struct Network {
    topology: Topology,
    switches: BTreeMap<NodeId, Switch>,
    policy: CdvPolicy,
    connections: BTreeMap<ConnectionId, ConnectionInfo>,
    multicast: BTreeMap<ConnectionId, crate::MulticastInfo>,
    events: Vec<SignalEvent>,
    next_id: u64,
    metrics: NetworkMetrics,
    tracer: Tracer,
    last_report: Option<AdmissionReport>,
    cdv_inflation: BTreeMap<LinkId, Time>,
}

impl Network {
    /// Creates a network giving every switch node of the topology the
    /// same configuration.
    pub fn new(topology: Topology, config: SwitchConfig, policy: CdvPolicy) -> Network {
        let switches = topology
            .switches()
            .map(|n| (n.id(), Switch::new(config.clone())))
            .collect();
        Network {
            topology,
            switches,
            policy,
            connections: BTreeMap::new(),
            multicast: BTreeMap::new(),
            events: Vec::new(),
            next_id: 1,
            metrics: NetworkMetrics::from_global(),
            tracer: Tracer::noop(),
            last_report: None,
            cdv_inflation: BTreeMap::new(),
        }
    }

    /// Sets the CDV inflation of one link: `extra` cell times of jitter
    /// that a degraded (but still up) link adds to every connection
    /// priced across it, tightening subsequent admission decisions.
    /// `Time::ZERO` restores the link. Established connections are
    /// unaffected — inflation changes pricing, not reservations.
    ///
    /// # Errors
    ///
    /// Returns [`SignalError::Net`] for an unknown link, or
    /// [`SignalError::Cac`] for a negative inflation.
    pub fn set_link_cdv_inflation(&mut self, link: LinkId, extra: Time) -> Result<(), SignalError> {
        self.topology.link(link)?;
        if extra < Time::ZERO {
            return Err(SignalError::Cac(rtcac_cac::CacError::BadConfig(
                "CDV inflation must be non-negative",
            )));
        }
        if extra == Time::ZERO {
            self.cdv_inflation.remove(&link);
        } else {
            self.cdv_inflation.insert(link, extra);
        }
        Ok(())
    }

    /// The CDV inflation currently applied to a link (zero by default).
    pub fn link_cdv_inflation(&self, link: LinkId) -> Time {
        self.cdv_inflation.get(&link).copied().unwrap_or(Time::ZERO)
    }

    /// Rebinds this network's observability handles to an explicit
    /// [`rtcac_obs::Registry`] instead of the process-global one
    /// (useful for tests and embedders that keep registries isolated).
    pub fn set_registry(&mut self, registry: &std::sync::Arc<rtcac_obs::Registry>) {
        self.metrics.rebind(registry);
    }

    /// Installs a [`Tracer`]: subsequent setups emit causal spans
    /// (price, reserve, per-hop events) into its ring. The default is
    /// a noop tracer costing one branch per instrumentation site.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// The installed tracer (noop unless [`Network::set_tracer`] ran).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// The decision provenance of the most recent setup attempt that
    /// reached pricing: one row per hop with the bound-vs-deadline
    /// comparison, plus the end-to-end verdict. `None` before any
    /// setup, or when the last setup was refused before pricing (dead
    /// route, duplicate id).
    pub fn last_admission_report(&self) -> Option<&AdmissionReport> {
        self.last_report.as_ref()
    }

    /// Replaces the configuration of one switch (e.g. to give a core
    /// switch deeper queues). Existing connections are kept.
    ///
    /// # Errors
    ///
    /// Returns [`SignalError::NoSwitchAt`] if the node is not a managed
    /// switch.
    pub fn configure_switch(
        &mut self,
        node: NodeId,
        config: SwitchConfig,
    ) -> Result<(), SignalError> {
        match self.switches.get_mut(&node) {
            Some(s) if s.connection_count() == 0 => {
                *s = Switch::new(config);
                Ok(())
            }
            Some(_) => Err(SignalError::Cac(rtcac_cac::CacError::BadConfig(
                "cannot reconfigure a switch with established connections",
            ))),
            None => Err(SignalError::NoSwitchAt(node)),
        }
    }

    /// The underlying topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The CDV accumulation policy in force.
    pub fn policy(&self) -> CdvPolicy {
        self.policy
    }

    /// The managed switch at a node.
    ///
    /// # Errors
    ///
    /// Returns [`SignalError::NoSwitchAt`] for non-switch nodes.
    pub fn switch(&self, node: NodeId) -> Result<&Switch, SignalError> {
        self.switches
            .get(&node)
            .ok_or(SignalError::NoSwitchAt(node))
    }

    /// The recorded signaling trace.
    pub fn events(&self) -> &[SignalEvent] {
        &self.events
    }

    /// Established connections.
    pub fn connections(&self) -> impl Iterator<Item = &ConnectionInfo> + '_ {
        self.connections.values()
    }

    /// Looks up an established connection.
    pub fn connection(&self, id: ConnectionId) -> Option<&ConnectionInfo> {
        self.connections.get(&id)
    }

    /// Established multicast connections.
    pub fn multicast_connections(&self) -> impl Iterator<Item = &crate::MulticastInfo> + '_ {
        self.multicast.values()
    }

    /// Looks up an established multicast connection.
    pub fn multicast_connection(&self, id: ConnectionId) -> Option<&crate::MulticastInfo> {
        self.multicast.get(&id)
    }

    pub(crate) fn allocate_id(&mut self) -> ConnectionId {
        let id = ConnectionId::new(self.next_id);
        self.next_id += 1;
        id
    }

    pub(crate) fn switch_mut(&mut self, node: NodeId) -> Result<&mut Switch, SignalError> {
        self.switches
            .get_mut(&node)
            .ok_or(SignalError::NoSwitchAt(node))
    }

    pub(crate) fn push_event(&mut self, event: SignalEvent) {
        self.events.push(event);
    }

    pub(crate) fn insert_multicast(&mut self, info: crate::MulticastInfo) {
        self.multicast.insert(info.id(), info);
    }

    pub(crate) fn remove_multicast(&mut self, id: ConnectionId) -> Option<crate::MulticastInfo> {
        self.multicast.remove(&id)
    }

    /// The smallest end-to-end delay bound the route can guarantee for
    /// a priority: the sum of advertised per-hop bounds.
    ///
    /// # Errors
    ///
    /// Returns [`SignalError::NoSwitchAt`] or propagated CAC/topology
    /// errors for invalid routes or priorities.
    pub fn achievable_delay(&self, route: &Route, priority: Priority) -> Result<Time, SignalError> {
        let mut total = Time::ZERO;
        for (node, _) in route.queueing_points(&self.topology)? {
            let switch = self.switch(node)?;
            total += switch.advertised_bound(priority)?;
        }
        Ok(total)
    }

    /// Attempts to establish a connection along `route`, emulating the
    /// SETUP / REJECT / CONNECTED exchange. On rejection at hop `k`,
    /// hops `1..k` are rolled back.
    ///
    /// Returns the assigned [`ConnectionId`] via
    /// [`ConnectionInfo::id`] on success.
    ///
    /// # Errors
    ///
    /// Returns an error only for API misuse (invalid route, unmanaged
    /// node, unknown priority); a connection that simply does not fit
    /// yields [`SetupOutcome::Rejected`].
    pub fn setup(
        &mut self,
        route: &Route,
        request: SetupRequest,
    ) -> Result<SetupOutcome, SignalError> {
        let id = ConnectionId::new(self.next_id);
        let outcome = self.setup_with_id(id, route, request)?;
        if outcome.is_connected() {
            self.next_id += 1;
        }
        Ok(outcome)
    }

    /// [`Network::setup`] with an explicit connection id (used by the
    /// central server façade).
    ///
    /// # Errors
    ///
    /// As [`Network::setup`], plus [`SignalError::DuplicateConnection`].
    pub fn setup_with_id(
        &mut self,
        id: ConnectionId,
        route: &Route,
        request: SetupRequest,
    ) -> Result<SetupOutcome, SignalError> {
        if self.connections.contains_key(&id) {
            return Err(SignalError::DuplicateConnection(id));
        }
        self.last_report = None;
        let mut ctx = self.tracer.start("signaling.setup");
        if ctx.is_live() {
            ctx.attr("conn", id.to_string());
        }
        // A route over a dead element is refused outright — no switch
        // on it may reserve anything (ATM crankback then retries on an
        // alternate route, see [`Network::setup_crankback`]).
        if let Some(link) = route.first_dead_link(&self.topology)? {
            self.metrics.setup_rejected_route_down();
            ctx.event("reject.provenance", format!("route down at link {link}"));
            ctx.finish(true);
            return Ok(SetupOutcome::Rejected(SetupRejection::RouteDown { link }));
        }

        // Shape and price the route through the shared admission core:
        // per-hop CDV accumulation and the guaranteed terminal delay
        // are computed once, from the fixed advertised bounds.
        let price_span = ctx.begin("price");
        let plan = RoutePlan::from_route(&self.topology, route)?;
        let priced = self.price_plan(&plan, request.contract(), request.priority())?;
        ctx.end(price_span);
        let mut rows = priced.report_rows();

        // The QoS feasibility gate: the fixed advertised bounds are the
        // only guarantee the network gives, so the requested bound must
        // cover their sum.
        let achievable = priced.achievable();
        if request.delay_bound() < achievable {
            self.metrics.setup_rejected_qos();
            let report = AdmissionReport::new(
                rows,
                AdmissionVerdict::RejectedQos {
                    requested: request.delay_bound(),
                    achievable,
                },
            );
            ctx.event("reject.provenance", report.summary());
            ctx.finish(true);
            self.last_report = Some(report);
            return Ok(SetupOutcome::Rejected(SetupRejection::QosUnsatisfiable {
                requested: request.delay_bound(),
                achievable,
            }));
        }

        // The reserve walk: the core admits hop by hop and rolls back
        // on the first REJECT travelling upstream. The observer fills
        // the provenance rows (and trace events) from each decision.
        let reserve_span = ctx.begin("reserve");
        let trace_hops = ctx.is_live();
        let outcome = self.reserve_priced_observed(id, &priced, |index, hop, decision| {
            rows[index].record_decision(decision);
            if trace_hops {
                ctx.event(
                    "hop",
                    format!(
                        "node {} out {} cdv {}: {}",
                        hop.node, hop.out_link, hop.cdv, rows[index].verdict
                    ),
                );
            }
        })?;
        ctx.end(reserve_span);
        match outcome {
            ReserveOutcome::Reserved => {}
            ReserveOutcome::Refused {
                at,
                index,
                reason,
                legs_rolled_back,
                ..
            } => {
                self.metrics.setup_rejected_switch();
                self.events.push(SignalEvent::Rejected {
                    connection: id,
                    switch: at,
                    reason,
                });
                let report =
                    AdmissionReport::new(rows, AdmissionVerdict::RejectedHop { at, index });
                ctx.event("reject.provenance", report.summary());
                ctx.finish(true);
                self.last_report = Some(report);
                return Ok(SetupOutcome::Rejected(SetupRejection::Switch {
                    at,
                    reason,
                    hops_rolled_back: legs_rolled_back,
                }));
            }
        }
        self.last_report = Some(AdmissionReport::new(
            rows,
            AdmissionVerdict::Admitted {
                guaranteed_delay: achievable,
            },
        ));
        ctx.finish(false);

        let info = ConnectionInfo {
            id,
            request,
            route: route.clone(),
            guaranteed_delay: achievable,
            per_hop_bounds: priced
                .hops()
                .iter()
                .map(|h| (h.node, h.advertised))
                .collect(),
        };
        self.metrics.setup_connected();
        self.events.push(SignalEvent::Connected {
            connection: id,
            guaranteed_delay: achievable,
        });
        self.connections.insert(id, info.clone());
        Ok(SetupOutcome::Connected(info))
    }

    /// Prices a [`RoutePlan`] against the live switches' advertised
    /// bounds under the network's CDV policy.
    pub(crate) fn price_plan(
        &self,
        plan: &RoutePlan,
        contract: TrafficContract,
        priority: Priority,
    ) -> Result<ReservationPlan, SignalError> {
        ReservationPlan::price_inflated(
            plan,
            self.policy,
            contract,
            priority,
            |node| {
                self.switches
                    .get(&node)
                    .ok_or(SignalError::NoSwitchAt(node))?
                    .advertised_bound(priority)
                    .map_err(SignalError::from)
            },
            |link| self.cdv_inflation.get(&link).copied().unwrap_or(Time::ZERO),
        )
    }

    /// Runs the core reserve walk with the serial driver (live switch
    /// map, signaling trace, hop metrics).
    pub(crate) fn reserve_priced(
        &mut self,
        id: ConnectionId,
        priced: &ReservationPlan,
    ) -> Result<ReserveOutcome, SignalError> {
        self.reserve_priced_observed(id, priced, |_, _, _| {})
    }

    /// [`Network::reserve_priced`] with a per-hop observer (see
    /// [`ReservationPlan::reserve_observed`]) — provenance rows and
    /// trace events are recorded from outside the walk.
    pub(crate) fn reserve_priced_observed(
        &mut self,
        id: ConnectionId,
        priced: &ReservationPlan,
        observe: impl FnMut(usize, &PlannedHop, &AdmissionDecision),
    ) -> Result<ReserveOutcome, SignalError> {
        let mut driver = SerialDriver {
            id,
            switches: &mut self.switches,
            events: &mut self.events,
            metrics: &self.metrics,
        };
        priced.reserve_observed(&mut driver, observe)
    }

    pub(crate) fn metrics(&self) -> &NetworkMetrics {
        &self.metrics
    }

    /// Tears down an established connection, releasing every switch
    /// reservation on its route.
    ///
    /// # Errors
    ///
    /// Returns [`SignalError::UnknownConnection`] if the id is not
    /// established — including a second teardown of an id that was
    /// already released (both outcomes are counted under the
    /// `outcome="unknown"` teardown counter).
    pub fn teardown(&mut self, id: ConnectionId) -> Result<(), SignalError> {
        let Some(info) = self.connections.remove(&id) else {
            self.metrics.teardown_unknown();
            return Err(SignalError::UnknownConnection(id));
        };
        let points = info.route.queueing_points(&self.topology)?;
        for node in release_order(points.into_iter().map(|(node, _)| node)) {
            self.switches
                .get_mut(&node)
                .ok_or(SignalError::NoSwitchAt(node))?
                .release(id)?;
        }
        self.metrics.teardown();
        self.events.push(SignalEvent::Released { connection: id });
        Ok(())
    }

    // ------------------------------------------------------------------
    // Failure handling and recovery
    // ------------------------------------------------------------------

    /// Marks a link as failed and tears down every connection routed
    /// over it, releasing its bandwidth at every surviving hop so the
    /// Algorithm 4.1 tables never leak a reservation.
    ///
    /// Idempotent: failing an already-down link changes nothing and
    /// tears down nothing ([`FailureImpact::changed`] is `false`).
    ///
    /// # Errors
    ///
    /// Returns [`SignalError::Net`] for an unknown link.
    pub fn fail_link(&mut self, link: LinkId) -> Result<FailureImpact, SignalError> {
        if !self.topology.fail_link(link)? {
            return Ok(FailureImpact::unchanged());
        }
        self.metrics.element_failed(false);
        let torn_down = self.teardown_dead_routes()?;
        self.events.push(SignalEvent::LinkFailed {
            link,
            torn_down: torn_down.len(),
        });
        self.publish_orphan_audit();
        Ok(FailureImpact::changed(torn_down))
    }

    /// Restores a failed link. Established connections are unaffected
    /// (none can be routed over a down link); new setups may use it
    /// again immediately.
    ///
    /// Returns `true` if the link was actually down.
    ///
    /// # Errors
    ///
    /// Returns [`SignalError::Net`] for an unknown link.
    pub fn heal_link(&mut self, link: LinkId) -> Result<bool, SignalError> {
        let changed = self.topology.heal_link(link)?;
        if changed {
            self.metrics.element_healed(false);
            self.events.push(SignalEvent::LinkHealed { link });
            self.publish_orphan_audit();
        }
        Ok(changed)
    }

    /// Marks a node as failed (its attached links become unusable) and
    /// tears down every connection routed through it.
    ///
    /// Idempotent like [`Network::fail_link`].
    ///
    /// # Errors
    ///
    /// Returns [`SignalError::Net`] for an unknown node.
    pub fn fail_node(&mut self, node: NodeId) -> Result<FailureImpact, SignalError> {
        if !self.topology.fail_node(node)? {
            return Ok(FailureImpact::unchanged());
        }
        self.metrics.element_failed(true);
        let torn_down = self.teardown_dead_routes()?;
        self.events.push(SignalEvent::NodeFailed {
            node,
            torn_down: torn_down.len(),
        });
        self.publish_orphan_audit();
        Ok(FailureImpact::changed(torn_down))
    }

    /// Restores a failed node. Returns `true` if it was actually down.
    ///
    /// # Errors
    ///
    /// Returns [`SignalError::Net`] for an unknown node.
    pub fn heal_node(&mut self, node: NodeId) -> Result<bool, SignalError> {
        let changed = self.topology.heal_node(node)?;
        if changed {
            self.metrics.element_healed(true);
            self.events.push(SignalEvent::NodeHealed { node });
            self.publish_orphan_audit();
        }
        Ok(changed)
    }

    /// Tears down every established connection whose route (or
    /// multicast tree) crosses a currently-dead element, releasing its
    /// reservations at every hop. Returns the ids torn down.
    fn teardown_dead_routes(&mut self) -> Result<Vec<ConnectionId>, SignalError> {
        let mut dead = Vec::new();
        for info in self.connections.values() {
            if info.route.first_dead_link(&self.topology)?.is_some() {
                dead.push(info.id);
            }
        }
        for &id in &dead {
            let info = self.connections.remove(&id).expect("id just listed");
            // The switch objects survive element failure (the *graph*
            // element is down, not the CAC bookkeeping), so release at
            // every hop: tables stay exact for when the element heals.
            let points = info.route.queueing_points(&self.topology)?;
            for node in release_order(points.into_iter().map(|(node, _)| node)) {
                self.switches
                    .get_mut(&node)
                    .ok_or(SignalError::NoSwitchAt(node))?
                    .release(id)?;
            }
            self.metrics.teardown_failover();
            self.events.push(SignalEvent::Released { connection: id });
        }
        let mut dead_mc = Vec::new();
        for info in self.multicast.values() {
            for &link in info.tree().links() {
                if !self.topology.link_usable(link)? {
                    dead_mc.push(info.id());
                    break;
                }
            }
        }
        for &id in &dead_mc {
            let info = self.multicast.remove(&id).expect("id just listed");
            let points = info.tree().queueing_points(&self.topology)?;
            for node in release_order(points.into_iter().map(|(node, _, _)| node)) {
                self.switches
                    .get_mut(&node)
                    .ok_or(SignalError::NoSwitchAt(node))?
                    .release(id)?;
            }
            self.metrics.teardown_failover();
            self.events.push(SignalEvent::Released { connection: id });
        }
        dead.extend(dead_mc);
        Ok(dead)
    }

    /// Audits the switches for reservations not backed by any
    /// established connection. The invariant maintained by setup
    /// rollback and failure teardown is that this is always empty;
    /// it is exposed (and published as the
    /// `signaling_orphaned_reservations` gauge) so tests and operators
    /// can verify rather than trust.
    pub fn orphaned_reservations(&self) -> Vec<(NodeId, ConnectionId)> {
        let mut orphans = Vec::new();
        for (&node, switch) in &self.switches {
            for (id, _) in switch.connections() {
                if !self.connections.contains_key(&id) && !self.multicast.contains_key(&id) {
                    orphans.push((node, id));
                }
            }
        }
        orphans.dedup();
        orphans
    }

    fn publish_orphan_audit(&self) {
        self.metrics
            .set_orphaned(self.orphaned_reservations().len() as u64);
    }

    /// Re-verifies every established guarantee — unicast *and*
    /// multicast — against the current switch state: each crossed
    /// port's recomputed Algorithm 4.1 bound must fit the advertised
    /// bound, and each terminal's guaranteed delay must fit the
    /// contracted delay bound. Returns the violations found (empty when
    /// every guarantee holds).
    ///
    /// # Errors
    ///
    /// Returns [`SignalError::NoSwitchAt`] or propagated CAC errors for
    /// inconsistent bookkeeping.
    pub fn verify_guarantees(&self) -> Result<Vec<GuaranteeViolation>, SignalError> {
        let mut violations = Vec::new();
        let check_port = |violations: &mut Vec<GuaranteeViolation>,
                          id: ConnectionId,
                          node: NodeId,
                          out_link: LinkId,
                          priority: Priority|
         -> Result<(), SignalError> {
            let switch = self.switch(node)?;
            let advertised = switch.advertised_bound(priority)?;
            let computed = switch.computed_bound(out_link, priority)?;
            if computed > advertised {
                violations.push(GuaranteeViolation {
                    id,
                    at: Some(node),
                    computed,
                    limit: advertised,
                });
            }
            Ok(())
        };
        for info in self.connections.values() {
            for (node, out_link) in info.route.queueing_points(&self.topology)? {
                check_port(
                    &mut violations,
                    info.id,
                    node,
                    out_link,
                    info.request.priority(),
                )?;
            }
            if info.guaranteed_delay > info.request.delay_bound() {
                violations.push(GuaranteeViolation {
                    id: info.id,
                    at: None,
                    computed: info.guaranteed_delay,
                    limit: info.request.delay_bound(),
                });
            }
        }
        for info in self.multicast.values() {
            for (node, out_link, _) in info.tree().queueing_points(&self.topology)? {
                check_port(
                    &mut violations,
                    info.id(),
                    node,
                    out_link,
                    info.request().priority(),
                )?;
            }
            if info.guaranteed_delay() > info.request().delay_bound() {
                violations.push(GuaranteeViolation {
                    id: info.id(),
                    at: None,
                    computed: info.guaranteed_delay(),
                    limit: info.request().delay_bound(),
                });
            }
        }
        Ok(violations)
    }

    /// ATM-style crankback setup: route `from → to` on the shortest
    /// healthy route; when a hop rejects (or the route dies under the
    /// attempt), exclude the offending link and retry on the next
    /// alternate, up to `policy.max_retries` retries with deterministic
    /// exponential backoff *accounting* (no wall-clock sleeping — the
    /// accrued backoff is reported in cell times so callers and tests
    /// stay deterministic).
    ///
    /// # Errors
    ///
    /// Returns [`SignalError::Net`] when no healthy route exists at the
    /// first attempt, and propagates API-misuse errors from
    /// [`Network::setup`]. CAC rejections are reported via
    /// [`CrankbackOutcome`], not as errors.
    pub fn setup_crankback(
        &mut self,
        from: NodeId,
        to: NodeId,
        request: SetupRequest,
        policy: CrankbackPolicy,
    ) -> Result<CrankbackOutcome, SignalError> {
        let mut excluded: Vec<LinkId> = Vec::new();
        let mut attempts: Vec<CrankbackAttempt> = Vec::new();
        let mut backoff_cells: u64 = 0;
        for attempt in 0..=policy.max_retries {
            let route = match self
                .topology
                .shortest_route_avoiding(from, to, &excluded, &[])
            {
                Ok(route) => route,
                Err(e) if attempts.is_empty() => return Err(SignalError::Net(e)),
                Err(_) => break, // alternates exhausted; report last rejection
            };
            self.metrics.crankback_attempt();
            match self.setup(&route, request)? {
                SetupOutcome::Connected(info) => {
                    self.metrics.crankback_finished(true, backoff_cells);
                    return Ok(CrankbackOutcome {
                        outcome: SetupOutcome::Connected(info),
                        attempts,
                        backoff_cells,
                    });
                }
                SetupOutcome::Rejected(rejection) => {
                    let culprit = match &rejection {
                        SetupRejection::Switch { reason, .. } => rejected_link(reason),
                        SetupRejection::RouteDown { link } => Some(*link),
                        // A shorter route already misses the QoS gate;
                        // longer alternates only add advertised delay.
                        _ => None,
                    };
                    attempts.push(CrankbackAttempt {
                        route,
                        rejection: rejection.clone(),
                    });
                    let Some(link) = culprit else { break };
                    if attempt < policy.max_retries {
                        excluded.push(link);
                        let step = policy
                            .backoff_base_cells
                            .checked_shl(attempt as u32)
                            .unwrap_or(u64::MAX);
                        backoff_cells = backoff_cells.saturating_add(step);
                    }
                }
            }
        }
        self.metrics.crankback_finished(false, backoff_cells);
        let last = attempts
            .last()
            .map(|a| a.rejection.clone())
            .expect("loop ran at least once before exhausting");
        Ok(CrankbackOutcome {
            outcome: SetupOutcome::Rejected(last),
            attempts,
            backoff_cells,
        })
    }
}

/// The serial [`HopDriver`]: admits each priced leg against the live
/// switch map, recording the signaling trace and hop metrics as it
/// goes. The concurrent `rtcac-engine` drives the identical core walk
/// against its locked shards instead.
struct SerialDriver<'a> {
    id: ConnectionId,
    switches: &'a mut BTreeMap<NodeId, Switch>,
    events: &'a mut Vec<SignalEvent>,
    metrics: &'a NetworkMetrics,
}

impl HopDriver for SerialDriver<'_> {
    type Error = SignalError;

    fn admit(
        &mut self,
        _index: usize,
        hop: &PlannedHop,
        request: ConnectionRequest,
    ) -> Result<AdmissionDecision, SignalError> {
        let switch = self
            .switches
            .get_mut(&hop.node)
            .ok_or(SignalError::NoSwitchAt(hop.node))?;
        let decision = switch.admit(self.id, request)?;
        match decision {
            AdmissionDecision::Admitted(_) => {
                self.metrics.hop_admitted(hop.cdv);
                self.events.push(SignalEvent::SetupForwarded {
                    connection: self.id,
                    switch: hop.node,
                    out_link: hop.out_link,
                    cdv: hop.cdv,
                });
            }
            AdmissionDecision::Rejected(_) => self.metrics.hop_rejected(hop.cdv),
        }
        Ok(decision)
    }

    fn rollback(&mut self, node: NodeId) -> Result<(), SignalError> {
        self.switches
            .get_mut(&node)
            .ok_or(SignalError::NoSwitchAt(node))?
            .release(self.id)?;
        Ok(())
    }
}

/// One violated guarantee found by [`Network::verify_guarantees`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GuaranteeViolation {
    /// The connection whose guarantee no longer holds.
    pub id: ConnectionId,
    /// The switch where the recomputed bound exceeds the advertised
    /// one, or `None` when a terminal's guaranteed delay exceeds the
    /// contracted delay bound.
    pub at: Option<NodeId>,
    /// The recomputed (or guaranteed end-to-end) delay.
    pub computed: Time,
    /// The bound it must stay within.
    pub limit: Time,
}

/// The outgoing (or incoming) link a CAC rejection points at — the
/// element a crankback retry should route around.
fn rejected_link(reason: &rtcac_cac::RejectReason) -> Option<LinkId> {
    use rtcac_cac::RejectReason;
    match reason {
        RejectReason::BoundExceeded { out_link, .. } | RejectReason::Overload { out_link, .. } => {
            Some(*out_link)
        }
        RejectReason::IncomingOverload { in_link, .. } => Some(*in_link),
        _ => None,
    }
}

/// What a [`Network::fail_link`] / [`Network::fail_node`] call did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailureImpact {
    changed: bool,
    torn_down: Vec<ConnectionId>,
}

impl FailureImpact {
    fn unchanged() -> FailureImpact {
        FailureImpact {
            changed: false,
            torn_down: Vec::new(),
        }
    }

    fn changed(torn_down: Vec<ConnectionId>) -> FailureImpact {
        FailureImpact {
            changed: true,
            torn_down,
        }
    }

    /// Whether the element actually changed health (false when it was
    /// already in the requested state).
    pub fn is_changed(&self) -> bool {
        self.changed
    }

    /// The connections torn down because their route crossed the
    /// failed element.
    pub fn torn_down(&self) -> &[ConnectionId] {
        &self.torn_down
    }
}

/// Retry budget and deterministic backoff accounting for
/// [`Network::setup_crankback`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrankbackPolicy {
    /// Retries after the first attempt (so `max_retries + 1` route
    /// attempts in total).
    pub max_retries: usize,
    /// Backoff accrued before retry `k` is `backoff_base_cells << k`
    /// (cell times; purely accounting, nothing sleeps).
    pub backoff_base_cells: u64,
}

impl Default for CrankbackPolicy {
    fn default() -> CrankbackPolicy {
        CrankbackPolicy {
            max_retries: 3,
            backoff_base_cells: 64,
        }
    }
}

/// One failed route attempt inside a crankback setup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrankbackAttempt {
    /// The route that was tried.
    pub route: Route,
    /// Why it was refused.
    pub rejection: SetupRejection,
}

/// The result of [`Network::setup_crankback`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrankbackOutcome {
    /// The final outcome: `Connected` on the successful attempt, or
    /// the last rejection once alternates/retries were exhausted.
    pub outcome: SetupOutcome,
    /// The failed attempts that preceded it, in order.
    pub attempts: Vec<CrankbackAttempt>,
    /// Total deterministic backoff accounted across retries, in cell
    /// times.
    pub backoff_cells: u64,
}

impl CrankbackOutcome {
    /// Whether the setup eventually connected.
    pub fn is_connected(&self) -> bool {
        self.outcome.is_connected()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtcac_bitstream::{CbrParams, Rate, VbrParams};
    use rtcac_net::builders;
    use rtcac_rational::ratio;

    fn cbr(num: i128, den: i128) -> TrafficContract {
        TrafficContract::cbr(CbrParams::new(Rate::new(ratio(num, den))).unwrap())
    }

    fn line_net(switches: usize, bound: i128) -> (Network, Route) {
        let (topology, src, sw, dst) = builders::line(switches).unwrap();
        let config = SwitchConfig::uniform(1, Time::from_integer(bound)).unwrap();
        let route = Route::from_nodes(
            &topology,
            std::iter::once(src)
                .chain(sw.iter().copied())
                .chain(std::iter::once(dst)),
        )
        .unwrap();
        (Network::new(topology, config, CdvPolicy::Hard), route)
    }

    #[test]
    fn setup_and_teardown_roundtrip() {
        let (mut net, route) = line_net(3, 32);
        let req = SetupRequest::new(cbr(1, 8), Priority::HIGHEST, Time::from_integer(200));
        let outcome = net.setup(&route, req).unwrap();
        let info = match outcome {
            SetupOutcome::Connected(info) => info,
            other => panic!("expected connection, got {other:?}"),
        };
        assert_eq!(info.guaranteed_delay(), Time::from_integer(96));
        assert_eq!(info.per_hop_bounds().len(), 3);
        assert_eq!(net.connections().count(), 1);
        // All three switches hold the reservation.
        for (node, _) in info.route().queueing_points(net.topology()).unwrap() {
            assert_eq!(net.switch(node).unwrap().connection_count(), 1);
        }
        net.teardown(info.id()).unwrap();
        assert_eq!(net.connections().count(), 0);
        for (node, _) in route.queueing_points(net.topology()).unwrap() {
            assert_eq!(net.switch(node).unwrap().connection_count(), 0);
        }
    }

    #[test]
    fn qos_gate_rejects_impossible_bounds() {
        let (mut net, route) = line_net(3, 32);
        let req = SetupRequest::new(cbr(1, 8), Priority::HIGHEST, Time::from_integer(50));
        match net.setup(&route, req).unwrap() {
            SetupOutcome::Rejected(SetupRejection::QosUnsatisfiable {
                requested,
                achievable,
            }) => {
                assert_eq!(requested, Time::from_integer(50));
                assert_eq!(achievable, Time::from_integer(96));
            }
            other => panic!("expected qos rejection, got {other:?}"),
        }
        assert_eq!(net.connections().count(), 0);
    }

    #[test]
    fn rejection_rolls_back_upstream_reservations() {
        let (mut net, route) = line_net(2, 1_000);
        // Saturate the line with big CBR connections until one is
        // rejected mid-route; afterwards no switch may hold a partial
        // reservation.
        let mut rejected = false;
        for _ in 0..5 {
            let req = SetupRequest::new(cbr(2, 5), Priority::HIGHEST, Time::from_integer(100_000));
            match net.setup(&route, req).unwrap() {
                SetupOutcome::Connected(_) => {}
                SetupOutcome::Rejected(SetupRejection::Switch { .. }) => {
                    rejected = true;
                    break;
                }
                other => panic!("unexpected outcome {other:?}"),
            }
        }
        assert!(rejected, "link must eventually saturate");
        // Connection counts must be equal on every switch (no orphans).
        let counts: Vec<usize> = route
            .queueing_points(net.topology())
            .unwrap()
            .iter()
            .map(|&(node, _)| net.switch(node).unwrap().connection_count())
            .collect();
        assert!(counts.windows(2).all(|w| w[0] == w[1]), "{counts:?}");
    }

    #[test]
    fn events_trace_protocol() {
        let (mut net, route) = line_net(2, 32);
        let req = SetupRequest::new(cbr(1, 8), Priority::HIGHEST, Time::from_integer(100));
        let outcome = net.setup(&route, req).unwrap();
        assert!(outcome.is_connected());
        let kinds: Vec<&'static str> = net
            .events()
            .iter()
            .map(|e| match e {
                SignalEvent::SetupForwarded { .. } => "setup",
                SignalEvent::Rejected { .. } => "reject",
                SignalEvent::Connected { .. } => "connected",
                SignalEvent::Released { .. } => "released",
                _ => "other",
            })
            .collect();
        assert_eq!(kinds, vec!["setup", "setup", "connected"]);
    }

    #[test]
    fn cdv_grows_along_route() {
        let (mut net, route) = line_net(3, 32);
        let req = SetupRequest::new(cbr(1, 8), Priority::HIGHEST, Time::from_integer(200));
        net.setup(&route, req).unwrap();
        let cdvs: Vec<Time> = net
            .events()
            .iter()
            .filter_map(|e| match e {
                SignalEvent::SetupForwarded { cdv, .. } => Some(*cdv),
                _ => None,
            })
            .collect();
        assert_eq!(
            cdvs,
            vec![Time::ZERO, Time::from_integer(32), Time::from_integer(64)]
        );
    }

    #[test]
    fn soft_policy_accumulates_less_cdv() {
        let (topology, src, sw, dst) = builders::line(4).unwrap();
        let config = SwitchConfig::uniform(1, Time::from_integer(32)).unwrap();
        let route = Route::from_nodes(
            &topology,
            std::iter::once(src)
                .chain(sw.iter().copied())
                .chain(std::iter::once(dst)),
        )
        .unwrap();
        let mut net = Network::new(topology, config, CdvPolicy::SoftSqrt);
        let req = SetupRequest::new(cbr(1, 8), Priority::HIGHEST, Time::from_integer(500));
        net.setup(&route, req).unwrap();
        let cdvs: Vec<Time> = net
            .events()
            .iter()
            .filter_map(|e| match e {
                SignalEvent::SetupForwarded { cdv, .. } => Some(*cdv),
                _ => None,
            })
            .collect();
        // Last hop: hard would be 96; soft is sqrt(3)*32 ~ 55.4.
        assert!(cdvs[3] < Time::from_integer(60));
        assert!(cdvs[3] > Time::from_integer(55));
    }

    #[test]
    fn duplicate_and_unknown_ids() {
        let (mut net, route) = line_net(2, 32);
        let req = SetupRequest::new(cbr(1, 8), Priority::HIGHEST, Time::from_integer(100));
        let id = ConnectionId::new(77);
        net.setup_with_id(id, &route, req).unwrap();
        assert!(matches!(
            net.setup_with_id(id, &route, req),
            Err(SignalError::DuplicateConnection(_))
        ));
        assert!(matches!(
            net.teardown(ConnectionId::new(99)),
            Err(SignalError::UnknownConnection(_))
        ));
    }

    #[test]
    fn achievable_delay_reports_route_total() {
        let (net, route) = line_net(3, 32);
        assert_eq!(
            net.achievable_delay(&route, Priority::HIGHEST).unwrap(),
            Time::from_integer(96)
        );
    }

    #[test]
    fn configure_switch_rules() {
        let (mut net, route) = line_net(2, 32);
        let node = route.queueing_points(net.topology()).unwrap()[0].0;
        let deeper = SwitchConfig::uniform(1, Time::from_integer(64)).unwrap();
        net.configure_switch(node, deeper.clone()).unwrap();
        assert_eq!(
            net.switch(node)
                .unwrap()
                .advertised_bound(Priority::HIGHEST)
                .unwrap(),
            Time::from_integer(64)
        );
        // Established connections forbid reconfiguration.
        let req = SetupRequest::new(cbr(1, 8), Priority::HIGHEST, Time::from_integer(200));
        net.setup(&route, req).unwrap();
        assert!(net.configure_switch(node, deeper).is_err());
        // Unknown node.
        assert!(matches!(
            net.configure_switch(
                NodeId::external(999),
                SwitchConfig::uniform(1, Time::ONE).unwrap()
            ),
            Err(SignalError::NoSwitchAt(_))
        ));
    }

    #[test]
    fn explicit_registry_counts_hops_and_outcomes() {
        use std::sync::Arc;
        let registry = Arc::new(rtcac_obs::Registry::new());
        let (mut net, route) = line_net(3, 32);
        net.set_registry(&registry);
        // One connected setup (3 hops), one QoS rejection, one teardown.
        let ok = SetupRequest::new(cbr(1, 8), Priority::HIGHEST, Time::from_integer(200));
        let outcome = net.setup(&route, ok).unwrap();
        let id = match outcome {
            SetupOutcome::Connected(info) => info.id(),
            other => panic!("expected connection, got {other:?}"),
        };
        let qos = SetupRequest::new(cbr(1, 8), Priority::HIGHEST, Time::from_integer(10));
        assert!(!net.setup(&route, qos).unwrap().is_connected());
        net.teardown(id).unwrap();

        let snap = registry.snapshot();
        assert_eq!(snap.counter_total("signaling_hop_checks_total"), 3);
        assert_eq!(snap.counter_total("signaling_setups_total"), 2);
        assert_eq!(snap.counter_total("signaling_teardowns_total"), 1);
        // Hop CDVs were 0, 32, 64 cell times: three observations, the
        // largest being 64.
        let cdv = snap.histogram("signaling_cdv_cells").unwrap();
        assert_eq!(cdv.count, 3);
        assert_eq!(cdv.max, 64);
    }

    /// a → s1 → {s2 | s3} → s4 → d with two equal-cost middle paths.
    fn diamond_net(bound: i128) -> (Network, [NodeId; 6]) {
        let mut t = Topology::new();
        let a = t.add_end_system("a");
        let s1 = t.add_switch("s1");
        let s2 = t.add_switch("s2");
        let s3 = t.add_switch("s3");
        let s4 = t.add_switch("s4");
        let d = t.add_end_system("d");
        t.add_link(a, s1).unwrap();
        t.add_link(s1, s2).unwrap();
        t.add_link(s1, s3).unwrap();
        t.add_link(s2, s4).unwrap();
        t.add_link(s3, s4).unwrap();
        t.add_link(s4, d).unwrap();
        let config = SwitchConfig::uniform(1, Time::from_integer(bound)).unwrap();
        (
            Network::new(t, config, CdvPolicy::Hard),
            [a, s1, s2, s3, s4, d],
        )
    }

    #[test]
    fn link_failure_tears_down_and_leaves_no_orphans() {
        let (mut net, route) = line_net(3, 32);
        let req = SetupRequest::new(cbr(1, 8), Priority::HIGHEST, Time::from_integer(200));
        let id = match net.setup(&route, req).unwrap() {
            SetupOutcome::Connected(info) => info.id(),
            other => panic!("expected connection, got {other:?}"),
        };
        let mid_link = route.links()[1];
        let impact = net.fail_link(mid_link).unwrap();
        assert!(impact.is_changed());
        assert_eq!(impact.torn_down(), &[id]);
        assert_eq!(net.connections().count(), 0);
        for (node, _) in route.queueing_points(net.topology()).unwrap() {
            assert_eq!(net.switch(node).unwrap().connection_count(), 0);
        }
        assert!(net.orphaned_reservations().is_empty());
        // Failing it again is a no-op.
        assert!(!net.fail_link(mid_link).unwrap().is_changed());
        // Setup over the dead route is refused without reserving.
        match net.setup(&route, req).unwrap() {
            SetupOutcome::Rejected(SetupRejection::RouteDown { link }) => {
                assert_eq!(link, mid_link);
            }
            other => panic!("expected route-down rejection, got {other:?}"),
        }
        // After healing, setup works again.
        assert!(net.heal_link(mid_link).unwrap());
        assert!(!net.heal_link(mid_link).unwrap());
        assert!(net.setup(&route, req).unwrap().is_connected());
        assert!(net.orphaned_reservations().is_empty());
    }

    #[test]
    fn node_failure_tears_down_routed_connections() {
        let (mut net, nodes) = diamond_net(32);
        let [a, s1, s2, _, s4, d] = nodes;
        let route = Route::from_nodes(net.topology(), [a, s1, s2, s4, d]).unwrap();
        let req = SetupRequest::new(cbr(1, 8), Priority::HIGHEST, Time::from_integer(200));
        assert!(net.setup(&route, req).unwrap().is_connected());
        let impact = net.fail_node(s2).unwrap();
        assert!(impact.is_changed());
        assert_eq!(impact.torn_down().len(), 1);
        assert_eq!(net.connections().count(), 0);
        assert!(net.orphaned_reservations().is_empty());
        // The other middle path still works.
        assert!(net
            .setup_crankback(a, d, req, CrankbackPolicy::default())
            .unwrap()
            .is_connected());
        assert!(net.heal_node(s2).unwrap());
    }

    #[test]
    fn crankback_reroutes_around_failed_link() {
        let (mut net, nodes) = diamond_net(32);
        let [a, s1, s2, s3, _, d] = nodes;
        let via_s2 = net.topology().find_link(s1, s2).unwrap();
        net.fail_link(via_s2).unwrap();
        let req = SetupRequest::new(cbr(1, 8), Priority::HIGHEST, Time::from_integer(200));
        let result = net
            .setup_crankback(a, d, req, CrankbackPolicy::default())
            .unwrap();
        assert!(result.is_connected(), "{:?}", result.outcome);
        let info = match &result.outcome {
            SetupOutcome::Connected(info) => info,
            other => panic!("expected connection, got {other:?}"),
        };
        // The established route goes via s3, never via the dead link.
        let route_nodes = info.route().nodes(net.topology()).unwrap();
        assert!(route_nodes.contains(&s3));
        assert!(!info.route().links().contains(&via_s2));
        // The healthy search already avoids the dead link, so the first
        // attempt connects: no failed attempts, no backoff accrued.
        assert!(result.attempts.is_empty());
        assert_eq!(result.backoff_cells, 0);
    }

    /// The diamond plus a second terminal pair `b → s1 … s4 → e`, so a
    /// background connection can saturate the s2 middle path without
    /// touching `a`'s access link or `d`'s egress link.
    fn loaded_diamond() -> (Network, [NodeId; 6]) {
        let mut t = Topology::new();
        let a = t.add_end_system("a");
        let s1 = t.add_switch("s1");
        let s2 = t.add_switch("s2");
        let s3 = t.add_switch("s3");
        let s4 = t.add_switch("s4");
        let d = t.add_end_system("d");
        let b = t.add_end_system("b");
        let e = t.add_end_system("e");
        t.add_link(a, s1).unwrap();
        t.add_link(s1, s2).unwrap();
        t.add_link(s1, s3).unwrap();
        t.add_link(s2, s4).unwrap();
        t.add_link(s3, s4).unwrap();
        t.add_link(s4, d).unwrap();
        t.add_link(b, s1).unwrap();
        t.add_link(s4, e).unwrap();
        let config = SwitchConfig::uniform(1, Time::from_integer(1_000)).unwrap();
        let mut net = Network::new(t, config, CdvPolicy::Hard);
        // The hog fills s1→s2 (and s2→s4) at 4/5 of capacity.
        let hog_route = Route::from_nodes(net.topology(), [b, s1, s2, s4, e]).unwrap();
        let hog = SetupRequest::new(cbr(4, 5), Priority::HIGHEST, Time::from_integer(100_000));
        assert!(net.setup(&hog_route, hog).unwrap().is_connected());
        (net, [a, s1, s2, s3, s4, d])
    }

    #[test]
    fn crankback_retries_after_capacity_rejection() {
        let (mut net, nodes) = loaded_diamond();
        let [a, _, _, s3, _, d] = nodes;
        // 2/5 more does not fit through s1→s2 (4/5 + 2/5 > 1) but fits
        // via s3; crankback must find it.
        let req = SetupRequest::new(cbr(2, 5), Priority::HIGHEST, Time::from_integer(100_000));
        let result = net
            .setup_crankback(a, d, req, CrankbackPolicy::default())
            .unwrap();
        assert!(result.is_connected(), "{:?}", result.outcome);
        assert_eq!(result.attempts.len(), 1);
        assert!(result.backoff_cells > 0);
        let info = match &result.outcome {
            SetupOutcome::Connected(info) => info,
            other => panic!("expected connection, got {other:?}"),
        };
        assert!(info.route().nodes(net.topology()).unwrap().contains(&s3));
        assert!(net.orphaned_reservations().is_empty());
        // With no retry budget, the same load pattern is refused.
        let (mut net2, _) = loaded_diamond();
        let no_retry = CrankbackPolicy {
            max_retries: 0,
            backoff_base_cells: 64,
        };
        let result = net2.setup_crankback(a, d, req, no_retry).unwrap();
        assert!(!result.is_connected());
        assert_eq!(result.attempts.len(), 1);
        assert!(net2.orphaned_reservations().is_empty());
    }

    #[test]
    fn unknown_and_double_teardown_agree() {
        use std::sync::Arc;
        let registry = Arc::new(rtcac_obs::Registry::new());
        let (mut net, route) = line_net(2, 32);
        net.set_registry(&registry);
        let req = SetupRequest::new(cbr(1, 8), Priority::HIGHEST, Time::from_integer(100));
        let id = match net.setup(&route, req).unwrap() {
            SetupOutcome::Connected(info) => info.id(),
            other => panic!("expected connection, got {other:?}"),
        };
        // Teardown of a never-established id and a double teardown
        // must return the *same* typed variant, and both are counted.
        let unknown = net.teardown(ConnectionId::new(4242));
        assert!(
            matches!(unknown, Err(SignalError::UnknownConnection(u)) if u == ConnectionId::new(4242))
        );
        net.teardown(id).unwrap();
        let doubled = net.teardown(id);
        assert!(matches!(doubled, Err(SignalError::UnknownConnection(u)) if u == id));
        let snap = registry.snapshot();
        assert_eq!(snap.counter_total("signaling_teardowns_total"), 3);
        assert_eq!(
            snap.counter_with("signaling_teardowns_total", &[("outcome", "unknown")]),
            Some(2)
        );
        assert_eq!(
            snap.counter_with("signaling_teardowns_total", &[("outcome", "released")]),
            Some(1)
        );
    }

    #[test]
    fn failure_metrics_and_events_recorded() {
        use std::sync::Arc;
        let registry = Arc::new(rtcac_obs::Registry::new());
        let (mut net, route) = line_net(2, 32);
        net.set_registry(&registry);
        let req = SetupRequest::new(cbr(1, 8), Priority::HIGHEST, Time::from_integer(100));
        assert!(net.setup(&route, req).unwrap().is_connected());
        let link = route.links()[0];
        net.fail_link(link).unwrap();
        net.heal_link(link).unwrap();
        let snap = registry.snapshot();
        assert_eq!(
            snap.counter_with("signaling_element_failures_total", &[("element", "link")]),
            Some(1)
        );
        assert_eq!(
            snap.counter_with("signaling_element_heals_total", &[("element", "link")]),
            Some(1)
        );
        assert_eq!(
            snap.counter_with("signaling_teardowns_total", &[("outcome", "failover")]),
            Some(1)
        );
        assert_eq!(snap.gauge("signaling_orphaned_reservations"), Some(0));
        assert!(net
            .events()
            .iter()
            .any(|e| matches!(e, SignalEvent::LinkFailed { torn_down: 1, .. })));
        assert!(net
            .events()
            .iter()
            .any(|e| matches!(e, SignalEvent::LinkHealed { .. })));
    }

    #[test]
    fn vbr_setup_over_line() {
        let (mut net, route) = line_net(3, 64);
        let contract = TrafficContract::vbr(
            VbrParams::new(Rate::new(ratio(1, 2)), Rate::new(ratio(1, 10)), 12).unwrap(),
        );
        let req = SetupRequest::new(contract, Priority::HIGHEST, Time::from_integer(400));
        assert!(net.setup(&route, req).unwrap().is_connected());
    }
}
