//! Point-to-multipoint connection establishment.
//!
//! RTnet's cyclic transmission broadcasts each terminal's shared-memory
//! segment to every other terminal; the natural ATM realization is a
//! point-to-multipoint VC — one admission per tree branch port, cells
//! duplicated at branch switches. This module extends [`Network`] with
//! multicast setup/teardown, reusing the unicast CAC machinery: each
//! tree port is one leg of the same connection id, with CDV accumulated
//! along that port's root path.

use rtcac_bitstream::Time;
use rtcac_cac::{AdmissionDecision, ConnectionId, ConnectionRequest};
use rtcac_net::{LinkId, MulticastTree, NodeId};

use crate::network::LOCAL_INJECTION;
use crate::{Network, SetupRejection, SetupRequest, SignalError, SignalEvent};

/// A successfully established point-to-multipoint connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MulticastInfo {
    id: ConnectionId,
    request: SetupRequest,
    tree: MulticastTree,
    /// Guaranteed end-to-end queueing delay per leaf, sorted by node.
    per_leaf: Vec<(NodeId, Time)>,
}

impl MulticastInfo {
    /// The connection's identifier.
    pub fn id(&self) -> ConnectionId {
        self.id
    }

    /// The original setup request.
    pub fn request(&self) -> &SetupRequest {
        &self.request
    }

    /// The multicast tree.
    pub fn tree(&self) -> &MulticastTree {
        &self.tree
    }

    /// The guaranteed end-to-end queueing delay bound per leaf.
    pub fn per_leaf(&self) -> &[(NodeId, Time)] {
        &self.per_leaf
    }

    /// The worst guaranteed delay over all leaves.
    pub fn guaranteed_delay(&self) -> Time {
        self.per_leaf
            .iter()
            .map(|&(_, d)| d)
            .max()
            .unwrap_or(Time::ZERO)
    }
}

impl Network {
    /// Establishes a point-to-multipoint connection over `tree`: the
    /// SETUP is admitted at every tree branch port (one leg per port,
    /// same connection id), with CDV accumulated along each port's root
    /// path per the network's [`CdvPolicy`](crate::CdvPolicy). A
    /// rejection anywhere rolls back all reservations.
    ///
    /// The requested delay bound must cover the *worst* leaf's
    /// guaranteed delay (the sum of advertised bounds along its path).
    ///
    /// # Errors
    ///
    /// Returns an error only for API misuse (foreign tree, unmanaged
    /// switch, unknown priority); an infeasible connection yields
    /// [`MulticastOutcome::Rejected`].
    pub fn setup_multicast(
        &mut self,
        tree: &MulticastTree,
        request: SetupRequest,
    ) -> Result<MulticastOutcome, SignalError> {
        let id = self.allocate_id();
        let points = tree.queueing_points(self.topology())?;

        // Guaranteed per-leaf delays from advertised bounds.
        let mut per_leaf = Vec::new();
        let mut worst = Time::ZERO;
        for (leaf, path) in tree.leaf_paths(self.topology())? {
            let mut total = Time::ZERO;
            for &link in &path {
                let from = self.topology().link(link)?.from();
                if self.topology().node(from)?.is_switch() {
                    total += self.switch(from)?.advertised_bound(request.priority())?;
                }
            }
            worst = worst.max(total);
            per_leaf.push((leaf, total));
        }
        if request.delay_bound() < worst {
            return Ok(MulticastOutcome::Rejected(
                SetupRejection::QosUnsatisfiable {
                    requested: request.delay_bound(),
                    achievable: worst,
                },
            ));
        }

        // Admit leg by leg; roll back on the first rejection.
        let mut admitted: Vec<NodeId> = Vec::new();
        for &(node, out_link, _) in &points {
            let cdv = self.multicast_cdv(tree, out_link, request.priority())?;
            let in_link = tree.parent(out_link).unwrap_or(LOCAL_INJECTION);
            let leg = ConnectionRequest::new(
                request.contract(),
                cdv,
                in_link,
                out_link,
                request.priority(),
            );
            match self.switch_mut(node)?.admit(id, leg)? {
                AdmissionDecision::Admitted(_) => {
                    admitted.push(node);
                    self.push_event(SignalEvent::SetupForwarded {
                        connection: id,
                        switch: node,
                        out_link,
                        cdv,
                    });
                }
                AdmissionDecision::Rejected(reason) => {
                    let mut rolled_back = std::collections::BTreeSet::new();
                    for &up in admitted.iter().rev() {
                        if rolled_back.insert(up) {
                            self.switch_mut(up)?.release(id)?;
                        }
                    }
                    self.push_event(SignalEvent::Rejected {
                        connection: id,
                        switch: node,
                        reason,
                    });
                    return Ok(MulticastOutcome::Rejected(SetupRejection::Switch {
                        at: node,
                        reason,
                        hops_rolled_back: admitted.len(),
                    }));
                }
            }
        }

        let info = MulticastInfo {
            id,
            request,
            tree: tree.clone(),
            per_leaf,
        };
        self.push_event(SignalEvent::Connected {
            connection: id,
            guaranteed_delay: info.guaranteed_delay(),
        });
        self.insert_multicast(info.clone());
        Ok(MulticastOutcome::Connected(info))
    }

    /// Tears down an established multicast connection, releasing every
    /// leg at every switch of its tree.
    ///
    /// # Errors
    ///
    /// Returns [`SignalError::UnknownConnection`] for an unknown id.
    pub fn teardown_multicast(&mut self, id: ConnectionId) -> Result<(), SignalError> {
        let info = self
            .remove_multicast(id)
            .ok_or(SignalError::UnknownConnection(id))?;
        let mut released = std::collections::BTreeSet::new();
        for (node, _, _) in info.tree.queueing_points(self.topology())? {
            if released.insert(node) {
                self.switch_mut(node)?.release(id)?;
            }
        }
        self.push_event(SignalEvent::Released { connection: id });
        Ok(())
    }

    /// The CDV a multicast leg has accumulated upstream of its port:
    /// the policy applied to the advertised bounds of the switch ports
    /// on its root path (excluding itself).
    fn multicast_cdv(
        &self,
        tree: &MulticastTree,
        out_link: LinkId,
        priority: rtcac_cac::Priority,
    ) -> Result<Time, SignalError> {
        let path = tree
            .root_path(out_link)
            .ok_or(SignalError::Net(rtcac_net::NetError::UnknownLink(out_link)))?;
        let mut upstream = Vec::new();
        for &link in &path[..path.len() - 1] {
            let from = self.topology().link(link)?.from();
            if self.topology().node(from)?.is_switch() {
                upstream.push(self.switch(from)?.advertised_bound(priority)?);
            }
        }
        self.policy().accumulate(&upstream)
    }
}

/// The outcome of a multicast setup attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MulticastOutcome {
    /// Every leg admitted; the p2mp VC is live.
    Connected(MulticastInfo),
    /// Some leg refused (reservations rolled back) or the QoS is
    /// unachievable.
    Rejected(SetupRejection),
}

impl MulticastOutcome {
    /// Whether the setup succeeded.
    pub fn is_connected(&self) -> bool {
        matches!(self, MulticastOutcome::Connected(_))
    }
}
