//! Point-to-multipoint connection establishment.
//!
//! RTnet's cyclic transmission broadcasts each terminal's shared-memory
//! segment to every other terminal; the natural ATM realization is a
//! point-to-multipoint VC — one admission per tree branch port, cells
//! duplicated at branch switches. This module extends [`Network`] with
//! multicast setup/teardown, reusing the unicast CAC machinery: each
//! tree port is one leg of the same connection id, with CDV accumulated
//! along that port's root path.

use rtcac_bitstream::Time;
use rtcac_cac::{release_order, ConnectionId, ReserveOutcome, RoutePlan};
use rtcac_net::{MulticastTree, NodeId};

use crate::{Network, SetupRejection, SetupRequest, SignalError, SignalEvent};

/// A successfully established point-to-multipoint connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MulticastInfo {
    id: ConnectionId,
    request: SetupRequest,
    tree: MulticastTree,
    /// Guaranteed end-to-end queueing delay per leaf, sorted by node.
    per_leaf: Vec<(NodeId, Time)>,
}

impl MulticastInfo {
    /// The connection's identifier.
    pub fn id(&self) -> ConnectionId {
        self.id
    }

    /// The original setup request.
    pub fn request(&self) -> &SetupRequest {
        &self.request
    }

    /// The multicast tree.
    pub fn tree(&self) -> &MulticastTree {
        &self.tree
    }

    /// The guaranteed end-to-end queueing delay bound per leaf.
    pub fn per_leaf(&self) -> &[(NodeId, Time)] {
        &self.per_leaf
    }

    /// The worst guaranteed delay over all leaves.
    pub fn guaranteed_delay(&self) -> Time {
        self.per_leaf
            .iter()
            .map(|&(_, d)| d)
            .max()
            .unwrap_or(Time::ZERO)
    }
}

impl Network {
    /// Establishes a point-to-multipoint connection over `tree`: the
    /// SETUP is admitted at every tree branch port (one leg per port,
    /// same connection id), with CDV accumulated along each port's root
    /// path per the network's [`CdvPolicy`](crate::CdvPolicy). A
    /// rejection anywhere rolls back all reservations.
    ///
    /// The requested delay bound must cover the *worst* leaf's
    /// guaranteed delay (the sum of advertised bounds along its path).
    ///
    /// # Errors
    ///
    /// Returns an error only for API misuse (foreign tree, unmanaged
    /// switch, unknown priority); an infeasible connection yields
    /// [`MulticastOutcome::Rejected`].
    pub fn setup_multicast(
        &mut self,
        tree: &MulticastTree,
        request: SetupRequest,
    ) -> Result<MulticastOutcome, SignalError> {
        // A tree over a dead element is refused outright — same gate,
        // same scan order as [`Network::setup`] on a unicast route, so
        // the serial walk and the engine reject identically.
        for &link in tree.links() {
            if !self.topology().link_usable(link)? {
                self.metrics().setup_rejected_route_down();
                return Ok(MulticastOutcome::Rejected(SetupRejection::RouteDown {
                    link,
                }));
            }
        }
        let id = self.allocate_id();

        // Shape and price the tree through the same admission core as
        // unicast setup: one hop per tree port, CDV accumulated along
        // each port's root path, guaranteed delay per leaf terminal.
        let plan = RoutePlan::from_tree(self.topology(), tree)?;
        let priced = self.price_plan(&plan, request.contract(), request.priority())?;

        // The QoS gate covers the *worst* leaf's guaranteed delay.
        let worst = priced.achievable();
        if request.delay_bound() < worst {
            self.metrics().setup_rejected_qos();
            return Ok(MulticastOutcome::Rejected(
                SetupRejection::QosUnsatisfiable {
                    requested: request.delay_bound(),
                    achievable: worst,
                },
            ));
        }

        // Reserve leg by leg; the core rolls back on the first
        // rejection (one release per switch frees all its legs).
        match self.reserve_priced(id, &priced)? {
            ReserveOutcome::Reserved => {}
            ReserveOutcome::Refused {
                at,
                reason,
                legs_rolled_back,
                ..
            } => {
                self.metrics().setup_rejected_switch();
                self.push_event(SignalEvent::Rejected {
                    connection: id,
                    switch: at,
                    reason,
                });
                return Ok(MulticastOutcome::Rejected(SetupRejection::Switch {
                    at,
                    reason,
                    hops_rolled_back: legs_rolled_back,
                }));
            }
        }

        let info = MulticastInfo {
            id,
            request,
            tree: tree.clone(),
            per_leaf: priced.terminals().to_vec(),
        };
        self.metrics().setup_connected();
        self.push_event(SignalEvent::Connected {
            connection: id,
            guaranteed_delay: info.guaranteed_delay(),
        });
        self.insert_multicast(info.clone());
        Ok(MulticastOutcome::Connected(info))
    }

    /// Tears down an established multicast connection, releasing every
    /// leg at every switch of its tree.
    ///
    /// # Errors
    ///
    /// Returns [`SignalError::UnknownConnection`] for an unknown id.
    pub fn teardown_multicast(&mut self, id: ConnectionId) -> Result<(), SignalError> {
        let Some(info) = self.remove_multicast(id) else {
            self.metrics().teardown_unknown();
            return Err(SignalError::UnknownConnection(id));
        };
        let points = info.tree.queueing_points(self.topology())?;
        for node in release_order(points.into_iter().map(|(node, _, _)| node)) {
            self.switch_mut(node)?.release(id)?;
        }
        self.metrics().teardown();
        self.push_event(SignalEvent::Released { connection: id });
        Ok(())
    }
}

/// The outcome of a multicast setup attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MulticastOutcome {
    /// Every leg admitted; the p2mp VC is live.
    Connected(MulticastInfo),
    /// Some leg refused (reservations rolled back) or the QoS is
    /// unachievable.
    Rejected(SetupRejection),
}

impl MulticastOutcome {
    /// Whether the setup succeeded.
    pub fn is_connected(&self) -> bool {
        matches!(self, MulticastOutcome::Connected(_))
    }
}
