//! Error type for the signaling layer.

use core::fmt;

use rtcac_bitstream::Time;
use rtcac_cac::{CacError, ConnectionId};
use rtcac_net::NetError;

/// Error produced by the signaling layer. Connection *rejections* are
/// normal outcomes and are reported via
/// [`SetupOutcome::Rejected`](crate::SetupOutcome::Rejected), not here.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SignalError {
    /// No connection with this id is established in the network.
    UnknownConnection(ConnectionId),
    /// A connection with this id is already established.
    DuplicateConnection(ConnectionId),
    /// The route references a node with no managed switch.
    NoSwitchAt(rtcac_net::NodeId),
    /// A per-hop delay bound was negative.
    NegativeBound(Time),
    /// Arithmetic overflow while accumulating CDV.
    Numeric,
    /// Topology-level failure (invalid route or link).
    Net(NetError),
    /// Switch-level failure (misconfiguration or internal numeric
    /// failure).
    Cac(CacError),
}

impl fmt::Display for SignalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SignalError::UnknownConnection(id) => {
                write!(f, "connection {id} is not established")
            }
            SignalError::DuplicateConnection(id) => {
                write!(f, "connection {id} is already established")
            }
            SignalError::NoSwitchAt(node) => {
                write!(f, "no managed switch at node {node}")
            }
            SignalError::NegativeBound(b) => {
                write!(f, "negative per-hop delay bound {b}")
            }
            SignalError::Numeric => write!(f, "arithmetic overflow accumulating cdv"),
            SignalError::Net(e) => write!(f, "topology error: {e}"),
            SignalError::Cac(e) => write!(f, "admission control error: {e}"),
        }
    }
}

impl std::error::Error for SignalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SignalError::Net(e) => Some(e),
            SignalError::Cac(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NetError> for SignalError {
    fn from(e: NetError) -> Self {
        SignalError::Net(e)
    }
}

impl From<CacError> for SignalError {
    fn from(e: CacError) -> Self {
        // CDV accumulation errors surface from the shared cac core but
        // keep their historical signaling-level variants.
        match e {
            CacError::NegativeBound(b) => SignalError::NegativeBound(b),
            CacError::Numeric => SignalError::Numeric,
            other => SignalError::Cac(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtcac_net::NodeId;

    #[test]
    fn messages_and_sources() {
        use std::error::Error;
        let cases: Vec<SignalError> = vec![
            SignalError::UnknownConnection(ConnectionId::new(1)),
            SignalError::DuplicateConnection(ConnectionId::new(1)),
            SignalError::NoSwitchAt(NodeId::external(2)),
            SignalError::NegativeBound(Time::from_integer(-1)),
            SignalError::Numeric,
            SignalError::Net(NetError::EmptyRoute),
            SignalError::Cac(CacError::BadConfig("x")),
        ];
        for e in &cases {
            assert!(!e.to_string().is_empty());
        }
        assert!(cases[5].source().is_some());
        assert!(cases[6].source().is_some());
        assert!(cases[0].source().is_none());
    }

    #[test]
    fn conversions() {
        let e: SignalError = NetError::EmptyRoute.into();
        assert!(matches!(e, SignalError::Net(_)));
        let e: SignalError = CacError::BadConfig("y").into();
        assert!(matches!(e, SignalError::Cac(_)));
    }
}
