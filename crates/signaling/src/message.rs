//! Observable signaling events: the SETUP / REJECT / CONNECTED protocol
//! of §4.1 as an auditable trace.

use core::fmt;

use rtcac_bitstream::Time;
use rtcac_cac::{ConnectionId, RejectReason};
use rtcac_net::{LinkId, NodeId};

/// One step of the distributed connection setup procedure.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SignalEvent {
    /// The SETUP message arrived at a switch, which ran the CAC check
    /// and forwarded it downstream.
    SetupForwarded {
        /// The connection being established.
        connection: ConnectionId,
        /// The switch that passed the check.
        switch: NodeId,
        /// The outgoing link checked at this switch.
        out_link: LinkId,
        /// CDV the connection had accumulated upstream of this switch.
        cdv: Time,
    },
    /// A switch failed the CAC check and sent REJECT upstream; all
    /// upstream reservations were released.
    Rejected {
        /// The connection being established.
        connection: ConnectionId,
        /// The switch that rejected.
        switch: NodeId,
        /// Why it rejected.
        reason: RejectReason,
    },
    /// The SETUP reached the destination; CONNECTED travelled back to
    /// the source.
    Connected {
        /// The established connection.
        connection: ConnectionId,
        /// The end-to-end queueing delay bound guaranteed to it.
        guaranteed_delay: Time,
    },
    /// The connection was torn down and its reservations released.
    Released {
        /// The released connection.
        connection: ConnectionId,
    },
    /// A link went down; every connection routed over it was torn down
    /// with its bandwidth released at all surviving hops.
    LinkFailed {
        /// The failed link.
        link: LinkId,
        /// How many connections the failure tore down.
        torn_down: usize,
    },
    /// A previously failed link came back up. Cached bounds are not
    /// affected (health never enters Algorithm 4.1 state), but new
    /// setups may route over it again.
    LinkHealed {
        /// The restored link.
        link: LinkId,
    },
    /// A node went down (taking its attached links with it); every
    /// connection through it was torn down.
    NodeFailed {
        /// The failed node.
        node: NodeId,
        /// How many connections the failure tore down.
        torn_down: usize,
    },
    /// A previously failed node came back up.
    NodeHealed {
        /// The restored node.
        node: NodeId,
    },
}

impl fmt::Display for SignalEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SignalEvent::SetupForwarded {
                connection,
                switch,
                out_link,
                cdv,
            } => write!(
                f,
                "SETUP {connection} forwarded by {switch} (out {out_link}, cdv {cdv})"
            ),
            SignalEvent::Rejected {
                connection,
                switch,
                reason,
            } => write!(f, "REJECT {connection} at {switch}: {reason}"),
            SignalEvent::Connected {
                connection,
                guaranteed_delay,
            } => write!(
                f,
                "CONNECTED {connection} (guaranteed delay {guaranteed_delay} cell times)"
            ),
            SignalEvent::Released { connection } => write!(f, "RELEASED {connection}"),
            SignalEvent::LinkFailed { link, torn_down } => {
                write!(f, "LINK-FAILED {link} ({torn_down} connections torn down)")
            }
            SignalEvent::LinkHealed { link } => write!(f, "LINK-HEALED {link}"),
            SignalEvent::NodeFailed { node, torn_down } => {
                write!(f, "NODE-FAILED {node} ({torn_down} connections torn down)")
            }
            SignalEvent::NodeHealed { node } => write!(f, "NODE-HEALED {node}"),
        }
    }
}

/// Why a setup attempt failed.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SetupRejection {
    /// A switch on the route failed the CAC check.
    Switch {
        /// The rejecting switch.
        at: NodeId,
        /// The CAC-level reason.
        reason: RejectReason,
        /// How many switches had already accepted (and were rolled
        /// back).
        hops_rolled_back: usize,
    },
    /// The requested end-to-end delay bound is smaller than the sum of
    /// the advertised per-hop bounds — no admission check can help.
    QosUnsatisfiable {
        /// The delay bound the connection asked for.
        requested: Time,
        /// The smallest bound the route can guarantee.
        achievable: Time,
    },
    /// The route crosses a link that is down (or attached to a down
    /// node); the setup was refused without reserving anything.
    RouteDown {
        /// The first unusable link on the route.
        link: LinkId,
    },
    /// The admission point is draining: existing guarantees are kept
    /// but no new setups are accepted.
    Draining,
}

impl fmt::Display for SetupRejection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SetupRejection::Switch {
                at,
                reason,
                hops_rolled_back,
            } => write!(
                f,
                "rejected at {at} after {hops_rolled_back} upstream reservations: {reason}"
            ),
            SetupRejection::QosUnsatisfiable {
                requested,
                achievable,
            } => write!(
                f,
                "requested delay bound {requested} below the route's achievable {achievable}"
            ),
            SetupRejection::RouteDown { link } => {
                write!(f, "route crosses failed link {link}")
            }
            SetupRejection::Draining => write!(f, "admission point is draining"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtcac_cac::Priority;

    #[test]
    fn event_display() {
        let e = SignalEvent::SetupForwarded {
            connection: ConnectionId::new(1),
            switch: NodeId::external(2),
            out_link: LinkId::external(3),
            cdv: Time::from_integer(32),
        };
        assert!(e.to_string().contains("SETUP"));
        let e = SignalEvent::Connected {
            connection: ConnectionId::new(1),
            guaranteed_delay: Time::from_integer(64),
        };
        assert!(e.to_string().contains("CONNECTED"));
        let e = SignalEvent::Released {
            connection: ConnectionId::new(1),
        };
        assert!(e.to_string().contains("RELEASED"));
        let e = SignalEvent::Rejected {
            connection: ConnectionId::new(1),
            switch: NodeId::external(2),
            reason: RejectReason::Overload {
                out_link: LinkId::external(3),
                priority: Priority::HIGHEST,
            },
        };
        assert!(e.to_string().contains("REJECT"));
    }

    #[test]
    fn rejection_display() {
        let r = SetupRejection::QosUnsatisfiable {
            requested: Time::from_integer(10),
            achievable: Time::from_integer(64),
        };
        assert!(r.to_string().contains("64"));
        let r = SetupRejection::Switch {
            at: NodeId::external(1),
            reason: RejectReason::Overload {
                out_link: LinkId::external(2),
                priority: Priority::HIGHEST,
            },
            hops_rolled_back: 2,
        };
        assert!(r.to_string().contains("2 upstream"));
    }
}
