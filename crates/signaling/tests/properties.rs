//! Randomized property tests for the signaling layer: arbitrary
//! interleaved setup/teardown sequences keep the distributed
//! reservation state coherent.
//!
//! The registry is offline, so instead of proptest these run seeded
//! loops over a local SplitMix64 generator.

use rtcac_bitstream::{Rate, Time, TrafficContract, VbrParams};
use rtcac_cac::{ConnectionId, Priority, SwitchConfig};
use rtcac_net::{builders, Route};
use rtcac_rational::ratio;
use rtcac_signaling::{CdvPolicy, Network, SetupOutcome, SetupRequest};

const CASES: u64 = 48;

struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn range(&mut self, lo: i128, hi: i128) -> i128 {
        let span = (hi - lo + 1) as u128;
        lo + (u128::from(self.next()) % span) as i128
    }
}

#[derive(Debug, Clone)]
enum Op {
    Setup {
        pcr_den: i128,
        scr_extra: i128,
        mbs: u64,
        route_choice: u8,
    },
    Teardown(usize),
}

fn arb_op(rng: &mut Rng) -> Op {
    // 2:1 setup-to-teardown ratio, mirroring the original strategy.
    if rng.range(0, 2) < 2 {
        Op::Setup {
            pcr_den: rng.range(3, 20),
            scr_extra: rng.range(0, 40),
            mbs: rng.range(1, 6) as u64,
            route_choice: rng.range(0, 2) as u8,
        }
    } else {
        Op::Teardown(rng.range(0, 11) as usize)
    }
}

fn arb_ops(rng: &mut Rng, max_len: usize) -> Vec<Op> {
    let len = rng.range(1, max_len as i128) as usize;
    (0..len).map(|_| arb_op(rng)).collect()
}

/// A Y-shaped test network with three distinct routes.
struct Fixture {
    network: Network,
    routes: Vec<Route>,
}

fn fixture() -> Fixture {
    // Ring of 4 switches with one terminal each; three routes of
    // different lengths.
    let sr = builders::star_ring(4, 1).unwrap();
    let config = SwitchConfig::uniform(1, Time::from_integer(48)).unwrap();
    let routes = vec![
        sr.ring_route_from_terminal(0, 0, 1).unwrap(),
        sr.ring_route_from_terminal(1, 0, 2).unwrap(),
        sr.ring_route_from_terminal(2, 0, 3).unwrap(),
    ];
    Fixture {
        network: Network::new(sr.topology().clone(), config, CdvPolicy::Hard),
        routes,
    }
}

fn request_of(pcr_den: i128, scr_extra: i128, mbs: u64) -> SetupRequest {
    let contract = TrafficContract::vbr(
        VbrParams::new(
            Rate::new(ratio(1, pcr_den)),
            Rate::new(ratio(1, pcr_den + scr_extra)),
            mbs,
        )
        .unwrap(),
    );
    SetupRequest::new(contract, Priority::HIGHEST, Time::from_integer(10_000))
}

/// Reservation coherence: at any moment, each switch holds exactly the
/// connections whose routes cross it — no orphans, no leaks.
#[test]
fn reservations_match_established_routes() {
    let mut rng = Rng(301);
    for _ in 0..CASES {
        let ops = arb_ops(&mut rng, 29);
        let Fixture {
            mut network,
            routes,
        } = fixture();
        let mut live: Vec<(ConnectionId, usize)> = Vec::new();
        for op in &ops {
            match op {
                Op::Setup {
                    pcr_den,
                    scr_extra,
                    mbs,
                    route_choice,
                } => {
                    let route = &routes[*route_choice as usize % routes.len()];
                    let req = request_of(*pcr_den, *scr_extra, *mbs);
                    if let SetupOutcome::Connected(info) = network.setup(route, req).unwrap() {
                        live.push((info.id(), *route_choice as usize % routes.len()));
                    }
                }
                Op::Teardown(k) => {
                    if !live.is_empty() {
                        let (id, _) = live.remove(k % live.len());
                        network.teardown(id).unwrap();
                    }
                }
            }
            // Verify per-switch reservation counts from first principles.
            for node in network.topology().switches().map(|n| n.id()) {
                let expected = live
                    .iter()
                    .filter(|(_, route_idx)| {
                        routes[*route_idx]
                            .switch_hops(network.topology())
                            .unwrap()
                            .contains(&node)
                    })
                    .count();
                let actual = network.switch(node).unwrap().connection_count();
                assert_eq!(actual, expected, "at node {node}");
            }
        }
        assert_eq!(network.connections().count(), live.len());
    }
}

/// The computed bound at every port never exceeds the advertised bound,
/// across the whole operation sequence.
#[test]
fn advertised_bounds_hold_throughout() {
    let mut rng = Rng(302);
    for _ in 0..CASES {
        let ops = arb_ops(&mut rng, 24);
        let Fixture {
            mut network,
            routes,
        } = fixture();
        let mut live: Vec<ConnectionId> = Vec::new();
        for op in &ops {
            match op {
                Op::Setup {
                    pcr_den,
                    scr_extra,
                    mbs,
                    route_choice,
                } => {
                    let route = &routes[*route_choice as usize % routes.len()];
                    let req = request_of(*pcr_den, *scr_extra, *mbs);
                    if let SetupOutcome::Connected(info) = network.setup(route, req).unwrap() {
                        live.push(info.id());
                    }
                }
                Op::Teardown(k) => {
                    if !live.is_empty() {
                        let id = live.remove(k % live.len());
                        network.teardown(id).unwrap();
                    }
                }
            }
            for node in network.topology().switches().map(|n| n.id()) {
                let switch = network.switch(node).unwrap();
                for link in switch.active_out_links() {
                    let bound = switch.computed_bound(link, Priority::HIGHEST).unwrap();
                    assert!(
                        bound <= Time::from_integer(48),
                        "port {link} bound {bound} exceeds advertised 48"
                    );
                }
            }
        }
    }
}

/// Setting up and immediately tearing down is invisible: a third
/// connection's admission outcome is unchanged.
#[test]
fn transient_connections_leave_no_trace() {
    let mut rng = Rng(303);
    for _ in 0..CASES {
        let pcr_den = rng.range(3, 20);
        let probe_den = rng.range(3, 20);
        let Fixture {
            mut network,
            routes,
        } = fixture();
        let probe = request_of(probe_den, 5, 2);
        // Outcome without the transient.
        let mut reference = network.clone();
        let ref_outcome = reference.setup(&routes[2], probe).unwrap().is_connected();
        // With a transient connection set up and torn down first.
        let transient = request_of(pcr_den, 3, 4);
        if let SetupOutcome::Connected(info) = network.setup(&routes[1], transient).unwrap() {
            network.teardown(info.id()).unwrap();
        }
        let outcome = network.setup(&routes[2], probe).unwrap().is_connected();
        assert_eq!(outcome, ref_outcome);
    }
}
