//! Command-line admission-control toolkit for the `rtcac` workspace.
//!
//! The `rtcac` binary exposes the paper's machinery without writing
//! Rust:
//!
//! - `rtcac bound …` — worst-case delay-bound calculator for a set of
//!   identical connections at one port;
//! - `rtcac check <scenario>` — run the distributed setup procedure
//!   over a scenario file and report every outcome;
//! - `rtcac simulate <scenario> …` — replay the admitted scenario in
//!   the cell-level simulator and compare measured vs computed;
//! - `rtcac rtnet …` — RTnet ring analysis (port bounds, end-to-end
//!   bound, admissibility) for symmetric/asymmetric loads.
//!
//! Scenario files use a line-based format documented in [`scenario`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod commands;
pub mod error;
pub mod scenario;
pub mod storm;
pub mod top;

pub use error::CliError;
