//! The scenario file format: a line-based description of a network and
//! the connections to establish over it.
//!
//! ```text
//! # comments start with '#'; blank lines are ignored.
//! policy hard                      # or: policy soft
//!
//! switch s1 bounds=32,64           # one queue bound per priority level
//! endsystem h1
//! endsystem h2
//!
//! link up   h1 s1                  # link NAME FROM TO [capacity=a/b]
//! link down s1 h2
//!
//! # connect NAME route=LINK,LINK,… contract=cbr:PCR | vbr:PCR,SCR,MBS
//! #         [priority=N] [delay=CELLS]
//! connect c1 route=up,down contract=cbr:1/8 priority=0 delay=64
//! connect c2 route=up,down contract=vbr:1/4,1/20,8 delay=128
//!
//! # Or let breadth-first search pick the shortest route:
//! connect c3 from=h1 to=h2 contract=cbr:1/16
//!
//! # Point-to-multipoint: a tree of links (cells duplicate at branch
//! # switches).
//! mconnect b1 tree=up,down,down2 contract=cbr:1/32 delay=96
//!
//! # Or name the root and leaves and let breadth-first search grow the
//! # shortest tree:
//! connect-mcast b2 h1 h2,h3 contract=cbr:1/32 delay=96
//!
//! # Fault directives interleave with connects in file order ('rtcac
//! # check' replays them): fail/heal a named element, or re-issue a
//! # setup with ATM crankback so it routes around dead elements.
//! fail-link down
//! connect c4 from=h1 to=h2 crankback=2 contract=cbr:1/16
//! heal-link down
//! fail-node s1
//! heal-node s1
//!
//! # A seeded chaos session over this scenario's topology (engine
//! # churn + random fail/heal, audited for orphans and guarantees).
//! chaos seed=7 steps=100 rate=25
//! ```
//!
//! Rates are exact rationals (`1/8` or decimals like `0.125`),
//! normalized to the link bandwidth; delays are in cell times.

use std::collections::BTreeMap;

use rtcac_bitstream::{CbrParams, Rate, Time, TrafficContract, VbrParams};
use rtcac_cac::{Priority, SwitchConfig};
use rtcac_net::{LinkId, MulticastTree, NodeId, Route, Topology};
use rtcac_rational::Ratio;
use rtcac_signaling::{CdvPolicy, SetupRequest};

use crate::CliError;

/// How a connection's cells travel.
#[derive(Debug, Clone)]
pub enum RouteKind {
    /// A unicast path.
    Unicast(Route),
    /// A point-to-multipoint tree.
    Multicast(MulticastTree),
}

/// One connection to establish.
#[derive(Debug, Clone)]
pub struct ConnectionSpec {
    /// Scenario-local name.
    pub name: String,
    /// The validated route or tree.
    pub route: RouteKind,
    /// The setup request (contract, priority, delay bound).
    pub request: SetupRequest,
    /// Crankback retry budget (`crankback=N`): when set, the setup is
    /// re-routed around rejecting or dead elements up to N times
    /// instead of being issued on the fixed route.
    pub crankback: Option<usize>,
}

/// One step of a scenario replay, in file order. Plain connect-only
/// scenarios produce one `Connect` per connection; fault directives
/// interleave failures, repairs, and chaos sessions between them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScenarioAction {
    /// Establish `connections[i]`.
    Connect(usize),
    /// Fail a link (tears down connections routed over it).
    FailLink(LinkId),
    /// Restore a failed link.
    HealLink(LinkId),
    /// Fail a switch or end system.
    FailNode(NodeId),
    /// Restore a failed node.
    HealNode(NodeId),
    /// Tear down `connections[i]`, if it is established.
    Release(usize),
    /// Add CDV inflation on a link: subsequent setups across it are
    /// priced with the extra jitter (tightening admission).
    DegradeLink(LinkId, Time),
    /// Clear a link's CDV inflation.
    RestoreLink(LinkId),
    /// Run a seeded chaos session over the scenario's topology.
    Chaos {
        /// Seed for both the fault plan and the traffic churn.
        seed: u64,
        /// Number of chaos steps.
        steps: u64,
        /// Percent chance of a fault event per step.
        rate: u64,
    },
}

/// A parsed scenario: topology, per-switch configs, CDV policy and the
/// ordered connection list.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// The network graph.
    pub topology: Topology,
    /// Per-switch queue configuration.
    pub switch_configs: BTreeMap<NodeId, SwitchConfig>,
    /// CDV accumulation policy.
    pub policy: CdvPolicy,
    /// Connections in file order.
    pub connections: Vec<ConnectionSpec>,
    /// The replay script: connects and fault directives in file order.
    pub actions: Vec<ScenarioAction>,
    names: BTreeMap<String, NodeId>,
    link_names: BTreeMap<String, LinkId>,
}

impl Scenario {
    /// Parses a scenario from text.
    ///
    /// # Errors
    ///
    /// Returns [`CliError::Parse`] with the offending line number, or
    /// [`CliError::Unknown`] for dangling references.
    pub fn parse(text: &str) -> Result<Scenario, CliError> {
        let mut topology = Topology::new();
        let mut names: BTreeMap<String, NodeId> = BTreeMap::new();
        let mut link_names: BTreeMap<String, LinkId> = BTreeMap::new();
        let mut switch_configs = BTreeMap::new();
        let mut policy = CdvPolicy::Hard;
        // Connects and fault directives reference links by name, so
        // both are resolved in a second pass once every link exists —
        // queued together to preserve their file-order interleaving.
        let mut pending: Vec<(usize, Vec<String>)> = Vec::new();

        for (idx, raw) in text.lines().enumerate() {
            let line_no = idx + 1;
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let tokens: Vec<String> = line.split_whitespace().map(str::to_owned).collect();
            let err = |message: String| CliError::Parse {
                line: line_no,
                message,
            };
            match tokens[0].as_str() {
                "policy" => {
                    policy = match tokens.get(1).map(String::as_str) {
                        Some("hard") => CdvPolicy::Hard,
                        Some("soft") => CdvPolicy::SoftSqrt,
                        other => {
                            return Err(err(format!(
                                "policy must be 'hard' or 'soft', got {other:?}"
                            )))
                        }
                    };
                }
                "switch" => {
                    let name = tokens
                        .get(1)
                        .ok_or_else(|| err("switch needs a name".into()))?;
                    if names.contains_key(name) {
                        return Err(err(format!("duplicate node '{name}'")));
                    }
                    let mut bounds = vec![Time::from_integer(32)];
                    for opt in &tokens[2..] {
                        if let Some(list) = opt.strip_prefix("bounds=") {
                            bounds = list
                                .split(',')
                                .map(|b| {
                                    b.parse::<Ratio>()
                                        .map(Time::new)
                                        .map_err(|e| err(format!("bad bound '{b}': {e}")))
                                })
                                .collect::<Result<Vec<Time>, CliError>>()?;
                        } else {
                            return Err(err(format!("unknown switch option '{opt}'")));
                        }
                    }
                    let id = topology.add_switch(name.clone());
                    let config = SwitchConfig::with_bounds(bounds).map_err(CliError::domain)?;
                    switch_configs.insert(id, config);
                    names.insert(name.clone(), id);
                }
                "endsystem" => {
                    let name = tokens
                        .get(1)
                        .ok_or_else(|| err("endsystem needs a name".into()))?;
                    if names.contains_key(name) {
                        return Err(err(format!("duplicate node '{name}'")));
                    }
                    let id = topology.add_end_system(name.clone());
                    names.insert(name.clone(), id);
                }
                "link" => {
                    let [_, name, from, to] = &tokens[..] else {
                        let mut it = tokens.iter().skip(1);
                        let (Some(name), Some(from), Some(to)) = (it.next(), it.next(), it.next())
                        else {
                            return Err(err("link needs NAME FROM TO".into()));
                        };
                        let capacity = parse_capacity(&tokens[4..], line_no)?;
                        add_link(
                            &mut topology,
                            &mut link_names,
                            &names,
                            name,
                            from,
                            to,
                            capacity,
                            line_no,
                        )?;
                        continue;
                    };
                    add_link(
                        &mut topology,
                        &mut link_names,
                        &names,
                        name,
                        from,
                        to,
                        Rate::FULL,
                        line_no,
                    )?;
                }
                "connect" | "mconnect" | "connect-mcast" | "fail-link" | "heal-link"
                | "fail-node" | "heal-node" | "degrade-link" | "restore-link" | "release"
                | "chaos" => pending.push((line_no, tokens)),
                other => return Err(err(format!("unknown directive '{other}'"))),
            }
        }

        // Second pass: resolve connects and fault directives.
        let mut connections = Vec::new();
        let mut actions = Vec::with_capacity(pending.len());
        for (line_no, tokens) in pending {
            match tokens[0].as_str() {
                "connect" | "mconnect" => {
                    connections.push(parse_connect(
                        &topology,
                        &names,
                        &link_names,
                        &tokens,
                        line_no,
                    )?);
                    actions.push(ScenarioAction::Connect(connections.len() - 1));
                }
                "connect-mcast" => {
                    connections.push(parse_connect_mcast(&topology, &names, &tokens, line_no)?);
                    actions.push(ScenarioAction::Connect(connections.len() - 1));
                }
                "chaos" => actions.push(parse_chaos(&tokens, line_no)?),
                "release" => actions.push(parse_release(&connections, &tokens, line_no)?),
                "degrade-link" => {
                    actions.push(parse_degrade(&link_names, &tokens, line_no)?);
                }
                "restore-link" => {
                    let link =
                        resolve_link_directive("restore-link", &link_names, &tokens, line_no)?;
                    actions.push(ScenarioAction::RestoreLink(link));
                }
                fault => actions.push(parse_fault(fault, &names, &link_names, &tokens, line_no)?),
            }
        }

        Ok(Scenario {
            topology,
            switch_configs,
            policy,
            connections,
            actions,
            names,
            link_names,
        })
    }

    /// Whether the scenario contains fault directives (fail/heal/
    /// chaos) in addition to plain connects.
    pub fn has_fault_actions(&self) -> bool {
        self.actions
            .iter()
            .any(|a| !matches!(a, ScenarioAction::Connect(_)))
    }

    /// Looks up a node by scenario name.
    pub fn node(&self, name: &str) -> Option<NodeId> {
        self.names.get(name).copied()
    }

    /// Looks up a link by scenario name.
    pub fn link(&self, name: &str) -> Option<LinkId> {
        self.link_names.get(name).copied()
    }

    /// The scenario name of a link, for reporting.
    pub fn link_name(&self, id: LinkId) -> Option<&str> {
        self.link_names
            .iter()
            .find(|(_, &l)| l == id)
            .map(|(n, _)| n.as_str())
    }

    /// The scenario name of a node, for reporting.
    pub fn node_name(&self, id: NodeId) -> Option<&str> {
        self.names
            .iter()
            .find(|(_, &n)| n == id)
            .map(|(n, _)| n.as_str())
    }
}

/// Resolves a `fail-link`/`heal-link`/`fail-node`/`heal-node`
/// directive against the named elements.
fn parse_fault(
    directive: &str,
    names: &BTreeMap<String, NodeId>,
    link_names: &BTreeMap<String, LinkId>,
    tokens: &[String],
    line: usize,
) -> Result<ScenarioAction, CliError> {
    let name = tokens.get(1).ok_or_else(|| CliError::Parse {
        line,
        message: format!("{directive} needs an element name"),
    })?;
    if let Some(extra) = tokens.get(2) {
        return Err(CliError::Parse {
            line,
            message: format!("unexpected token '{extra}' after {directive} {name}"),
        });
    }
    match directive {
        "fail-link" | "heal-link" => {
            let link = *link_names.get(name).ok_or(CliError::Unknown {
                kind: "link",
                name: name.clone(),
                line,
            })?;
            Ok(if directive == "fail-link" {
                ScenarioAction::FailLink(link)
            } else {
                ScenarioAction::HealLink(link)
            })
        }
        _ => {
            let node = *names.get(name).ok_or(CliError::Unknown {
                kind: "node",
                name: name.clone(),
                line,
            })?;
            Ok(if directive == "fail-node" {
                ScenarioAction::FailNode(node)
            } else {
                ScenarioAction::HealNode(node)
            })
        }
    }
}

/// Resolves `release NAME` against the connections defined so far —
/// a release can only name a connect that appears earlier in the
/// file, matching replay order.
fn parse_release(
    connections: &[ConnectionSpec],
    tokens: &[String],
    line: usize,
) -> Result<ScenarioAction, CliError> {
    let name = tokens.get(1).ok_or_else(|| CliError::Parse {
        line,
        message: "release needs a connection name".into(),
    })?;
    if let Some(extra) = tokens.get(2) {
        return Err(CliError::Parse {
            line,
            message: format!("unexpected token '{extra}' after release {name}"),
        });
    }
    let index = connections
        .iter()
        .position(|spec| &spec.name == name)
        .ok_or(CliError::Unknown {
            kind: "connection",
            name: name.clone(),
            line,
        })?;
    Ok(ScenarioAction::Release(index))
}

/// Resolves the link name of a single-argument link directive,
/// rejecting trailing tokens.
fn resolve_link_directive(
    directive: &str,
    link_names: &BTreeMap<String, LinkId>,
    tokens: &[String],
    line: usize,
) -> Result<LinkId, CliError> {
    let name = tokens.get(1).ok_or_else(|| CliError::Parse {
        line,
        message: format!("{directive} needs a link name"),
    })?;
    let extra_at = if directive == "degrade-link" { 3 } else { 2 };
    if let Some(extra) = tokens.get(extra_at) {
        return Err(CliError::Parse {
            line,
            message: format!("unexpected token '{extra}' after {directive} {name}"),
        });
    }
    link_names.get(name).copied().ok_or(CliError::Unknown {
        kind: "link",
        name: name.clone(),
        line,
    })
}

/// Parses `degrade-link NAME cdv=CELLS` (CELLS must be non-negative).
fn parse_degrade(
    link_names: &BTreeMap<String, LinkId>,
    tokens: &[String],
    line: usize,
) -> Result<ScenarioAction, CliError> {
    let err = |message: String| CliError::Parse { line, message };
    let link = resolve_link_directive("degrade-link", link_names, tokens, line)?;
    let opt = tokens
        .get(2)
        .ok_or_else(|| err("degrade-link needs cdv=CELLS".into()))?;
    let value = opt
        .strip_prefix("cdv=")
        .ok_or_else(|| err(format!("unknown degrade-link option '{opt}'")))?;
    let cells = value
        .parse::<Ratio>()
        .map(Time::new)
        .map_err(|e| err(format!("bad cdv '{value}': {e}")))?;
    if cells < Time::ZERO {
        return Err(err(format!("cdv must be non-negative, got '{value}'")));
    }
    Ok(ScenarioAction::DegradeLink(link, cells))
}

/// Parses `chaos [seed=N] [steps=N] [rate=P]`.
fn parse_chaos(tokens: &[String], line: usize) -> Result<ScenarioAction, CliError> {
    let err = |message: String| CliError::Parse { line, message };
    let (mut seed, mut steps, mut rate) = (1u64, 100u64, 25u64);
    for opt in &tokens[1..] {
        let (key, value) = opt
            .split_once('=')
            .ok_or_else(|| err(format!("unknown chaos option '{opt}'")))?;
        let parsed: u64 = value
            .parse()
            .map_err(|_| err(format!("bad chaos value '{opt}'")))?;
        match key {
            "seed" => seed = parsed,
            "steps" => steps = parsed,
            "rate" => {
                if parsed > 100 {
                    return Err(err(format!("chaos rate must be 0..=100, got {parsed}")));
                }
                rate = parsed;
            }
            _ => return Err(err(format!("unknown chaos option '{opt}'"))),
        }
    }
    Ok(ScenarioAction::Chaos { seed, steps, rate })
}

#[allow(clippy::too_many_arguments)]
fn add_link(
    topology: &mut Topology,
    link_names: &mut BTreeMap<String, LinkId>,
    names: &BTreeMap<String, NodeId>,
    name: &str,
    from: &str,
    to: &str,
    capacity: Rate,
    line: usize,
) -> Result<(), CliError> {
    if link_names.contains_key(name) {
        return Err(CliError::Parse {
            line,
            message: format!("duplicate link '{name}'"),
        });
    }
    let from = *names.get(from).ok_or_else(|| CliError::Unknown {
        kind: "node",
        name: from.into(),
        line,
    })?;
    let to = *names.get(to).ok_or_else(|| CliError::Unknown {
        kind: "node",
        name: to.into(),
        line,
    })?;
    let id = topology
        .add_link_with_capacity(from, to, capacity)
        .map_err(CliError::domain)?;
    link_names.insert(name.to_owned(), id);
    Ok(())
}

fn parse_capacity(options: &[String], line: usize) -> Result<Rate, CliError> {
    match options.first() {
        None => Ok(Rate::FULL),
        Some(opt) => match opt.strip_prefix("capacity=") {
            Some(v) => v
                .parse::<Ratio>()
                .map(Rate::new)
                .map_err(|e| CliError::Parse {
                    line,
                    message: format!("bad capacity '{v}': {e}"),
                }),
            None => Err(CliError::Parse {
                line,
                message: format!("unknown link option '{opt}'"),
            }),
        },
    }
}

fn parse_connect(
    topology: &Topology,
    node_names: &BTreeMap<String, NodeId>,
    link_names: &BTreeMap<String, LinkId>,
    tokens: &[String],
    line: usize,
) -> Result<ConnectionSpec, CliError> {
    let err = |message: String| CliError::Parse { line, message };
    let multicast = tokens[0] == "mconnect";
    let name = tokens
        .get(1)
        .ok_or_else(|| err("connect needs a name".into()))?
        .clone();
    let mut route: Option<RouteKind> = None;
    let mut from: Option<NodeId> = None;
    let mut to: Option<NodeId> = None;
    let mut contract: Option<TrafficContract> = None;
    let mut priority = Priority::HIGHEST;
    let mut delay = Time::from_integer(1_000_000);
    let mut crankback: Option<usize> = None;
    let resolve_links = |list: &str| -> Result<Vec<LinkId>, CliError> {
        list.split(',')
            .map(|n| {
                link_names.get(n).copied().ok_or(CliError::Unknown {
                    kind: "link",
                    name: n.into(),
                    line,
                })
            })
            .collect()
    };
    let resolve_node = |n: &str| -> Result<NodeId, CliError> {
        node_names.get(n).copied().ok_or(CliError::Unknown {
            kind: "node",
            name: n.into(),
            line,
        })
    };
    for opt in &tokens[2..] {
        if let Some(list) = opt.strip_prefix("route=") {
            let links = resolve_links(list)?;
            route = Some(RouteKind::Unicast(
                Route::new(topology, links).map_err(CliError::domain)?,
            ));
        } else if let Some(list) = opt.strip_prefix("tree=") {
            let links = resolve_links(list)?;
            route = Some(RouteKind::Multicast(
                MulticastTree::new(topology, links).map_err(CliError::domain)?,
            ));
        } else if let Some(n) = opt.strip_prefix("from=") {
            from = Some(resolve_node(n)?);
        } else if let Some(n) = opt.strip_prefix("to=") {
            to = Some(resolve_node(n)?);
        } else if let Some(spec) = opt.strip_prefix("contract=") {
            contract = Some(parse_contract(spec, line)?);
        } else if let Some(p) = opt.strip_prefix("priority=") {
            let level: u8 = p.parse().map_err(|_| err(format!("bad priority '{p}'")))?;
            priority = Priority::new(level);
        } else if let Some(d) = opt.strip_prefix("delay=") {
            delay = d
                .parse::<Ratio>()
                .map(Time::new)
                .map_err(|e| err(format!("bad delay '{d}': {e}")))?;
        } else if let Some(n) = opt.strip_prefix("crankback=") {
            let retries: usize = n
                .parse()
                .map_err(|_| err(format!("bad crankback budget '{n}'")))?;
            crankback = Some(retries);
        } else {
            return Err(err(format!("unknown connect option '{opt}'")));
        }
    }
    let route = match (route, from, to) {
        (Some(r), None, None) => r,
        (None, Some(from), Some(to)) if !multicast => RouteKind::Unicast(
            topology
                .shortest_route(from, to)
                .map_err(CliError::domain)?,
        ),
        (None, _, _) if multicast => {
            return Err(err("mconnect needs tree=".into()));
        }
        _ => return Err(err("connect needs either route=/tree= or from=+to=".into())),
    };
    if multicast && matches!(route, RouteKind::Unicast(_)) {
        return Err(err("mconnect needs tree=, not route=".into()));
    }
    if multicast && crankback.is_some() {
        return Err(err("crankback= applies to unicast connects only".into()));
    }
    let contract = contract.ok_or_else(|| err("connect needs contract=".into()))?;
    Ok(ConnectionSpec {
        name,
        route,
        request: SetupRequest::new(contract, priority, delay),
        crankback,
    })
}

/// Parses `connect-mcast NAME ROOT LEAF[,LEAF…] contract=…
/// [priority=N] [delay=CELLS]`: the tree is grown with breadth-first
/// shortest paths from the root to every named leaf
/// (see [`MulticastTree::shortest_tree`]).
fn parse_connect_mcast(
    topology: &Topology,
    node_names: &BTreeMap<String, NodeId>,
    tokens: &[String],
    line: usize,
) -> Result<ConnectionSpec, CliError> {
    let err = |message: String| CliError::Parse { line, message };
    let resolve_node = |n: &str| -> Result<NodeId, CliError> {
        node_names.get(n).copied().ok_or(CliError::Unknown {
            kind: "node",
            name: n.into(),
            line,
        })
    };
    let name = tokens
        .get(1)
        .ok_or_else(|| err("connect-mcast needs a name".into()))?
        .clone();
    let root = tokens
        .get(2)
        .ok_or_else(|| err("connect-mcast needs ROOT LEAF[,LEAF…]".into()))?;
    let root = resolve_node(root)?;
    let leaf_list = tokens
        .get(3)
        .ok_or_else(|| err("connect-mcast needs LEAF[,LEAF…] after the root".into()))?;
    let leaves = leaf_list
        .split(',')
        .map(&resolve_node)
        .collect::<Result<Vec<NodeId>, CliError>>()?;
    let tree = MulticastTree::shortest_tree(topology, root, &leaves).map_err(CliError::domain)?;
    let mut contract: Option<TrafficContract> = None;
    let mut priority = Priority::HIGHEST;
    let mut delay = Time::from_integer(1_000_000);
    for opt in &tokens[4..] {
        if let Some(spec) = opt.strip_prefix("contract=") {
            contract = Some(parse_contract(spec, line)?);
        } else if let Some(p) = opt.strip_prefix("priority=") {
            let level: u8 = p.parse().map_err(|_| err(format!("bad priority '{p}'")))?;
            priority = Priority::new(level);
        } else if let Some(d) = opt.strip_prefix("delay=") {
            delay = d
                .parse::<Ratio>()
                .map(Time::new)
                .map_err(|e| err(format!("bad delay '{d}': {e}")))?;
        } else {
            return Err(err(format!("unknown connect-mcast option '{opt}'")));
        }
    }
    let contract = contract.ok_or_else(|| err("connect-mcast needs contract=".into()))?;
    Ok(ConnectionSpec {
        name,
        route: RouteKind::Multicast(tree),
        request: SetupRequest::new(contract, priority, delay),
        crankback: None,
    })
}

fn parse_contract(spec: &str, line: usize) -> Result<TrafficContract, CliError> {
    let err = |message: String| CliError::Parse { line, message };
    if let Some(rate) = spec.strip_prefix("cbr:") {
        let pcr: Ratio = rate
            .parse()
            .map_err(|e| err(format!("bad cbr rate '{rate}': {e}")))?;
        return Ok(TrafficContract::Cbr(
            CbrParams::new(Rate::new(pcr)).map_err(CliError::domain)?,
        ));
    }
    if let Some(params) = spec.strip_prefix("vbr:") {
        let parts: Vec<&str> = params.split(',').collect();
        let [pcr, scr, mbs] = parts[..] else {
            return Err(err(format!("vbr needs PCR,SCR,MBS, got '{params}'")));
        };
        let pcr: Ratio = pcr
            .parse()
            .map_err(|e| err(format!("bad vbr pcr '{pcr}': {e}")))?;
        let scr: Ratio = scr
            .parse()
            .map_err(|e| err(format!("bad vbr scr '{scr}': {e}")))?;
        let mbs: u64 = mbs
            .parse()
            .map_err(|_| err(format!("bad vbr mbs '{mbs}'")))?;
        return Ok(TrafficContract::Vbr(
            VbrParams::new(Rate::new(pcr), Rate::new(scr), mbs).map_err(CliError::domain)?,
        ));
    }
    Err(err(format!(
        "contract must be cbr:… or vbr:…, got '{spec}'"
    )))
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = r#"
# a two-switch line
policy soft
switch s1 bounds=32,64
switch s2 bounds=32,64
endsystem h1
endsystem h2
link up   h1 s1
link mid  s1 s2   # inter-switch
link down s2 h2
connect c1 route=up,mid,down contract=cbr:1/8 priority=0 delay=64
connect c2 route=up,mid,down contract=vbr:1/4,1/20,8 priority=1 delay=0.5
"#;

    #[test]
    fn parses_complete_scenario() {
        let s = Scenario::parse(GOOD).unwrap();
        assert_eq!(s.topology.switches().count(), 2);
        assert_eq!(s.topology.end_systems().count(), 2);
        assert_eq!(s.topology.links().len(), 3);
        assert_eq!(s.connections.len(), 2);
        assert_eq!(s.policy, CdvPolicy::SoftSqrt);
        let c2 = &s.connections[1];
        assert_eq!(c2.request.priority(), Priority::new(1));
        assert_eq!(c2.request.contract().mbs(), 8);
        assert!(s.node("s1").is_some());
        assert!(s.link("mid").is_some());
        assert_eq!(s.link_name(s.link("mid").unwrap()), Some("mid"));
    }

    #[test]
    fn default_policy_is_hard() {
        let s = Scenario::parse("switch s1\n").unwrap();
        assert_eq!(s.policy, CdvPolicy::Hard);
        // Default bound is one 32-cell level.
        let id = s.node("s1").unwrap();
        assert_eq!(
            s.switch_configs[&id].bound(Priority::HIGHEST).unwrap(),
            Time::from_integer(32)
        );
    }

    #[test]
    fn reports_line_numbers() {
        let bad = "switch s1\nnonsense here\n";
        match Scenario::parse(bad) {
            Err(CliError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn rejects_duplicates_and_unknowns() {
        assert!(matches!(
            Scenario::parse("switch a\nswitch a\n"),
            Err(CliError::Parse { .. })
        ));
        assert!(matches!(
            Scenario::parse("switch a\nlink l a b\n"),
            Err(CliError::Unknown { kind: "node", .. })
        ));
        assert!(matches!(
            Scenario::parse(
                "endsystem h\nswitch s\nlink up h s\nconnect c route=up,ghost contract=cbr:1/8\n"
            ),
            Err(CliError::Unknown { kind: "link", .. })
        ));
    }

    #[test]
    fn malformed_scenarios_report_line_and_token() {
        // Dangling link reference: the error names the token and the
        // line the reference appears on (not the line the link was
        // expected to be defined on).
        let err = Scenario::parse(
            "endsystem h\nswitch s\nlink up h s\n\nconnect c route=up,ghost contract=cbr:1/8\n",
        )
        .unwrap_err();
        match &err {
            CliError::Unknown { kind, name, line } => {
                assert_eq!(*kind, "link");
                assert_eq!(name, "ghost");
                assert_eq!(*line, 5);
            }
            other => panic!("expected unknown-link error, got {other:?}"),
        }
        assert_eq!(err.to_string(), "unknown link 'ghost' on line 5");

        // Dangling node reference in a link directive.
        let err = Scenario::parse("switch a\nlink l a b\n").unwrap_err();
        assert_eq!(err.to_string(), "unknown node 'b' on line 2");

        // A bad directive still carries its line and the offending
        // token in the message.
        let err = Scenario::parse("switch s1\n\nbogus stuff\n").unwrap_err();
        match &err {
            CliError::Parse { line, message } => {
                assert_eq!(*line, 3);
                assert!(message.contains("'bogus'"), "{message}");
            }
            other => panic!("expected parse error, got {other:?}"),
        }

        // A bad option value names the token too.
        let err =
            Scenario::parse("endsystem h\nswitch s\nlink up h s capacity=nonsense\n").unwrap_err();
        match &err {
            CliError::Parse { line, message } => {
                assert_eq!(*line, 3);
                assert!(message.contains("'nonsense'"), "{message}");
            }
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn rejects_bad_contracts() {
        let base = "endsystem h\nswitch s\nendsystem d\nlink up h s\nlink down s d\n";
        for bad in [
            "connect c route=up,down contract=cbr:5/1\n", // pcr > 1
            "connect c route=up,down contract=vbr:1/4,1/2,8\n", // scr > pcr
            "connect c route=up,down contract=vbr:1/4,1/8\n", // missing mbs
            "connect c route=up,down contract=xyz:1\n",
            "connect c route=up,down\n",    // missing contract
            "connect c contract=cbr:1/8\n", // missing route
        ] {
            let text = format!("{base}{bad}");
            assert!(Scenario::parse(&text).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn auto_route_and_multicast() {
        let text = "\nswitch s\nendsystem h1\nendsystem h2\nendsystem h3\n\
link up h1 s\nlink d2 s h2\nlink d3 s h3\n\
connect auto from=h1 to=h2 contract=cbr:1/16\n\
mconnect cast tree=up,d2,d3 contract=cbr:1/32 delay=64\n";
        let s = Scenario::parse(text).unwrap();
        assert_eq!(s.connections.len(), 2);
        match &s.connections[0].route {
            RouteKind::Unicast(r) => assert_eq!(r.hops(), 2),
            other => panic!("expected unicast, got {other:?}"),
        }
        match &s.connections[1].route {
            RouteKind::Multicast(t) => assert_eq!(t.leaves().len(), 2),
            other => panic!("expected multicast, got {other:?}"),
        }
        // mconnect without tree= is rejected.
        assert!(Scenario::parse(
            "switch s\nendsystem h\nlink up h s\nmconnect x from=h to=s contract=cbr:1/8\n"
        )
        .is_err());
    }

    #[test]
    fn connect_mcast_grows_shortest_tree() {
        let text = "\nswitch s\nendsystem h1\nendsystem h2\nendsystem h3\n\
link up h1 s\nlink d2 s h2\nlink d3 s h3\n\
connect-mcast cast h1 h2,h3 contract=cbr:1/32 priority=0 delay=96\n";
        let s = Scenario::parse(text).unwrap();
        assert_eq!(s.connections.len(), 1);
        let spec = &s.connections[0];
        assert_eq!(spec.name, "cast");
        assert_eq!(spec.crankback, None);
        assert_eq!(spec.request.delay_bound(), Time::from_integer(96));
        match &spec.route {
            RouteKind::Multicast(t) => {
                assert_eq!(t.root(), s.node("h1").unwrap());
                assert_eq!(t.leaves(), &[s.node("h2").unwrap(), s.node("h3").unwrap()]);
            }
            other => panic!("expected multicast, got {other:?}"),
        }
    }

    #[test]
    fn malformed_connect_mcast_reports_line_and_token() {
        let base = "switch s\nendsystem h1\nendsystem h2\nlink up h1 s\nlink d s h2\n";
        // Unknown leaf carries the reference line.
        let err = Scenario::parse(&format!(
            "{base}connect-mcast m h1 ghost contract=cbr:1/8\n"
        ))
        .unwrap_err();
        assert_eq!(err.to_string(), "unknown node 'ghost' on line 6");
        // Missing pieces and bad options are parse errors on line 6.
        for bad in [
            "connect-mcast\n",
            "connect-mcast m\n",
            "connect-mcast m h1\n",
            "connect-mcast m h1 h2\n",         // missing contract
            "connect-mcast m h1 h2 bogus=1\n", // unknown option
            "connect-mcast m h1 h2 contract=cbr:1/8 priority=x\n",
            "connect-mcast m h1 h1 contract=cbr:1/8\n", // root as leaf
        ] {
            let err = Scenario::parse(&format!("{base}{bad}")).unwrap_err();
            if let CliError::Parse { line, .. } = &err {
                assert_eq!(*line, 6, "{bad}");
            }
        }
    }

    #[test]
    fn decimal_rates_and_capacity() {
        let s = Scenario::parse("endsystem h\nswitch s\nlink up h s capacity=0.5\n").unwrap();
        let l = s.link("up").unwrap();
        assert_eq!(
            s.topology.link(l).unwrap().capacity(),
            Rate::new(rtcac_rational::ratio(1, 2))
        );
    }

    #[test]
    fn fault_directives_interleave_in_file_order() {
        let text = "\
switch s1\nswitch s2\nendsystem h1\nendsystem h2\n\
link up h1 s1\nlink mid s1 s2\nlink down s2 h2\n\
connect before route=up,mid,down contract=cbr:1/8\n\
fail-link mid\n\
connect retry from=h1 to=h2 crankback=2 contract=cbr:1/8\n\
heal-link mid\n\
fail-node s2\n\
heal-node s2\n\
chaos seed=7 steps=50 rate=30\n";
        let s = Scenario::parse(text).unwrap();
        assert!(s.has_fault_actions());
        assert_eq!(s.connections.len(), 2);
        assert_eq!(s.connections[0].crankback, None);
        assert_eq!(s.connections[1].crankback, Some(2));
        let mid = s.link("mid").unwrap();
        let s2 = s.node("s2").unwrap();
        assert_eq!(
            s.actions,
            vec![
                ScenarioAction::Connect(0),
                ScenarioAction::FailLink(mid),
                ScenarioAction::Connect(1),
                ScenarioAction::HealLink(mid),
                ScenarioAction::FailNode(s2),
                ScenarioAction::HealNode(s2),
                ScenarioAction::Chaos {
                    seed: 7,
                    steps: 50,
                    rate: 30
                },
            ]
        );
        assert_eq!(s.node_name(s2), Some("s2"));

        // A connect-only scenario has no fault actions.
        let plain = Scenario::parse(GOOD).unwrap();
        assert!(!plain.has_fault_actions());
        assert_eq!(
            plain.actions,
            vec![ScenarioAction::Connect(0), ScenarioAction::Connect(1)]
        );
    }

    #[test]
    fn malformed_fault_directives_are_rejected() {
        let base = "switch s\nendsystem h\nlink up h s\n";
        // Unknown element names carry the reference line.
        let err = Scenario::parse(&format!("{base}fail-link ghost\n")).unwrap_err();
        assert_eq!(err.to_string(), "unknown link 'ghost' on line 4");
        let err = Scenario::parse(&format!("{base}fail-node ghost\n")).unwrap_err();
        assert_eq!(err.to_string(), "unknown node 'ghost' on line 4");
        // Missing or trailing tokens name the directive / token.
        let err = Scenario::parse(&format!("{base}heal-link\n")).unwrap_err();
        assert_parse_error(&err, 4, "heal-link");
        let err = Scenario::parse(&format!("{base}fail-link up extra\n")).unwrap_err();
        assert_parse_error(&err, 4, "'extra'");
        let err = Scenario::parse(&format!("{base}heal-node\n")).unwrap_err();
        assert_parse_error(&err, 4, "heal-node");
        // Bad chaos options carry the offending token.
        let err = Scenario::parse(&format!("{base}chaos bogus\n")).unwrap_err();
        assert_parse_error(&err, 4, "'bogus'");
        let err = Scenario::parse(&format!("{base}chaos seed=x\n")).unwrap_err();
        assert_parse_error(&err, 4, "'seed=x'");
        let err = Scenario::parse(&format!("{base}chaos rate=150\n")).unwrap_err();
        assert_parse_error(&err, 4, "150");
        // Crankback is unicast-only and must be a number.
        let err = Scenario::parse(&format!(
            "{base}endsystem h2\nlink d s h2\nmconnect m tree=up,d crankback=1 contract=cbr:1/8\n"
        ))
        .unwrap_err();
        assert_parse_error(&err, 6, "crankback=");
        let err = Scenario::parse(&format!(
            "{base}endsystem h2\nlink d s h2\nconnect c route=up,d crankback=no contract=cbr:1/8\n"
        ))
        .unwrap_err();
        assert_parse_error(&err, 6, "'no'");
    }

    /// Asserts a [`CliError::Parse`] at `line` whose message names
    /// `token`.
    fn assert_parse_error(err: &CliError, want_line: usize, token: &str) {
        match err {
            CliError::Parse { line, message } => {
                assert_eq!(*line, want_line, "{err}");
                assert!(message.contains(token), "missing '{token}' in: {message}");
            }
            other => panic!("expected parse error naming '{token}', got {other:?}"),
        }
    }

    #[test]
    fn malformed_storm_directives_report_line_and_token() {
        // Every directive the storm fuzzer can emit reports its line
        // and the offending token on a parse failure.
        let base = "switch s\nendsystem h\nlink up h s\n\
connect c route=up contract=cbr:1/8\n";

        // release: missing name, trailing token, unknown connection.
        let err = Scenario::parse(&format!("{base}release\n")).unwrap_err();
        assert_parse_error(&err, 5, "release needs a connection name");
        let err = Scenario::parse(&format!("{base}release c extra\n")).unwrap_err();
        assert_parse_error(&err, 5, "'extra'");
        let err = Scenario::parse(&format!("{base}release ghost\n")).unwrap_err();
        assert_eq!(err.to_string(), "unknown connection 'ghost' on line 5");
        // A release may only name a connect that appears *earlier*.
        let fwd = "switch s\nendsystem h\nlink up h s\nrelease c\n\
connect c route=up contract=cbr:1/8\n";
        let err = Scenario::parse(fwd).unwrap_err();
        assert_eq!(err.to_string(), "unknown connection 'c' on line 4");

        // degrade-link: missing link, unknown link, missing/bad cdv=.
        let err = Scenario::parse(&format!("{base}degrade-link\n")).unwrap_err();
        assert_parse_error(&err, 5, "degrade-link needs a link name");
        let err = Scenario::parse(&format!("{base}degrade-link ghost cdv=4\n")).unwrap_err();
        assert_eq!(err.to_string(), "unknown link 'ghost' on line 5");
        let err = Scenario::parse(&format!("{base}degrade-link up\n")).unwrap_err();
        assert_parse_error(&err, 5, "cdv=CELLS");
        let err = Scenario::parse(&format!("{base}degrade-link up bogus=4\n")).unwrap_err();
        assert_parse_error(&err, 5, "'bogus=4'");
        let err = Scenario::parse(&format!("{base}degrade-link up cdv=junk\n")).unwrap_err();
        assert_parse_error(&err, 5, "'junk'");
        let err = Scenario::parse(&format!("{base}degrade-link up cdv=-3\n")).unwrap_err();
        assert_parse_error(&err, 5, "'-3'");
        let err = Scenario::parse(&format!("{base}degrade-link up cdv=4 extra\n")).unwrap_err();
        assert_parse_error(&err, 5, "'extra'");

        // restore-link: missing link, unknown link, trailing token.
        let err = Scenario::parse(&format!("{base}restore-link\n")).unwrap_err();
        assert_parse_error(&err, 5, "restore-link needs a link name");
        let err = Scenario::parse(&format!("{base}restore-link ghost\n")).unwrap_err();
        assert_eq!(err.to_string(), "unknown link 'ghost' on line 5");
        let err = Scenario::parse(&format!("{base}restore-link up extra\n")).unwrap_err();
        assert_parse_error(&err, 5, "'extra'");

        // Degrade/restore round-trip on the happy path.
        let s =
            Scenario::parse(&format!("{base}degrade-link up cdv=3/2\nrestore-link up\n")).unwrap();
        let up = s.link("up").unwrap();
        assert_eq!(
            s.actions,
            vec![
                ScenarioAction::Connect(0),
                ScenarioAction::DegradeLink(up, Time::new(rtcac_rational::ratio(3, 2))),
                ScenarioAction::RestoreLink(up),
            ]
        );
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let s = Scenario::parse("\n# hi\n  # indented comment\nswitch s1 # trailing\n").unwrap();
        assert_eq!(s.topology.switches().count(), 1);
    }
}
