//! `rtcac storm`: the differential scenario fuzzer.
//!
//! Each round draws a seeded random — but always *valid* — `.rtcac`
//! scenario from [`rtcac_storm::generate`] (generated topology,
//! optional time-varying impairment profile, LRD-shaped connect
//! volume), then replays it twice: once through the serial signaling
//! [`Network`] and once through the concurrent sharded
//! [`AdmissionEngine`], asserting decision parity step by step:
//!
//! - plain unicast connects must agree on the verdict, the guaranteed
//!   delay, and the full per-hop [`AdmissionReport`] ledger (the same
//!   explicit [`ConnectionId`] is submitted to both sides, so the
//!   ledgers must be *identical* — the rendered bytes included);
//! - multicast connects must agree on the verdict and worst-leaf delay;
//! - crankback connects are compared loosely: the serial driver's
//!   excluded-link search and the engine's reroute search may
//!   legitimately pick different alternates, so a divergence downgrades
//!   the rest of the round to invariant-only checking (counted, not
//!   fatal);
//! - fault/heal directives must agree on whether anything changed and
//!   how many connections were torn down; releases must agree on
//!   whether the connection was still live;
//! - embedded `chaos` directives must hold their invariants, and on a
//!   sampling of rounds are additionally run through a
//!   kill/snapshot-restore cycle ([`rtcac_snap`]) that must be
//!   decision-identical to the uninterrupted run;
//! - after every round both sides must pass the orphaned-reservation
//!   and guarantee audits, and at the end of the storm the engine's
//!   lock-hold watchdog counter must still be zero.
//!
//! On a violation the failing scenario is minimized (greedy
//! delta-debugging over the directive list) and written to `--out`,
//! and the command exits nonzero.

use std::fmt::Write as _;
use std::sync::Arc;

use rtcac_bitstream::{Time, TrafficContract};
use rtcac_cac::{AdmissionReport, ConnectionId};
use rtcac_engine::{AdmissionEngine, EngineOutcome, EngineStats};
use rtcac_fault::{
    endpoint_pairs, finish_report, run_chaos_segment, ChaosConfig, ChaosReport, ChaosState,
    FaultPlan,
};
use rtcac_signaling::{
    CrankbackPolicy, MulticastOutcome, Network, SetupOutcome, SetupRejection, SignalError,
};
use rtcac_sim::SimRng;
use rtcac_snap::{decode, encode, restore_engine, snapshot_engine};
use rtcac_storm::{generate, FuzzConfig, ProfileKind, StormScenario, TopologyKind};

use crate::commands::{build_engine, build_network, write_metrics_file};
use crate::scenario::{RouteKind, Scenario, ScenarioAction};
use crate::CliError;

/// Parameters of `rtcac storm`.
#[derive(Debug, Clone)]
pub struct StormArgs {
    /// Master seed: every round's scenario derives from it.
    pub seed: u64,
    /// Fuzz rounds to run.
    pub rounds: u64,
    /// Impairment profile: a profile name, `none`, or `mixed`
    /// (default) to cycle through all of them plus unimpaired rounds.
    pub profile: Option<String>,
    /// Topology family: a family name or `mixed` (default) to cycle
    /// through all of them.
    pub topology: Option<String>,
    /// Optional switch budget per generated topology. `None` keeps
    /// the default small fuzz-round draws; `Some(n)` sizes every
    /// round's fabric to roughly `n` switches.
    pub nodes: Option<usize>,
    /// Where to write the minimized failing scenario on a violation.
    pub out: Option<String>,
    /// Optional metrics output path (Prometheus text, plus `.json`).
    pub metrics: Option<String>,
    /// Optional bench JSON output path (`rtcac bench-report` input).
    pub bench_json: Option<String>,
    /// Optional flight-recorder directory: each round becomes one
    /// tick of a windowed series, and the first parity violation dumps
    /// a black box there (clean storms write nothing).
    pub flight: Option<String>,
}

impl Default for StormArgs {
    fn default() -> StormArgs {
        StormArgs {
            seed: 1,
            rounds: 1000,
            profile: None,
            topology: None,
            nodes: None,
            out: None,
            metrics: None,
            bench_json: None,
            flight: None,
        }
    }
}

/// A deliberate fault injected into the comparison layer — the test
/// double proving the harness actually catches parity bugs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Tamper {
    /// Honest comparison.
    None,
    /// Pretend the engine returned the opposite verdict for every
    /// plain unicast connect.
    FlipVerdicts,
}

/// Explicit connection ids start far above anything the internal
/// allocators hand out, so multicast and crankback setups (which
/// allocate their own ids on each side) can never collide with the
/// shared ids the parity comparison depends on.
const ID_BASE: u64 = 1 << 40;

/// Every Nth round, the embedded chaos session (when the scenario has
/// one) is re-run through a kill/snapshot-restore cycle.
const RESUME_CHECK_EVERY: u64 = 5;

/// What one directive replay produced on one side.
struct SideOutcome {
    /// `Some((id, guaranteed_delay))` when established.
    established: Option<(ConnectionId, Time)>,
    /// Rendered rejection, when rejected.
    rejection: Option<String>,
    /// The per-hop ledger, when the setup reached pricing.
    report: Option<AdmissionReport>,
}

/// Counters of one storm run, folded into the exit report.
#[derive(Default)]
struct StormTotals {
    directives: u64,
    connects: u64,
    releases: u64,
    faults: u64,
    degrades: u64,
    chaos: u64,
    resume_checks: u64,
    crankback_divergences: u64,
}

/// `rtcac storm`: seeded differential fuzzing of the serial signaling
/// walk against the concurrent engine (see the module docs).
///
/// # Errors
///
/// Returns [`CliError::Usage`] for unknown profile/topology names and
/// [`CliError::Domain`] on the first parity violation or audit failure
/// — after writing the minimized failing scenario to `--out`.
pub fn storm(args: &StormArgs) -> Result<String, CliError> {
    storm_with(args, Tamper::None)
}

/// [`storm`] with an injectable comparison-layer fault (tests only).
pub(crate) fn storm_with(args: &StormArgs, tamper: Tamper) -> Result<String, CliError> {
    let topologies: Vec<TopologyKind> = match args.topology.as_deref() {
        None | Some("mixed") => TopologyKind::ALL.to_vec(),
        Some(name) => vec![TopologyKind::parse(name).ok_or_else(|| {
            CliError::Usage(format!(
                "unknown topology '{name}' (star-of-rings|fat-tree|wan|mixed)"
            ))
        })?],
    };
    let profiles: Vec<Option<ProfileKind>> = match args.profile.as_deref() {
        None | Some("mixed") => {
            let mut all: Vec<Option<ProfileKind>> = vec![None];
            all.extend(ProfileKind::ALL.into_iter().map(Some));
            all
        }
        Some("none") => vec![None],
        Some(name) => vec![Some(ProfileKind::parse(name).ok_or_else(|| {
            CliError::Usage(format!(
                "unknown profile '{name}' (flap|brownout|degrade-heal|regional|none|mixed)"
            ))
        })?)],
    };

    let registry = Arc::new(rtcac_obs::Registry::new());
    let rounds_total = registry.counter("storm_rounds_total");
    let violations_total = registry.counter("storm_parity_violations_total");
    let round_ns = registry.histogram("storm_round_ns");

    // With --flight, every round becomes one tick of a windowed series
    // feeding an armed flight recorder: the first parity violation (or
    // a tick-level anomaly like an orphan edge) dumps a black box of
    // the recent rounds; clean storms write nothing at all.
    let flight = args.flight.as_ref().map(|dir| {
        rtcac_obs::FlightRecorder::new(
            Arc::clone(&registry),
            rtcac_obs::FlightConfig {
                dir: std::path::PathBuf::from(dir),
                ..rtcac_obs::FlightConfig::default()
            },
        )
    });
    let mut flight_series = rtcac_obs::TimeSeries::default();
    if flight.is_some() {
        flight_series.observe(&registry.snapshot(), 0);
    }

    let mut master = SimRng::seed_from_u64(args.seed);
    let mut totals = StormTotals::default();
    let started = std::time::Instant::now();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "storm: seed={} rounds={}{} topologies={} profiles={}",
        args.seed,
        args.rounds,
        args.nodes
            .map_or_else(String::new, |n| format!(" nodes={n}")),
        topologies
            .iter()
            .map(|t| t.name())
            .collect::<Vec<_>>()
            .join(","),
        profiles
            .iter()
            .map(|p| p.map_or("none", ProfileKind::name))
            .collect::<Vec<_>>()
            .join(","),
    );

    for round in 0..args.rounds {
        let round_seed = master.next_u64();
        let config = FuzzConfig {
            topology: topologies[(round as usize) % topologies.len()],
            profile: profiles[(round as usize) % profiles.len()],
            nodes: args.nodes,
            ..FuzzConfig::default()
        };
        let check_resume = round % RESUME_CHECK_EVERY == 0;
        let round_started = std::time::Instant::now();
        let scenario = generate(round_seed, &config).map_err(CliError::domain)?;
        let violations = run_differential(&scenario, &registry, tamper, check_resume, &mut totals)?;
        round_ns.record(round_started.elapsed().as_nanos() as u64);
        rounds_total.inc();
        if let Some(recorder) = &flight {
            let elapsed_ms = (round_started.elapsed().as_millis() as u64).max(1);
            let tick = flight_series.observe(&registry.snapshot(), elapsed_ms);
            recorder.observe_tick(tick);
        }
        if !violations.is_empty() {
            violations_total.add(violations.len() as u64);
            if let Some(recorder) = &flight {
                if let Some(path) = recorder.trigger("parity", violations[0].clone()) {
                    let _ = writeln!(out, "flight: black box written to {}", path.display());
                }
            }
            let minimized = minimize(&scenario, &registry, tamper);
            let _ = writeln!(
                out,
                "round {round} (seed {round_seed}, topology {}, profile {}): \
                 {} parity violation(s)",
                config.topology.name(),
                config.profile.map_or("none", ProfileKind::name),
                violations.len()
            );
            for v in &violations {
                let _ = writeln!(out, "  - {v}");
            }
            if let Some(path) = &args.out {
                write_metrics_file(path, &minimized.emit())?;
                let _ = writeln!(
                    out,
                    "minimized failing scenario ({} of {} directive(s)) written to {path}",
                    minimized.directives.len(),
                    scenario.directives.len()
                );
            }
            write_exports(
                args,
                &registry,
                &totals,
                started.elapsed().as_secs_f64(),
                &mut out,
            )?;
            return Err(CliError::Domain(format!(
                "storm round {round} (seed {round_seed}) violated parity:\n{out}"
            )));
        }
    }

    let elapsed = started.elapsed().as_secs_f64();
    let _ = writeln!(
        out,
        "rounds: {} clean ({} directives, {} connects, {} releases, {} faults, \
         {} degrades, {} chaos, {} resume checks, {} tolerated crankback divergences)",
        args.rounds,
        totals.directives,
        totals.connects,
        totals.releases,
        totals.faults,
        totals.degrades,
        totals.chaos,
        totals.resume_checks,
        totals.crankback_divergences,
    );

    // The lock-hold watchdog must have stayed quiet across every
    // engine the storm built: a long hold under this workload means a
    // shard lock was held across something unbounded.
    let long_holds = registry.counter("engine_lock_hold_long_total").get();
    if long_holds != 0 {
        return Err(CliError::Domain(format!(
            "lock-hold watchdog fired {long_holds} time(s) during the storm"
        )));
    }
    let _ = writeln!(out, "lock-hold watchdog: quiet");
    if let Some(recorder) = &flight {
        let _ = writeln!(
            out,
            "flight recorder: {} dump(s) written",
            recorder.dumps_written()
        );
    }
    write_exports(args, &registry, &totals, elapsed, &mut out)?;
    let _ = writeln!(out, "storm: OK");
    Ok(out)
}

/// Writes the `--metrics` and `--bench-json` artifacts, if requested.
fn write_exports(
    args: &StormArgs,
    registry: &Arc<rtcac_obs::Registry>,
    totals: &StormTotals,
    elapsed: f64,
    out: &mut String,
) -> Result<(), CliError> {
    if let Some(path) = &args.metrics {
        let snapshot = registry.snapshot();
        let json_path = format!("{path}.json");
        write_metrics_file(path, &snapshot.to_prometheus())?;
        write_metrics_file(&json_path, &snapshot.to_json())?;
        let _ = writeln!(
            out,
            "metrics: wrote {path} (prometheus) and {json_path} (json)"
        );
    }
    if let Some(path) = &args.bench_json {
        let snapshot = registry.snapshot();
        let (p50, p99) = snapshot
            .histogram("storm_round_ns")
            .map_or((0, 0), |h| (h.p50(), h.p99()));
        let ops = totals.directives as f64 / elapsed.max(1e-9);
        let contents = format!(
            "{{\"bench\":\"storm\",\"seed\":{},\"rounds\":{},\n\
             \"rounds\":[\n\
             {{\"workers\":1,\"ops_per_sec\":{ops:.1},\"p50_ns\":{p50},\"p99_ns\":{p99}}}\n\
             ]}}\n",
            args.seed, totals.directives
        );
        write_metrics_file(path, &contents)?;
        let _ = writeln!(out, "bench: wrote {path} (bench json)");
    }
    Ok(())
}

/// Replays one generated scenario through both drivers and returns
/// every parity violation found (empty = clean round).
fn run_differential(
    storm: &StormScenario,
    registry: &Arc<rtcac_obs::Registry>,
    tamper: Tamper,
    check_resume: bool,
    totals: &mut StormTotals,
) -> Result<Vec<String>, CliError> {
    let text = storm.emit();
    let scenario = match Scenario::parse(&text) {
        Ok(s) => s,
        // The fuzzer promises valid files; a parse error IS a finding.
        Err(e) => return Ok(vec![format!("generated scenario failed to parse: {e}")]),
    };

    let mut network = build_network(&scenario)?;
    let engine = build_engine(&scenario, Some(registry))?;
    engine.set_capture_reports(true);
    // The serial driver never reroutes a plain connect off a dead
    // route; pin the engine to the same behaviour so the verdicts are
    // comparable. Crankback connects raise the budget per call.
    engine.set_reroute_budget(0);

    let mut violations = Vec::new();
    // Once a tolerated crankback divergence splits the two sides'
    // admitted sets, later decisions may legitimately differ — the
    // rest of the round checks invariants only.
    let mut strict = true;
    let mut serial_est: std::collections::BTreeMap<usize, ConnectionId> = Default::default();
    let mut engine_est: std::collections::BTreeMap<usize, ConnectionId> = Default::default();
    let mut next_id = ID_BASE;

    for action in &scenario.actions {
        totals.directives += 1;
        match *action {
            ScenarioAction::Connect(i) => {
                totals.connects += 1;
                let spec = &scenario.connections[i];
                if spec.crankback.is_some() {
                    let diverged = replay_crankback(
                        &mut network,
                        &engine,
                        &scenario,
                        i,
                        &mut serial_est,
                        &mut engine_est,
                    )?;
                    if diverged {
                        totals.crankback_divergences += 1;
                    }
                    // Even when both sides establish, the two search
                    // strategies may have committed *different* routes,
                    // silently splitting the admission state — so any
                    // crankback connect ends strict checking.
                    strict = false;
                    continue;
                }
                let id = ConnectionId::new(next_id);
                next_id += 1;
                let serial = serial_connect(&mut network, &scenario, i, id)?;
                let mut eng = engine_connect(&engine, &scenario, i, id)?;
                if tamper == Tamper::FlipVerdicts && matches!(spec.route, RouteKind::Unicast(_)) {
                    eng.established = match eng.established {
                        Some(_) => None,
                        None => Some((id, Time::ZERO)),
                    };
                }
                if let Some((sid, _)) = serial.established {
                    serial_est.insert(i, sid);
                }
                if let Some((eid, _)) = eng.established {
                    engine_est.insert(i, eid);
                }
                if strict {
                    compare_connect(&spec.name, &serial, &eng, &mut violations);
                    // The first divergence splits the two sides'
                    // state; everything after it is downstream noise.
                    if !violations.is_empty() {
                        strict = false;
                    }
                }
            }
            ScenarioAction::Release(i) => {
                totals.releases += 1;
                let spec = &scenario.connections[i];
                let serial_live = match (&spec.route, serial_est.get(&i)) {
                    (RouteKind::Unicast(_), Some(&id)) if network.connection(id).is_some() => {
                        network.teardown(id).map_err(CliError::domain)?;
                        true
                    }
                    (RouteKind::Multicast(_), Some(&id))
                        if network.multicast_connection(id).is_some() =>
                    {
                        network.teardown_multicast(id).map_err(CliError::domain)?;
                        true
                    }
                    _ => false,
                };
                let engine_live = match engine_est.get(&i) {
                    Some(&id) if engine.per_leaf_bounds(id).is_some() => {
                        engine.release(id).map_err(CliError::domain)?;
                        true
                    }
                    _ => false,
                };
                if strict && serial_live != engine_live {
                    violations.push(format!(
                        "release {}: serial live={serial_live}, engine live={engine_live}",
                        spec.name
                    ));
                }
            }
            ScenarioAction::DegradeLink(link, cdv) => {
                totals.degrades += 1;
                network
                    .set_link_cdv_inflation(link, cdv)
                    .map_err(CliError::domain)?;
                engine
                    .set_link_cdv_inflation(link, cdv)
                    .map_err(CliError::domain)?;
            }
            ScenarioAction::RestoreLink(link) => {
                totals.degrades += 1;
                network
                    .set_link_cdv_inflation(link, Time::ZERO)
                    .map_err(CliError::domain)?;
                engine
                    .set_link_cdv_inflation(link, Time::ZERO)
                    .map_err(CliError::domain)?;
            }
            ScenarioAction::FailLink(link) => {
                totals.faults += 1;
                let s = network.fail_link(link).map_err(CliError::domain)?;
                let e = engine.fail_link(link).map_err(CliError::domain)?;
                if strict
                    && (s.is_changed(), s.torn_down().len())
                        != (e.is_changed(), e.torn_down().len())
                {
                    violations.push(format!(
                        "fail-link {link}: serial impact (changed={}, torn={}) vs \
                         engine (changed={}, torn={})",
                        s.is_changed(),
                        s.torn_down().len(),
                        e.is_changed(),
                        e.torn_down().len()
                    ));
                }
            }
            ScenarioAction::HealLink(link) => {
                totals.faults += 1;
                let s = network.heal_link(link).map_err(CliError::domain)?;
                let e = engine.heal_link(link).map_err(CliError::domain)?;
                if strict && s != e {
                    violations.push(format!(
                        "heal-link {link}: serial changed={s}, engine changed={e}"
                    ));
                }
            }
            ScenarioAction::FailNode(node) => {
                totals.faults += 1;
                let s = network.fail_node(node).map_err(CliError::domain)?;
                let e = engine.fail_node(node).map_err(CliError::domain)?;
                if strict
                    && (s.is_changed(), s.torn_down().len())
                        != (e.is_changed(), e.torn_down().len())
                {
                    violations.push(format!(
                        "fail-node {node}: serial impact (changed={}, torn={}) vs \
                         engine (changed={}, torn={})",
                        s.is_changed(),
                        s.torn_down().len(),
                        e.is_changed(),
                        e.torn_down().len()
                    ));
                }
            }
            ScenarioAction::HealNode(node) => {
                totals.faults += 1;
                let s = network.heal_node(node).map_err(CliError::domain)?;
                let e = engine.heal_node(node).map_err(CliError::domain)?;
                if strict && s != e {
                    violations.push(format!(
                        "heal-node {node}: serial changed={s}, engine changed={e}"
                    ));
                }
            }
            ScenarioAction::Chaos { seed, steps, rate } => {
                totals.chaos += 1;
                if check_resume {
                    totals.resume_checks += 1;
                }
                if let Some(v) = run_chaos_directive(&scenario, seed, steps, rate, check_resume)? {
                    violations.push(v);
                }
            }
        }
    }

    // End-of-round safety audits, both sides.
    let serial_orphans = network.orphaned_reservations();
    if !serial_orphans.is_empty() {
        violations.push(format!(
            "serial audit: {} orphaned reservation(s)",
            serial_orphans.len()
        ));
    }
    let serial_broken = network.verify_guarantees().map_err(CliError::domain)?;
    if !serial_broken.is_empty() {
        violations.push(format!(
            "serial audit: {} violated guarantee(s)",
            serial_broken.len()
        ));
    }
    let engine_orphans = engine.publish_orphan_audit();
    if engine_orphans != 0 {
        violations.push(format!(
            "engine audit: {engine_orphans} orphaned reservation(s)"
        ));
    }
    let engine_broken = engine.verify_guarantees().map_err(CliError::domain)?;
    if !engine_broken.is_empty() {
        violations.push(format!(
            "engine audit: {} violated guarantee(s)",
            engine_broken.len()
        ));
    }
    Ok(violations)
}

/// One plain (non-crankback) connect through the serial driver.
fn serial_connect(
    network: &mut Network,
    scenario: &Scenario,
    i: usize,
    id: ConnectionId,
) -> Result<SideOutcome, CliError> {
    let spec = &scenario.connections[i];
    Ok(match &spec.route {
        RouteKind::Unicast(route) => {
            match network
                .setup_with_id(id, route, spec.request)
                .map_err(CliError::domain)?
            {
                SetupOutcome::Connected(info) => SideOutcome {
                    established: Some((info.id(), info.guaranteed_delay())),
                    rejection: None,
                    report: network.last_admission_report().cloned(),
                },
                SetupOutcome::Rejected(why) => SideOutcome {
                    established: None,
                    // A route-down refusal never reaches pricing, so
                    // `last_admission_report` would be a stale ledger
                    // from an earlier setup.
                    report: if matches!(why, SetupRejection::RouteDown { .. }) {
                        None
                    } else {
                        network.last_admission_report().cloned()
                    },
                    rejection: Some(why.to_string()),
                },
            }
        }
        RouteKind::Multicast(tree) => {
            match network
                .setup_multicast(tree, spec.request)
                .map_err(CliError::domain)?
            {
                MulticastOutcome::Connected(info) => SideOutcome {
                    established: Some((info.id(), info.guaranteed_delay())),
                    rejection: None,
                    report: None,
                },
                MulticastOutcome::Rejected(why) => SideOutcome {
                    established: None,
                    rejection: Some(why.to_string()),
                    report: None,
                },
            }
        }
    })
}

/// One plain (non-crankback) connect through the engine.
fn engine_connect(
    engine: &AdmissionEngine,
    scenario: &Scenario,
    i: usize,
    id: ConnectionId,
) -> Result<SideOutcome, CliError> {
    let spec = &scenario.connections[i];
    let outcome = match &spec.route {
        RouteKind::Unicast(route) => engine
            .admit_with_id(id, route, spec.request)
            .map_err(CliError::domain)?,
        RouteKind::Multicast(tree) => engine
            .admit_multicast(tree, spec.request)
            .map_err(CliError::domain)?,
    };
    Ok(match outcome {
        EngineOutcome::Admitted {
            id,
            guaranteed_delay,
        }
        | EngineOutcome::Rerouted {
            id,
            guaranteed_delay,
            ..
        } => SideOutcome {
            established: Some((id, guaranteed_delay)),
            rejection: None,
            report: match spec.route {
                RouteKind::Unicast(_) => engine.admission_report(id),
                RouteKind::Multicast(_) => None,
            },
        },
        EngineOutcome::Rejected { id, rejection } => SideOutcome {
            established: None,
            rejection: Some(rejection.to_string()),
            report: match spec.route {
                RouteKind::Unicast(_) => engine.admission_report(id),
                RouteKind::Multicast(_) => None,
            },
        },
    })
}

/// Strict comparison of one plain connect's two outcomes.
fn compare_connect(
    name: &str,
    serial: &SideOutcome,
    eng: &SideOutcome,
    violations: &mut Vec<String>,
) {
    match (&serial.established, &eng.established) {
        (Some((_, sd)), Some((_, ed))) => {
            if sd != ed {
                violations.push(format!(
                    "connect {name}: guaranteed delay diverged (serial {sd}, engine {ed})"
                ));
            }
        }
        (None, None) => {
            if serial.rejection != eng.rejection {
                violations.push(format!(
                    "connect {name}: rejection diverged (serial {:?}, engine {:?})",
                    serial.rejection, eng.rejection
                ));
            }
        }
        (s, e) => {
            violations.push(format!(
                "connect {name}: verdict diverged (serial established={}, \
                 engine established={})",
                s.is_some(),
                e.is_some()
            ));
            return;
        }
    }
    if serial.report != eng.report {
        let render = |r: &Option<AdmissionReport>| {
            r.as_ref()
                .map_or_else(|| "<no ledger>".into(), AdmissionReport::render)
        };
        violations.push(format!(
            "connect {name}: admission ledgers diverged\n--- serial ---\n{}\
             --- engine ---\n{}",
            render(&serial.report),
            render(&eng.report)
        ));
    }
}

/// Replays a crankback connect on both sides. The two search
/// strategies may legitimately pick different alternates, so the
/// verdicts are compared loosely: a divergence is tolerated and
/// reported to the caller (`true`), which downgrades the rest of the
/// round to invariant-only checking.
fn replay_crankback(
    network: &mut Network,
    engine: &AdmissionEngine,
    scenario: &Scenario,
    i: usize,
    serial_est: &mut std::collections::BTreeMap<usize, ConnectionId>,
    engine_est: &mut std::collections::BTreeMap<usize, ConnectionId>,
) -> Result<bool, CliError> {
    let spec = &scenario.connections[i];
    let retries = spec.crankback.unwrap_or(0);
    let RouteKind::Unicast(route) = &spec.route else {
        return Err(CliError::Usage(format!(
            "'{}': crankback applies to unicast connects only",
            spec.name
        )));
    };
    let from = route.source(&scenario.topology).map_err(CliError::domain)?;
    let to = route
        .destination(&scenario.topology)
        .map_err(CliError::domain)?;
    let policy = CrankbackPolicy {
        max_retries: retries,
        ..CrankbackPolicy::default()
    };
    let serial_id = match network.setup_crankback(from, to, spec.request, policy) {
        Ok(result) => match result.outcome {
            SetupOutcome::Connected(info) => Some(info.id()),
            SetupOutcome::Rejected(_) => None,
        },
        // No healthy route at all — the engine reports this as a
        // rejection, so treat it the same here.
        Err(SignalError::Net(_)) => None,
        Err(e) => return Err(CliError::domain(e)),
    };
    engine.set_reroute_budget(retries as u64);
    let engine_outcome = engine.admit(route, spec.request);
    engine.set_reroute_budget(0);
    let engine_id = match engine_outcome.map_err(CliError::domain)? {
        EngineOutcome::Admitted { id, .. } | EngineOutcome::Rerouted { id, .. } => Some(id),
        EngineOutcome::Rejected { .. } => None,
    };
    if let Some(id) = serial_id {
        serial_est.insert(i, id);
    }
    if let Some(id) = engine_id {
        engine_est.insert(i, id);
    }
    Ok(serial_id.is_some() != engine_id.is_some())
}

/// Cache counters are the one legitimate difference after a restore
/// (the restored engine starts cold), so resume parity compares with
/// both zeroed.
fn normalized(mut report: ChaosReport) -> ChaosReport {
    report.stats = EngineStats {
        cache_hits: 0,
        cache_misses: 0,
        ..report.stats
    };
    report
}

/// Runs an embedded `chaos` directive on a fresh engine over the
/// scenario's topology. The run always uses resumable
/// [`ChaosState`] segments; with `check_resume` it is additionally
/// killed at the halfway point, snapshot-restored, and finished on the
/// restored engine — and must be decision-identical to the
/// uninterrupted run.
fn run_chaos_directive(
    scenario: &Scenario,
    seed: u64,
    steps: u64,
    rate: u64,
    check_resume: bool,
) -> Result<Option<String>, CliError> {
    let config = ChaosConfig {
        seed,
        steps,
        ..ChaosConfig::default()
    };
    let control = build_engine(scenario, None)?;
    let endpoints = endpoint_pairs(control.topology());
    let plan = FaultPlan::random(control.topology(), seed, steps, rate);
    let mut control_state = ChaosState::new(&config);
    run_chaos_segment(
        &control,
        &endpoints,
        &plan,
        &config,
        &mut control_state,
        steps,
    )
    .map_err(CliError::domain)?;
    let control_report = finish_report(&control, &control_state).map_err(CliError::domain)?;
    if !control_report.invariants_hold() {
        return Ok(Some(format!(
            "chaos seed={seed} violated its invariants:\n{}",
            control_report.summary()
        )));
    }
    if !check_resume {
        return Ok(None);
    }

    // Kill at the halfway point, snapshot, restore, finish.
    let victim = build_engine(scenario, None)?;
    let mut state = ChaosState::new(&config);
    let cut = (steps / 2).max(1);
    run_chaos_segment(&victim, &endpoints, &plan, &config, &mut state, cut)
        .map_err(CliError::domain)?;
    let bytes = encode(&snapshot_engine(&victim, "storm-resume-check"));
    drop(victim);
    let doc = decode(&bytes).map_err(CliError::domain)?;
    let restored = restore_engine(&doc).map_err(CliError::domain)?;
    run_chaos_segment(
        &restored,
        &endpoints,
        &plan,
        &config,
        &mut state,
        steps - cut,
    )
    .map_err(CliError::domain)?;
    let report = finish_report(&restored, &state).map_err(CliError::domain)?;
    if control_state.decisions() != state.decisions() {
        return Ok(Some(format!(
            "chaos seed={seed}: decisions after kill/snapshot-restore diverged \
             from the uninterrupted run"
        )));
    }
    if normalized(control_report) != normalized(report) {
        return Ok(Some(format!(
            "chaos seed={seed}: final report after kill/snapshot-restore diverged \
             from the uninterrupted run"
        )));
    }
    Ok(None)
}

/// Greedy delta-debugging over the directive list: repeatedly drop
/// chunks (halving down to singles) while the subset still fails, then
/// return the smallest failing scenario found. `retain` drops dangling
/// releases, so every candidate still parses.
fn minimize(
    storm: &StormScenario,
    registry: &Arc<rtcac_obs::Registry>,
    tamper: Tamper,
) -> StormScenario {
    let fails = |candidate: &StormScenario| -> bool {
        let mut scratch = StormTotals::default();
        run_differential(candidate, registry, tamper, false, &mut scratch)
            .map(|v| !v.is_empty())
            .unwrap_or(true)
    };
    let n = storm.directives.len();
    if n == 0 {
        return storm.clone();
    }
    let mut keep = vec![true; n];
    let mut chunk = (n / 2).max(1);
    loop {
        let mut progress = false;
        let active: Vec<usize> = (0..n).filter(|&i| keep[i]).collect();
        for window in active.chunks(chunk) {
            for &i in window {
                keep[i] = false;
            }
            if fails(&storm.retain(&keep)) {
                progress = true;
            } else {
                for &i in window {
                    keep[i] = true;
                }
            }
        }
        if chunk == 1 {
            if !progress {
                break;
            }
        } else {
            chunk = (chunk / 2).max(1);
        }
    }
    storm.retain(&keep)
}

/// The canonical directive signatures of a *parsed* scenario — the CLI
/// half of the emitter round-trip: a [`StormScenario`] emitted to text
/// and re-parsed must produce exactly
/// [`StormScenario::signature`].
pub fn scenario_signature(scenario: &Scenario) -> Vec<String> {
    scenario
        .actions
        .iter()
        .map(|action| match *action {
            ScenarioAction::Connect(i) => {
                let spec = &scenario.connections[i];
                let (kind, links): (&str, Vec<String>) = match &spec.route {
                    RouteKind::Unicast(route) => (
                        "unicast",
                        route
                            .links()
                            .iter()
                            .map(|&l| scenario.link_name(l).unwrap_or("?").to_owned())
                            .collect(),
                    ),
                    RouteKind::Multicast(tree) => (
                        "tree",
                        tree.links()
                            .iter()
                            .map(|&l| scenario.link_name(l).unwrap_or("?").to_owned())
                            .collect(),
                    ),
                };
                let contract = match spec.request.contract() {
                    TrafficContract::Cbr(p) => format!("cbr:{}", p.pcr()),
                    TrafficContract::Vbr(p) => {
                        format!("vbr:{},{},{}", p.pcr(), p.scr(), p.mbs())
                    }
                };
                let crankback = spec.crankback.map_or_else(|| "-".into(), |b| b.to_string());
                format!(
                    "connect {} {kind} links={} contract={contract} priority={} \
                     delay={} crankback={crankback}",
                    spec.name,
                    links.join(","),
                    spec.request.priority().level(),
                    spec.request.delay_bound(),
                )
            }
            ScenarioAction::Release(i) => {
                format!("release {}", scenario.connections[i].name)
            }
            ScenarioAction::FailLink(l) => {
                format!("fail-link {}", scenario.link_name(l).unwrap_or("?"))
            }
            ScenarioAction::HealLink(l) => {
                format!("heal-link {}", scenario.link_name(l).unwrap_or("?"))
            }
            ScenarioAction::FailNode(n) => {
                format!("fail-node {}", scenario.node_name(n).unwrap_or("?"))
            }
            ScenarioAction::HealNode(n) => {
                format!("heal-node {}", scenario.node_name(n).unwrap_or("?"))
            }
            ScenarioAction::DegradeLink(l, cdv) => {
                format!(
                    "degrade-link {} cdv={cdv}",
                    scenario.link_name(l).unwrap_or("?")
                )
            }
            ScenarioAction::RestoreLink(l) => {
                format!("restore-link {}", scenario.link_name(l).unwrap_or("?"))
            }
            ScenarioAction::Chaos { seed, steps, rate } => {
                format!("chaos seed={seed} steps={steps} rate={rate}")
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_args() -> StormArgs {
        StormArgs {
            seed: 0xBEEF,
            rounds: 6,
            ..StormArgs::default()
        }
    }

    #[test]
    fn small_storm_is_clean() {
        let report = storm(&tiny_args()).expect("clean storm");
        assert!(report.contains("storm: OK"), "{report}");
        assert!(report.contains("lock-hold watchdog: quiet"), "{report}");
    }

    /// The lifted-caps satellite: one full differential round over a
    /// ~thousand-switch sparse WAN — topology generation, both
    /// drivers, parity and audits all at memory scale.
    #[test]
    fn thousand_switch_round_is_clean() {
        let args = StormArgs {
            seed: 0x1000,
            rounds: 1,
            topology: Some("wan".into()),
            profile: Some("none".into()),
            nodes: Some(1000),
            ..StormArgs::default()
        };
        let report = storm(&args).expect("clean thousand-switch round");
        assert!(report.contains("nodes=1000"), "{report}");
        assert!(report.contains("storm: OK"), "{report}");
    }

    #[test]
    fn storm_is_deterministic() {
        let a = storm(&tiny_args()).expect("first run");
        let b = storm(&tiny_args()).expect("second run");
        assert_eq!(a, b);
    }

    /// The injected-parity-bug proof: a comparison layer that flips
    /// the engine's verdict on every plain connect must be caught on
    /// the very first round and minimized down to (nearly) a single
    /// connect directive.
    #[test]
    fn tampered_comparison_is_caught_and_minimized() {
        let dir = std::env::temp_dir().join(format!("rtcac-storm-{}", std::process::id()));
        let out = dir.join("minimized.rtcac");
        let args = StormArgs {
            seed: 7,
            rounds: 3,
            out: Some(out.display().to_string()),
            ..StormArgs::default()
        };
        let err = storm_with(&args, Tamper::FlipVerdicts).expect_err("tamper must be caught");
        let message = err.to_string();
        assert!(
            message.contains("verdict diverged"),
            "tamper not reported: {message}"
        );
        let minimized = std::fs::read_to_string(&out).expect("minimized scenario written");
        // The minimized scenario must still parse and still fail —
        // and a verdict flip needs exactly one plain connect.
        let parsed = Scenario::parse(&minimized).expect("minimized scenario parses");
        let connects = parsed
            .actions
            .iter()
            .filter(|a| matches!(a, ScenarioAction::Connect(_)))
            .count();
        assert_eq!(
            connects, 1,
            "minimizer should reduce a flip-every-verdict bug to one connect:\n{minimized}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The storm half of the flight-recorder proof: a tampered run
    /// produces exactly ONE black box whose timeline carries the
    /// trigger tick, and `rtcac flight inspect` renders it.
    #[test]
    fn tampered_storm_dumps_exactly_one_black_box() {
        let dir = std::env::temp_dir().join(format!("rtcac-storm-flight-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let args = StormArgs {
            seed: 7,
            rounds: 3,
            flight: Some(dir.display().to_string()),
            ..StormArgs::default()
        };
        storm_with(&args, Tamper::FlipVerdicts).expect_err("tamper must be caught");
        let files: Vec<_> = std::fs::read_dir(&dir)
            .expect("flight dir exists")
            .map(|e| e.unwrap().path())
            .collect();
        assert_eq!(files.len(), 1, "exactly one black box: {files:?}");
        let dump = rtcac_obs::FlightDump::decode(&std::fs::read(&files[0]).unwrap())
            .expect("dump decodes");
        assert_eq!(dump.reason, "parity");
        assert!(dump.detail.contains("verdict diverged"), "{}", dump.detail);
        // The violating round's tick is both retained and marked.
        assert!(
            dump.ticks.iter().any(|t| t.tick == dump.trigger_tick),
            "trigger tick {} missing from the retained window",
            dump.trigger_tick
        );
        let timeline = dump.render_timeline();
        assert!(timeline.contains("<< trigger"), "{timeline}");
        let rendered = crate::commands::flight_inspect(&files[0].display().to_string())
            .expect("inspect renders the dump");
        assert!(rendered.contains("reason=parity"), "{rendered}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The clean half of the proof: a 200-round clean storm with the
    /// recorder armed writes ZERO dumps.
    #[test]
    fn clean_200_round_storm_writes_no_dumps() {
        let dir = std::env::temp_dir().join(format!("rtcac-storm-clean-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let args = StormArgs {
            seed: 0xC1EA4,
            rounds: 200,
            flight: Some(dir.display().to_string()),
            ..StormArgs::default()
        };
        let report = storm(&args).expect("clean storm");
        assert!(
            report.contains("flight recorder: 0 dump(s) written"),
            "{report}"
        );
        assert!(
            !dir.exists() || std::fs::read_dir(&dir).unwrap().next().is_none(),
            "no dump files on disk"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Satellite: the emitter round-trip. 500 seeded scenarios are
    /// emitted, re-parsed, and must describe structurally identical
    /// directive lists — canonical signature for canonical signature.
    #[test]
    fn emitter_round_trip_500_seeds() {
        let mut rng = SimRng::seed_from_u64(0x500);
        for case in 0..500u64 {
            let config = FuzzConfig {
                topology: TopologyKind::ALL[(case as usize) % TopologyKind::ALL.len()],
                profile: match case % 5 {
                    0 => None,
                    k => Some(ProfileKind::ALL[(k - 1) as usize]),
                },
                ..FuzzConfig::default()
            };
            let seed = rng.next_u64();
            let storm = generate(seed, &config).expect("generate");
            let text = storm.emit();
            let parsed = Scenario::parse(&text).unwrap_or_else(|e| {
                panic!("case {case} (seed {seed}) failed to re-parse: {e}\n{text}")
            });
            assert_eq!(
                storm.signature(),
                scenario_signature(&parsed),
                "case {case} (seed {seed}) round-trip diverged\n{text}"
            );
        }
    }
}
