//! The `rtcac` command-line binary: argument parsing and dispatch.
//! All real work lives in [`rtcac_cli::commands`].

use std::process::ExitCode;

use rtcac_cli::commands::{self, BoundArgs, RtnetArgs};
use rtcac_cli::scenario::Scenario;
use rtcac_cli::CliError;
use rtcac_rational::Ratio;

/// Count every allocation into the process heap gauge, so `rtcac
/// serve`'s `/metrics` endpoint exports a live `alloc_live_bytes`
/// alongside `engine_resident_bytes`.
#[global_allocator]
static ALLOC: rtcac_bench::memory::CountingAlloc = rtcac_bench::memory::CountingAlloc;

const USAGE: &str = "\
rtcac — hard real-time ATM connection admission control toolkit

USAGE:
  rtcac bound --pcr RATE [--scr RATE --mbs N] [--cdv CELLS] [--count N]
              [--interference RATE]
      Worst-case queueing delay of N identical connections at one port.

  rtcac check SCENARIO_FILE [--engine] [--metrics PATH]
      Replay the scenario in file order through the distributed SETUP
      procedure: connects (with optional crankback=N rerouting),
      fail-link/heal-link/fail-node/heal-node directives, and embedded
      'chaos' sessions; report outcomes and final port bounds. With
      --engine the same replay runs through the concurrent sharded
      engine instead (unicast and multicast setups alike), ending with
      an orphaned-reservation audit; --metrics then writes the
      observability snapshot to PATH (Prometheus) and PATH.json.

  rtcac trace SCENARIO_FILE [--engine] [--workers N] [--out PATH]
      Replay the scenario with an always-sampling tracer and print the
      causal span tree of every setup — queue wait, crankback attempts,
      price/reserve/commit phases, per-hop admission events, and
      reject-provenance events. With --engine the replay runs through
      the concurrent sharded engine; with --out, the spans are also
      written as Chrome trace_event JSON (chrome://tracing, Perfetto).

  rtcac why SCENARIO_FILE CONNECTION_NAME
      Replay the scenario serially and print the decision provenance of
      one named connection: the per-hop ledger of computed Algorithm
      4.1 bound vs deadline with CDV in/out, the refusing hop marked.

  rtcac bench-report BASELINE.json CANDIDATE.json
      Diff two bench JSON files (engine_throughput --bench-json or
      rtcac chaos --bench-json): per-worker ops/sec and p99 latency,
      flagging any figure more than 10% worse in the candidate.

  rtcac chaos [--nodes N] [--terminals N] [--seed N] [--steps N]
              [--rate P] [--metrics PATH] [--bench-json PATH]
      Seeded chaos session on a dual star-ring: random link/node
      failures and repairs under live setup/release churn through the
      concurrent engine. Exits nonzero if any safety invariant breaks
      (orphaned reservations, violated delay guarantees, or counter
      non-conservation). With --metrics, writes the observability
      snapshot to PATH (Prometheus) and PATH.json before the verdict.

  rtcac storm [--seed N] [--rounds N] [--topology KIND] [--profile KIND]
              [--nodes N] [--out PATH] [--metrics PATH] [--bench-json PATH]
              [--flight DIR]
      Differential scenario fuzzer: each round generates a seeded
      random valid scenario (topologies: star-of-rings, fat-tree, wan,
      or 'mixed'; impairment profiles: flap, brownout, degrade-heal,
      regional, 'none', or 'mixed'; --nodes sizes every round's fabric
      to roughly N switches instead of the default small draws) and
      replays it through both the
      serial SETUP procedure and the concurrent sharded engine,
      asserting verdict, guaranteed-delay, and admission-ledger parity,
      plus orphan/guarantee audits after every round and periodic
      kill/snapshot-restore checks of embedded chaos sessions. Exits
      nonzero on the first violation, writing the minimized failing
      scenario to --out. With --flight, each round becomes one tick of
      a windowed series feeding an armed flight recorder: the first
      violation dumps ONE black box of the recent rounds into DIR
      ('rtcac flight inspect' reads it); clean storms write nothing.

  rtcac engine SCENARIO_FILE [--workers N] [--metrics PATH]
      Batch-admit the scenario through the concurrent sharded engine
      (two-phase reserve/commit, N worker threads) and report outcomes,
      engine statistics, and final port bounds. With --metrics, the
      observability snapshot (phase timings, lock waits, cache and
      outcome counters) is written to PATH in Prometheus text format
      and to PATH.json in JSON.

  rtcac serve [--addr HOST:PORT] [--metrics-addr HOST:PORT] [--nodes N]
              [--terminals N] [--bound CELLS] [--workers N]
              [--snapshot-free] [--snapshot PATH] [--snapshot-every SECS]
              [--flight-dir DIR] [--watchdog-ns NS]
      Run the resident admission service on a star-ring: a TCP server
      speaking the length-prefixed SETUP / SETUP-MCAST / RELEASE /
      QUERY / DRAIN / STATS protocol, dispatching onto the concurrent
      engine's worker pool. Sessions own the connections they admit; a
      dead client's reservations are released on cleanup. With
      --metrics-addr, a trivial HTTP endpoint serves /metrics
      (Prometheus), /metrics.json, and /healthz. --snapshot-free runs
      with no-op observability handles. With --snapshot, the server
      restores its admission state from PATH on boot (answering the
      typed SNAPSHOT-RESTORING error until the restore audit passes)
      and saves it atomically on DRAIN — plus every SECS seconds with
      --snapshot-every. With --flight-dir, a sampler thread keeps a
      windowed time-series and an always-on flight recorder arms:
      anomalies (orphans, guarantee-audit failures, watchdogged lock
      holds, resident-bytes jumps, panics) each dump ONE bounded black
      box into DIR; the DUMP wire op ('rtcac flight dump') forces more.
      --watchdog-ns sets the shard lock-hold watchdog threshold (0
      trips on every setup — a CI lever). Blocks until a client sends
      DRAIN, then exits nonzero unless the final audit is clean (no
      orphaned reservations, no violated guarantees, no refused
      restore).

  rtcac snapshot save SCENARIO_FILE OUT [--workers N]
  rtcac snapshot restore FILE
  rtcac snapshot inspect FILE
  rtcac snapshot diff FILE_A FILE_B
      Work with versioned engine snapshots ('rtcac serve --snapshot'
      state files). 'save' batch-admits the scenario through the
      concurrent engine and writes its state atomically; 'restore'
      rebuilds a full engine from FILE and re-runs the guarantee and
      orphan audits (a failing file is refused, never half-loaded);
      'inspect' prints the header, section table and state summary;
      'diff' compares two snapshots field by field.

  rtcac load [--addr HOST:PORT] [--threads N] [--ops N] [--pipeline N]
             [--rate OPS_PER_SEC] [--seed N] [--bench-json PATH]
             [--smoke] [--drain] [--soak MINS [--metrics-addr HOST:PORT]]
      Open-loop multi-threaded load generator against a running
      'rtcac serve': pipelined setup+release churn over randomized
      star-ring routes, reporting ops/s and setup latency p50/p90/p99
      (measured from scheduled send times when --rate paces the run).
      --smoke is shorthand for a small CI-sized run; --drain sends
      DRAIN afterwards; --bench-json writes BENCH_serve.json rounds.
      --soak MINS repeats --ops-sized batches until the deadline while
      scraping the server's metrics endpoint into a windowed
      time-series, printing one live status line per sample (setup and
      reject rates, sliding reserve p99, resident bytes) — the churn
      memory-stability probe for 'rtcac bench-report'.

  rtcac top [--addr HOST:PORT] [--interval MS] [--samples N] [--no-tui]
      Live terminal view of a running 'rtcac serve': scrapes /metrics
      on an interval into a windowed time-series and shows per-second
      admission/reject/reroute rates, sliding-window reserve and
      lock-wait quantiles, resident bytes, active sessions, and
      snapshot age. Default is a redrawn full-screen dashboard;
      --no-tui prints one line per sample (for CI logs), --samples N
      exits after N scrapes.

  rtcac flight inspect FILE
  rtcac flight export FILE [--out PATH]
  rtcac flight dump --addr HOST:PORT
      Work with flight-recorder black boxes ('rtcac serve
      --flight-dir' dumps). 'inspect' verifies the checksums and
      renders the header plus the per-tick anomaly timeline (a
      tampered file is refused, never half-rendered); 'export'
      converts the captured spans to Chrome trace_event JSON
      (chrome://tracing, Perfetto); 'dump' asks a live server to write
      a black box now, bypassing the once-per-reason latch.

  rtcac stats SCENARIO_FILE [--workers N] [--json]
  rtcac stats --addr HOST:PORT [--json]
      Batch-admit the scenario and print the bare metrics snapshot to
      stdout — Prometheus text by default, JSON with --json. With
      --addr, scrape a live 'rtcac serve' exposition endpoint instead.

  rtcac simulate SCENARIO_FILE [--slots N] [--jitter CELLS] [--seed N]
      Admit the scenario, then measure it in the cell-level simulator.

  rtcac rtnet --nodes N --terminals N --load RATE [--share P] [--soft]
      RTnet ring analysis: port bounds, end-to-end bound, admissibility.

Rates and loads are exact rationals ('1/8', '0.35'); times are in ATM
cell times (~2.7 us at 155 Mbps; 370 cells ~= 1 ms).
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            // Only command-line mistakes earn the usage dump; data and
            // domain failures (missing bench baseline, corrupt
            // snapshot, dirty shutdown audit) stay a one-line error.
            if matches!(e, CliError::Usage(_)) {
                eprintln!();
                eprintln!("{USAGE}");
            }
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<String, CliError> {
    let mut it = args.iter();
    match it.next().map(String::as_str) {
        Some("bound") => {
            let rest: Vec<&String> = it.collect();
            let pcr = flag_ratio(&rest, "--pcr")?
                .ok_or_else(|| CliError::Usage("--pcr is required".into()))?;
            let scr = flag_ratio(&rest, "--scr")?;
            let mbs = flag_u64(&rest, "--mbs")?.unwrap_or(1);
            let cdv = flag_ratio(&rest, "--cdv")?.unwrap_or(Ratio::ZERO);
            let count = flag_u64(&rest, "--count")?.unwrap_or(1) as u32;
            let interference = flag_ratio(&rest, "--interference")?;
            commands::bound(&BoundArgs {
                pcr,
                scr,
                mbs,
                cdv,
                count,
                interference,
            })
        }
        Some("check") => {
            let path = it
                .next()
                .ok_or_else(|| CliError::Usage("check needs a scenario file".into()))?;
            let rest: Vec<&String> = it.collect();
            let engine_mode = rest.iter().any(|a| a.as_str() == "--engine");
            let metrics = flag_value(&rest, "--metrics")?;
            let scenario = load(path)?;
            if engine_mode {
                commands::check_engine(&scenario, metrics)
            } else {
                if metrics.is_some() {
                    return Err(CliError::Usage(
                        "check --metrics requires --engine (the serial replay has no registry)"
                            .into(),
                    ));
                }
                commands::check(&scenario)
            }
        }
        Some("engine") => {
            let path = it
                .next()
                .ok_or_else(|| CliError::Usage("engine needs a scenario file".into()))?;
            let rest: Vec<&String> = it.collect();
            let workers = flag_u64(&rest, "--workers")?.unwrap_or(4) as usize;
            let metrics = flag_value(&rest, "--metrics")?;
            let scenario = load(path)?;
            commands::engine(&scenario, workers, metrics)
        }
        Some("chaos") => {
            let rest: Vec<&String> = it.collect();
            let nodes = flag_u64(&rest, "--nodes")?.unwrap_or(16) as usize;
            let terminals = flag_u64(&rest, "--terminals")?.unwrap_or(1) as usize;
            let seed = flag_u64(&rest, "--seed")?.unwrap_or(1);
            let steps = flag_u64(&rest, "--steps")?.unwrap_or(200);
            let rate = flag_u64(&rest, "--rate")?.unwrap_or(25);
            let metrics = flag_value(&rest, "--metrics")?.map(str::to_owned);
            let bench_json = flag_value(&rest, "--bench-json")?.map(str::to_owned);
            commands::chaos(&commands::ChaosArgs {
                nodes,
                terminals,
                seed,
                steps,
                rate,
                metrics,
                bench_json,
            })
        }
        Some("storm") => {
            let rest: Vec<&String> = it.collect();
            rtcac_cli::storm::storm(&rtcac_cli::storm::StormArgs {
                seed: flag_u64(&rest, "--seed")?.unwrap_or(1),
                rounds: flag_u64(&rest, "--rounds")?.unwrap_or(1000),
                profile: flag_value(&rest, "--profile")?.map(str::to_owned),
                topology: flag_value(&rest, "--topology")?.map(str::to_owned),
                nodes: flag_u64(&rest, "--nodes")?
                    .map(|n| {
                        if n == 0 {
                            Err(CliError::Usage("--nodes needs a positive count".into()))
                        } else {
                            Ok(n as usize)
                        }
                    })
                    .transpose()?,
                out: flag_value(&rest, "--out")?.map(str::to_owned),
                metrics: flag_value(&rest, "--metrics")?.map(str::to_owned),
                bench_json: flag_value(&rest, "--bench-json")?.map(str::to_owned),
                flight: flag_value(&rest, "--flight")?.map(str::to_owned),
            })
        }
        Some("trace") => {
            let path = it
                .next()
                .ok_or_else(|| CliError::Usage("trace needs a scenario file".into()))?;
            let rest: Vec<&String> = it.collect();
            let engine_mode = rest.iter().any(|a| a.as_str() == "--engine");
            let workers = flag_u64(&rest, "--workers")?.unwrap_or(4) as usize;
            let out = flag_value(&rest, "--out")?;
            let scenario = load(path)?;
            commands::trace(&scenario, engine_mode, workers, out)
        }
        Some("why") => {
            let path = it
                .next()
                .ok_or_else(|| CliError::Usage("why needs a scenario file".into()))?;
            let name = it
                .next()
                .ok_or_else(|| CliError::Usage("why needs a connection name".into()))?;
            let scenario = load(path)?;
            commands::why(&scenario, name)
        }
        Some("bench-report") => {
            let baseline = it
                .next()
                .ok_or_else(|| CliError::Usage("bench-report needs a baseline file".into()))?;
            let candidate = it
                .next()
                .ok_or_else(|| CliError::Usage("bench-report needs a candidate file".into()))?;
            commands::bench_report(baseline, candidate)
        }
        Some("stats") => {
            let rest: Vec<&String> = it.collect();
            let json = rest.iter().any(|a| a.as_str() == "--json");
            if let Some(addr) = flag_value(&rest, "--addr")? {
                return commands::stats_remote(addr, json);
            }
            let path = match rest.first() {
                Some(a) if !a.starts_with("--") => a.as_str(),
                _ => {
                    return Err(CliError::Usage(
                        "stats needs a scenario file or --addr HOST:PORT".into(),
                    ))
                }
            };
            let workers = flag_u64(&rest, "--workers")?.unwrap_or(4) as usize;
            let scenario = load(path)?;
            commands::stats(&scenario, workers, json)
        }
        Some("serve") => {
            let rest: Vec<&String> = it.collect();
            commands::serve(&commands::ServeArgs {
                addr: flag_value(&rest, "--addr")?
                    .unwrap_or("127.0.0.1:7047")
                    .to_owned(),
                metrics_addr: flag_value(&rest, "--metrics-addr")?.map(str::to_owned),
                nodes: flag_u64(&rest, "--nodes")?.unwrap_or(16) as usize,
                terminals: flag_u64(&rest, "--terminals")?.unwrap_or(4) as usize,
                bound: flag_u64(&rest, "--bound")?.unwrap_or(64),
                workers: flag_u64(&rest, "--workers")?.unwrap_or(4) as usize,
                snapshot_free: rest.iter().any(|a| a.as_str() == "--snapshot-free"),
                snapshot: flag_value(&rest, "--snapshot")?.map(str::to_owned),
                snapshot_every: flag_u64(&rest, "--snapshot-every")?,
                flight_dir: flag_value(&rest, "--flight-dir")?.map(str::to_owned),
                watchdog_ns: flag_u64(&rest, "--watchdog-ns")?,
            })
        }
        Some("snapshot") => {
            let action = it
                .next()
                .ok_or_else(|| {
                    CliError::Usage("snapshot needs an action: save|restore|inspect|diff".into())
                })?
                .as_str();
            let rest: Vec<&String> = it.collect();
            let positional = |n: usize, what: &str| -> Result<&str, CliError> {
                rest.iter()
                    .filter(|a| !a.starts_with("--"))
                    .nth(n)
                    .map(|s| s.as_str())
                    .ok_or_else(|| CliError::Usage(format!("snapshot {action} needs {what}")))
            };
            match action {
                "save" => {
                    let scenario = load(positional(0, "a scenario file")?)?;
                    let out = positional(1, "an output path")?;
                    let workers = flag_u64(&rest, "--workers")?.unwrap_or(4) as usize;
                    commands::snapshot_save(&scenario, out, workers)
                }
                "restore" => commands::snapshot_restore(positional(0, "a snapshot file")?),
                "inspect" => commands::snapshot_inspect(positional(0, "a snapshot file")?),
                "diff" => commands::snapshot_diff(
                    positional(0, "two snapshot files")?,
                    positional(1, "two snapshot files")?,
                ),
                other => Err(CliError::Usage(format!(
                    "unknown snapshot action '{other}' (save|restore|inspect|diff)"
                ))),
            }
        }
        Some("load") => {
            let rest: Vec<&String> = it.collect();
            let smoke = rest.iter().any(|a| a.as_str() == "--smoke");
            commands::serve_load(&commands::LoadArgs {
                addr: flag_value(&rest, "--addr")?
                    .unwrap_or("127.0.0.1:7047")
                    .to_owned(),
                threads: flag_u64(&rest, "--threads")?.unwrap_or(if smoke { 2 } else { 4 })
                    as usize,
                ops: flag_u64(&rest, "--ops")?.unwrap_or(if smoke { 20_000 } else { 1_000_000 }),
                pipeline: flag_u64(&rest, "--pipeline")?.unwrap_or(32) as usize,
                rate: flag_u64(&rest, "--rate")?,
                seed: flag_u64(&rest, "--seed")?.unwrap_or(7),
                bench_json: flag_value(&rest, "--bench-json")?.map(str::to_owned),
                drain: rest.iter().any(|a| a.as_str() == "--drain"),
                soak_minutes: flag_value(&rest, "--soak")?
                    .map(|v| {
                        v.parse::<f64>().ok().filter(|m| *m > 0.0).ok_or_else(|| {
                            CliError::Usage(format!(
                                "--soak needs a positive number of minutes, got '{v}'"
                            ))
                        })
                    })
                    .transpose()?,
                metrics_addr: flag_value(&rest, "--metrics-addr")?
                    .unwrap_or("127.0.0.1:7048")
                    .to_owned(),
            })
        }
        Some("top") => {
            let rest: Vec<&String> = it.collect();
            rtcac_cli::top::top(&rtcac_cli::top::TopArgs {
                addr: flag_value(&rest, "--addr")?
                    .unwrap_or("127.0.0.1:7048")
                    .to_owned(),
                interval_ms: flag_u64(&rest, "--interval")?.unwrap_or(1000),
                samples: flag_u64(&rest, "--samples")?,
                no_tui: rest.iter().any(|a| a.as_str() == "--no-tui"),
            })
        }
        Some("flight") => {
            let action = it
                .next()
                .ok_or_else(|| {
                    CliError::Usage("flight needs an action: inspect|export|dump".into())
                })?
                .as_str();
            let rest: Vec<&String> = it.collect();
            let positional = |n: usize, what: &str| -> Result<&str, CliError> {
                rest.iter()
                    .filter(|a| !a.starts_with("--"))
                    .nth(n)
                    .map(|s| s.as_str())
                    .ok_or_else(|| CliError::Usage(format!("flight {action} needs {what}")))
            };
            match action {
                "inspect" => commands::flight_inspect(positional(0, "a dump file")?),
                "export" => commands::flight_export(
                    positional(0, "a dump file")?,
                    flag_value(&rest, "--out")?,
                ),
                "dump" => {
                    let addr = flag_value(&rest, "--addr")?
                        .ok_or_else(|| CliError::Usage("flight dump needs --addr".into()))?;
                    commands::flight_dump_remote(addr)
                }
                other => Err(CliError::Usage(format!(
                    "unknown flight action '{other}' (inspect|export|dump)"
                ))),
            }
        }
        Some("simulate") => {
            let path = it
                .next()
                .ok_or_else(|| CliError::Usage("simulate needs a scenario file".into()))?;
            let rest: Vec<&String> = it.collect();
            let slots = flag_u64(&rest, "--slots")?.unwrap_or(100_000);
            let jitter = flag_u64(&rest, "--jitter")?;
            let seed = flag_u64(&rest, "--seed")?.unwrap_or(1);
            let scenario = load(path)?;
            commands::simulate(&scenario, slots, jitter.map(|j| (j, seed)))
        }
        Some("rtnet") => {
            let rest: Vec<&String> = it.collect();
            let nodes = flag_u64(&rest, "--nodes")?.unwrap_or(16) as usize;
            let terminals = flag_u64(&rest, "--terminals")?.unwrap_or(1) as usize;
            let load = flag_ratio(&rest, "--load")?
                .ok_or_else(|| CliError::Usage("--load is required".into()))?;
            let share = flag_ratio(&rest, "--share")?;
            let soft = rest.iter().any(|a| a.as_str() == "--soft");
            commands::rtnet(&RtnetArgs {
                nodes,
                terminals,
                load,
                share,
                soft,
            })
        }
        Some("--help") | Some("-h") | Some("help") => Ok(USAGE.to_string()),
        Some(other) => Err(CliError::Usage(format!("unknown command '{other}'"))),
        None => Err(CliError::Usage("no command given".into())),
    }
}

fn load(path: &str) -> Result<Scenario, CliError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError::Usage(format!("cannot read '{path}': {e}")))?;
    Scenario::parse(&text)
}

fn flag_value<'a>(args: &'a [&String], flag: &str) -> Result<Option<&'a str>, CliError> {
    match args.iter().position(|a| a.as_str() == flag) {
        Some(i) => args
            .get(i + 1)
            .map(|s| Some(s.as_str()))
            .ok_or_else(|| CliError::Usage(format!("{flag} requires a value"))),
        None => Ok(None),
    }
}

fn flag_ratio(args: &[&String], flag: &str) -> Result<Option<Ratio>, CliError> {
    flag_value(args, flag)?
        .map(|v| {
            v.parse::<Ratio>()
                .map_err(|e| CliError::Usage(format!("bad value for {flag}: {e}")))
        })
        .transpose()
}

fn flag_u64(args: &[&String], flag: &str) -> Result<Option<u64>, CliError> {
    flag_value(args, flag)?
        .map(|v| {
            v.parse::<u64>()
                .map_err(|_| CliError::Usage(format!("bad value for {flag}: '{v}'")))
        })
        .transpose()
}
