//! CLI error type.

use core::fmt;

/// Error produced by scenario parsing or command execution.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CliError {
    /// A scenario line could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// A name referenced an undefined entity.
    Unknown {
        /// The kind of entity ("node", "link", …).
        kind: &'static str,
        /// The missing name (the offending token, verbatim).
        name: String,
        /// 1-based line number of the reference.
        line: usize,
    },
    /// Invalid command-line usage.
    Usage(String),
    /// A domain-layer failure (topology, CAC, signaling, analysis).
    Domain(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Parse { line, message } => {
                write!(f, "parse error on line {line}: {message}")
            }
            CliError::Unknown { kind, name, line } => {
                write!(f, "unknown {kind} '{name}' on line {line}")
            }
            CliError::Usage(msg) => write!(f, "usage error: {msg}"),
            CliError::Domain(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for CliError {}

impl CliError {
    /// Wraps any domain error with context.
    pub fn domain(e: impl fmt::Display) -> CliError {
        CliError::Domain(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages() {
        let cases = [
            CliError::Parse {
                line: 3,
                message: "bad rate".into(),
            },
            CliError::Unknown {
                kind: "link",
                name: "l9".into(),
                line: 7,
            },
            CliError::Usage("missing --pcr".into()),
            CliError::Domain("overload".into()),
        ];
        for e in cases {
            assert!(!e.to_string().is_empty());
        }
    }
}
