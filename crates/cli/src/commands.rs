//! The CLI commands, as pure functions returning their report text
//! (the binary just prints; tests assert on the strings).

use std::fmt::Write as _;
use std::sync::Arc;

use rtcac_bitstream::{BitStream, CbrParams, Rate, Time, TrafficContract, VbrParams};
use rtcac_cac::Priority;
use rtcac_engine::{run_batch, AdmissionEngine, EngineOutcome};
use rtcac_net::LinkId;
use rtcac_rational::Ratio;
use rtcac_rtnet::{workload, CdvMode};
use rtcac_signaling::{Network, SetupOutcome};
use rtcac_sim::Simulation;

use crate::scenario::{RouteKind, Scenario};
use crate::CliError;

/// Parameters of the `bound` calculator.
#[derive(Debug, Clone)]
pub struct BoundArgs {
    /// Peak cell rate (normalized).
    pub pcr: Ratio,
    /// Sustainable cell rate (defaults to `pcr`, i.e. CBR).
    pub scr: Option<Ratio>,
    /// Maximum burst size (defaults to 1).
    pub mbs: u64,
    /// Accumulated upstream CDV in cell times.
    pub cdv: Ratio,
    /// Number of identical connections multiplexed at the port.
    pub count: u32,
    /// Constant higher-priority interference rate, if any.
    pub interference: Option<Ratio>,
}

/// `rtcac bound`: the worst-case queueing delay of `count` identical
/// jitter-distorted connections at one output port.
///
/// # Errors
///
/// Returns [`CliError::Usage`] for invalid parameters and
/// [`CliError::Domain`] for overload.
pub fn bound(args: &BoundArgs) -> Result<String, CliError> {
    if args.count == 0 {
        return Err(CliError::Usage("--count must be at least 1".into()));
    }
    let contract = match args.scr {
        None => {
            TrafficContract::Cbr(CbrParams::new(Rate::new(args.pcr)).map_err(CliError::domain)?)
        }
        Some(scr) => TrafficContract::Vbr(
            VbrParams::new(Rate::new(args.pcr), Rate::new(scr), args.mbs.max(1))
                .map_err(CliError::domain)?,
        ),
    };
    let arrival = contract
        .worst_case_stream()
        .try_delay(Time::new(args.cdv))
        .map_err(CliError::domain)?;
    let aggregate = BitStream::multiplex_all(std::iter::repeat_n(&arrival, args.count as usize));
    let interference = match args.interference {
        Some(r) => BitStream::constant(Rate::new(r)).map_err(CliError::domain)?,
        None => BitStream::zero(),
    };
    let d = aggregate
        .delay_bound(&interference)
        .map_err(CliError::domain)?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "contract: pcr={} scr={} mbs={}",
        contract.pcr(),
        contract.scr(),
        contract.mbs()
    );
    let _ = writeln!(out, "arrival envelope after cdv {}: {}", args.cdv, arrival);
    let _ = writeln!(
        out,
        "aggregate of {} connections: peak rate {}",
        args.count,
        aggregate.peak_rate()
    );
    let _ = writeln!(
        out,
        "worst-case queueing delay: {} cell times ({:.1} us at 155 Mbps)",
        d,
        d.to_f64() * 2.7
    );
    let _ = writeln!(out, "fits a 32-cell queue: {}", d <= Time::from_integer(32));
    Ok(out)
}

/// `rtcac check`: run every `connect` of the scenario through the
/// distributed setup procedure.
///
/// # Errors
///
/// Returns [`CliError::Domain`] on API-level failures; rejections are
/// reported in the output, not raised.
pub fn check(scenario: &Scenario) -> Result<String, CliError> {
    let mut network = build_network(scenario)?;
    let mut out = String::new();
    let mut connected = 0;
    for spec in &scenario.connections {
        match &spec.route {
            RouteKind::Unicast(route) => match network
                .setup(route, spec.request)
                .map_err(CliError::domain)?
            {
                SetupOutcome::Connected(info) => {
                    connected += 1;
                    let _ = writeln!(
                        out,
                        "{}: CONNECTED guaranteed_delay={} cells over {} hops",
                        spec.name,
                        info.guaranteed_delay(),
                        info.per_hop_bounds().len()
                    );
                }
                SetupOutcome::Rejected(why) => {
                    let _ = writeln!(out, "{}: REJECTED ({why})", spec.name);
                }
            },
            RouteKind::Multicast(tree) => match network
                .setup_multicast(tree, spec.request)
                .map_err(CliError::domain)?
            {
                rtcac_signaling::MulticastOutcome::Connected(info) => {
                    connected += 1;
                    let _ = writeln!(
                        out,
                        "{}: CONNECTED (p2mp) worst_leaf_delay={} cells over {} leaves",
                        spec.name,
                        info.guaranteed_delay(),
                        info.per_leaf().len()
                    );
                }
                rtcac_signaling::MulticastOutcome::Rejected(why) => {
                    let _ = writeln!(out, "{}: REJECTED ({why})", spec.name);
                }
            },
        }
    }
    let _ = writeln!(
        out,
        "summary: {connected}/{} connected",
        scenario.connections.len()
    );
    // Final computed bounds per active port.
    for node in network.topology().switches().map(|n| n.id()) {
        let switch = network.switch(node).map_err(CliError::domain)?;
        for link in switch.active_out_links() {
            for p in switch.config().priorities() {
                let bound = switch.computed_bound(link, p).map_err(CliError::domain)?;
                if bound.is_positive() {
                    let name = scenario
                        .link_name(link)
                        .map(str::to_owned)
                        .unwrap_or_else(|| link.to_string());
                    let _ = writeln!(
                        out,
                        "port {name} {p}: computed bound {bound} / advertised {}",
                        switch.advertised_bound(p).map_err(CliError::domain)?
                    );
                }
            }
        }
    }
    Ok(out)
}

/// Per-setup results of one engine batch: admission outcome, or the
/// engine-side failure that kept a setup from finishing.
type BatchResults = Vec<Result<EngineOutcome, rtcac_engine::EngineError>>;

/// Builds the sharded engine for a scenario (optionally observed by an
/// explicit registry) and pushes every unicast `connect` through it as
/// one batch served by `workers` threads.
fn run_engine_scenario(
    scenario: &Scenario,
    workers: usize,
    registry: Option<&Arc<rtcac_obs::Registry>>,
) -> Result<(Arc<AdmissionEngine>, BatchResults), CliError> {
    let default =
        rtcac_cac::SwitchConfig::uniform(1, Time::from_integer(32)).map_err(CliError::domain)?;
    let mut engine = match registry {
        Some(registry) => AdmissionEngine::with_registry(
            scenario.topology.clone(),
            default,
            scenario.policy,
            Arc::clone(registry),
        ),
        None => AdmissionEngine::new(scenario.topology.clone(), default, scenario.policy),
    };
    for (&node, config) in &scenario.switch_configs {
        engine
            .configure_switch(node, config.clone())
            .map_err(CliError::domain)?;
    }
    let engine = Arc::new(engine);

    let mut jobs = Vec::new();
    for spec in &scenario.connections {
        match &spec.route {
            RouteKind::Unicast(route) => jobs.push((route.clone(), spec.request)),
            RouteKind::Multicast(_) => {
                return Err(CliError::Usage(format!(
                    "'{}' is point-to-multipoint; the engine serves unicast setups \
                     (use 'rtcac check' for multicast scenarios)",
                    spec.name
                )))
            }
        }
    }
    let outcomes = run_batch(&engine, jobs, workers.max(1)).map_err(CliError::domain)?;
    Ok((engine, outcomes))
}

/// `rtcac engine`: push every unicast `connect` of the scenario
/// through the concurrent sharded admission engine as one batch served
/// by `workers` threads, then report outcomes, engine statistics, and
/// the final computed port bounds.
///
/// With `metrics_path`, the run is observed by a fresh
/// [`rtcac_obs::Registry`] whose final snapshot is written to
/// `metrics_path` in Prometheus text format and to `metrics_path.json`
/// in JSON.
///
/// # Errors
///
/// Returns [`CliError::Usage`] if the scenario contains multicast
/// connections (the engine serves unicast setups) and
/// [`CliError::Domain`] on API-level failures; rejections are reported
/// in the output, not raised.
pub fn engine(
    scenario: &Scenario,
    workers: usize,
    metrics_path: Option<&str>,
) -> Result<String, CliError> {
    let registry = metrics_path.map(|_| Arc::new(rtcac_obs::Registry::new()));
    let (engine, outcomes) = run_engine_scenario(scenario, workers, registry.as_ref())?;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "engine: {} setups through {} workers over {} shards",
        outcomes.len(),
        workers.max(1),
        scenario.topology.switches().count()
    );
    for (spec, outcome) in scenario.connections.iter().zip(&outcomes) {
        match outcome.as_ref().map_err(|e| CliError::domain(e.clone()))? {
            EngineOutcome::Admitted {
                guaranteed_delay, ..
            } => {
                let _ = writeln!(
                    out,
                    "{}: ADMITTED guaranteed_delay={guaranteed_delay} cells",
                    spec.name
                );
            }
            EngineOutcome::Rejected { rejection, .. } => {
                let _ = writeln!(out, "{}: REJECTED ({rejection})", spec.name);
            }
        }
    }
    let stats = engine.stats();
    let _ = writeln!(
        out,
        "stats: submitted={} admitted={} rejected={} aborted={} cache {}/{} hits",
        stats.submitted,
        stats.admitted,
        stats.rejected,
        stats.aborted,
        stats.cache_hits,
        stats.cache_hits + stats.cache_misses
    );
    // Final computed bounds per active port, served from the shard
    // caches (warm after the batch).
    for node in scenario.topology.switches().map(|n| n.id()) {
        if engine
            .shard_connection_count(node)
            .map_err(CliError::domain)?
            == 0
        {
            continue;
        }
        let config = scenario
            .switch_configs
            .get(&node)
            .cloned()
            .unwrap_or_else(|| {
                rtcac_cac::SwitchConfig::uniform(1, Time::from_integer(32)).unwrap()
            });
        for link in scenario.topology.links_from(node).map(|l| l.id()) {
            for p in config.priorities() {
                let bound = engine
                    .computed_bound(node, link, p)
                    .map_err(CliError::domain)?;
                if bound.is_positive() {
                    let _ = writeln!(
                        out,
                        "port {} {p}: computed bound {bound} / advertised {}",
                        link_label(scenario, link),
                        config.bound(p).map_err(CliError::domain)?
                    );
                }
            }
        }
    }
    if let (Some(path), Some(registry)) = (metrics_path, &registry) {
        let snapshot = registry.snapshot();
        let json_path = format!("{path}.json");
        std::fs::write(path, snapshot.to_prometheus())
            .map_err(|e| CliError::Domain(format!("cannot write '{path}': {e}")))?;
        std::fs::write(&json_path, snapshot.to_json())
            .map_err(|e| CliError::Domain(format!("cannot write '{json_path}': {e}")))?;
        let _ = writeln!(
            out,
            "metrics: wrote {path} (prometheus) and {json_path} (json)"
        );
    }
    Ok(out)
}

/// `rtcac stats`: push the scenario through the sharded engine under a
/// fresh [`rtcac_obs::Registry`] and print the resulting metrics
/// snapshot — Prometheus text by default, JSON with `json`. The output
/// is the bare exposition, suitable for piping.
///
/// # Errors
///
/// As [`engine`].
pub fn stats(scenario: &Scenario, workers: usize, json: bool) -> Result<String, CliError> {
    let registry = Arc::new(rtcac_obs::Registry::new());
    let (_engine, _outcomes) = run_engine_scenario(scenario, workers, Some(&registry))?;
    let snapshot = registry.snapshot();
    Ok(if json {
        snapshot.to_json()
    } else {
        snapshot.to_prometheus()
    })
}

/// `rtcac simulate`: admit the scenario, then measure it with greedy
/// worst-case sources in the cell-level simulator.
///
/// # Errors
///
/// Returns [`CliError::Domain`] on simulation assembly failures.
pub fn simulate(
    scenario: &Scenario,
    slots: u64,
    jitter: Option<(u64, u64)>,
) -> Result<String, CliError> {
    let mut network = build_network(scenario)?;
    let mut admitted_names: Vec<(rtcac_cac::ConnectionId, String)> = Vec::new();
    for spec in &scenario.connections {
        match &spec.route {
            RouteKind::Unicast(route) => {
                if let SetupOutcome::Connected(info) = network
                    .setup(route, spec.request)
                    .map_err(CliError::domain)?
                {
                    admitted_names.push((info.id(), spec.name.clone()));
                }
            }
            RouteKind::Multicast(tree) => {
                if let rtcac_signaling::MulticastOutcome::Connected(info) = network
                    .setup_multicast(tree, spec.request)
                    .map_err(CliError::domain)?
                {
                    admitted_names.push((info.id(), spec.name.clone()));
                }
            }
        }
    }
    let mut sim = Simulation::from_network(&network);
    for info in network.multicast_connections() {
        sim.add_multicast(
            info.id(),
            info.tree(),
            info.request().priority(),
            info.request().contract(),
            rtcac_sim::TrafficPattern::Greedy,
        )
        .map_err(CliError::domain)?;
    }
    if let Some((max, seed)) = jitter {
        sim.set_link_jitter(max, seed);
    }
    let report = sim.run(slots);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "simulated {} slots, {} connections, drops={}",
        report.slots(),
        admitted_names.len(),
        report.total_drops()
    );
    for (id, name) in &admitted_names {
        let stats = report
            .connection(*id)
            .ok_or_else(|| CliError::Domain(format!("no stats for connection {name}")))?;
        let (guarantee, hops) = if let Some(info) = network.connection(*id) {
            (info.guaranteed_delay(), info.route().links().len() as u64)
        } else if let Some(info) = network.multicast_connection(*id) {
            let longest = info
                .tree()
                .leaf_paths(network.topology())
                .map_err(CliError::domain)?
                .iter()
                .map(|(_, p)| p.len())
                .max()
                .unwrap_or(0) as u64;
            (info.guaranteed_delay(), longest)
        } else {
            return Err(CliError::Domain(format!("lost connection {name}")));
        };
        let _ = writeln!(
            out,
            "{name}: emitted={} delivered={} max_e2e={} cells (guaranteed queueing {guarantee} + {hops} transmission)",
            stats.emitted,
            stats.delivered,
            stats.max_delay,
        );
    }
    Ok(out)
}

/// Parameters of the `rtnet` analysis command.
#[derive(Debug, Clone)]
pub struct RtnetArgs {
    /// Ring nodes.
    pub nodes: usize,
    /// Terminals per node.
    pub terminals: usize,
    /// Total normalized load.
    pub load: Ratio,
    /// Big-terminal share (None = symmetric).
    pub share: Option<Ratio>,
    /// Soft CDV accumulation.
    pub soft: bool,
}

/// `rtcac rtnet`: ring analysis for a symmetric or asymmetric load.
///
/// # Errors
///
/// Returns [`CliError::Domain`] for invalid parameters.
pub fn rtnet(args: &RtnetArgs) -> Result<String, CliError> {
    let mode = if args.soft {
        CdvMode::SoftSqrt
    } else {
        CdvMode::Hard
    };
    let analysis = match args.share {
        None => workload::symmetric_with(args.nodes, args.terminals, args.load, mode),
        Some(share) => workload::asymmetric_with(
            args.nodes,
            args.terminals,
            args.load,
            share,
            mode,
            workload::PrioritySplit::SingleLevel,
        ),
    }
    .map_err(CliError::domain)?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "rtnet: {} nodes x {} terminals, load {}, {} cdv",
        args.nodes,
        args.terminals,
        args.load,
        if args.soft { "soft" } else { "hard" }
    );
    match analysis.port_bounds(Priority::HIGHEST) {
        Ok(bounds) => {
            let worst = bounds.iter().max().copied().unwrap_or(Time::ZERO);
            let _ = writeln!(out, "worst port bound: {:.2} cells", worst.to_f64());
            let e2e = analysis
                .end_to_end_bound(Priority::HIGHEST)
                .map_err(CliError::domain)?;
            let _ = writeln!(
                out,
                "end-to-end bound: {:.2} cells ({:.3} ms)",
                e2e.to_f64(),
                e2e.to_f64() / 370.0
            );
            let _ = writeln!(
                out,
                "admissible (32-cell queues): {}",
                analysis.admissible().map_err(CliError::domain)?
            );
        }
        Err(_) => {
            let _ = writeln!(out, "worst port bound: unbounded (long-run overload)");
            let _ = writeln!(out, "admissible (32-cell queues): false");
        }
    }
    Ok(out)
}

fn build_network(scenario: &Scenario) -> Result<Network, CliError> {
    let default =
        rtcac_cac::SwitchConfig::uniform(1, Time::from_integer(32)).map_err(CliError::domain)?;
    let mut network = Network::new(scenario.topology.clone(), default, scenario.policy);
    for (&node, config) in &scenario.switch_configs {
        network
            .configure_switch(node, config.clone())
            .map_err(CliError::domain)?;
    }
    Ok(network)
}

/// Pretty-prints an active link for reports.
pub fn link_label(scenario: &Scenario, link: LinkId) -> String {
    scenario
        .link_name(link)
        .map(str::to_owned)
        .unwrap_or_else(|| link.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtcac_rational::ratio;

    const SCENARIO: &str = r#"
switch s1 bounds=32
switch s2 bounds=32
endsystem h1
endsystem h1b
endsystem h2
link up   h1  s1
link upb  h1b s1
link mid  s1 s2
link down s2 h2
connect fast route=up,mid,down contract=cbr:1/8 delay=64
connect big  route=upb,mid,down contract=vbr:1/2,1/10,16 delay=64
connect tiny route=up,mid,down contract=cbr:1/32 delay=64
"#;

    #[test]
    fn bound_calculator_cbr() {
        let out = bound(&BoundArgs {
            pcr: ratio(1, 8),
            scr: None,
            mbs: 1,
            cdv: ratio(64, 1),
            count: 4,
            interference: None,
        })
        .unwrap();
        assert!(out.contains("worst-case queueing delay"));
        assert!(out.contains("fits a 32-cell queue: true"));
    }

    #[test]
    fn bound_calculator_detects_overload() {
        let err = bound(&BoundArgs {
            pcr: ratio(1, 2),
            scr: None,
            mbs: 1,
            cdv: ratio(0, 1),
            count: 3,
            interference: None,
        })
        .unwrap_err();
        assert!(err.to_string().contains("unbounded"));
    }

    #[test]
    fn bound_with_interference_is_larger() {
        let base = BoundArgs {
            pcr: ratio(1, 8),
            scr: None,
            mbs: 1,
            cdv: ratio(32, 1),
            count: 4,
            interference: None,
        };
        let without = bound(&base).unwrap();
        let with = bound(&BoundArgs {
            interference: Some(ratio(1, 2)),
            ..base
        })
        .unwrap();
        assert_ne!(without, with);
    }

    #[test]
    fn check_reports_outcomes_and_ports() {
        let scenario = Scenario::parse(SCENARIO).unwrap();
        let out = check(&scenario).unwrap();
        assert!(out.contains("fast: CONNECTED"));
        assert!(out.contains("summary:"));
        assert!(out.contains("port "));
    }

    #[test]
    fn engine_reports_outcomes_stats_and_ports() {
        let scenario = Scenario::parse(SCENARIO).unwrap();
        let out = engine(&scenario, 2, None).unwrap();
        assert!(out.contains("engine: 3 setups through 2 workers"), "{out}");
        assert!(out.contains("fast: ADMITTED"), "{out}");
        assert!(out.contains("stats: submitted=3 admitted="), "{out}");
        assert!(out.contains("port "), "{out}");
        // The concurrent engine must agree with the serial check on
        // every per-connection verdict.
        let serial = check(&scenario).unwrap();
        for spec in &scenario.connections {
            let connected = serial.contains(&format!("{}: CONNECTED", spec.name));
            assert_eq!(
                out.contains(&format!("{}: ADMITTED", spec.name)),
                connected,
                "{}\nvs\n{}",
                out,
                serial
            );
        }
    }

    #[test]
    fn engine_refuses_multicast_scenarios() {
        let scenario = Scenario::parse(MULTICAST_SCENARIO).unwrap();
        let err = engine(&scenario, 2, None).unwrap_err();
        assert!(err.to_string().contains("point-to-multipoint"), "{err}");
    }

    #[test]
    fn engine_writes_metrics_files() {
        let scenario = Scenario::parse(SCENARIO).unwrap();
        let dir = std::env::temp_dir().join("rtcac-cli-metrics-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.prom");
        let path_str = path.to_str().unwrap();
        let out = engine(&scenario, 2, Some(path_str)).unwrap();
        assert!(out.contains("metrics: wrote"), "{out}");

        let prom = std::fs::read_to_string(&path).unwrap();
        assert!(prom.contains("engine_setups_submitted_total 3"), "{prom}");
        assert!(prom.contains("engine_reserve_ns_count"), "{prom}");
        assert!(prom.contains("engine_sof_cache"), "{prom}");
        assert!(prom.contains("engine_shard_lock_wait_ns"), "{prom}");

        let json = std::fs::read_to_string(format!("{path_str}.json")).unwrap();
        assert!(json.contains("\"engine_setups_submitted_total\""), "{json}");
        assert!(json.contains("engine_reserve_ns"), "{json}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stats_prints_bare_exposition() {
        let scenario = Scenario::parse(SCENARIO).unwrap();
        let prom = stats(&scenario, 2, false).unwrap();
        assert!(prom.starts_with("# TYPE"), "{prom}");
        assert!(prom.contains("engine_setups_submitted_total 3"), "{prom}");
        let json = stats(&scenario, 2, true).unwrap();
        assert!(json.trim_start().starts_with('{'), "{json}");
        assert!(json.contains("engine_setups_submitted_total"), "{json}");
    }

    #[test]
    fn simulate_reports_measurements() {
        let scenario = Scenario::parse(SCENARIO).unwrap();
        let out = simulate(&scenario, 20_000, None).unwrap();
        assert!(out.contains("simulated 20000 slots"));
        assert!(out.contains("drops=0"));
        assert!(out.contains("fast: emitted="));
        let jittered = simulate(&scenario, 20_000, Some((4, 7))).unwrap();
        assert!(jittered.contains("drops=0"));
    }

    const MULTICAST_SCENARIO: &str = r#"
switch s1 bounds=32
endsystem src
endsystem a
endsystem b
link up src s1
link da  s1 a
link db  s1 b
mconnect cast tree=up,da,db contract=cbr:1/16 delay=32
connect  pair from=src to=a contract=cbr:1/32 delay=32
"#;

    #[test]
    fn check_and_simulate_multicast_scenario() {
        let scenario = Scenario::parse(MULTICAST_SCENARIO).unwrap();
        let out = check(&scenario).unwrap();
        assert!(out.contains("cast: CONNECTED (p2mp)"), "{out}");
        assert!(out.contains("pair: CONNECTED"), "{out}");
        let sim_out = simulate(&scenario, 20_000, None).unwrap();
        assert!(sim_out.contains("cast: emitted="), "{sim_out}");
        assert!(sim_out.contains("drops=0"), "{sim_out}");
    }

    #[test]
    fn rtnet_symmetric_and_asymmetric() {
        let out = rtnet(&RtnetArgs {
            nodes: 16,
            terminals: 1,
            load: ratio(3, 4),
            share: None,
            soft: false,
        })
        .unwrap();
        assert!(out.contains("admissible (32-cell queues): true"));
        let out = rtnet(&RtnetArgs {
            nodes: 16,
            terminals: 16,
            load: ratio(3, 4),
            share: Some(ratio(1, 2)),
            soft: false,
        })
        .unwrap();
        assert!(out.contains("admissible (32-cell queues): false"));
        let soft = rtnet(&RtnetArgs {
            nodes: 16,
            terminals: 4,
            load: ratio(1, 2),
            share: Some(ratio(1, 4)),
            soft: true,
        })
        .unwrap();
        assert!(soft.contains("soft cdv"));
    }

    #[test]
    fn rtnet_overloaded_reports_unbounded() {
        let out = rtnet(&RtnetArgs {
            nodes: 4,
            terminals: 1,
            load: ratio(1, 1),
            share: None,
            soft: false,
        })
        .unwrap();
        // 4 nodes at full load: each link carries 3/4 of 4 nodes' worth
        // of traffic = 3/4... actually admissibility depends; just check
        // the command completes and prints a verdict.
        assert!(out.contains("admissible"));
    }
}
