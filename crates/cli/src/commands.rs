//! The CLI commands, as pure functions returning their report text
//! (the binary just prints; tests assert on the strings).

use std::fmt::Write as _;
use std::sync::Arc;

use rtcac_bitstream::{BitStream, CbrParams, Rate, Time, TrafficContract, VbrParams};
use rtcac_cac::Priority;
use rtcac_engine::{AdmissionEngine, EngineOutcome, EnginePool};
use rtcac_fault::{endpoint_pairs, run_chaos, ChaosConfig, ChaosReport, FaultPlan};
use rtcac_net::{LinkId, NodeId};
use rtcac_obs::{chrome_trace, render_spans, Sampling, Tracer};
use rtcac_rational::Ratio;
use rtcac_rtnet::{workload, CdvMode};
use rtcac_signaling::{CrankbackPolicy, Network, SetupOutcome};
use rtcac_sim::Simulation;

use crate::scenario::{ConnectionSpec, RouteKind, Scenario, ScenarioAction};
use crate::CliError;

/// Parameters of the `bound` calculator.
#[derive(Debug, Clone)]
pub struct BoundArgs {
    /// Peak cell rate (normalized).
    pub pcr: Ratio,
    /// Sustainable cell rate (defaults to `pcr`, i.e. CBR).
    pub scr: Option<Ratio>,
    /// Maximum burst size (defaults to 1).
    pub mbs: u64,
    /// Accumulated upstream CDV in cell times.
    pub cdv: Ratio,
    /// Number of identical connections multiplexed at the port.
    pub count: u32,
    /// Constant higher-priority interference rate, if any.
    pub interference: Option<Ratio>,
}

/// `rtcac bound`: the worst-case queueing delay of `count` identical
/// jitter-distorted connections at one output port.
///
/// # Errors
///
/// Returns [`CliError::Usage`] for invalid parameters and
/// [`CliError::Domain`] for overload.
pub fn bound(args: &BoundArgs) -> Result<String, CliError> {
    if args.count == 0 {
        return Err(CliError::Usage("--count must be at least 1".into()));
    }
    let contract = match args.scr {
        None => {
            TrafficContract::Cbr(CbrParams::new(Rate::new(args.pcr)).map_err(CliError::domain)?)
        }
        Some(scr) => TrafficContract::Vbr(
            VbrParams::new(Rate::new(args.pcr), Rate::new(scr), args.mbs.max(1))
                .map_err(CliError::domain)?,
        ),
    };
    let arrival = contract
        .worst_case_stream()
        .try_delay(Time::new(args.cdv))
        .map_err(CliError::domain)?;
    let aggregate = BitStream::multiplex_all(std::iter::repeat_n(&arrival, args.count as usize));
    let interference = match args.interference {
        Some(r) => BitStream::constant(Rate::new(r)).map_err(CliError::domain)?,
        None => BitStream::zero(),
    };
    let d = aggregate
        .delay_bound(&interference)
        .map_err(CliError::domain)?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "contract: pcr={} scr={} mbs={}",
        contract.pcr(),
        contract.scr(),
        contract.mbs()
    );
    let _ = writeln!(out, "arrival envelope after cdv {}: {}", args.cdv, arrival);
    let _ = writeln!(
        out,
        "aggregate of {} connections: peak rate {}",
        args.count,
        aggregate.peak_rate()
    );
    let _ = writeln!(
        out,
        "worst-case queueing delay: {} cell times ({:.1} us at 155 Mbps)",
        d,
        d.to_f64() * 2.7
    );
    let _ = writeln!(out, "fits a 32-cell queue: {}", d <= Time::from_integer(32));
    Ok(out)
}

/// `rtcac check`: replay the scenario's actions in file order through
/// the distributed setup procedure — connects (with optional ATM
/// crankback), element failures and repairs, and seeded chaos
/// sessions.
///
/// # Errors
///
/// Returns [`CliError::Domain`] on API-level failures or when an
/// embedded `chaos` directive violates the engine's safety invariants;
/// CAC rejections are reported in the output, not raised.
pub fn check(scenario: &Scenario) -> Result<String, CliError> {
    let mut network = build_network(scenario)?;
    let mut out = String::new();
    let mut connected = 0;
    let mut established: std::collections::BTreeMap<usize, rtcac_cac::ConnectionId> =
        std::collections::BTreeMap::new();
    for action in &scenario.actions {
        match *action {
            ScenarioAction::Connect(i) => {
                let spec = &scenario.connections[i];
                if let Some(id) = connect_one(&mut network, scenario, spec, &mut out)? {
                    connected += 1;
                    established.insert(i, id);
                }
            }
            ScenarioAction::Release(i) => {
                let spec = &scenario.connections[i];
                let live = match (&spec.route, established.get(&i)) {
                    (RouteKind::Unicast(_), Some(&id)) if network.connection(id).is_some() => {
                        network.teardown(id).map_err(CliError::domain)?;
                        true
                    }
                    (RouteKind::Multicast(_), Some(&id))
                        if network.multicast_connection(id).is_some() =>
                    {
                        network.teardown_multicast(id).map_err(CliError::domain)?;
                        true
                    }
                    _ => false,
                };
                let _ = writeln!(
                    out,
                    "release {}: {}",
                    spec.name,
                    if live { "released" } else { "not established" }
                );
            }
            ScenarioAction::DegradeLink(link, cdv) => {
                network
                    .set_link_cdv_inflation(link, cdv)
                    .map_err(CliError::domain)?;
                let _ = writeln!(
                    out,
                    "degrade-link {}: cdv +{cdv} cells",
                    link_label(scenario, link)
                );
            }
            ScenarioAction::RestoreLink(link) => {
                network
                    .set_link_cdv_inflation(link, Time::ZERO)
                    .map_err(CliError::domain)?;
                let _ = writeln!(out, "restore-link {}: restored", link_label(scenario, link));
            }
            ScenarioAction::FailLink(link) => {
                let impact = network.fail_link(link).map_err(CliError::domain)?;
                let _ = writeln!(
                    out,
                    "fail-link {}: {}",
                    link_label(scenario, link),
                    if impact.is_changed() {
                        format!("down, {} connection(s) torn down", impact.torn_down().len())
                    } else {
                        "already down".into()
                    }
                );
            }
            ScenarioAction::HealLink(link) => {
                let healed = network.heal_link(link).map_err(CliError::domain)?;
                let _ = writeln!(
                    out,
                    "heal-link {}: {}",
                    link_label(scenario, link),
                    if healed { "restored" } else { "already up" }
                );
            }
            ScenarioAction::FailNode(node) => {
                let impact = network.fail_node(node).map_err(CliError::domain)?;
                let _ = writeln!(
                    out,
                    "fail-node {}: {}",
                    node_label(scenario, node),
                    if impact.is_changed() {
                        format!("down, {} connection(s) torn down", impact.torn_down().len())
                    } else {
                        "already down".into()
                    }
                );
            }
            ScenarioAction::HealNode(node) => {
                let healed = network.heal_node(node).map_err(CliError::domain)?;
                let _ = writeln!(
                    out,
                    "heal-node {}: {}",
                    node_label(scenario, node),
                    if healed { "restored" } else { "already up" }
                );
            }
            ScenarioAction::Chaos { seed, steps, rate } => {
                let report = run_scenario_chaos(scenario, seed, steps, rate, None)?;
                let _ = writeln!(out, "chaos seed={seed} steps={steps} rate={rate}%:");
                for line in report.summary().lines() {
                    let _ = writeln!(out, "  {line}");
                }
                if !report.invariants_hold() {
                    return Err(CliError::Domain(format!(
                        "chaos seed={seed} violated the safety invariants:\n{}",
                        report.summary()
                    )));
                }
            }
        }
    }
    let _ = writeln!(
        out,
        "summary: {connected}/{} connected",
        scenario.connections.len()
    );
    // Final computed bounds per active port.
    for node in network.topology().switches().map(|n| n.id()) {
        let switch = network.switch(node).map_err(CliError::domain)?;
        for link in switch.active_out_links() {
            for p in switch.config().priorities() {
                let bound = switch.computed_bound(link, p).map_err(CliError::domain)?;
                if bound.is_positive() {
                    let name = scenario
                        .link_name(link)
                        .map(str::to_owned)
                        .unwrap_or_else(|| link.to_string());
                    let _ = writeln!(
                        out,
                        "port {name} {p}: computed bound {bound} / advertised {}",
                        switch.advertised_bound(p).map_err(CliError::domain)?
                    );
                }
            }
        }
    }
    Ok(out)
}

/// Establishes one scenario connection over the live network,
/// appending its report line; returns the connection id if it
/// connected.
fn connect_one(
    network: &mut Network,
    scenario: &Scenario,
    spec: &ConnectionSpec,
    out: &mut String,
) -> Result<Option<rtcac_cac::ConnectionId>, CliError> {
    if let Some(retries) = spec.crankback {
        let RouteKind::Unicast(route) = &spec.route else {
            return Err(CliError::Usage(format!(
                "'{}': crankback applies to unicast connects only",
                spec.name
            )));
        };
        let from = route.source(&scenario.topology).map_err(CliError::domain)?;
        let to = route
            .destination(&scenario.topology)
            .map_err(CliError::domain)?;
        let policy = CrankbackPolicy {
            max_retries: retries,
            ..CrankbackPolicy::default()
        };
        let result = network
            .setup_crankback(from, to, spec.request, policy)
            .map_err(CliError::domain)?;
        return Ok(match &result.outcome {
            SetupOutcome::Connected(info) => {
                let _ = writeln!(
                    out,
                    "{}: CONNECTED guaranteed_delay={} cells over {} hops \
                     (crankback: {} rejected attempt(s), backoff {} cells)",
                    spec.name,
                    info.guaranteed_delay(),
                    info.per_hop_bounds().len(),
                    result.attempts.len(),
                    result.backoff_cells
                );
                Some(info.id())
            }
            SetupOutcome::Rejected(why) => {
                let _ = writeln!(
                    out,
                    "{}: REJECTED after {} crankback attempt(s) ({why})",
                    spec.name,
                    result.attempts.len()
                );
                None
            }
        });
    }
    Ok(match &spec.route {
        RouteKind::Unicast(route) => match network
            .setup(route, spec.request)
            .map_err(CliError::domain)?
        {
            SetupOutcome::Connected(info) => {
                let _ = writeln!(
                    out,
                    "{}: CONNECTED guaranteed_delay={} cells over {} hops",
                    spec.name,
                    info.guaranteed_delay(),
                    info.per_hop_bounds().len()
                );
                Some(info.id())
            }
            SetupOutcome::Rejected(why) => {
                let _ = writeln!(out, "{}: REJECTED ({why})", spec.name);
                None
            }
        },
        RouteKind::Multicast(tree) => match network
            .setup_multicast(tree, spec.request)
            .map_err(CliError::domain)?
        {
            rtcac_signaling::MulticastOutcome::Connected(info) => {
                let _ = writeln!(
                    out,
                    "{}: CONNECTED (p2mp) worst_leaf_delay={} cells over {} leaves",
                    spec.name,
                    info.guaranteed_delay(),
                    info.per_leaf().len()
                );
                Some(info.id())
            }
            rtcac_signaling::MulticastOutcome::Rejected(why) => {
                let _ = writeln!(out, "{}: REJECTED ({why})", spec.name);
                None
            }
        },
    })
}

/// Runs a `chaos` scenario directive: a seeded chaos session against a
/// fresh admission engine built over the scenario's topology and
/// switch configs (independent of the signaling network's state).
fn run_scenario_chaos(
    scenario: &Scenario,
    seed: u64,
    steps: u64,
    rate: u64,
    tracer: Option<&rtcac_obs::Tracer>,
) -> Result<ChaosReport, CliError> {
    let mut engine = build_engine(scenario, None)?;
    if let Some(tracer) = tracer {
        engine.set_tracer(tracer.clone());
    }
    let plan = FaultPlan::random(engine.topology(), seed, steps, rate);
    let pairs = endpoint_pairs(engine.topology());
    run_chaos(
        &engine,
        &pairs,
        &plan,
        &ChaosConfig {
            seed,
            steps,
            ..ChaosConfig::default()
        },
    )
    .map_err(CliError::domain)
}

/// Per-setup results of one engine batch: admission outcome, or the
/// engine-side failure that kept a setup from finishing.
type BatchResults = Vec<Result<EngineOutcome, rtcac_engine::EngineError>>;

/// Builds the sharded engine for a scenario (optionally observed by an
/// explicit registry) and pushes every `connect` through it as one
/// batch: unicast setups go to a pool of `workers` threads, while
/// point-to-multipoint setups run through
/// [`AdmissionEngine::admit_multicast`] on the submitting thread —
/// both take the same two-phase reserve/commit path, so the batch is
/// serializable as a whole. Outcomes come back in scenario order.
fn run_engine_scenario(
    scenario: &Scenario,
    workers: usize,
    registry: Option<&Arc<rtcac_obs::Registry>>,
    tracer: Option<&Tracer>,
) -> Result<(Arc<AdmissionEngine>, BatchResults), CliError> {
    if scenario.has_fault_actions() {
        return Err(CliError::Usage(
            "the scenario contains fault directives; replay them serially with \
             'rtcac check' (or run a standalone session with 'rtcac chaos')"
                .into(),
        ));
    }
    let mut engine = build_engine(scenario, registry)?;
    if let Some(tracer) = tracer {
        engine.set_tracer(tracer.clone());
    }
    let engine = Arc::new(engine);

    let mut pool = EnginePool::new(Arc::clone(&engine), workers.max(1));
    let mut slots: Vec<Option<Result<EngineOutcome, rtcac_engine::EngineError>>> =
        Vec::with_capacity(scenario.connections.len());
    // Scenario index of each pool ticket, in submission order.
    let mut pooled: Vec<usize> = Vec::new();
    for (i, spec) in scenario.connections.iter().enumerate() {
        match &spec.route {
            RouteKind::Unicast(route) => {
                pool.submit(route.clone(), spec.request);
                pooled.push(i);
                slots.push(None);
            }
            RouteKind::Multicast(tree) => {
                slots.push(Some(engine.admit_multicast(tree, spec.request)));
            }
        }
    }
    let results = pool.finish().map_err(CliError::domain)?;
    for (result, &i) in results.into_iter().zip(&pooled) {
        slots[i] = Some(result.outcome);
    }
    let outcomes = slots
        .into_iter()
        .map(|slot| slot.expect("every connect produced an outcome"))
        .collect();
    Ok((engine, outcomes))
}

/// Builds the sharded admission engine for a scenario's topology and
/// switch configs, optionally observed by `registry`.
pub(crate) fn build_engine(
    scenario: &Scenario,
    registry: Option<&Arc<rtcac_obs::Registry>>,
) -> Result<AdmissionEngine, CliError> {
    let default =
        rtcac_cac::SwitchConfig::uniform(1, Time::from_integer(32)).map_err(CliError::domain)?;
    let mut engine = match registry {
        Some(registry) => AdmissionEngine::with_registry(
            scenario.topology.clone(),
            default,
            scenario.policy,
            Arc::clone(registry),
        ),
        None => AdmissionEngine::new(scenario.topology.clone(), default, scenario.policy),
    };
    for (&node, config) in &scenario.switch_configs {
        engine
            .configure_switch(node, config.clone())
            .map_err(CliError::domain)?;
    }
    Ok(engine)
}

/// `rtcac engine`: push every `connect` of the scenario — unicast and
/// point-to-multipoint — through the concurrent sharded admission
/// engine as one batch served by `workers` threads, then report
/// outcomes, engine statistics, and the final computed port bounds.
///
/// With `metrics_path`, the run is observed by a fresh
/// [`rtcac_obs::Registry`] whose final snapshot is written to
/// `metrics_path` in Prometheus text format and to `metrics_path.json`
/// in JSON.
///
/// # Errors
///
/// Returns [`CliError::Domain`] on API-level failures; rejections are
/// reported in the output, not raised.
pub fn engine(
    scenario: &Scenario,
    workers: usize,
    metrics_path: Option<&str>,
) -> Result<String, CliError> {
    let registry = metrics_path.map(|_| Arc::new(rtcac_obs::Registry::new()));
    let (engine, outcomes) = run_engine_scenario(scenario, workers, registry.as_ref(), None)?;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "engine: {} setups through {} workers over {} shards",
        outcomes.len(),
        workers.max(1),
        scenario.topology.switches().count()
    );
    for (spec, outcome) in scenario.connections.iter().zip(&outcomes) {
        match outcome.as_ref().map_err(|e| CliError::domain(e.clone()))? {
            EngineOutcome::Admitted {
                id,
                guaranteed_delay,
            } => {
                if let RouteKind::Multicast(_) = &spec.route {
                    let leaves = engine.per_leaf_bounds(*id).map_or(0, |b| b.len());
                    let _ = writeln!(
                        out,
                        "{}: ADMITTED (p2mp) worst_leaf_delay={guaranteed_delay} cells over {leaves} leaves",
                        spec.name
                    );
                } else {
                    let _ = writeln!(
                        out,
                        "{}: ADMITTED guaranteed_delay={guaranteed_delay} cells",
                        spec.name
                    );
                }
            }
            EngineOutcome::Rejected { rejection, .. } => {
                let _ = writeln!(out, "{}: REJECTED ({rejection})", spec.name);
            }
            EngineOutcome::Rerouted {
                guaranteed_delay,
                attempts,
                ..
            } => {
                let _ = writeln!(
                    out,
                    "{}: REROUTED after {attempts} attempt(s), guaranteed_delay={guaranteed_delay} cells",
                    spec.name
                );
            }
        }
    }
    let stats = engine.stats();
    let _ = writeln!(
        out,
        "stats: submitted={} admitted={} rejected={} aborted={} rerouted={} mcast={}/{} cache {}/{} hits",
        stats.submitted,
        stats.admitted,
        stats.rejected,
        stats.aborted,
        stats.rerouted,
        stats.mcast_admitted,
        stats.mcast_submitted,
        stats.cache_hits,
        stats.cache_hits + stats.cache_misses
    );
    // Final computed bounds per active port, served from the shard
    // caches (warm after the batch).
    engine_port_report(scenario, &engine, &mut out)?;
    if let (Some(path), Some(registry)) = (metrics_path, &registry) {
        let snapshot = registry.snapshot();
        let json_path = format!("{path}.json");
        write_metrics_file(path, &snapshot.to_prometheus())?;
        write_metrics_file(&json_path, &snapshot.to_json())?;
        let _ = writeln!(
            out,
            "metrics: wrote {path} (prometheus) and {json_path} (json)"
        );
    }
    Ok(out)
}

/// Appends the engine's final computed bounds per active port, served
/// from the shard caches (warm after a batch or replay).
fn engine_port_report(
    scenario: &Scenario,
    engine: &AdmissionEngine,
    out: &mut String,
) -> Result<(), CliError> {
    for node in scenario.topology.switches().map(|n| n.id()) {
        if engine
            .shard_connection_count(node)
            .map_err(CliError::domain)?
            == 0
        {
            continue;
        }
        let config = scenario
            .switch_configs
            .get(&node)
            .cloned()
            .unwrap_or_else(|| {
                rtcac_cac::SwitchConfig::uniform(1, Time::from_integer(32)).unwrap()
            });
        for link in scenario.topology.links_from(node).map(|l| l.id()) {
            for p in config.priorities() {
                let bound = engine
                    .computed_bound(node, link, p)
                    .map_err(CliError::domain)?;
                if bound.is_positive() {
                    let _ = writeln!(
                        out,
                        "port {} {p}: computed bound {bound} / advertised {}",
                        link_label(scenario, link),
                        config.bound(p).map_err(CliError::domain)?
                    );
                }
            }
        }
    }
    Ok(())
}

/// `rtcac check --engine`: replay the scenario's actions in file order
/// through the concurrent sharded engine instead of the serial
/// signaling network — connects (unicast [`AdmissionEngine::admit`]
/// with the engine's own crankback, trees
/// [`AdmissionEngine::admit_multicast`]), element failures and
/// repairs, and seeded chaos sessions. After the replay the orphan
/// audit runs and its count is reported (and published to the
/// `engine_orphaned_reservations` gauge).
///
/// With `metrics_path`, the registry snapshot is written to
/// `metrics_path` (Prometheus text) and `metrics_path.json` after the
/// replay, audit included.
///
/// # Errors
///
/// Returns [`CliError::Domain`] on API-level failures or when an
/// embedded `chaos` directive violates the engine's safety invariants;
/// CAC rejections are reported in the output, not raised.
pub fn check_engine(scenario: &Scenario, metrics_path: Option<&str>) -> Result<String, CliError> {
    let registry = Arc::new(rtcac_obs::Registry::new());
    let engine = build_engine(scenario, Some(&registry))?;
    let mut out = String::new();
    let mut connected = 0;
    let mut established: std::collections::BTreeMap<usize, rtcac_cac::ConnectionId> =
        std::collections::BTreeMap::new();
    for action in &scenario.actions {
        match *action {
            ScenarioAction::Connect(i) => {
                let spec = &scenario.connections[i];
                if let Some(id) = engine_connect_one(&engine, spec, &mut out)? {
                    connected += 1;
                    established.insert(i, id);
                }
            }
            ScenarioAction::Release(i) => {
                let spec = &scenario.connections[i];
                let live = match established.get(&i) {
                    // A fault may have torn the connection down since
                    // it was established; the registry probe keeps the
                    // replay in lockstep with the serial driver.
                    Some(&id) if engine.per_leaf_bounds(id).is_some() => {
                        engine.release(id).map_err(CliError::domain)?;
                        true
                    }
                    _ => false,
                };
                let _ = writeln!(
                    out,
                    "release {}: {}",
                    spec.name,
                    if live { "released" } else { "not established" }
                );
            }
            ScenarioAction::DegradeLink(link, cdv) => {
                engine
                    .set_link_cdv_inflation(link, cdv)
                    .map_err(CliError::domain)?;
                let _ = writeln!(
                    out,
                    "degrade-link {}: cdv +{cdv} cells",
                    link_label(scenario, link)
                );
            }
            ScenarioAction::RestoreLink(link) => {
                engine
                    .set_link_cdv_inflation(link, Time::ZERO)
                    .map_err(CliError::domain)?;
                let _ = writeln!(out, "restore-link {}: restored", link_label(scenario, link));
            }
            ScenarioAction::FailLink(link) => {
                let impact = engine.fail_link(link).map_err(CliError::domain)?;
                let _ = writeln!(
                    out,
                    "fail-link {}: {}",
                    link_label(scenario, link),
                    if impact.is_changed() {
                        format!("down, {} connection(s) torn down", impact.torn_down().len())
                    } else {
                        "already down".into()
                    }
                );
            }
            ScenarioAction::HealLink(link) => {
                let healed = engine.heal_link(link).map_err(CliError::domain)?;
                let _ = writeln!(
                    out,
                    "heal-link {}: {}",
                    link_label(scenario, link),
                    if healed { "restored" } else { "already up" }
                );
            }
            ScenarioAction::FailNode(node) => {
                let impact = engine.fail_node(node).map_err(CliError::domain)?;
                let _ = writeln!(
                    out,
                    "fail-node {}: {}",
                    node_label(scenario, node),
                    if impact.is_changed() {
                        format!("down, {} connection(s) torn down", impact.torn_down().len())
                    } else {
                        "already down".into()
                    }
                );
            }
            ScenarioAction::HealNode(node) => {
                let healed = engine.heal_node(node).map_err(CliError::domain)?;
                let _ = writeln!(
                    out,
                    "heal-node {}: {}",
                    node_label(scenario, node),
                    if healed { "restored" } else { "already up" }
                );
            }
            ScenarioAction::Chaos { seed, steps, rate } => {
                let report = run_scenario_chaos(scenario, seed, steps, rate, None)?;
                let _ = writeln!(out, "chaos seed={seed} steps={steps} rate={rate}%:");
                for line in report.summary().lines() {
                    let _ = writeln!(out, "  {line}");
                }
                if !report.invariants_hold() {
                    return Err(CliError::Domain(format!(
                        "chaos seed={seed} violated the safety invariants:\n{}",
                        report.summary()
                    )));
                }
            }
        }
    }
    let _ = writeln!(
        out,
        "summary: {connected}/{} connected",
        scenario.connections.len()
    );
    let orphans = engine.publish_orphan_audit();
    let _ = writeln!(out, "orphaned reservations: {orphans}");
    engine_port_report(scenario, &engine, &mut out)?;
    if let Some(path) = metrics_path {
        let snapshot = registry.snapshot();
        let json_path = format!("{path}.json");
        write_metrics_file(path, &snapshot.to_prometheus())?;
        write_metrics_file(&json_path, &snapshot.to_json())?;
        let _ = writeln!(
            out,
            "metrics: wrote {path} (prometheus) and {json_path} (json)"
        );
    }
    Ok(out)
}

/// Establishes one scenario connection through the engine, appending
/// its report line; returns 1 if it connected. Unlike the serial
/// replay, crankback is the engine's built-in reroute search — a
/// `crankback=` budget on the spec selects it but the engine decides
/// the attempts.
fn engine_connect_one(
    engine: &AdmissionEngine,
    spec: &ConnectionSpec,
    out: &mut String,
) -> Result<Option<rtcac_cac::ConnectionId>, CliError> {
    let outcome = match &spec.route {
        RouteKind::Unicast(route) => engine
            .admit(route, spec.request)
            .map_err(CliError::domain)?,
        RouteKind::Multicast(tree) => engine
            .admit_multicast(tree, spec.request)
            .map_err(CliError::domain)?,
    };
    Ok(match outcome {
        EngineOutcome::Admitted {
            id,
            guaranteed_delay,
        } => {
            if let RouteKind::Multicast(_) = &spec.route {
                let leaves = engine.per_leaf_bounds(id).map_or(0, |b| b.len());
                let _ = writeln!(
                    out,
                    "{}: CONNECTED (p2mp) worst_leaf_delay={guaranteed_delay} cells over {leaves} leaves",
                    spec.name
                );
            } else {
                let _ = writeln!(
                    out,
                    "{}: CONNECTED guaranteed_delay={guaranteed_delay} cells",
                    spec.name
                );
            }
            Some(id)
        }
        EngineOutcome::Rerouted {
            id,
            guaranteed_delay,
            attempts,
            ..
        } => {
            let _ = writeln!(
                out,
                "{}: CONNECTED guaranteed_delay={guaranteed_delay} cells \
                 (rerouted after {attempts} attempt(s))",
                spec.name
            );
            Some(id)
        }
        EngineOutcome::Rejected { rejection, .. } => {
            let _ = writeln!(out, "{}: REJECTED ({rejection})", spec.name);
            None
        }
    })
}

/// Writes a metrics exposition to `path`, creating any missing parent
/// directories first (so `--metrics out/run/metrics.prom` works on a
/// fresh checkout).
///
/// # Errors
///
/// Returns [`CliError::Domain`] naming the path when the directory
/// cannot be created or the file cannot be written.
pub(crate) fn write_metrics_file(path: &str, contents: &str) -> Result<(), CliError> {
    let target = std::path::Path::new(path);
    if let Some(parent) = target.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).map_err(|e| {
                CliError::Domain(format!(
                    "cannot create metrics directory '{}': {e}",
                    parent.display()
                ))
            })?;
        }
    }
    std::fs::write(target, contents)
        .map_err(|e| CliError::Domain(format!("cannot write '{path}': {e}")))
}

/// `rtcac stats`: push the scenario through the sharded engine under a
/// fresh [`rtcac_obs::Registry`] and print the resulting metrics
/// snapshot — Prometheus text by default, JSON with `json`. The output
/// is the bare exposition, suitable for piping.
///
/// # Errors
///
/// As [`engine`].
pub fn stats(scenario: &Scenario, workers: usize, json: bool) -> Result<String, CliError> {
    let registry = Arc::new(rtcac_obs::Registry::new());
    // A registry-linked tracer rides along so the exposition also
    // carries the per-span duration histograms (`trace_span_ns`) and
    // the span-ring accounting.
    let tracer = Tracer::with_registry(Sampling::Always, Arc::clone(&registry));
    let (_engine, _outcomes) =
        run_engine_scenario(scenario, workers, Some(&registry), Some(&tracer))?;
    registry
        .gauge("obs_trace_spans_recorded")
        .set(tracer.recorded());
    registry
        .gauge("obs_trace_spans_dropped")
        .set(tracer.dropped());
    registry
        .gauge("obs_trace_spans_evicted")
        .set(tracer.evicted());
    let snapshot = registry.snapshot();
    Ok(if json {
        snapshot.to_json()
    } else {
        snapshot.to_prometheus()
    })
}

/// `rtcac trace`: replay the scenario with an always-sampling
/// [`Tracer`] installed and print the causal span tree of every setup
/// — queue wait (engine mode), crankback attempts, the
/// price/reserve/commit phases, per-hop admission events, and
/// `reject.provenance` events carrying the refusing hop's
/// bound-vs-deadline comparison. Serial replay by default; with
/// `engine_mode` the same scenario runs through the concurrent sharded
/// engine (fault directives replay on the submitting thread, plain
/// batches go through the worker pool so traces cover the queue wait).
/// With `out_path`, the spans are also written as Chrome
/// `trace_event` JSON loadable in `chrome://tracing` / Perfetto.
///
/// # Errors
///
/// Returns [`CliError::Domain`] on API-level failures; rejections are
/// traced, not raised.
pub fn trace(
    scenario: &Scenario,
    engine_mode: bool,
    workers: usize,
    out_path: Option<&str>,
) -> Result<String, CliError> {
    let tracer = Tracer::new(Sampling::Always);
    let mut out = String::new();
    if engine_mode {
        if scenario.has_fault_actions() {
            let mut engine = build_engine(scenario, None)?;
            engine.set_tracer(tracer.clone());
            let mut established: std::collections::BTreeMap<usize, rtcac_cac::ConnectionId> =
                std::collections::BTreeMap::new();
            for action in &scenario.actions {
                match *action {
                    ScenarioAction::Connect(i) => {
                        if let Some(id) =
                            engine_connect_one(&engine, &scenario.connections[i], &mut out)?
                        {
                            established.insert(i, id);
                        }
                    }
                    ScenarioAction::Release(i) => {
                        let spec = &scenario.connections[i];
                        let live = match established.get(&i) {
                            Some(&id) if engine.per_leaf_bounds(id).is_some() => {
                                engine.release(id).map_err(CliError::domain)?;
                                true
                            }
                            _ => false,
                        };
                        let _ = writeln!(
                            out,
                            "release {}: {}",
                            spec.name,
                            if live { "released" } else { "not established" }
                        );
                    }
                    ScenarioAction::DegradeLink(link, cdv) => {
                        engine
                            .set_link_cdv_inflation(link, cdv)
                            .map_err(CliError::domain)?;
                        let _ = writeln!(
                            out,
                            "degrade-link {}: cdv +{cdv} cells",
                            link_label(scenario, link)
                        );
                    }
                    ScenarioAction::RestoreLink(link) => {
                        engine
                            .set_link_cdv_inflation(link, Time::ZERO)
                            .map_err(CliError::domain)?;
                        let _ =
                            writeln!(out, "restore-link {}: restored", link_label(scenario, link));
                    }
                    ScenarioAction::FailLink(link) => {
                        engine.fail_link(link).map_err(CliError::domain)?;
                        let _ = writeln!(out, "fail-link {}", link_label(scenario, link));
                    }
                    ScenarioAction::HealLink(link) => {
                        engine.heal_link(link).map_err(CliError::domain)?;
                        let _ = writeln!(out, "heal-link {}", link_label(scenario, link));
                    }
                    ScenarioAction::FailNode(node) => {
                        engine.fail_node(node).map_err(CliError::domain)?;
                        let _ = writeln!(out, "fail-node {}", node_label(scenario, node));
                    }
                    ScenarioAction::HealNode(node) => {
                        engine.heal_node(node).map_err(CliError::domain)?;
                        let _ = writeln!(out, "heal-node {}", node_label(scenario, node));
                    }
                    ScenarioAction::Chaos { seed, steps, rate } => {
                        let report =
                            run_scenario_chaos(scenario, seed, steps, rate, Some(&tracer))?;
                        let _ = writeln!(
                            out,
                            "chaos seed={seed} steps={steps} rate={rate}%: invariants {}",
                            if report.invariants_hold() {
                                "OK"
                            } else {
                                "VIOLATED"
                            }
                        );
                    }
                }
            }
        } else {
            let (_engine, outcomes) = run_engine_scenario(scenario, workers, None, Some(&tracer))?;
            for (spec, outcome) in scenario.connections.iter().zip(&outcomes) {
                let verdict = match outcome.as_ref().map_err(|e| CliError::domain(e.clone()))? {
                    EngineOutcome::Admitted { .. } => "ADMITTED",
                    EngineOutcome::Rerouted { .. } => "REROUTED",
                    EngineOutcome::Rejected { .. } => "REJECTED",
                };
                let _ = writeln!(out, "{}: {verdict}", spec.name);
            }
        }
    } else {
        let mut network = build_network(scenario)?;
        network.set_tracer(tracer.clone());
        let mut established: std::collections::BTreeMap<usize, rtcac_cac::ConnectionId> =
            std::collections::BTreeMap::new();
        for action in &scenario.actions {
            match *action {
                ScenarioAction::Connect(i) => {
                    if let Some(id) =
                        connect_one(&mut network, scenario, &scenario.connections[i], &mut out)?
                    {
                        established.insert(i, id);
                    }
                }
                ScenarioAction::Release(i) => {
                    let spec = &scenario.connections[i];
                    let live = match (&spec.route, established.get(&i)) {
                        (RouteKind::Unicast(_), Some(&id)) if network.connection(id).is_some() => {
                            network.teardown(id).map_err(CliError::domain)?;
                            true
                        }
                        (RouteKind::Multicast(_), Some(&id))
                            if network.multicast_connection(id).is_some() =>
                        {
                            network.teardown_multicast(id).map_err(CliError::domain)?;
                            true
                        }
                        _ => false,
                    };
                    let _ = writeln!(
                        out,
                        "release {}: {}",
                        spec.name,
                        if live { "released" } else { "not established" }
                    );
                }
                ScenarioAction::DegradeLink(link, cdv) => {
                    network
                        .set_link_cdv_inflation(link, cdv)
                        .map_err(CliError::domain)?;
                    let _ = writeln!(
                        out,
                        "degrade-link {}: cdv +{cdv} cells",
                        link_label(scenario, link)
                    );
                }
                ScenarioAction::RestoreLink(link) => {
                    network
                        .set_link_cdv_inflation(link, Time::ZERO)
                        .map_err(CliError::domain)?;
                    let _ = writeln!(out, "restore-link {}: restored", link_label(scenario, link));
                }
                ScenarioAction::FailLink(link) => {
                    network.fail_link(link).map_err(CliError::domain)?;
                    let _ = writeln!(out, "fail-link {}", link_label(scenario, link));
                }
                ScenarioAction::HealLink(link) => {
                    network.heal_link(link).map_err(CliError::domain)?;
                    let _ = writeln!(out, "heal-link {}", link_label(scenario, link));
                }
                ScenarioAction::FailNode(node) => {
                    network.fail_node(node).map_err(CliError::domain)?;
                    let _ = writeln!(out, "fail-node {}", node_label(scenario, node));
                }
                ScenarioAction::HealNode(node) => {
                    network.heal_node(node).map_err(CliError::domain)?;
                    let _ = writeln!(out, "heal-node {}", node_label(scenario, node));
                }
                ScenarioAction::Chaos { seed, steps, rate } => {
                    let report = run_scenario_chaos(scenario, seed, steps, rate, Some(&tracer))?;
                    let _ = writeln!(
                        out,
                        "chaos seed={seed} steps={steps} rate={rate}%: invariants {}",
                        if report.invariants_hold() {
                            "OK"
                        } else {
                            "VIOLATED"
                        }
                    );
                }
            }
        }
    }
    let spans = tracer.snapshot();
    let traces = {
        let mut ids: Vec<_> = spans.iter().map(|s| s.trace).collect();
        ids.dedup();
        ids.len()
    };
    let _ = writeln!(
        out,
        "trace: {} span(s) from {} trace(s), recorded={} dropped={} evicted={}",
        spans.len(),
        traces,
        tracer.recorded(),
        tracer.dropped(),
        tracer.evicted()
    );
    out.push_str(&render_spans(&spans));
    if let Some(path) = out_path {
        write_metrics_file(path, &chrome_trace(&spans))?;
        let _ = writeln!(out, "trace: wrote {path} (chrome trace_event json)");
    }
    Ok(out)
}

/// `rtcac why`: replay the scenario serially and print the decision
/// provenance of one named connection — the per-hop
/// [`AdmissionReport`](rtcac_cac::AdmissionReport) ledger showing, for
/// every queueing point on the route, the computed Algorithm 4.1 bound
/// against its advertised-deadline plus the accumulated CDV in and
/// out, with the refusing hop marked.
///
/// # Errors
///
/// Returns [`CliError::Usage`] when no connection carries `conn_name`
/// and [`CliError::Domain`] when its setup never reached pricing (the
/// route was down, so there is no per-hop ledger to show).
pub fn why(scenario: &Scenario, conn_name: &str) -> Result<String, CliError> {
    let target = scenario
        .connections
        .iter()
        .position(|s| s.name == conn_name)
        .ok_or_else(|| {
            CliError::Usage(format!("no connection named '{conn_name}' in the scenario"))
        })?;
    let mut network = build_network(scenario)?;
    let mut scratch = String::new();
    let mut report: Option<rtcac_cac::AdmissionReport> = None;
    let mut established: std::collections::BTreeMap<usize, rtcac_cac::ConnectionId> =
        std::collections::BTreeMap::new();
    for action in &scenario.actions {
        match *action {
            ScenarioAction::Connect(i) => {
                if let Some(id) = connect_one(
                    &mut network,
                    scenario,
                    &scenario.connections[i],
                    &mut scratch,
                )? {
                    established.insert(i, id);
                }
                if i == target {
                    report = network.last_admission_report().cloned();
                }
            }
            ScenarioAction::Release(i) => {
                let spec = &scenario.connections[i];
                match (&spec.route, established.get(&i)) {
                    (RouteKind::Unicast(_), Some(&id)) if network.connection(id).is_some() => {
                        network.teardown(id).map_err(CliError::domain)?;
                    }
                    (RouteKind::Multicast(_), Some(&id))
                        if network.multicast_connection(id).is_some() =>
                    {
                        network.teardown_multicast(id).map_err(CliError::domain)?;
                    }
                    _ => {}
                }
            }
            ScenarioAction::DegradeLink(link, cdv) => {
                network
                    .set_link_cdv_inflation(link, cdv)
                    .map_err(CliError::domain)?;
            }
            ScenarioAction::RestoreLink(link) => {
                network
                    .set_link_cdv_inflation(link, Time::ZERO)
                    .map_err(CliError::domain)?;
            }
            ScenarioAction::FailLink(link) => {
                network.fail_link(link).map_err(CliError::domain)?;
            }
            ScenarioAction::HealLink(link) => {
                network.heal_link(link).map_err(CliError::domain)?;
            }
            ScenarioAction::FailNode(node) => {
                network.fail_node(node).map_err(CliError::domain)?;
            }
            ScenarioAction::HealNode(node) => {
                network.heal_node(node).map_err(CliError::domain)?;
            }
            // Chaos runs against its own engine and cannot move the
            // serial network's state, so a `why` replay skips it.
            ScenarioAction::Chaos { .. } => {}
        }
    }
    let report = report.ok_or_else(|| {
        CliError::Domain(format!(
            "'{conn_name}' produced no admission report (the setup never reached \
             pricing — typically the route was down)"
        ))
    })?;
    let mut out = String::new();
    let _ = writeln!(out, "why {conn_name}:");
    out.push_str(&report.render_with(|n| node_label(scenario, n), |l| link_label(scenario, l)));
    Ok(out)
}

/// One parsed per-worker round of a `BENCH_engine.json` file.
#[derive(Debug, Clone, Copy, PartialEq)]
struct BenchRound {
    workers: u64,
    ops_per_sec: f64,
    p50_ns: f64,
    p99_ns: f64,
}

/// Pulls the numeric value following `"key":` out of one JSON line.
/// The bench files are line-oriented (one round object per line)
/// precisely so this std-only scan is enough to diff them.
fn json_number(line: &str, key: &str) -> Option<f64> {
    let pattern = format!("\"{key}\":");
    let at = line.find(&pattern)? + pattern.len();
    let rest = &line[at..];
    let end = rest.find([',', '}', ']']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

/// Parses the per-worker rounds of a bench JSON file.
fn parse_bench_rounds(text: &str) -> Vec<BenchRound> {
    text.lines()
        .filter_map(|line| {
            Some(BenchRound {
                workers: json_number(line, "workers")? as u64,
                ops_per_sec: json_number(line, "ops_per_sec")?,
                p50_ns: json_number(line, "p50_ns").unwrap_or(0.0),
                p99_ns: json_number(line, "p99_ns").unwrap_or(0.0),
            })
        })
        .collect()
}

/// `rtcac bench-report`: diff two `BENCH_engine.json` files (as written
/// by the `engine_throughput --bench-json` benchmark or `rtcac chaos
/// --bench-json`), comparing per-worker ops/sec and p99 latency and
/// flagging any figure more than 10% worse in the candidate.
///
/// # Errors
///
/// Returns [`CliError::Domain`] when either file cannot be read or
/// holds no per-worker rounds — these are data problems, not
/// command-line mistakes, so the caller reports them as a one-line
/// error without a usage dump.
pub fn bench_report(baseline_path: &str, candidate_path: &str) -> Result<String, CliError> {
    let read = |path: &str| {
        std::fs::read_to_string(path)
            .map_err(|e| CliError::Domain(format!("bench-report: cannot read '{path}': {e}")))
    };
    let baseline_text = read(baseline_path)?;
    let candidate_text = read(candidate_path)?;
    let baseline = parse_bench_rounds(&baseline_text);
    let candidate = parse_bench_rounds(&candidate_text);
    if let Some(path) = [
        (baseline_path, baseline.is_empty()),
        (candidate_path, candidate.is_empty()),
    ]
    .iter()
    .find_map(|(path, empty)| empty.then_some(*path))
    {
        return Err(CliError::Domain(format!(
            "bench-report: no per-worker rounds in '{path}' (expected line-oriented \
             bench JSON with \"workers\" and \"ops_per_sec\" fields)"
        )));
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "bench-report: {baseline_path} (baseline) vs {candidate_path} (candidate)"
    );
    let mut regressions = 0usize;
    for base in &baseline {
        let Some(cand) = candidate.iter().find(|c| c.workers == base.workers) else {
            let _ = writeln!(out, "workers={}: missing from candidate", base.workers);
            regressions += 1;
            continue;
        };
        let ops_delta = (cand.ops_per_sec / base.ops_per_sec - 1.0) * 100.0;
        let ops_flag = if ops_delta < -10.0 {
            regressions += 1;
            "  REGRESSION (>10% slower)"
        } else {
            ""
        };
        let _ = writeln!(
            out,
            "workers={}: ops/sec {:.0} -> {:.0} ({:+.1}%){}",
            base.workers, base.ops_per_sec, cand.ops_per_sec, ops_delta, ops_flag
        );
        if base.p99_ns > 0.0 && cand.p99_ns > 0.0 {
            let p99_delta = (cand.p99_ns / base.p99_ns - 1.0) * 100.0;
            let p99_flag = if p99_delta > 10.0 {
                regressions += 1;
                "  REGRESSION (>10% slower)"
            } else {
                ""
            };
            let _ = writeln!(
                out,
                "workers={}: p99 {:.0}ns -> {:.0}ns ({:+.1}%){}",
                base.workers, base.p99_ns, cand.p99_ns, p99_delta, p99_flag
            );
        }
    }
    for key in ["trace_ab", "obs_ab", "flight_ab"] {
        let deltas: Vec<Option<f64>> = [&baseline_text, &candidate_text]
            .iter()
            .map(|text| {
                text.lines()
                    .find(|l| l.contains(&format!("\"{key}\"")))
                    .and_then(|l| json_number(l, "delta_percent"))
            })
            .collect();
        if let (Some(base), Some(cand)) = (deltas[0], deltas[1]) {
            let _ = writeln!(
                out,
                "{key} overhead: {base:+.1}% (baseline) -> {cand:+.1}% (candidate)"
            );
        }
    }
    let _ = writeln!(out, "regressions: {regressions}");
    Ok(out)
}

/// `rtcac simulate`: admit the scenario, then measure it with greedy
/// worst-case sources in the cell-level simulator.
///
/// # Errors
///
/// Returns [`CliError::Domain`] on simulation assembly failures.
pub fn simulate(
    scenario: &Scenario,
    slots: u64,
    jitter: Option<(u64, u64)>,
) -> Result<String, CliError> {
    if scenario.has_fault_actions() {
        return Err(CliError::Usage(
            "the scenario contains fault directives; the simulator measures a \
             static admitted set — replay faults with 'rtcac check'"
                .into(),
        ));
    }
    let mut network = build_network(scenario)?;
    let mut admitted_names: Vec<(rtcac_cac::ConnectionId, String)> = Vec::new();
    for spec in &scenario.connections {
        match &spec.route {
            RouteKind::Unicast(route) => {
                if let SetupOutcome::Connected(info) = network
                    .setup(route, spec.request)
                    .map_err(CliError::domain)?
                {
                    admitted_names.push((info.id(), spec.name.clone()));
                }
            }
            RouteKind::Multicast(tree) => {
                if let rtcac_signaling::MulticastOutcome::Connected(info) = network
                    .setup_multicast(tree, spec.request)
                    .map_err(CliError::domain)?
                {
                    admitted_names.push((info.id(), spec.name.clone()));
                }
            }
        }
    }
    let mut sim = Simulation::from_network(&network);
    for info in network.multicast_connections() {
        sim.add_multicast(
            info.id(),
            info.tree(),
            info.request().priority(),
            info.request().contract(),
            rtcac_sim::TrafficPattern::Greedy,
        )
        .map_err(CliError::domain)?;
    }
    if let Some((max, seed)) = jitter {
        sim.set_link_jitter(max, seed);
    }
    let report = sim.run(slots);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "simulated {} slots, {} connections, drops={}",
        report.slots(),
        admitted_names.len(),
        report.total_drops()
    );
    for (id, name) in &admitted_names {
        let stats = report
            .connection(*id)
            .ok_or_else(|| CliError::Domain(format!("no stats for connection {name}")))?;
        let (guarantee, hops) = if let Some(info) = network.connection(*id) {
            (info.guaranteed_delay(), info.route().links().len() as u64)
        } else if let Some(info) = network.multicast_connection(*id) {
            let longest = info
                .tree()
                .leaf_paths(network.topology())
                .map_err(CliError::domain)?
                .iter()
                .map(|(_, p)| p.len())
                .max()
                .unwrap_or(0) as u64;
            (info.guaranteed_delay(), longest)
        } else {
            return Err(CliError::Domain(format!("lost connection {name}")));
        };
        let _ = writeln!(
            out,
            "{name}: emitted={} delivered={} max_e2e={} cells (guaranteed queueing {guarantee} + {hops} transmission)",
            stats.emitted,
            stats.delivered,
            stats.max_delay,
        );
    }
    Ok(out)
}

/// Parameters of the `rtnet` analysis command.
#[derive(Debug, Clone)]
pub struct RtnetArgs {
    /// Ring nodes.
    pub nodes: usize,
    /// Terminals per node.
    pub terminals: usize,
    /// Total normalized load.
    pub load: Ratio,
    /// Big-terminal share (None = symmetric).
    pub share: Option<Ratio>,
    /// Soft CDV accumulation.
    pub soft: bool,
}

/// `rtcac rtnet`: ring analysis for a symmetric or asymmetric load.
///
/// # Errors
///
/// Returns [`CliError::Domain`] for invalid parameters.
pub fn rtnet(args: &RtnetArgs) -> Result<String, CliError> {
    let mode = if args.soft {
        CdvMode::SoftSqrt
    } else {
        CdvMode::Hard
    };
    let analysis = match args.share {
        None => workload::symmetric_with(args.nodes, args.terminals, args.load, mode),
        Some(share) => workload::asymmetric_with(
            args.nodes,
            args.terminals,
            args.load,
            share,
            mode,
            workload::PrioritySplit::SingleLevel,
        ),
    }
    .map_err(CliError::domain)?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "rtnet: {} nodes x {} terminals, load {}, {} cdv",
        args.nodes,
        args.terminals,
        args.load,
        if args.soft { "soft" } else { "hard" }
    );
    match analysis.port_bounds(Priority::HIGHEST) {
        Ok(bounds) => {
            let worst = bounds.iter().max().copied().unwrap_or(Time::ZERO);
            let _ = writeln!(out, "worst port bound: {:.2} cells", worst.to_f64());
            let e2e = analysis
                .end_to_end_bound(Priority::HIGHEST)
                .map_err(CliError::domain)?;
            let _ = writeln!(
                out,
                "end-to-end bound: {:.2} cells ({:.3} ms)",
                e2e.to_f64(),
                e2e.to_f64() / 370.0
            );
            let _ = writeln!(
                out,
                "admissible (32-cell queues): {}",
                analysis.admissible().map_err(CliError::domain)?
            );
        }
        Err(_) => {
            let _ = writeln!(out, "worst port bound: unbounded (long-run overload)");
            let _ = writeln!(out, "admissible (32-cell queues): false");
        }
    }
    Ok(out)
}

/// Parameters of the `rtcac chaos` command.
#[derive(Debug, Clone)]
pub struct ChaosArgs {
    /// Ring nodes of the dual star-ring under test.
    pub nodes: usize,
    /// Terminals per ring node.
    pub terminals: usize,
    /// Seed for both the fault plan and the traffic churn.
    pub seed: u64,
    /// Chaos steps to run.
    pub steps: u64,
    /// Percent chance of a fault event per step.
    pub rate: u64,
    /// Optional metrics output path (Prometheus text, plus `.json`).
    pub metrics: Option<String>,
    /// Optional bench JSON output path (`rtcac bench-report` input):
    /// setups/sec of the churn plus reserve-phase p50/p99.
    pub bench_json: Option<String>,
}

/// `rtcac chaos`: a seeded chaos session against the concurrent
/// admission engine on a dual (counter-rotating) star-ring — random
/// link/node failures and repairs under live setup/release churn, with
/// the safety audits of [`rtcac_fault::run_chaos`]. The run is
/// deterministic: equal seeds give equal plans, traffic, and reports.
///
/// # Errors
///
/// Returns [`CliError::Usage`] for invalid parameters and
/// [`CliError::Domain`] when the run violates the engine's safety
/// invariants (orphaned reservations, broken delay guarantees, or
/// counter non-conservation) — so a CI job fails on the exit code
/// alone. Metrics, if requested, are written before the verdict.
pub fn chaos(args: &ChaosArgs) -> Result<String, CliError> {
    if args.rate > 100 {
        return Err(CliError::Usage(format!(
            "--rate must be 0..=100, got {}",
            args.rate
        )));
    }
    let sr = rtcac_net::builders::dual_star_ring(args.nodes, args.terminals)
        .map_err(CliError::domain)?;
    let config =
        rtcac_cac::SwitchConfig::uniform(1, Time::from_integer(64)).map_err(CliError::domain)?;
    let registry = Arc::new(rtcac_obs::Registry::new());
    let engine = AdmissionEngine::with_registry(
        sr.topology().clone(),
        config,
        rtcac_signaling::CdvPolicy::Hard,
        Arc::clone(&registry),
    );
    let plan = FaultPlan::random(engine.topology(), args.seed, args.steps, args.rate);
    let pairs = endpoint_pairs(engine.topology());
    let started = std::time::Instant::now();
    let report = run_chaos(
        &engine,
        &pairs,
        &plan,
        &ChaosConfig {
            seed: args.seed,
            steps: args.steps,
            ..ChaosConfig::default()
        },
    )
    .map_err(CliError::domain)?;
    let elapsed = started.elapsed().as_secs_f64();

    let mut out = String::new();
    let _ = writeln!(
        out,
        "chaos: dual star-ring {}x{}, seed={}, {} steps, fault rate {}%",
        args.nodes, args.terminals, args.seed, args.steps, args.rate
    );
    let _ = writeln!(out, "plan: {} fault events", plan.events().len());
    out.push_str(&report.summary());
    out.push('\n');
    if let Some(path) = &args.metrics {
        let snapshot = registry.snapshot();
        let json_path = format!("{path}.json");
        write_metrics_file(path, &snapshot.to_prometheus())?;
        write_metrics_file(&json_path, &snapshot.to_json())?;
        let _ = writeln!(
            out,
            "metrics: wrote {path} (prometheus) and {json_path} (json)"
        );
    }
    if let Some(path) = &args.bench_json {
        let snapshot = registry.snapshot();
        let (p50, p99) = snapshot
            .histogram("engine_reserve_ns")
            .map_or((0, 0), |h| (h.p50(), h.p99()));
        let ops = report.stats.submitted as f64 / elapsed.max(1e-9);
        let contents = format!(
            "{{\"bench\":\"chaos\",\"seed\":{},\"steps\":{},\n\
             \"rounds\":[\n\
             {{\"workers\":1,\"ops_per_sec\":{ops:.1},\"p50_ns\":{p50},\"p99_ns\":{p99}}}\n\
             ]}}\n",
            args.seed, args.steps
        );
        write_metrics_file(path, &contents)?;
        let _ = writeln!(out, "bench: wrote {path} (bench json)");
    }
    if !report.invariants_hold() {
        return Err(CliError::Domain(format!(
            "chaos seed={} violated the safety invariants:\n{}",
            args.seed,
            report.summary()
        )));
    }
    Ok(out)
}

pub(crate) fn build_network(scenario: &Scenario) -> Result<Network, CliError> {
    let default =
        rtcac_cac::SwitchConfig::uniform(1, Time::from_integer(32)).map_err(CliError::domain)?;
    let mut network = Network::new(scenario.topology.clone(), default, scenario.policy);
    for (&node, config) in &scenario.switch_configs {
        network
            .configure_switch(node, config.clone())
            .map_err(CliError::domain)?;
    }
    Ok(network)
}

/// Parameters of `rtcac serve`.
#[derive(Debug, Clone)]
pub struct ServeArgs {
    /// Service listen address.
    pub addr: String,
    /// Optional HTTP metrics exposition address.
    pub metrics_addr: Option<String>,
    /// Ring switches of the served star-ring.
    pub nodes: usize,
    /// Terminals per ring switch.
    pub terminals: usize,
    /// Uniform per-hop delay bound, in cell times.
    pub bound: u64,
    /// Admission worker threads.
    pub workers: usize,
    /// Disable metric recording (no-op observability handles).
    pub snapshot_free: bool,
    /// Warm-restart state file: restored on boot, written on DRAIN.
    pub snapshot: Option<String>,
    /// Seconds between periodic snapshot saves (needs `snapshot`).
    pub snapshot_every: Option<u64>,
    /// Flight-recorder dump directory: arms the always-on black box
    /// (and the 1 s registry sampler feeding it).
    pub flight_dir: Option<String>,
    /// Lock-hold watchdog threshold override, ns (0 = trip on every
    /// setup — the CI lever for forcing a dump).
    pub watchdog_ns: Option<u64>,
}

/// `rtcac serve`: run the resident admission service until a client
/// sends DRAIN, then report the shutdown audit. The listening banner is
/// printed (and flushed) *before* blocking, so callers backgrounding
/// the process — CI does — can scrape the bound addresses immediately.
///
/// # Errors
///
/// Returns [`CliError::Usage`] for invalid parameters and
/// [`CliError::Domain`] when the shutdown audit finds orphaned
/// reservations or violated guarantees.
pub fn serve(args: &ServeArgs) -> Result<String, CliError> {
    if args.snapshot_every.is_some() && args.snapshot.is_none() {
        return Err(CliError::Usage(
            "--snapshot-every requires --snapshot PATH".into(),
        ));
    }
    let config = rtcac_serve::ServeConfig {
        addr: args.addr.clone(),
        metrics_addr: args.metrics_addr.clone(),
        nodes: args.nodes,
        terminals: args.terminals,
        bound: Time::from_integer(args.bound as i128),
        workers: args.workers,
        snapshot_free: args.snapshot_free,
        snapshot_path: args.snapshot.clone(),
        snapshot_every: args.snapshot_every,
        flight_dir: args.flight_dir.clone(),
        lock_hold_threshold_ns: args.watchdog_ns,
        ..rtcac_serve::ServeConfig::default()
    };
    let server = rtcac_serve::Server::start(&config).map_err(CliError::domain)?;
    println!(
        "serve: listening on {} (star-ring nodes={} terminals={} bound={} workers={}{})",
        server.addr(),
        args.nodes,
        args.terminals,
        args.bound,
        args.workers,
        if args.snapshot_free {
            ", snapshot-free"
        } else {
            ""
        }
    );
    if let Some(maddr) = server.metrics_addr() {
        println!("serve: metrics on http://{maddr}/metrics (and /metrics.json, /healthz)");
    }
    if let Some(path) = &args.snapshot {
        println!(
            "serve: warm-restart snapshot at {path}{}",
            match args.snapshot_every {
                Some(secs) => format!(" (saved on drain and every {secs}s)"),
                None => " (saved on drain)".into(),
            }
        );
    }
    if let Some(dir) = &args.flight_dir {
        println!(
            "serve: flight recorder armed — anomaly black boxes land in {dir}{}",
            match args.watchdog_ns {
                Some(ns) => format!(" (lock-hold watchdog threshold {ns}ns)"),
                None => String::new(),
            }
        );
    }
    println!("serve: ready — send DRAIN (or `rtcac load --drain`) to shut down");
    use std::io::Write as _;
    let _ = std::io::stdout().flush();

    let summary = server.join();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "serve: drained after {} session(s): {} cleanup release(s), {} still active",
        summary.sessions, summary.cleanup_released, summary.active
    );
    let _ = writeln!(
        out,
        "serve: final audit: orphaned_reservations={} guarantee_violations={}",
        summary.orphans, summary.violations
    );
    if let Some(reason) = &summary.restore_failed {
        let _ = writeln!(out, "serve: snapshot restore REFUSED: {reason}");
    }
    if summary.is_clean() {
        let _ = writeln!(out, "serve: shutdown clean");
        Ok(out)
    } else {
        Err(CliError::Domain(format!("{out}serve: shutdown NOT clean")))
    }
}

/// Parameters of `rtcac load`.
#[derive(Debug, Clone)]
pub struct LoadArgs {
    /// Target service address.
    pub addr: String,
    /// Generator threads (one connection each).
    pub threads: usize,
    /// Total frames (setups + releases) across all threads.
    pub ops: u64,
    /// In-flight frames per connection.
    pub pipeline: usize,
    /// Target total ops/s (open-loop pacing); `None` = max throughput.
    pub rate: Option<u64>,
    /// Randomization seed.
    pub seed: u64,
    /// Bench JSON output path (`BENCH_serve.json`), if any.
    pub bench_json: Option<String>,
    /// Send DRAIN after the run (clean server shutdown).
    pub drain: bool,
    /// Soak duration in minutes: repeat `ops`-sized batches until it
    /// elapses, scraping the server's memory gauges throughout.
    pub soak_minutes: Option<f64>,
    /// Exposition endpoint to scrape during a soak.
    pub metrics_addr: String,
}

/// `rtcac load`: drive the open-loop generator against a running
/// `rtcac serve` and report ops/s plus setup latency quantiles; with
/// `--bench-json`, write a `bench-report`-compatible round file.
///
/// # Errors
///
/// Returns [`CliError::Domain`] for connection or protocol failures.
pub fn serve_load(args: &LoadArgs) -> Result<String, CliError> {
    let config = rtcac_serve::LoadConfig {
        addr: args.addr.clone(),
        threads: args.threads,
        ops: args.ops,
        pipeline: args.pipeline,
        rate: args.rate,
        seed: args.seed,
    };
    if let Some(minutes) = args.soak_minutes {
        return serve_soak(args, &config, minutes);
    }
    let report = rtcac_serve::run_load(&config).map_err(CliError::domain)?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "load: {} ops in {:.2}s against {} ({} threads, pipeline {}{})",
        report.ops,
        report.elapsed_ns as f64 / 1e9,
        args.addr,
        args.threads,
        args.pipeline,
        match args.rate {
            Some(r) => format!(", paced at {r} ops/s"),
            None => String::new(),
        }
    );
    let _ = writeln!(
        out,
        "load: setups={} (admitted={} rejected={}) releases={}",
        report.setups, report.admitted, report.rejected, report.released
    );
    let _ = writeln!(out, "load: throughput {:.0} ops/s", report.ops_per_sec);
    let _ = writeln!(
        out,
        "load: setup latency p50={}ns p90={}ns p99={}ns",
        report.p50_ns, report.p90_ns, report.p99_ns
    );
    if let Some(path) = &args.bench_json {
        write_metrics_file(path, &report.bench_json(args.threads, args.seed))?;
        let _ = writeln!(out, "load: wrote {path} (bench json)");
    }
    if args.drain {
        let mut client = rtcac_serve::Client::connect(&args.addr).map_err(CliError::domain)?;
        match client.drain().map_err(CliError::domain)? {
            rtcac_serve::Response::Draining { active } => {
                let _ = writeln!(out, "load: drain requested ({active} still active)");
            }
            other => {
                return Err(CliError::Domain(format!(
                    "load: unexpected DRAIN reply: {other:?}"
                )))
            }
        }
    }
    Ok(out)
}

/// `rtcac load --soak MINS`: repeated load batches under a wall-clock
/// deadline, with the server scraped throughout. Every scrape prints a
/// one-line live status (rate, sliding p99, resident bytes — computed
/// from the windowed time-series over the scrapes, so the figures are
/// "now", not since-boot averages), and the summary reports the memory
/// trajectory — the stability probe for a resident service under
/// sustained setup/release churn.
fn serve_soak(
    args: &LoadArgs,
    config: &rtcac_serve::LoadConfig,
    minutes: f64,
) -> Result<String, CliError> {
    let duration = std::time::Duration::from_secs_f64(minutes * 60.0);
    let status: rtcac_serve::SoakObserver = Box::new(|s| {
        println!(
            "soak: t={:>5.0}s setups/s={:<8.0} rejects/s={:<6.0} reserve_p99={}ns resident={}",
            s.at_secs,
            s.setups_per_sec,
            s.rejects_per_sec,
            s.reserve_p99_ns,
            human_bytes(s.resident_bytes),
        );
        use std::io::Write as _;
        let _ = std::io::stdout().flush();
    });
    let report = rtcac_serve::run_soak(config, duration, &args.metrics_addr, Some(status))
        .map_err(CliError::domain)?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "soak: {} batches ({} ops) in {:.1}s against {} — {:.0} ops/s, worst p99 {}ns",
        report.batches,
        report.ops,
        report.elapsed_ns as f64 / 1e9,
        args.addr,
        report.ops_per_sec,
        report.worst_p99_ns,
    );
    if report.samples.is_empty() {
        let _ = writeln!(
            out,
            "soak: no memory samples (is the metrics endpoint at {} up?)",
            args.metrics_addr
        );
    } else {
        for s in &report.samples {
            let _ = writeln!(
                out,
                "soak: t={:.0}s setups/s={:.0} rejects/s={:.0} reserve_p99={}ns \
                 engine_resident_bytes={} alloc_live_bytes={}",
                s.at_secs,
                s.setups_per_sec,
                s.rejects_per_sec,
                s.reserve_p99_ns,
                s.resident_bytes,
                s.alloc_live_bytes
            );
        }
        let _ = writeln!(
            out,
            "soak: peak engine_resident_bytes={}",
            report.peak_resident_bytes()
        );
    }
    if args.drain {
        let mut client = rtcac_serve::Client::connect(&args.addr).map_err(CliError::domain)?;
        match client.drain().map_err(CliError::domain)? {
            rtcac_serve::Response::Draining { active } => {
                let _ = writeln!(out, "soak: drain requested ({active} still active)");
            }
            other => {
                return Err(CliError::Domain(format!(
                    "soak: unexpected DRAIN reply: {other:?}"
                )))
            }
        }
    }
    Ok(out)
}

/// Renders a byte count with a binary-unit suffix (`1.5MiB`), for the
/// soak status lines and `rtcac top`.
pub(crate) fn human_bytes(bytes: u64) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut value = bytes as f64;
    let mut unit = 0;
    while value >= 1024.0 && unit < UNITS.len() - 1 {
        value /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{bytes}B")
    } else {
        format!("{value:.1}{}", UNITS[unit])
    }
}

/// `rtcac stats --addr`: scrape a live server's exposition endpoint
/// instead of replaying a scenario locally.
///
/// # Errors
///
/// Returns [`CliError::Domain`] when the endpoint cannot be reached or
/// answers with a non-200 status.
pub fn stats_remote(addr: &str, json: bool) -> Result<String, CliError> {
    let path = if json { "/metrics.json" } else { "/metrics" };
    rtcac_serve::http_get(addr, path)
        .map_err(|e| CliError::Domain(format!("cannot scrape {addr}{path}: {e}")))
}

/// `rtcac snapshot save`: batch-admit the scenario through the
/// concurrent engine, then write the resulting admission state to
/// `out_path` as a versioned snapshot (atomically: temp + rename).
///
/// # Errors
///
/// Returns [`CliError::Domain`] on engine or I/O failures.
pub fn snapshot_save(
    scenario: &Scenario,
    out_path: &str,
    workers: usize,
) -> Result<String, CliError> {
    let (engine, outcomes) = run_engine_scenario(scenario, workers, None, None)?;
    let admitted = outcomes
        .iter()
        .filter(|o| {
            matches!(
                o,
                Ok(EngineOutcome::Admitted { .. } | EngineOutcome::Rerouted { .. })
            )
        })
        .count();
    let doc = rtcac_snap::snapshot_engine(&engine, "rtcac-cli");
    let bytes =
        rtcac_snap::save_atomic(&doc, std::path::Path::new(out_path)).map_err(CliError::domain)?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "snapshot: wrote {out_path} ({bytes} bytes, format v{})",
        rtcac_snap::VERSION
    );
    let _ = writeln!(
        out,
        "snapshot: {admitted} of {} setups admitted; {} connection(s) over {} switch section(s)",
        outcomes.len(),
        doc.state.connections.len(),
        doc.state.switches.len()
    );
    Ok(out)
}

/// `rtcac snapshot restore`: load a snapshot, rebuild a full engine
/// from it (running the guarantee and orphan audits), and report what
/// came back. A snapshot that fails any audit is refused outright.
///
/// # Errors
///
/// Returns [`CliError::Domain`] on decode or audit failures.
pub fn snapshot_restore(path: &str) -> Result<String, CliError> {
    let doc = rtcac_snap::load_file(std::path::Path::new(path)).map_err(CliError::domain)?;
    let engine = rtcac_snap::restore_engine(&doc).map_err(CliError::domain)?;
    let stats = engine.stats();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "snapshot: restored {path}: {} connection(s) over {} switch(es), audit clean",
        engine.connection_count(),
        doc.state.switches.len()
    );
    let _ = writeln!(
        out,
        "snapshot: lifetime counters: submitted={} admitted={} rejected={} released={}",
        stats.submitted, stats.admitted, stats.rejected, stats.released
    );
    Ok(out)
}

/// `rtcac snapshot inspect`: print a snapshot's header, section table
/// (ids, extents, checksums), and decoded state summary.
///
/// # Errors
///
/// Returns [`CliError::Domain`] when the file is unreadable or corrupt.
pub fn snapshot_inspect(path: &str) -> Result<String, CliError> {
    rtcac_snap::inspect(std::path::Path::new(path)).map_err(CliError::domain)
}

/// `rtcac snapshot diff`: compare two snapshots section by section and
/// state field by state field.
///
/// # Errors
///
/// Returns [`CliError::Domain`] when either file is unreadable or
/// corrupt.
pub fn snapshot_diff(a: &str, b: &str) -> Result<String, CliError> {
    let report = rtcac_snap::diff(std::path::Path::new(a), std::path::Path::new(b))
        .map_err(CliError::domain)?;
    if report.is_empty() {
        Ok(format!("snapshot: {a} and {b} are identical\n"))
    } else {
        Ok(report)
    }
}

/// `rtcac flight inspect`: decode a flight-recorder black box and
/// render its header plus the human-readable tick timeline.
///
/// # Errors
///
/// Returns [`CliError::Domain`] when the file is unreadable, truncated,
/// or fails its checksums — a tampered black box is refused, never
/// partially rendered.
pub fn flight_inspect(path: &str) -> Result<String, CliError> {
    let bytes = std::fs::read(path)
        .map_err(|e| CliError::Domain(format!("flight: cannot read {path}: {e}")))?;
    let dump = rtcac_obs::FlightDump::decode(&bytes)
        .map_err(|e| CliError::Domain(format!("flight: {path}: {e}")))?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "flight: {path} ({} bytes) — dump #{} reason={} {}",
        bytes.len(),
        dump.seq,
        dump.reason,
        if dump.forced { "(forced)" } else { "(anomaly)" },
    );
    let _ = writeln!(out, "flight: detail: {}", dump.detail);
    let _ = writeln!(
        out,
        "flight: {} tick(s) retained, trigger at tick {}; {} span(s), {} event(s), {} gauge(s)",
        dump.ticks.len(),
        dump.trigger_tick,
        dump.spans.len(),
        dump.events.events.len(),
        dump.gauges.len(),
    );
    let _ = writeln!(out);
    out.push_str(&dump.render_timeline());
    Ok(out)
}

/// `rtcac flight export`: convert a black box's span section to Chrome
/// `trace_event` JSON (load it at `chrome://tracing` or in Perfetto).
/// Writes to `out` when given, else returns the JSON itself.
///
/// # Errors
///
/// Returns [`CliError::Domain`] on unreadable/corrupt input or an
/// unwritable output path.
pub fn flight_export(path: &str, out: Option<&str>) -> Result<String, CliError> {
    let bytes = std::fs::read(path)
        .map_err(|e| CliError::Domain(format!("flight: cannot read {path}: {e}")))?;
    let dump = rtcac_obs::FlightDump::decode(&bytes)
        .map_err(|e| CliError::Domain(format!("flight: {path}: {e}")))?;
    let json = dump.chrome_trace();
    match out {
        Some(dest) => {
            std::fs::write(dest, &json)
                .map_err(|e| CliError::Domain(format!("flight: cannot write {dest}: {e}")))?;
            Ok(format!(
                "flight: exported {} span(s) from {path} to {dest}\n",
                dump.spans.len()
            ))
        }
        None => Ok(json),
    }
}

/// `rtcac flight dump --addr`: ask a running server to write a black
/// box now (the wire form of `SIGUSR1`), bypassing the once-latch.
///
/// # Errors
///
/// Returns [`CliError::Domain`] when the server is unreachable or has
/// no flight recorder armed.
pub fn flight_dump_remote(addr: &str) -> Result<String, CliError> {
    let mut client = rtcac_serve::Client::connect(addr).map_err(CliError::domain)?;
    match client.dump().map_err(CliError::domain)? {
        rtcac_serve::Response::Dumped { path, dumps } => Ok(format!(
            "flight: server wrote {path} (dump #{dumps} this run)\n"
        )),
        rtcac_serve::Response::Error { code, message } => Err(CliError::Domain(format!(
            "flight: server refused DUMP ({code:?}): {message}"
        ))),
        other => Err(CliError::Domain(format!(
            "flight: unexpected DUMP reply: {other:?}"
        ))),
    }
}

/// Pretty-prints an active link for reports.
pub fn link_label(scenario: &Scenario, link: LinkId) -> String {
    scenario
        .link_name(link)
        .map(str::to_owned)
        .unwrap_or_else(|| link.to_string())
}

/// Pretty-prints a node for reports.
pub fn node_label(scenario: &Scenario, node: NodeId) -> String {
    scenario
        .node_name(node)
        .map(str::to_owned)
        .unwrap_or_else(|| node.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtcac_rational::ratio;

    const SCENARIO: &str = r#"
switch s1 bounds=32
switch s2 bounds=32
endsystem h1
endsystem h1b
endsystem h2
link up   h1  s1
link upb  h1b s1
link mid  s1 s2
link down s2 h2
connect fast route=up,mid,down contract=cbr:1/8 delay=64
connect big  route=upb,mid,down contract=vbr:1/2,1/10,16 delay=64
connect tiny route=up,mid,down contract=cbr:1/32 delay=64
"#;

    #[test]
    fn bound_calculator_cbr() {
        let out = bound(&BoundArgs {
            pcr: ratio(1, 8),
            scr: None,
            mbs: 1,
            cdv: ratio(64, 1),
            count: 4,
            interference: None,
        })
        .unwrap();
        assert!(out.contains("worst-case queueing delay"));
        assert!(out.contains("fits a 32-cell queue: true"));
    }

    #[test]
    fn bound_calculator_detects_overload() {
        let err = bound(&BoundArgs {
            pcr: ratio(1, 2),
            scr: None,
            mbs: 1,
            cdv: ratio(0, 1),
            count: 3,
            interference: None,
        })
        .unwrap_err();
        assert!(err.to_string().contains("unbounded"));
    }

    #[test]
    fn bound_with_interference_is_larger() {
        let base = BoundArgs {
            pcr: ratio(1, 8),
            scr: None,
            mbs: 1,
            cdv: ratio(32, 1),
            count: 4,
            interference: None,
        };
        let without = bound(&base).unwrap();
        let with = bound(&BoundArgs {
            interference: Some(ratio(1, 2)),
            ..base
        })
        .unwrap();
        assert_ne!(without, with);
    }

    #[test]
    fn check_reports_outcomes_and_ports() {
        let scenario = Scenario::parse(SCENARIO).unwrap();
        let out = check(&scenario).unwrap();
        assert!(out.contains("fast: CONNECTED"));
        assert!(out.contains("summary:"));
        assert!(out.contains("port "));
    }

    #[test]
    fn engine_reports_outcomes_stats_and_ports() {
        let scenario = Scenario::parse(SCENARIO).unwrap();
        let out = engine(&scenario, 2, None).unwrap();
        assert!(out.contains("engine: 3 setups through 2 workers"), "{out}");
        assert!(out.contains("fast: ADMITTED"), "{out}");
        assert!(out.contains("stats: submitted=3 admitted="), "{out}");
        assert!(out.contains("port "), "{out}");
        // The concurrent engine must agree with the serial check on
        // every per-connection verdict.
        let serial = check(&scenario).unwrap();
        for spec in &scenario.connections {
            let connected = serial.contains(&format!("{}: CONNECTED", spec.name));
            assert_eq!(
                out.contains(&format!("{}: ADMITTED", spec.name)),
                connected,
                "{}\nvs\n{}",
                out,
                serial
            );
        }
    }

    #[test]
    fn engine_admits_multicast_scenarios() {
        let scenario = Scenario::parse(MULTICAST_SCENARIO).unwrap();
        let out = engine(&scenario, 2, None).unwrap();
        assert!(
            out.contains("cast: ADMITTED (p2mp) worst_leaf_delay="),
            "{out}"
        );
        assert!(out.contains("over 2 leaves"), "{out}");
        assert!(out.contains("pair: ADMITTED"), "{out}");
        assert!(out.contains("mcast=1/1"), "{out}");
        // The advertised worst-leaf bound must agree with the serial
        // setup (it is load-independent, so batch order cannot move it).
        let serial = check(&scenario).unwrap();
        let delay_of = |text: &str, marker: &str| -> String {
            let at = text.find(marker).unwrap() + marker.len();
            text[at..].split(' ').next().unwrap().to_owned()
        };
        assert_eq!(
            delay_of(&out, "worst_leaf_delay="),
            delay_of(&serial, "worst_leaf_delay="),
            "{out}\nvs\n{serial}"
        );
    }

    #[test]
    fn check_engine_replays_multicast_and_publishes_audit() {
        let scenario = Scenario::parse(MULTICAST_SCENARIO).unwrap();
        let dir = std::env::temp_dir().join(format!("rtcac-cli-mcast-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("mcast.prom");
        let path_str = path.to_str().unwrap();
        let out = check_engine(&scenario, Some(path_str)).unwrap();
        assert!(out.contains("cast: CONNECTED (p2mp)"), "{out}");
        assert!(out.contains("over 2 leaves"), "{out}");
        assert!(out.contains("pair: CONNECTED"), "{out}");
        assert!(out.contains("summary: 2/2 connected"), "{out}");
        assert!(out.contains("orphaned reservations: 0"), "{out}");
        let prom = std::fs::read_to_string(&path).unwrap();
        assert!(
            prom.contains("engine_orphaned_reservations 0"),
            "the orphan gauge must read 0:\n{prom}"
        );
        assert!(
            prom.contains("engine_mcast_setups_admitted_total 1"),
            "{prom}"
        );
        let _ = std::fs::remove_dir_all(&dir);
        // The engine replay agrees with the serial replay on every
        // per-connection verdict.
        let serial = check(&scenario).unwrap();
        for spec in &scenario.connections {
            assert_eq!(
                out.contains(&format!("{}: CONNECTED", spec.name)),
                serial.contains(&format!("{}: CONNECTED", spec.name)),
                "{out}\nvs\n{serial}"
            );
        }
    }

    #[test]
    fn check_engine_replays_fault_directives_in_order() {
        let scenario = Scenario::parse(FAILOVER_SCENARIO).unwrap();
        let out = check_engine(&scenario, None).unwrap();
        let expect = [
            "primary: CONNECTED",
            "fail-link main: down, 1 connection(s) torn down",
            "retry: CONNECTED",
            "heal-link main: restored",
            // 'retry' can only run through s3 while main is down, so
            // failing s3 tears it down.
            "fail-node s3: down, 1 connection(s) torn down",
            "heal-node s3: restored",
            "after: CONNECTED",
            "summary: 3/3 connected",
            "orphaned reservations: 0",
        ];
        let mut cursor = 0;
        for needle in expect {
            let at = out[cursor..]
                .find(needle)
                .unwrap_or_else(|| panic!("missing or out of order: '{needle}' in\n{out}"));
            cursor += at + needle.len();
        }
    }

    #[test]
    fn engine_writes_metrics_files() {
        let scenario = Scenario::parse(SCENARIO).unwrap();
        let dir = std::env::temp_dir().join("rtcac-cli-metrics-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.prom");
        let path_str = path.to_str().unwrap();
        let out = engine(&scenario, 2, Some(path_str)).unwrap();
        assert!(out.contains("metrics: wrote"), "{out}");

        let prom = std::fs::read_to_string(&path).unwrap();
        assert!(prom.contains("engine_setups_submitted_total 3"), "{prom}");
        assert!(prom.contains("engine_reserve_ns_count"), "{prom}");
        assert!(prom.contains("engine_sof_cache"), "{prom}");
        assert!(prom.contains("engine_shard_lock_wait_ns"), "{prom}");

        let json = std::fs::read_to_string(format!("{path_str}.json")).unwrap();
        assert!(json.contains("\"engine_setups_submitted_total\""), "{json}");
        assert!(json.contains("engine_reserve_ns"), "{json}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn engine_metrics_creates_missing_parent_dirs() {
        let scenario = Scenario::parse(SCENARIO).unwrap();
        let dir = std::env::temp_dir().join(format!("rtcac-cli-nested-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("deep").join("run").join("out.prom");
        let path_str = path.to_str().unwrap();
        let out = engine(&scenario, 2, Some(path_str)).unwrap();
        assert!(out.contains("metrics: wrote"), "{out}");
        assert!(path.exists(), "metrics file must exist at {path_str}");
        assert!(std::path::Path::new(&format!("{path_str}.json")).exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unwritable_metrics_path_is_a_named_error() {
        let dir = std::env::temp_dir().join(format!("rtcac-cli-blocked-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        // A plain file where a directory component is needed.
        let blocker = dir.join("blocker");
        std::fs::write(&blocker, "not a directory").unwrap();
        let path = blocker.join("out.prom");
        let err = write_metrics_file(path.to_str().unwrap(), "x").unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains(blocker.to_str().unwrap()),
            "error must name the offending path: {msg}"
        );
        let scenario = Scenario::parse(SCENARIO).unwrap();
        let err = engine(&scenario, 2, Some(path.to_str().unwrap())).unwrap_err();
        assert!(err.to_string().contains("blocker"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    const FAILOVER_SCENARIO: &str = r#"
switch s1 bounds=64
switch s2 bounds=64
switch s3 bounds=64
endsystem h1
endsystem h2
link up    h1 s1
link main  s1 s2
link alt   s1 s3
link down  s2 h2
link altdn s3 h2
connect primary route=up,main,down contract=cbr:1/8 delay=256
fail-link main
connect retry from=h1 to=h2 crankback=2 contract=cbr:1/8 delay=256
heal-link main
fail-node s3
heal-node s3
connect after route=up,main,down contract=cbr:1/8 delay=256
"#;

    #[test]
    fn check_replays_fault_directives_in_order() {
        let scenario = Scenario::parse(FAILOVER_SCENARIO).unwrap();
        let out = check(&scenario).unwrap();
        let expect = [
            "primary: CONNECTED",
            "fail-link main: down, 1 connection(s) torn down",
            "retry: CONNECTED",
            "heal-link main: restored",
            // 'retry' cranked back onto the alt path through s3, so
            // failing s3 tears it down.
            "fail-node s3: down, 1 connection(s) torn down",
            "heal-node s3: restored",
            "after: CONNECTED",
            "summary: 3/3 connected",
        ];
        let mut cursor = 0;
        for needle in expect {
            let at = out[cursor..]
                .find(needle)
                .unwrap_or_else(|| panic!("missing or out of order: '{needle}' in\n{out}"));
            cursor += at + needle.len();
        }
        // The crankback setup reports its rerouting (the dead preferred
        // path is skipped by the health-aware search).
        assert!(out.contains("(crankback:"), "{out}");
    }

    #[test]
    fn check_runs_embedded_chaos_directives() {
        // A dual ring so the chaos session's crankback has alternates.
        let mut text = String::from("policy hard\n");
        for i in 0..4 {
            let _ = writeln!(text, "switch s{i} bounds=64");
            let _ = writeln!(text, "endsystem h{i}");
            let _ = writeln!(text, "link t{i} h{i} s{i}");
            let _ = writeln!(text, "link r{i} s{i} h{i}");
        }
        for i in 0..4usize {
            let j = (i + 1) % 4;
            let _ = writeln!(text, "link cw{i} s{i} s{j}");
            let _ = writeln!(text, "link ccw{j} s{j} s{i}");
        }
        text.push_str("chaos seed=5 steps=40 rate=25\n");
        let scenario = Scenario::parse(&text).unwrap();
        let out = check(&scenario).unwrap();
        assert!(out.contains("chaos seed=5 steps=40 rate=25%:"), "{out}");
        assert!(out.contains("invariants: OK"), "{out}");
    }

    #[test]
    fn engine_and_simulate_refuse_fault_scenarios() {
        let scenario = Scenario::parse(FAILOVER_SCENARIO).unwrap();
        let err = engine(&scenario, 2, None).unwrap_err();
        assert!(err.to_string().contains("fault directives"), "{err}");
        let err = stats(&scenario, 2, false).unwrap_err();
        assert!(err.to_string().contains("fault directives"), "{err}");
        let err = simulate(&scenario, 1_000, None).unwrap_err();
        assert!(err.to_string().contains("fault directives"), "{err}");
    }

    #[test]
    fn chaos_command_reports_and_writes_metrics() {
        let dir = std::env::temp_dir().join(format!("rtcac-cli-chaos-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("chaos.prom");
        let path_str = path.to_str().unwrap().to_owned();
        let out = chaos(&ChaosArgs {
            nodes: 6,
            terminals: 1,
            seed: 11,
            steps: 100,
            rate: 30,
            metrics: Some(path_str.clone()),
            bench_json: None,
        })
        .unwrap();
        assert!(out.contains("chaos: dual star-ring 6x1"), "{out}");
        assert!(out.contains("invariants: OK"), "{out}");
        assert!(out.contains("metrics: wrote"), "{out}");
        let prom = std::fs::read_to_string(&path).unwrap();
        assert!(
            prom.contains("engine_orphaned_reservations 0"),
            "the orphan gauge must read 0:\n{prom}"
        );
        assert!(prom.contains("engine_element_failures_total"), "{prom}");
        let _ = std::fs::remove_dir_all(&dir);

        // Determinism: equal seeds give equal reports.
        let args = ChaosArgs {
            nodes: 6,
            terminals: 1,
            seed: 11,
            steps: 100,
            rate: 30,
            metrics: None,
            bench_json: None,
        };
        assert_eq!(chaos(&args).unwrap(), chaos(&args).unwrap());

        let err = chaos(&ChaosArgs { rate: 101, ..args }).unwrap_err();
        assert!(err.to_string().contains("--rate"), "{err}");
    }

    #[test]
    fn stats_prints_bare_exposition() {
        let scenario = Scenario::parse(SCENARIO).unwrap();
        let prom = stats(&scenario, 2, false).unwrap();
        assert!(prom.starts_with("# TYPE"), "{prom}");
        assert!(prom.contains("engine_setups_submitted_total 3"), "{prom}");
        let json = stats(&scenario, 2, true).unwrap();
        assert!(json.trim_start().starts_with('{'), "{json}");
        assert!(json.contains("engine_setups_submitted_total"), "{json}");
    }

    #[test]
    fn simulate_reports_measurements() {
        let scenario = Scenario::parse(SCENARIO).unwrap();
        let out = simulate(&scenario, 20_000, None).unwrap();
        assert!(out.contains("simulated 20000 slots"));
        assert!(out.contains("drops=0"));
        assert!(out.contains("fast: emitted="));
        let jittered = simulate(&scenario, 20_000, Some((4, 7))).unwrap();
        assert!(jittered.contains("drops=0"));
    }

    const MULTICAST_SCENARIO: &str = r#"
switch s1 bounds=32
endsystem src
endsystem a
endsystem b
link up src s1
link da  s1 a
link db  s1 b
mconnect cast tree=up,da,db contract=cbr:1/16 delay=32
connect  pair from=src to=a contract=cbr:1/32 delay=32
"#;

    #[test]
    fn check_and_simulate_multicast_scenario() {
        let scenario = Scenario::parse(MULTICAST_SCENARIO).unwrap();
        let out = check(&scenario).unwrap();
        assert!(out.contains("cast: CONNECTED (p2mp)"), "{out}");
        assert!(out.contains("pair: CONNECTED"), "{out}");
        let sim_out = simulate(&scenario, 20_000, None).unwrap();
        assert!(sim_out.contains("cast: emitted="), "{sim_out}");
        assert!(sim_out.contains("drops=0"), "{sim_out}");
    }

    #[test]
    fn rtnet_symmetric_and_asymmetric() {
        let out = rtnet(&RtnetArgs {
            nodes: 16,
            terminals: 1,
            load: ratio(3, 4),
            share: None,
            soft: false,
        })
        .unwrap();
        assert!(out.contains("admissible (32-cell queues): true"));
        let out = rtnet(&RtnetArgs {
            nodes: 16,
            terminals: 16,
            load: ratio(3, 4),
            share: Some(ratio(1, 2)),
            soft: false,
        })
        .unwrap();
        assert!(out.contains("admissible (32-cell queues): false"));
        let soft = rtnet(&RtnetArgs {
            nodes: 16,
            terminals: 4,
            load: ratio(1, 2),
            share: Some(ratio(1, 4)),
            soft: true,
        })
        .unwrap();
        assert!(soft.contains("soft cdv"));
    }

    #[test]
    fn rtnet_overloaded_reports_unbounded() {
        let out = rtnet(&RtnetArgs {
            nodes: 4,
            terminals: 1,
            load: ratio(1, 1),
            share: None,
            soft: false,
        })
        .unwrap();
        // 4 nodes at full load: each link carries 3/4 of 4 nodes' worth
        // of traffic = 3/4... actually admissibility depends; just check
        // the command completes and prints a verdict.
        assert!(out.contains("admissible"));
    }
}
