//! `rtcac top` — a live terminal view of a running admission server.
//!
//! Scrapes the server's `/metrics` exposition endpoint on an interval,
//! parses the Prometheus text back into a snapshot
//! ([`rtcac_obs::Snapshot::from_prometheus`]), and feeds a windowed
//! [`rtcac_obs::TimeSeries`] — so every figure shown is a *live* rate
//! or a sliding-window quantile, not a since-boot average. The raw
//! text endpoint is scraped (not `/metrics.json`) because windowed
//! quantiles need the histogram buckets themselves.
//!
//! Two render modes: a redrawn ANSI dashboard (default, for a human
//! terminal) and `--no-tui` one-line-per-sample output (for CI logs
//! and piping).

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use rtcac_obs::{Snapshot, TimeSeries};

use crate::commands::human_bytes;
use crate::error::CliError;

/// Parameters of `rtcac top`.
#[derive(Debug, Clone)]
pub struct TopArgs {
    /// Exposition endpoint to scrape (`host:port`).
    pub addr: String,
    /// Milliseconds between scrapes.
    pub interval_ms: u64,
    /// Stop after this many samples (`None` = run until interrupted).
    pub samples: Option<u64>,
    /// Line-per-sample output instead of the redrawn dashboard.
    pub no_tui: bool,
}

impl Default for TopArgs {
    fn default() -> TopArgs {
        TopArgs {
            addr: "127.0.0.1:7048".into(),
            interval_ms: 1000,
            samples: None,
            no_tui: false,
        }
    }
}

/// Consecutive scrape failures tolerated before giving up (a server
/// being drained mid-watch should end the watch, not wedge it).
const MAX_SCRAPE_FAILURES: u32 = 5;

/// Runs the live view until `--samples` is exhausted or the endpoint
/// goes away.
///
/// # Errors
///
/// Returns [`CliError::Domain`] when the endpoint cannot be scraped at
/// all, or disappears mid-watch.
pub fn top(args: &TopArgs) -> Result<String, CliError> {
    let interval = Duration::from_millis(args.interval_ms.max(100));
    let mut series = TimeSeries::default();
    let mut last_scrape: Option<Instant> = None;
    let mut failures = 0u32;
    let mut taken = 0u64;
    let started = Instant::now();
    loop {
        match rtcac_serve::http_get(&args.addr, "/metrics") {
            Ok(body) => {
                failures = 0;
                let now = Instant::now();
                let elapsed_ms = last_scrape
                    .map(|t| now.duration_since(t).as_millis() as u64)
                    .unwrap_or(0);
                last_scrape = Some(now);
                let snap = Snapshot::from_prometheus(&body);
                series.observe(&snap, elapsed_ms);
                taken += 1;
                if args.no_tui {
                    println!("{}", status_line(&series, started.elapsed()));
                } else {
                    // Clear + home, then the full frame: a flicker-free
                    // redraw without any terminal library.
                    print!("\x1b[2J\x1b[H{}", render_frame(&series, args, started));
                }
                use std::io::Write as _;
                let _ = std::io::stdout().flush();
            }
            Err(e) => {
                failures += 1;
                if taken == 0 {
                    return Err(CliError::Domain(format!(
                        "top: cannot scrape {}/metrics: {e}",
                        args.addr
                    )));
                }
                if failures >= MAX_SCRAPE_FAILURES {
                    return Ok(format!(
                        "top: endpoint {} went away after {taken} sample(s) ({e})\n",
                        args.addr
                    ));
                }
            }
        }
        if let Some(limit) = args.samples {
            if taken >= limit {
                return Ok(if args.no_tui {
                    String::new()
                } else {
                    format!("top: watched {} for {taken} sample(s)\n", args.addr)
                });
            }
        }
        std::thread::sleep(interval);
    }
}

/// The one-line form: what `--no-tui` prints per sample.
fn status_line(series: &TimeSeries, uptime: Duration) -> String {
    format!(
        "top: t={:>5.0}s ops/s={:<8.0} admit/s={:<8.0} reject/s={:<6.0} reroute/s={:<4.0} \
         reserve_p50={}ns p99={}ns resident={} active={} orphans={}",
        uptime.as_secs_f64(),
        series.rate_last("engine_setups_submitted_total"),
        series.rate_last("engine_setups_admitted_total"),
        series.rate_last("engine_setups_rejected_total"),
        series.rate_last("engine_setups_rerouted_total"),
        series.window_quantile("engine_reserve_ns", 0.5),
        series.window_quantile("engine_reserve_ns", 0.99),
        human_bytes(series.last_gauge("engine_resident_bytes").unwrap_or(0)),
        series.last_gauge("serve_active_connections").unwrap_or(0),
        series
            .last_gauge("engine_orphaned_reservations")
            .unwrap_or(0),
    )
}

/// The full dashboard frame for the TUI mode.
fn render_frame(series: &TimeSeries, args: &TopArgs, started: Instant) -> String {
    let mut out = String::new();
    let window_secs = series.window_ms() as f64 / 1e3;
    let _ = writeln!(
        out,
        "rtcac top — {}  (up {:.0}s, window {:.0}s over {} ticks, ^C to quit)",
        args.addr,
        started.elapsed().as_secs_f64(),
        window_secs,
        series.len(),
    );
    let _ = writeln!(out);
    let _ = writeln!(out, "  admission (per second, latest tick)");
    let _ = writeln!(
        out,
        "    submitted {:>10.0}   admitted {:>10.0}   rejected {:>8.0}   rerouted {:>6.0}",
        series.rate_last("engine_setups_submitted_total"),
        series.rate_last("engine_setups_admitted_total"),
        series.rate_last("engine_setups_rejected_total"),
        series.rate_last("engine_setups_rerouted_total"),
    );
    let _ = writeln!(
        out,
        "    released  {:>10.0}   aborted  {:>10.0}   window avg submitted/s {:>8.0}",
        series.rate_last("engine_released_total"),
        series.rate_last("engine_setups_aborted_total"),
        series.rate("engine_setups_submitted_total"),
    );
    let _ = writeln!(out);
    let _ = writeln!(out, "  latency (sliding window, ns)");
    let _ = writeln!(
        out,
        "    reserve  p50 {:>10}  p99 {:>10}   commit p99 {:>10}   lock-wait p99 {:>10}",
        series.window_quantile("engine_reserve_ns", 0.5),
        series.window_quantile("engine_reserve_ns", 0.99),
        series.window_quantile("engine_commit_ns", 0.99),
        series.window_quantile("engine_shard_lock_wait_ns", 0.99),
    );
    let _ = writeln!(out);
    let _ = writeln!(out, "  state");
    let _ = writeln!(
        out,
        "    active {:>8}   orphans {:>4}   long lock holds (window) {:>4}   draining {}",
        series.last_gauge("serve_active_connections").unwrap_or(0),
        series
            .last_gauge("engine_orphaned_reservations")
            .unwrap_or(0),
        series.window_count("engine_lock_hold_long_total"),
        if series.last_gauge("serve_draining").unwrap_or(0) != 0 {
            "YES"
        } else {
            "no"
        },
    );
    let _ = writeln!(
        out,
        "    resident {:>10}   alloc live {:>10}   snapshot age {:>5}s ({})",
        human_bytes(series.last_gauge("engine_resident_bytes").unwrap_or(0)),
        human_bytes(series.last_gauge("alloc_live_bytes").unwrap_or(0)),
        series.last_gauge("snapshot_age_seconds").unwrap_or(0),
        human_bytes(series.last_gauge("snapshot_bytes").unwrap_or(0)),
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtcac_obs::Registry;

    fn ticked_series() -> TimeSeries {
        let registry = Registry::new();
        let mut series = TimeSeries::new(8);
        series.observe(&registry.snapshot(), 0);
        registry.counter("engine_setups_submitted_total").add(500);
        registry.counter("engine_setups_admitted_total").add(450);
        registry.counter("engine_setups_rejected_total").add(50);
        registry.gauge("engine_resident_bytes").set(3 << 20);
        registry.gauge("serve_active_connections").set(42);
        let h = registry.histogram("engine_reserve_ns");
        for _ in 0..100 {
            h.record(4_000);
        }
        series.observe(&registry.snapshot(), 1000);
        series
    }

    #[test]
    fn status_line_carries_live_rates() {
        let series = ticked_series();
        let line = status_line(&series, Duration::from_secs(12));
        assert!(line.contains("ops/s=500"), "rates in: {line}");
        assert!(line.contains("reject/s=50"), "rejects in: {line}");
        assert!(line.contains("resident=3.0MiB"), "resident in: {line}");
        assert!(line.contains("active=42"), "active in: {line}");
    }

    #[test]
    fn frame_renders_every_section() {
        let series = ticked_series();
        let frame = render_frame(&series, &TopArgs::default(), Instant::now());
        for needle in ["admission", "latency", "state", "submitted", "reserve"] {
            assert!(frame.contains(needle), "missing '{needle}' in:\n{frame}");
        }
        // Quantiles come from the windowed histogram, interpolated
        // within the winning bucket — bounded by the bucket's range.
        let p99 = series.window_quantile("engine_reserve_ns", 0.99);
        assert!((2048..=8191).contains(&p99), "windowed p99: {p99}");
    }
}
