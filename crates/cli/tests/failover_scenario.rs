//! CLI-level coverage of the shipped failover walkthrough: the
//! `examples/scenarios/failover.rtcac` replay must demonstrate
//! fail-link → crankback re-setup → heal-link end to end, both through
//! the library entry point and through the `rtcac` binary itself.

use rtcac_cli::commands;
use rtcac_cli::scenario::Scenario;

fn scenario_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../examples/scenarios/failover.rtcac")
}

#[test]
fn shipped_failover_scenario_replays_the_recovery_story() {
    let text = std::fs::read_to_string(scenario_path()).expect("example scenario must ship");
    let scenario = Scenario::parse(&text).unwrap();
    assert!(scenario.has_fault_actions());
    let out = commands::check(&scenario).unwrap();

    // The recovery story, in order: steady state, failure with
    // teardown, crankback re-setup that routes around both the dead
    // link and the saturated alternate, repair, and reuse.
    let expect = [
        "primary: CONNECTED",
        "hog: CONNECTED",
        "fail-link main: down, 1 connection(s) torn down",
        "retry: CONNECTED",
        "heal-link main: restored",
        "after: CONNECTED",
        "summary: 4/4 connected",
    ];
    let mut cursor = 0;
    for needle in expect {
        let at = out[cursor..]
            .find(needle)
            .unwrap_or_else(|| panic!("missing or out of order: '{needle}' in\n{out}"));
        cursor += at + needle.len();
    }
    // The re-setup must have cranked back off the saturated alternate,
    // not just picked a healthy route first try.
    assert!(
        out.contains("(crankback: 1 rejected attempt(s), backoff 64 cells)"),
        "{out}"
    );
}

#[test]
fn rtcac_binary_replays_the_scenario_and_exits_zero() {
    let output = std::process::Command::new(env!("CARGO_BIN_EXE_rtcac"))
        .arg("check")
        .arg(scenario_path())
        .output()
        .expect("the rtcac binary must run");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        output.status.success(),
        "exit: {:?}\nstderr: {}",
        output.status,
        String::from_utf8_lossy(&output.stderr)
    );
    assert!(stdout.contains("retry: CONNECTED"), "{stdout}");
    assert!(stdout.contains("heal-link main: restored"), "{stdout}");
}

#[test]
fn rtcac_chaos_subcommand_runs_green_and_writes_metrics() {
    let dir = std::env::temp_dir().join(format!("rtcac-failover-it-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let metrics = dir.join("nested").join("chaos.prom");
    let output = std::process::Command::new(env!("CARGO_BIN_EXE_rtcac"))
        .args([
            "chaos",
            "--nodes",
            "8",
            "--terminals",
            "1",
            "--seed",
            "3",
            "--steps",
            "120",
            "--rate",
            "25",
            "--metrics",
            metrics.to_str().unwrap(),
        ])
        .output()
        .expect("the rtcac binary must run");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        output.status.success(),
        "exit: {:?}\nstderr: {}",
        output.status,
        String::from_utf8_lossy(&output.stderr)
    );
    assert!(stdout.contains("invariants: OK"), "{stdout}");
    // --metrics creates the missing parent directories itself, and the
    // exposition shows the orphaned-reservation gauge at zero.
    let prom = std::fs::read_to_string(&metrics).unwrap();
    assert!(prom.contains("engine_orphaned_reservations 0"), "{prom}");
    let _ = std::fs::remove_dir_all(&dir);
}
