//! Shared formatting helpers for the table/figure regeneration
//! binaries.
//!
//! Each binary in `src/bin/` reproduces one artifact of the paper's
//! evaluation section and prints it in a gnuplot-friendly format:
//! `# comment` headers, whitespace-separated columns, blank lines
//! between series. See `EXPERIMENTS.md` at the repository root for the
//! paper-vs-measured comparison.

// `deny`, not `forbid`: the `memory` module needs one scoped `unsafe`
// block for its `GlobalAlloc` impl and opts in explicitly.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod memory;

use std::fmt::Display;

/// Prints a `# key: value` header line.
pub fn header(key: &str, value: impl Display) {
    println!("# {key}: {value}");
}

/// Prints a `# columns: ...` line describing the data columns.
pub fn columns(names: &[&str]) {
    println!("# columns: {}", names.join(" "));
}

/// Prints one whitespace-separated data row.
pub fn row(values: &[String]) {
    println!("{}", values.join(" "));
}

/// Formats an `f64` with three decimals (plot precision).
pub fn f(value: f64) -> String {
    format!("{value:.3}")
}

/// Starts a named series block (gnuplot `index` separation).
pub fn series(name: impl Display) {
    println!();
    println!("# series: {name}");
}

/// Times `op` with a short warm-up, returning mean seconds per call.
///
/// A std-only stand-in for criterion (the registry is offline): runs
/// the closure until at least `min_total` has elapsed and divides.
pub fn time_op<T>(mut op: impl FnMut() -> T, min_total: std::time::Duration) -> f64 {
    // Warm-up: populate caches and let the branch predictor settle.
    for _ in 0..3 {
        std::hint::black_box(op());
    }
    let mut iters = 0u64;
    let start = std::time::Instant::now();
    loop {
        std::hint::black_box(op());
        iters += 1;
        if start.elapsed() >= min_total {
            break;
        }
    }
    start.elapsed().as_secs_f64() / iters as f64
}

/// Formats a seconds-per-call figure with an adaptive unit.
pub fn human_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} us", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f_formats_three_decimals() {
        assert_eq!(f(0.5), "0.500");
        assert_eq!(f(1.0 / 3.0), "0.333");
    }
}
