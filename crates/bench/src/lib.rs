//! Shared formatting helpers for the table/figure regeneration
//! binaries.
//!
//! Each binary in `src/bin/` reproduces one artifact of the paper's
//! evaluation section and prints it in a gnuplot-friendly format:
//! `# comment` headers, whitespace-separated columns, blank lines
//! between series. See `EXPERIMENTS.md` at the repository root for the
//! paper-vs-measured comparison.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;

/// Prints a `# key: value` header line.
pub fn header(key: &str, value: impl Display) {
    println!("# {key}: {value}");
}

/// Prints a `# columns: ...` line describing the data columns.
pub fn columns(names: &[&str]) {
    println!("# columns: {}", names.join(" "));
}

/// Prints one whitespace-separated data row.
pub fn row(values: &[String]) {
    println!("{}", values.join(" "));
}

/// Formats an `f64` with three decimals (plot precision).
pub fn f(value: f64) -> String {
    format!("{value:.3}")
}

/// Starts a named series block (gnuplot `index` separation).
pub fn series(name: impl Display) {
    println!();
    println!("# series: {name}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f_formats_three_decimals() {
        assert_eq!(f(0.5), "0.500");
        assert_eq!(f(1.0 / 3.0), "0.333");
    }
}
