//! Admission throughput of the concurrent sharded engine: setups per
//! second at 1/2/4/8 workers on the paper's 16-node star-ring, with
//! per-ring-node terminal routes so the shards are disjoint and the
//! worker pool can scale.
//!
//! Besides the worker sweep, the run ends with an observability A/B:
//! the same batch timed with no metrics registry (no-op handles)
//! versus an explicit [`rtcac_obs::Registry`], reporting the relative
//! overhead and a summary of the recorded phase timings.
//!
//! Flags:
//! - `--smoke` — a seconds-long run for CI (small batches, short
//!   budgets); the output format is unchanged.
//! - `--metrics PATH` — write the enabled arm's final snapshot to
//!   `PATH` in Prometheus text format.

use std::sync::Arc;
use std::time::Instant;

use rtcac_bench::{columns, f, header, row};
use rtcac_bitstream::{CbrParams, Rate, Time, TrafficContract, VbrParams};
use rtcac_cac::{Priority, SwitchConfig};
use rtcac_engine::{AdmissionEngine, EnginePool};
use rtcac_net::builders::{self, StarRing};
use rtcac_obs::Registry;
use rtcac_rational::ratio;
use rtcac_signaling::{CdvPolicy, SetupRequest};

const RING_NODES: usize = 16;

fn fresh_engine(sr: &StarRing, registry: Option<&Arc<Registry>>) -> Arc<AdmissionEngine> {
    let config = SwitchConfig::uniform(1, Time::from_integer(64)).expect("switch config");
    Arc::new(match registry {
        Some(registry) => AdmissionEngine::with_registry(
            sr.topology().clone(),
            config,
            CdvPolicy::Hard,
            Arc::clone(registry),
        ),
        None => AdmissionEngine::new(sr.topology().clone(), config, CdvPolicy::Hard),
    })
}

/// One measured round: a full batch of admissions through a fresh
/// pool on a fresh engine, so every round starts from empty tables.
/// Returns the wall-clock seconds of the batch and its admitted count.
fn run_round(
    sr: &StarRing,
    workers: usize,
    setups_per_node: usize,
    registry: Option<&Arc<Registry>>,
) -> (f64, usize) {
    let engine = fresh_engine(sr, registry);
    // Alternate smooth CBR with bursty VBR: the burst envelopes make
    // each admission check a real bit-stream computation rather than a
    // queue-overhead microbenchmark.
    let cbr = TrafficContract::cbr(CbrParams::new(Rate::new(ratio(1, 64))).expect("cbr"));
    let vbr = TrafficContract::vbr(
        VbrParams::new(Rate::new(ratio(1, 8)), Rate::new(ratio(1, 128)), 8).expect("vbr"),
    );
    let mut pool = EnginePool::new(Arc::clone(&engine), workers);
    let start = Instant::now();
    for i in 0..RING_NODES {
        for k in 0..setups_per_node {
            let route = sr.terminal_route((i, 0), (i, 1)).expect("terminal route");
            let contract = if k % 2 == 0 { cbr } else { vbr };
            let request =
                SetupRequest::new(contract, Priority::HIGHEST, Time::from_integer(10_000));
            pool.submit(route, request);
        }
    }
    let results = pool.finish().expect("no worker died");
    let elapsed = start.elapsed().as_secs_f64();
    let admitted = results
        .iter()
        .filter(|r| r.outcome.as_ref().expect("engine outcome").is_admitted())
        .count();
    (elapsed, admitted)
}

/// Whole rounds until the time budget is spent; returns setups/sec.
fn measure(
    sr: &StarRing,
    workers: usize,
    setups_per_node: usize,
    min_seconds: f64,
    registry: Option<&Arc<Registry>>,
) -> (f64, u32, usize) {
    let total = RING_NODES * setups_per_node;
    // Warm-up round, then measure whole rounds so short batches do not
    // drown in noise.
    let _ = run_round(sr, workers, setups_per_node, registry);
    let mut rounds = 0u32;
    let mut busy = 0.0;
    let mut admitted = 0;
    while busy < min_seconds {
        let (elapsed, ok) = run_round(sr, workers, setups_per_node, registry);
        busy += elapsed;
        admitted = ok;
        rounds += 1;
    }
    (f64::from(rounds) * total as f64 / busy, rounds, admitted)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let metrics_path = args
        .iter()
        .position(|a| a == "--metrics")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let (setups_per_node, min_seconds) = if smoke { (4, 0.02) } else { (32, 0.4) };

    let sr = builders::star_ring(RING_NODES, 2).expect("star-ring topology");
    let total = RING_NODES * setups_per_node;
    header("artifact", "engine admission throughput vs worker count");
    header(
        "setup",
        format!(
            "{RING_NODES}-node star-ring, {total} mixed CBR/VBR setups per round, \
             disjoint per-node shards, hard CAC"
        ),
    );
    header(
        "hardware_threads",
        std::thread::available_parallelism().map_or(0, usize::from),
    );
    if smoke {
        header("mode", "smoke (short budgets; figures are not stable)");
    }
    columns(&[
        "workers",
        "rounds",
        "admitted",
        "setups_per_sec",
        "speedup_vs_1",
    ]);

    let mut baseline = None;
    for workers in [1usize, 2, 4, 8] {
        let (throughput, rounds, admitted) =
            measure(&sr, workers, setups_per_node, min_seconds, None);
        let speedup = throughput / *baseline.get_or_insert(throughput);
        row(&[
            workers.to_string(),
            rounds.to_string(),
            admitted.to_string(),
            f(throughput),
            f(speedup),
        ]);
    }

    // Observability A/B: the same 4-worker batch with metrics disabled
    // (no registry installed, so every handle is a no-op) versus
    // enabled. The disabled arm is the cost everyone pays; the delta
    // is what turning observability on costs.
    let (off, _, _) = measure(&sr, 4, setups_per_node, min_seconds, None);
    let registry = Arc::new(Registry::new());
    let (on, _, _) = measure(&sr, 4, setups_per_node, min_seconds, Some(&registry));
    header(
        "obs_overhead",
        format!(
            "disabled {:.0} setups/s vs enabled {:.0} setups/s ({:+.1}% when enabled)",
            off,
            on,
            (off / on - 1.0) * 100.0
        ),
    );

    // Metrics summary of the enabled arm (all measured rounds).
    let snapshot = registry.snapshot();
    if let Some(h) = snapshot.histogram("engine_reserve_ns") {
        header(
            "reserve_ns",
            format!(
                "count={} p50={} p99={} max={}",
                h.count,
                h.p50(),
                h.p99(),
                h.max
            ),
        );
    }
    if let Some(h) = snapshot.histogram("engine_commit_ns") {
        header(
            "commit_ns",
            format!(
                "count={} p50={} p99={} max={}",
                h.count,
                h.p50(),
                h.p99(),
                h.max
            ),
        );
    }
    header(
        "sof_cache",
        format!(
            "hits={} misses={}",
            snapshot.counter("engine_sof_cache_hits_total").unwrap_or(0),
            snapshot
                .counter("engine_sof_cache_misses_total")
                .unwrap_or(0)
        ),
    );

    if let Some(path) = metrics_path {
        std::fs::write(&path, snapshot.to_prometheus()).expect("write metrics file");
        header("metrics_file", path);
    }
}
