//! Admission throughput of the concurrent sharded engine: setups per
//! second at 1/2/4/8 workers on the paper's 16-node star-ring, with
//! per-ring-node terminal routes so the shards are disjoint and the
//! worker pool can scale.
//!
//! Besides the worker sweep, the run ends with three A/B arms: the
//! same batch timed with no metrics registry (no-op handles) versus an
//! explicit [`rtcac_obs::Registry`]; with no tracer versus an
//! installed [`rtcac_obs::Tracer`] whose sampling is hard-off
//! ([`Sampling::Never`] — the cost of the disabled instrumentation
//! branches alone); and with the windowed-series sampler thread plus
//! flight recorder live versus paused (the cost of the whole time
//! dimension).
//!
//! Flags:
//! - `--smoke` — a seconds-long run for CI (small batches, short
//!   budgets); the output format is unchanged.
//! - `--metrics PATH` — write the enabled arm's final snapshot to
//!   `PATH` in Prometheus text format.
//! - `--bench-json PATH` — write the machine-readable perf trajectory
//!   (per-worker ops/sec with reserve-phase p50/p99, plus both A/B
//!   deltas) for `rtcac bench-report` to diff across commits.

use std::sync::Arc;
use std::time::{Duration, Instant};

use rtcac_bench::{columns, f, header, row};
use rtcac_bitstream::{CbrParams, Rate, Time, TrafficContract, VbrParams};
use rtcac_cac::{Priority, SwitchConfig};
use rtcac_engine::{AdmissionEngine, EnginePool};
use rtcac_net::builders::{self, StarRing};
use rtcac_obs::{FlightConfig, FlightRecorder, Registry, Sampler, Sampling, Tracer};
use rtcac_rational::ratio;
use rtcac_signaling::{CdvPolicy, SetupRequest};

const RING_NODES: usize = 16;

fn fresh_engine(
    sr: &StarRing,
    registry: Option<&Arc<Registry>>,
    tracer: Option<&Tracer>,
) -> Arc<AdmissionEngine> {
    let config = SwitchConfig::uniform(1, Time::from_integer(64)).expect("switch config");
    let mut engine = match registry {
        Some(registry) => AdmissionEngine::with_registry(
            sr.topology().clone(),
            config,
            CdvPolicy::Hard,
            Arc::clone(registry),
        ),
        None => AdmissionEngine::new(sr.topology().clone(), config, CdvPolicy::Hard),
    };
    if let Some(tracer) = tracer {
        engine.set_tracer(tracer.clone());
    }
    Arc::new(engine)
}

/// One measured round: a full batch of admissions through a fresh
/// pool on a fresh engine, so every round starts from empty tables.
/// Returns the wall-clock seconds of the batch and its admitted count.
fn run_round(
    sr: &StarRing,
    workers: usize,
    setups_per_node: usize,
    registry: Option<&Arc<Registry>>,
    tracer: Option<&Tracer>,
) -> (f64, usize) {
    let engine = fresh_engine(sr, registry, tracer);
    // Alternate smooth CBR with bursty VBR: the burst envelopes make
    // each admission check a real bit-stream computation rather than a
    // queue-overhead microbenchmark.
    let cbr = TrafficContract::cbr(CbrParams::new(Rate::new(ratio(1, 64))).expect("cbr"));
    let vbr = TrafficContract::vbr(
        VbrParams::new(Rate::new(ratio(1, 8)), Rate::new(ratio(1, 128)), 8).expect("vbr"),
    );
    let mut pool = EnginePool::new(Arc::clone(&engine), workers);
    let start = Instant::now();
    for i in 0..RING_NODES {
        for k in 0..setups_per_node {
            let route = sr.terminal_route((i, 0), (i, 1)).expect("terminal route");
            let contract = if k % 2 == 0 { cbr } else { vbr };
            let request =
                SetupRequest::new(contract, Priority::HIGHEST, Time::from_integer(10_000));
            pool.submit(route, request);
        }
    }
    let results = pool.finish().expect("no worker died");
    let elapsed = start.elapsed().as_secs_f64();
    let admitted = results
        .iter()
        .filter(|r| r.outcome.as_ref().expect("engine outcome").is_admitted())
        .count();
    (elapsed, admitted)
}

/// Interleaved A/B comparison: alternates whole rounds between the
/// two configurations and compares each arm's *median* round time.
/// Interleaving keeps slow drifts (frequency scaling, background
/// load) from landing on one arm; the median discards outliers in
/// both directions, where a best-of would let one lucky turbo window
/// inflate whichever arm caught it. Returns (ops/sec A, ops/sec B).
#[allow(clippy::type_complexity)]
fn measure_ab(
    sr: &StarRing,
    workers: usize,
    setups_per_node: usize,
    pairs: u32,
    arm_a: (Option<&Arc<Registry>>, Option<&Tracer>),
    arm_b: (Option<&Arc<Registry>>, Option<&Tracer>),
) -> (f64, f64) {
    let total = (RING_NODES * setups_per_node) as f64;
    let _ = run_round(sr, workers, setups_per_node, arm_a.0, arm_a.1);
    let _ = run_round(sr, workers, setups_per_node, arm_b.0, arm_b.1);
    let mut times_a = Vec::with_capacity(pairs as usize);
    let mut times_b = Vec::with_capacity(pairs as usize);
    for _ in 0..pairs {
        times_a.push(run_round(sr, workers, setups_per_node, arm_a.0, arm_a.1).0);
        times_b.push(run_round(sr, workers, setups_per_node, arm_b.0, arm_b.1).0);
    }
    (total / median(&mut times_a), total / median(&mut times_b))
}

fn median(times: &mut [f64]) -> f64 {
    times.sort_by(f64::total_cmp);
    let mid = times.len() / 2;
    if times.len().is_multiple_of(2) {
        (times[mid - 1] + times[mid]) / 2.0
    } else {
        times[mid]
    }
}

/// Whole rounds until the time budget is spent; returns setups/sec.
fn measure(
    sr: &StarRing,
    workers: usize,
    setups_per_node: usize,
    min_seconds: f64,
    registry: Option<&Arc<Registry>>,
    tracer: Option<&Tracer>,
) -> (f64, u32, usize) {
    let total = RING_NODES * setups_per_node;
    // Warm-up round, then measure whole rounds so short batches do not
    // drown in noise.
    let _ = run_round(sr, workers, setups_per_node, registry, tracer);
    let mut rounds = 0u32;
    let mut busy = 0.0;
    let mut admitted = 0;
    while busy < min_seconds {
        let (elapsed, ok) = run_round(sr, workers, setups_per_node, registry, tracer);
        busy += elapsed;
        admitted = ok;
        rounds += 1;
    }
    (f64::from(rounds) * total as f64 / busy, rounds, admitted)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let metrics_path = args
        .iter()
        .position(|a| a == "--metrics")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let bench_json_path = args
        .iter()
        .position(|a| a == "--bench-json")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let (setups_per_node, min_seconds) = if smoke { (4, 0.02) } else { (32, 0.4) };

    let sr = builders::star_ring(RING_NODES, 2).expect("star-ring topology");
    let total = RING_NODES * setups_per_node;
    header("artifact", "engine admission throughput vs worker count");
    header(
        "setup",
        format!(
            "{RING_NODES}-node star-ring, {total} mixed CBR/VBR setups per round, \
             disjoint per-node shards, hard CAC"
        ),
    );
    header(
        "hardware_threads",
        std::thread::available_parallelism().map_or(0, usize::from),
    );
    if smoke {
        header("mode", "smoke (short budgets; figures are not stable)");
    }
    columns(&[
        "workers",
        "rounds",
        "admitted",
        "setups_per_sec",
        "speedup_vs_1",
    ]);

    let mut baseline = None;
    // workers -> (ops/sec, reserve p50, reserve p99) for --bench-json.
    let mut sweep: Vec<(usize, f64, u64, u64)> = Vec::new();
    for workers in [1usize, 2, 4, 8] {
        let (throughput, rounds, admitted) =
            measure(&sr, workers, setups_per_node, min_seconds, None, None);
        let speedup = throughput / *baseline.get_or_insert(throughput);
        row(&[
            workers.to_string(),
            rounds.to_string(),
            admitted.to_string(),
            f(throughput),
            f(speedup),
        ]);
        // Percentiles come from a separate observed pass so the sweep
        // figures above stay registry-free; the observed throughput is
        // discarded (the obs A/B below quantifies its overhead).
        if bench_json_path.is_some() {
            let observed = Arc::new(Registry::new());
            let _ = measure(
                &sr,
                workers,
                setups_per_node,
                min_seconds,
                Some(&observed),
                None,
            );
            let snapshot = observed.snapshot();
            let (p50, p99) = snapshot
                .histogram("engine_reserve_ns")
                .map_or((0, 0), |h| (h.p50(), h.p99()));
            sweep.push((workers, throughput, p50, p99));
        }
    }

    // Observability A/B: the same 4-worker batch with metrics disabled
    // (no registry installed, so every handle is a no-op) versus
    // enabled. The disabled arm is the cost everyone pays; the delta
    // is what turning observability on costs. Rounds interleave and
    // each arm keeps its best time, so machine noise cancels.
    let ab_pairs = if smoke { 12 } else { 16 };
    // Larger rounds than the sweep's: per-round noise (pool spawn,
    // scheduler) shrinks relative to the measured work, which the
    // few-percent A/B deltas need even in smoke mode.
    let ab_setups_per_node = setups_per_node * 4;
    let registry = Arc::new(Registry::new());
    let (off, on) = measure_ab(
        &sr,
        4,
        ab_setups_per_node,
        ab_pairs,
        (None, None),
        (Some(&registry), None),
    );
    header(
        "obs_overhead",
        format!(
            "disabled {:.0} setups/s vs enabled {:.0} setups/s ({:+.1}% when enabled)",
            off,
            on,
            (off / on - 1.0) * 100.0
        ),
    );

    // Tracing A/B: no tracer (the noop, one dead branch per site)
    // versus an installed tracer with sampling hard-off — the cost of
    // the disabled instrumentation branches through submit/price/
    // reserve/commit. `Never` is the arm because it is the *disabled*
    // setting: `RejectsOnly` is a live policy whose cost is
    // per-rejection flush work, and this batch saturates the ring, so
    // measuring it here would measure the provenance feature (at an
    // adversarial ~50% reject rate), not the idle overhead.
    let idle_tracer = Tracer::new(Sampling::Never);
    let (trace_off, trace_on) = measure_ab(
        &sr,
        4,
        ab_setups_per_node,
        ab_pairs,
        (None, None),
        (None, Some(&idle_tracer)),
    );
    let trace_delta = (trace_off / trace_on - 1.0) * 100.0;
    header(
        "trace_overhead",
        format!(
            "no tracer {trace_off:.0} setups/s vs sampling-off tracer {trace_on:.0} setups/s \
             ({trace_delta:+.1}% when installed)"
        ),
    );

    // Flight A/B: the same registry-enabled batch with the whole time
    // dimension live — a 5ms sampler thread snapshotting the registry
    // into a windowed series plus an armed flight recorder checking
    // its triggers on every tick — versus the sampler paused
    // (`set_active(false)`: the thread sleeps through its interval
    // without snapshotting). Both arms share one registry, so the
    // delta isolates the sampler+recorder cost from handle cost (which
    // obs_overhead above already prices).
    let flight_registry = Arc::new(Registry::new());
    let flight_dir =
        std::env::temp_dir().join(format!("rtcac-bench-flight-{}", std::process::id()));
    let recorder = FlightRecorder::new(
        Arc::clone(&flight_registry),
        FlightConfig {
            dir: flight_dir.clone(),
            ..FlightConfig::default()
        },
    );
    let tick_recorder = Arc::clone(&recorder);
    let sampler = Sampler::spawn_with_observer(
        Arc::clone(&flight_registry),
        Duration::from_millis(5),
        120,
        Some(Box::new(move |series, _snapshot| {
            if let Some(tick) = series.latest() {
                tick_recorder.observe_tick(tick);
            }
        })),
    );
    let flight_total = (RING_NODES * ab_setups_per_node) as f64;
    sampler.set_active(true);
    let _ = run_round(&sr, 4, ab_setups_per_node, Some(&flight_registry), None);
    sampler.set_active(false);
    let _ = run_round(&sr, 4, ab_setups_per_node, Some(&flight_registry), None);
    let mut times_live = Vec::with_capacity(ab_pairs as usize);
    let mut times_paused = Vec::with_capacity(ab_pairs as usize);
    for _ in 0..ab_pairs {
        sampler.set_active(true);
        times_live.push(run_round(&sr, 4, ab_setups_per_node, Some(&flight_registry), None).0);
        sampler.set_active(false);
        times_paused.push(run_round(&sr, 4, ab_setups_per_node, Some(&flight_registry), None).0);
    }
    sampler.stop();
    let flight_off = flight_total / median(&mut times_paused);
    let flight_on = flight_total / median(&mut times_live);
    let flight_delta = (flight_off / flight_on - 1.0) * 100.0;
    header(
        "flight_overhead",
        format!(
            "sampler paused {flight_off:.0} setups/s vs sampler+recorder live \
             {flight_on:.0} setups/s ({flight_delta:+.1}% when live)"
        ),
    );
    header("flight_dumps", recorder.dumps_written());
    let _ = std::fs::remove_dir_all(&flight_dir);

    if let Some(path) = &bench_json_path {
        let mut json = String::from("{\"bench\":\"engine_throughput\",");
        json.push_str(&format!("\"smoke\":{smoke},\n\"rounds\":[\n"));
        for (i, (workers, ops, p50, p99)) in sweep.iter().enumerate() {
            let comma = if i + 1 < sweep.len() { "," } else { "" };
            json.push_str(&format!(
                "{{\"workers\":{workers},\"ops_per_sec\":{ops:.1},\"p50_ns\":{p50},\"p99_ns\":{p99}}}{comma}\n"
            ));
        }
        json.push_str(&format!(
            "],\n\"trace_ab\":{{\"off_ops_per_sec\":{trace_off:.1},\"on_ops_per_sec\":{trace_on:.1},\"delta_percent\":{trace_delta:.2}}},\n"
        ));
        json.push_str(&format!(
            "\"flight_ab\":{{\"off_ops_per_sec\":{flight_off:.1},\"on_ops_per_sec\":{flight_on:.1},\"delta_percent\":{flight_delta:.2}}},\n"
        ));
        json.push_str(&format!(
            "\"obs_ab\":{{\"off_ops_per_sec\":{off:.1},\"on_ops_per_sec\":{on:.1},\"delta_percent\":{:.2}}}}}\n",
            (off / on - 1.0) * 100.0
        ));
        std::fs::write(path, json).expect("write bench json");
        header("bench_json", path);
    }

    // Metrics summary of the enabled arm (all measured rounds).
    let snapshot = registry.snapshot();
    if let Some(h) = snapshot.histogram("engine_reserve_ns") {
        header(
            "reserve_ns",
            format!(
                "count={} p50={} p99={} max={}",
                h.count,
                h.p50(),
                h.p99(),
                h.max
            ),
        );
    }
    if let Some(h) = snapshot.histogram("engine_commit_ns") {
        header(
            "commit_ns",
            format!(
                "count={} p50={} p99={} max={}",
                h.count,
                h.p50(),
                h.p99(),
                h.max
            ),
        );
    }
    header(
        "sof_cache",
        format!(
            "hits={} misses={}",
            snapshot.counter("engine_sof_cache_hits_total").unwrap_or(0),
            snapshot
                .counter("engine_sof_cache_misses_total")
                .unwrap_or(0)
        ),
    );

    if let Some(path) = metrics_path {
        std::fs::write(&path, snapshot.to_prometheus()).expect("write metrics file");
        header("metrics_file", path);
    }
}
