//! Admission throughput of the concurrent sharded engine: setups per
//! second at 1/2/4/8 workers on the paper's 16-node star-ring, with
//! per-ring-node terminal routes so the shards are disjoint and the
//! worker pool can scale.

use std::sync::Arc;
use std::time::Instant;

use rtcac_bench::{columns, f, header, row};
use rtcac_bitstream::{CbrParams, Rate, Time, TrafficContract, VbrParams};
use rtcac_cac::{Priority, SwitchConfig};
use rtcac_engine::{AdmissionEngine, EnginePool};
use rtcac_net::builders::{self, StarRing};
use rtcac_rational::ratio;
use rtcac_signaling::{CdvPolicy, SetupRequest};

const RING_NODES: usize = 16;
const SETUPS_PER_NODE: usize = 32;
const MIN_SECONDS: f64 = 0.4;

fn fresh_engine(sr: &StarRing) -> Arc<AdmissionEngine> {
    let config = SwitchConfig::uniform(1, Time::from_integer(64)).expect("switch config");
    Arc::new(AdmissionEngine::new(
        sr.topology().clone(),
        config,
        CdvPolicy::Hard,
    ))
}

/// One measured round: a full batch of admissions through a fresh
/// pool on a fresh engine, so every round starts from empty tables.
/// Returns the wall-clock seconds of the batch and its admitted count.
fn run_round(sr: &StarRing, workers: usize) -> (f64, usize) {
    let engine = fresh_engine(sr);
    // Alternate smooth CBR with bursty VBR: the burst envelopes make
    // each admission check a real bit-stream computation rather than a
    // queue-overhead microbenchmark.
    let cbr = TrafficContract::cbr(CbrParams::new(Rate::new(ratio(1, 64))).expect("cbr"));
    let vbr = TrafficContract::vbr(
        VbrParams::new(Rate::new(ratio(1, 8)), Rate::new(ratio(1, 128)), 8).expect("vbr"),
    );
    let mut pool = EnginePool::new(Arc::clone(&engine), workers);
    let start = Instant::now();
    for i in 0..RING_NODES {
        for k in 0..SETUPS_PER_NODE {
            let route = sr.terminal_route((i, 0), (i, 1)).expect("terminal route");
            let contract = if k % 2 == 0 { cbr } else { vbr };
            let request =
                SetupRequest::new(contract, Priority::HIGHEST, Time::from_integer(10_000));
            pool.submit(route, request);
        }
    }
    let results = pool.finish();
    let elapsed = start.elapsed().as_secs_f64();
    let admitted = results
        .iter()
        .filter(|r| r.outcome.as_ref().expect("engine outcome").is_admitted())
        .count();
    (elapsed, admitted)
}

fn main() {
    let sr = builders::star_ring(RING_NODES, 2).expect("star-ring topology");
    let total = RING_NODES * SETUPS_PER_NODE;
    header("artifact", "engine admission throughput vs worker count");
    header(
        "setup",
        format!(
            "{RING_NODES}-node star-ring, {total} mixed CBR/VBR setups per round, \
             disjoint per-node shards, hard CAC"
        ),
    );
    header(
        "hardware_threads",
        std::thread::available_parallelism().map_or(0, usize::from),
    );
    columns(&[
        "workers",
        "rounds",
        "admitted",
        "setups_per_sec",
        "speedup_vs_1",
    ]);

    let mut baseline = None;
    for workers in [1usize, 2, 4, 8] {
        // Warm-up round, then measure whole rounds until the budget is
        // spent so short batches do not drown in noise.
        let _ = run_round(&sr, workers);
        let mut rounds = 0u32;
        let mut busy = 0.0;
        let mut admitted = 0;
        while busy < MIN_SECONDS {
            let (elapsed, ok) = run_round(&sr, workers);
            busy += elapsed;
            admitted = ok;
            rounds += 1;
        }
        let throughput = f64::from(rounds) * total as f64 / busy;
        let speedup = throughput / *baseline.get_or_insert(throughput);
        row(&[
            workers.to_string(),
            rounds.to_string(),
            admitted.to_string(),
            f(throughput),
            f(speedup),
        ]);
    }
}
