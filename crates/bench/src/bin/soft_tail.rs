//! **Soft-CAC rationale**: the measured delay distribution vs the hard
//! worst-case guarantee.
//!
//! The paper's §4.3 discussion 1 justifies the soft scheme by noting
//! that "the probability of a cell's having maximum queueing delays
//! over all switches on its route is very small". This experiment
//! quantifies that: randomized (but contract-conformant) sources cross
//! a 4-switch line, and the delivered-cell delay quantiles are printed
//! next to the hard end-to-end guarantee.

use rtcac_bench::{columns, f, header, row};
use rtcac_bitstream::{Rate, Time, TrafficContract, VbrParams};
use rtcac_cac::{Priority, SwitchConfig};
use rtcac_net::{builders, Route};
use rtcac_rational::ratio;
use rtcac_signaling::{CdvPolicy, Network, SetupRequest};
use rtcac_sim::{Simulation, TrafficPattern};

fn main() {
    let (topology, src, switches, dst) = builders::line(4).unwrap();
    let config = SwitchConfig::uniform(1, Time::from_integer(32)).unwrap();
    let mut network = Network::new(topology, config, CdvPolicy::Hard);
    let route = Route::from_nodes(
        network.topology(),
        std::iter::once(src)
            .chain(switches.iter().copied())
            .chain(std::iter::once(dst)),
    )
    .unwrap();
    for k in 0..4i128 {
        let contract = TrafficContract::vbr(
            VbrParams::new(
                Rate::new(ratio(1, 5 + k)),
                Rate::new(ratio(1, 28 + 2 * k)),
                6,
            )
            .unwrap(),
        );
        let req = SetupRequest::new(contract, Priority::HIGHEST, Time::from_integer(160));
        assert!(network.setup(&route, req).unwrap().is_connected());
    }

    let mut sim = Simulation::new(network.topology());
    for (k, info) in network.connections().enumerate() {
        sim.add_connection(
            info.id(),
            info.route().clone(),
            info.request().priority(),
            info.request().contract(),
            TrafficPattern::Random {
                p_percent: 85,
                seed: 7_000 + k as u64,
            },
        )
        .unwrap();
    }
    let mut jittered = sim.clone();
    jittered.set_link_jitter(6, 99);
    let report = jittered.run(500_000);

    header(
        "artifact",
        "soft-CAC rationale: measured delay quantiles vs the hard guarantee (section 4.3 discussion 1)",
    );
    header(
        "setup",
        "4-switch line, randomized conformant VBR sources, 6-slot link jitter, 500k slots",
    );
    columns(&[
        "connection",
        "mean",
        "p50",
        "p99",
        "p999",
        "max_measured",
        "hard_guarantee",
    ]);
    for info in network.connections() {
        let stats = report.connection(info.id()).unwrap();
        row(&[
            info.id().to_string(),
            f(stats.mean_delay()),
            stats.delay_quantile(0.5).unwrap().to_string(),
            stats.delay_quantile(0.99).unwrap().to_string(),
            stats.delay_quantile(0.999).unwrap().to_string(),
            stats.max_delay.to_string(),
            f(info.guaranteed_delay().to_f64()),
        ]);
    }
}
