//! **Baseline comparison**: peak bandwidth allocation vs the paper's
//! bit-stream CAC (the introduction's motivating argument).
//!
//! Both controllers admit jitter-distorted CBR connections onto one
//! output port until they refuse. Peak allocation packs the link to
//! 100% of peak bandwidth but guarantees nothing; the worst-case
//! analysis of the set it admits shows queueing delays far beyond the
//! 32-cell RTnet queue — cells would be *lost*, not merely late. The
//! bit-stream CAC stops earlier, exactly at the point where the
//! 32-cell guarantee still holds.

use rtcac_bench::{columns, f, header, row, series};
use rtcac_bitstream::{BitStream, CbrParams, Rate, Time, TrafficContract};
use rtcac_cac::baseline::PeakAllocation;
use rtcac_cac::{
    AdmissionDecision, ConnectionId, ConnectionRequest, Priority, Switch, SwitchConfig,
};
use rtcac_net::LinkId;
use rtcac_rational::ratio;

const QUEUE_CELLS: i128 = 32;

fn request(pcr_den: i128, cdv: i128, in_link: u32) -> ConnectionRequest {
    ConnectionRequest::new(
        TrafficContract::cbr(CbrParams::new(Rate::new(ratio(1, pcr_den))).unwrap()),
        Time::from_integer(cdv),
        LinkId::external(in_link),
        LinkId::external(100),
        Priority::HIGHEST,
    )
}

fn main() {
    header(
        "artifact",
        "baseline: peak bandwidth allocation vs bit-stream CAC (paper introduction)",
    );
    header(
        "setup",
        format!("CBR connections (PCR 1/16) with accumulated upstream CDV, one output port, {QUEUE_CELLS}-cell queue"),
    );
    for cdv in [32i128, 64, 128, 256] {
        series(format!("cdv={cdv}"));
        columns(&[
            "controller",
            "admitted",
            "peak_load",
            "worst_case_delay_cells",
            "fits_queue",
        ]);

        // Peak allocation: admits until Σ PCR = 1.
        let mut peak = PeakAllocation::new();
        let mut peak_streams = Vec::new();
        let mut k = 0u64;
        while peak
            .admit(ConnectionId::new(k), request(16, cdv, k as u32))
            .unwrap()
        {
            peak_streams.push(request(16, cdv, k as u32).arrival_stream());
            k += 1;
        }
        let peak_aggregate = BitStream::multiplex_all(&peak_streams);
        let peak_bound = peak_aggregate.delay_bound(&BitStream::zero());
        let (bound_str, fits) = match &peak_bound {
            Ok(d) => (f(d.to_f64()), *d <= Time::from_integer(QUEUE_CELLS)),
            Err(_) => ("unbounded".into(), false),
        };
        row(&[
            "peak_allocation".into(),
            peak.connection_count().to_string(),
            f(peak.allocated(LinkId::external(100)).to_f64()),
            bound_str,
            fits.to_string(),
        ]);

        // Bit-stream CAC: admits while the 32-cell bound holds.
        let mut switch =
            Switch::new(SwitchConfig::uniform(1, Time::from_integer(QUEUE_CELLS)).unwrap());
        let mut k = 0u64;
        while let AdmissionDecision::Admitted(_) = switch
            .admit(ConnectionId::new(k), request(16, cdv, k as u32))
            .unwrap()
        {
            k += 1;
        }
        let bound = switch
            .computed_bound(LinkId::external(100), Priority::HIGHEST)
            .unwrap();
        row(&[
            "bitstream_cac".into(),
            switch.connection_count().to_string(),
            f(switch.sustained_load(LinkId::external(100)).to_f64()),
            f(bound.to_f64()),
            (bound <= Time::from_integer(QUEUE_CELLS)).to_string(),
        ]);
    }
}
