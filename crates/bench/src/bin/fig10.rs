//! Regenerates **Figure 10**: end-to-end queueing delay bounds vs
//! symmetric cyclic load for N ∈ {1, 4, 8, 16} terminals per node.

use rtcac_bench::{columns, f, header, row, series};
use rtcac_rtnet::experiments::fig10;

fn main() {
    let fig = fig10::run(fig10::Params::default()).expect("figure 10 sweep");
    header("artifact", "Figure 10: end-to-end queueing delay bounds");
    header(
        "setup",
        "16 ring nodes, symmetric CBR broadcast, hard CAC, 32-cell queues",
    );
    for s in &fig.series {
        series(format!("N={}", s.terminals));
        columns(&["load", "load_Mbps", "per_hop_cells", "e2e_cells"]);
        for p in &s.points {
            row(&[
                f(p.load.to_f64()),
                f(p.load_mbps),
                f(p.per_hop_cells),
                f(p.end_to_end_cells),
            ]);
        }
        header("max_admissible_load", f(s.max_admissible_load.to_f64()));
    }
}
