//! Regenerates **Table 1** (cyclic transmission classes) with CAC
//! feasibility verdicts.

use rtcac_bench::{columns, f, header, row};
use rtcac_rtnet::experiments::table1;

fn main() {
    let table = table1::run(table1::Params::default()).expect("table 1 analysis");
    header("artifact", "Table 1: types of cyclic transmission");
    header(
        "setup",
        "16 ring nodes, 16 terminals per node, class traffic split symmetrically",
    );
    columns(&[
        "class",
        "period_ms",
        "delay_ms",
        "memory_KB",
        "bandwidth_Mbps",
        "load",
        "admissible",
        "e2e_bound_cells",
        "meets_deadline",
    ]);
    for r in &table.rows {
        row(&[
            r.class.name().replace(' ', "_"),
            r.class.period_ms().to_string(),
            r.class.delay_ms().to_string(),
            r.class.memory_kb().to_string(),
            f(r.bandwidth_mbps.to_f64()),
            f(r.load.to_f64()),
            r.admissible.to_string(),
            r.end_to_end_cells
                .map(|t| f(t.to_f64()))
                .unwrap_or_else(|| "-".into()),
            r.meets_deadline.to_string(),
        ]);
    }
    header("combined_load", f(table.combined_load.to_f64()));
}
