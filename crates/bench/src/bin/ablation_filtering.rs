//! **Ablation**: the effect of modeling link filtering (Algorithm 3.4)
//! on the computed per-port delay bounds — the paper's §3.4 claim that
//! "traffic filtering by transmission links smooths the incoming bit
//! streams ... and thus can greatly reduce the cell queueing delay
//! bounds", and one of the stated improvements over Raha et al. \[9\].
//!
//! For the symmetric RTnet workload of Figure 10, the per-port arrival
//! aggregate is computed twice: with the ring-in transit aggregate
//! filtered through its incoming link (the paper's model) and without
//! (as if all upstream clumps could arrive simultaneously at unbounded
//! instantaneous rate). The unfiltered bound is substantially looser,
//! shrinking the admissible region.

use rtcac_bench::{columns, f, header, row, series};
use rtcac_bitstream::{BitStream, CbrParams, Rate, Time, TrafficContract};
use rtcac_rational::ratio;

const RING_NODES: usize = 16;
const SPAN: usize = RING_NODES - 1;
const HOP_BOUND: i128 = 32;

/// The per-port bound for the symmetric workload, with or without the
/// ring-in link filter.
fn port_bound(terminals: usize, load_num: i128, load_den: i128, filtered: bool) -> Option<f64> {
    let pcr = ratio(load_num, load_den * (RING_NODES * terminals) as i128);
    let source = TrafficContract::cbr(CbrParams::new(Rate::new(pcr)).ok()?).worst_case_stream();
    let mut ring_in = BitStream::zero();
    for m in 1..SPAN {
        let cdv = Time::from_integer(HOP_BOUND * m as i128);
        let delayed = source.delay(cdv);
        let node_agg = delayed
            .scale(ratio(terminals as i128, 1))
            .expect("non-negative scale");
        ring_in = ring_in.multiplex(&node_agg);
    }
    if filtered {
        ring_in = ring_in.filter();
    }
    let local = source
        .filter()
        .scale(ratio(terminals as i128, 1))
        .expect("non-negative scale");
    let arrival = ring_in.multiplex(&local);
    // Without filtering the arrival can exceed any finite service over
    // an interval; Algorithm 4.1 still applies (interference is zero).
    arrival
        .delay_bound(&BitStream::zero())
        .ok()
        .map(|t| t.to_f64())
}

fn main() {
    header(
        "artifact",
        "ablation: link filtering of upstream aggregates (paper section 3.4)",
    );
    header(
        "setup",
        "Figure 10 symmetric workload; per-port bound with vs without ring-in filtering",
    );
    for terminals in [1usize, 4, 16] {
        series(format!("N={terminals}"));
        columns(&[
            "load",
            "bound_filtered_cells",
            "bound_unfiltered_cells",
            "inflation",
        ]);
        for step in 1..=16i128 {
            let (num, den) = (step, 20i128);
            let with = port_bound(terminals, num, den, true);
            let without = port_bound(terminals, num, den, false);
            match (with, without) {
                (Some(a), Some(b)) => {
                    let inflation = if a > 0.0 { b / a } else { f64::INFINITY };
                    row(&[
                        f(num as f64 / den as f64),
                        f(a),
                        f(b),
                        if inflation.is_finite() {
                            f(inflation)
                        } else {
                            "inf".into()
                        },
                    ]);
                }
                _ => {
                    row(&[
                        f(num as f64 / den as f64),
                        "overload".into(),
                        "overload".into(),
                        "-".into(),
                    ]);
                    break;
                }
            }
        }
    }
}
