//! **Ablation**: fixed advertised CDV (the paper's design) vs the
//! iterative self-consistent alternative the paper deliberately avoids
//! (§4.3: "the CAC algorithms … avoid iteration procedures … by having
//! each switch provide fixed delay bounds").
//!
//! For the symmetric Figure 10 workload, the table prints the per-hop
//! delay bound under both CDV propagation schemes. Finding: the
//! iterated bound is only marginally tighter at admissible loads and
//! both schemes share the same admission frontier — the paper's
//! simplification trades essentially no capacity for O(1) setup cost.

use rtcac_bench::{columns, f, header, row, series};
use rtcac_cac::Priority;
use rtcac_rational::ratio;
use rtcac_rtnet::{iterative, workload};

fn main() {
    header(
        "artifact",
        "ablation: fixed advertised CDV vs iterative self-consistent CDV (section 4.3)",
    );
    header("setup", "16 ring nodes, symmetric load, 32-cell queues");
    for terminals in [1usize, 16] {
        series(format!("N={terminals}"));
        columns(&[
            "load",
            "fixed_bound_cells",
            "iterated_bound_cells",
            "iterations",
            "fixed_admits",
            "iterated_admits",
        ]);
        for step in 1..=14i128 {
            let load = ratio(step, 20);
            let analysis = workload::symmetric(16, terminals, load).expect("valid workload");
            let fixed = analysis.port_bound(0, Priority::HIGHEST);
            let fp =
                iterative::symmetric_fixed_point(16, terminals, load, 48).expect("iteration runs");
            let fixed_str = match &fixed {
                Ok(d) => f(d.to_f64()),
                Err(_) => "overload".into(),
            };
            let fixed_admits = matches!(&fixed, Ok(d) if d.to_f64() <= 32.0);
            row(&[
                f(load.to_f64()),
                fixed_str,
                f(fp.per_hop.to_f64()),
                fp.iterations.to_string(),
                fixed_admits.to_string(),
                (fp.converged && fp.per_hop.to_f64() <= 32.0).to_string(),
            ]);
            if fixed.is_err() {
                break;
            }
        }
    }
}
