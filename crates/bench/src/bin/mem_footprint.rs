//! `mem_footprint` — bytes per resident connection, before vs after
//! the arena/intern representation.
//!
//! Populates a switch with N legs drawn from a small pool of distinct
//! `(contract, CDV)` pairs (the realistic shape: millions of
//! connections, dozens of service classes) and measures live heap via
//! the counting global allocator at three population sizes. The
//! **before** figure rebuilds the retired per-leg layout — a
//! `BTreeMap<(ConnectionId, LinkId), (ConnectionRequest, BitStream)>`
//! with the arrival envelope cloned into every leg — from the same
//! requests, so both figures price identical state. The before number
//! deliberately *excludes* the shared `(i, j, p)` aggregates both
//! layouts carry, biasing the comparison against the new layout.
//!
//! Ends with a leak gate: release every connection, assert the intern
//! refcounts all hit zero, drop the switch, and require live heap back
//! at baseline.
//!
//! Usage: `mem_footprint [--smoke] [--bench-json PATH]`
//!
//! `--smoke` caps the population at 10k legs (CI); the default runs
//! 10k/100k/1M. `--bench-json` writes `BENCH_mem.json`-style rounds
//! (the `ops_per_sec` field carries the before/after reduction factor,
//! so `rtcac bench-report` flags a future representation regression as
//! a slowdown).

use std::collections::BTreeMap;
use std::fmt::Write as _;

use rtcac_bench::memory::{vm_rss_bytes, CountingAlloc};
use rtcac_bench::{columns, f, header, row};
use rtcac_bitstream::{BitStream, CbrParams, Rate, Time, TrafficContract, VbrParams};
use rtcac_cac::{ConnectionId, ConnectionRequest, Priority, Switch, SwitchConfig};
use rtcac_net::LinkId;
use rtcac_obs::alloc_live_bytes;
use rtcac_rational::ratio;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// The coarsening grid: keeps aggregate breakpoints on a lattice so a
/// million-leg switch folds streams without envelope blow-up.
const GRID: i128 = 16;

/// Distinct traffic contracts in the pool — the "dozens of service
/// classes" a real switch sees.
fn contract_pool() -> Vec<TrafficContract> {
    let mut pool = Vec::new();
    for i in 0..16i128 {
        let den = 64 + 8 * i;
        pool.push(TrafficContract::cbr(
            CbrParams::new(Rate::new(ratio(1, den))).unwrap(),
        ));
    }
    for i in 0..16i128 {
        let pcr = ratio(1, 32 + 4 * i);
        let scr = ratio(1, 256 + 16 * i);
        pool.push(TrafficContract::vbr(
            VbrParams::new(Rate::new(pcr), Rate::new(scr), 4 + (i as u64 % 5)).unwrap(),
        ));
    }
    pool
}

/// The deterministic request for leg `k`: pool contract, one of four
/// CDV depths, 4×4 link pairs, two priorities.
fn request_for(pool: &[TrafficContract], k: usize) -> ConnectionRequest {
    ConnectionRequest::new(
        pool[k % pool.len()],
        Time::from_integer(16 * ((k / pool.len()) % 4) as i128),
        LinkId::external((k % 4) as u32),
        LinkId::external(4 + (k / 4 % 4) as u32),
        Priority::new((k % 2) as u8),
    )
}

fn config() -> SwitchConfig {
    SwitchConfig::uniform(2, Time::from_integer(1 << 20))
        .unwrap()
        .with_quantization(GRID)
        .unwrap()
}

/// The retired layout, rebuilt for the before figure: every leg owns
/// its full request and a private copy of its arrival envelope.
struct OldLayout {
    table: BTreeMap<(ConnectionId, LinkId), (ConnectionRequest, BitStream)>,
}

impl OldLayout {
    fn populate(pool: &[TrafficContract], legs: usize) -> OldLayout {
        let mut table = BTreeMap::new();
        let mut envelopes: BTreeMap<(usize, i128), BitStream> = BTreeMap::new();
        for k in 0..legs {
            let request = request_for(pool, k);
            // Compute each distinct envelope once (the old code also
            // recomputed rather than stored per leg — what it *stored*
            // per leg is the clone below).
            let class = (k % pool.len(), 16 * ((k / pool.len()) % 4) as i128);
            let stream = envelopes
                .entry(class)
                .or_insert_with(|| request.arrival_stream().coarsen(GRID).unwrap())
                .clone();
            table.insert(
                (ConnectionId::new(k as u64), request.out_link()),
                (request, stream),
            );
        }
        OldLayout { table }
    }
}

struct Round {
    legs: usize,
    before_bytes: u64,
    after_bytes: u64,
    reported_bytes: usize,
    rss_bytes: u64,
}

fn measure(pool: &[TrafficContract], legs: usize) -> Round {
    // Before: the retired per-leg layout.
    let live0 = alloc_live_bytes();
    let old = OldLayout::populate(pool, legs);
    let before_bytes = alloc_live_bytes() - live0;
    assert_eq!(old.table.len(), legs);
    drop(old);

    // After: the arena/intern switch, restored from identical requests.
    let live0 = alloc_live_bytes();
    let switch = Switch::restore(
        config(),
        0,
        (0..legs).map(|k| (ConnectionId::new(k as u64), request_for(pool, k))),
    )
    .unwrap();
    let after_bytes = alloc_live_bytes() - live0;
    assert_eq!(switch.connection_count(), legs);
    assert!(
        switch.interned_contracts() <= pool.len() * 4,
        "interning must collapse to the class count"
    );
    let reported_bytes = switch.resident_bytes();
    let rss_bytes = vm_rss_bytes();
    drop(switch);

    Round {
        legs,
        before_bytes,
        after_bytes,
        reported_bytes,
        rss_bytes,
    }
}

/// Release every connection one by one, then drop the switch: intern
/// refcounts must all reach zero and live heap must return to the
/// pre-build baseline (no leak through the free lists).
fn leak_gate(pool: &[TrafficContract], legs: usize) -> (u64, u64) {
    let baseline = alloc_live_bytes();
    let mut switch = Switch::restore(
        config(),
        0,
        (0..legs).map(|k| (ConnectionId::new(k as u64), request_for(pool, k))),
    )
    .unwrap();
    for k in 0..legs {
        switch.release(ConnectionId::new(k as u64)).unwrap();
    }
    assert_eq!(switch.connection_count(), 0);
    assert_eq!(
        switch.interned_contracts(),
        0,
        "every intern refcount must hit zero after release-all"
    );
    drop(switch);
    (baseline, alloc_live_bytes())
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let bench_json = args
        .iter()
        .position(|a| a == "--bench-json")
        .and_then(|i| args.get(i + 1))
        .cloned();

    // Warm-up: trigger one-time lazy allocations (stdout buffer,
    // thread locals) before any baseline is taken.
    let pool = contract_pool();
    let _ = measure(&pool, 64);
    println!("# bench: mem_footprint");

    header("grid", GRID);
    header("classes", pool.len());
    header("smoke", smoke);
    columns(&[
        "legs",
        "before_bytes_per_conn",
        "after_bytes_per_conn",
        "reduction_x",
        "reported_bytes_per_conn",
        "vm_rss_mib",
    ]);

    let sizes: &[usize] = if smoke {
        &[10_000]
    } else {
        &[10_000, 100_000, 1_000_000]
    };
    let mut rounds = Vec::new();
    for &legs in sizes {
        let round = measure(&pool, legs);
        let before_per = round.before_bytes as f64 / legs as f64;
        let after_per = round.after_bytes as f64 / legs as f64;
        row(&[
            legs.to_string(),
            f(before_per),
            f(after_per),
            f(before_per / after_per),
            f(round.reported_bytes as f64 / legs as f64),
            f(round.rss_bytes as f64 / (1 << 20) as f64),
        ]);
        rounds.push(round);
    }

    let leak_legs = 10_000;
    let (baseline, after_release) = leak_gate(&pool, leak_legs);
    let leaked = after_release.saturating_sub(baseline);
    header("leak_gate_legs", leak_legs);
    header("leak_gate_leaked_bytes", leaked);
    assert!(
        leaked <= 4096,
        "release-all must return live heap to baseline (leaked {leaked} bytes)"
    );
    println!("leak gate: OK ({leaked} bytes after releasing {leak_legs} legs)");

    // The final (largest) round carries the acceptance bar: at least a
    // 3x cut in bytes per resident connection.
    let last = rounds.last().unwrap();
    let reduction = last.before_bytes as f64 / last.after_bytes as f64;
    header("reduction_at_max_legs", f(reduction));
    assert!(
        reduction >= 3.0,
        "representation must cut bytes/conn at least 3x (got {reduction:.2}x)"
    );

    if let Some(path) = bench_json {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{{\"bench\":\"mem_footprint\",\"smoke\":{smoke},\"grid\":{GRID},\"classes\":{},",
            pool.len()
        );
        let _ = writeln!(out, "\"rounds\":[");
        for (i, round) in rounds.iter().enumerate() {
            let before_per = round.before_bytes as f64 / round.legs as f64;
            let after_per = round.after_bytes as f64 / round.legs as f64;
            let _ = writeln!(
                out,
                "{{\"workers\":{},\"ops_per_sec\":{:.3},\"before_bytes_per_conn\":{:.3},\
                 \"after_bytes_per_conn\":{:.3},\"reported_bytes_per_conn\":{:.3},\
                 \"vm_rss_bytes\":{}}}{}",
                round.legs,
                before_per / after_per,
                before_per,
                after_per,
                round.reported_bytes as f64 / round.legs as f64,
                round.rss_bytes,
                if i + 1 == rounds.len() { "" } else { "," }
            );
        }
        let _ = writeln!(
            out,
            "],\"leak\":{{\"legs\":{leak_legs},\"leaked_bytes\":{leaked}}}}}"
        );
        std::fs::write(&path, out).expect("write bench json");
        header("bench_json", path);
    }
}
