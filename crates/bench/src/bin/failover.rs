//! **Failover capacity**: cyclic traffic a dual-ring RTnet can keep
//! serving after a single link failure (the Figure 9 fault-tolerance
//! design), vs. the healthy ring.
//!
//! Healthy operation uses full-circle broadcasts; after a primary-link
//! failure each broadcast wraps into a forward branch (primary ring)
//! and a backward branch (secondary ring). The sweep finds the largest
//! symmetric load at which every broadcast is (re-)established.

use rtcac_bench::{columns, f, header, row};
use rtcac_bitstream::{CbrParams, Rate, Time, TrafficContract};
use rtcac_cac::{Priority, SwitchConfig};
use rtcac_net::builders;
use rtcac_rational::{ratio, Ratio};
use rtcac_rtnet::failover;
use rtcac_signaling::{CdvPolicy, Network, SetupRequest};

const RING: usize = 8;
const TERMS: usize = 2;
const BOUND: i128 = 32;

fn request(load: Ratio) -> SetupRequest {
    let pcr = load / ratio((RING * TERMS) as i128, 1);
    SetupRequest::new(
        TrafficContract::cbr(CbrParams::new(Rate::new(pcr)).unwrap()),
        Priority::HIGHEST,
        Time::from_integer(1_000_000),
    )
}

/// All broadcasts established on the healthy ring?
fn healthy_ok(load: Ratio) -> bool {
    let sr = builders::dual_star_ring(RING, TERMS).unwrap();
    let config = SwitchConfig::uniform(1, Time::from_integer(BOUND)).unwrap();
    let mut network = Network::new(sr.topology().clone(), config, CdvPolicy::Hard);
    for node in 0..RING {
        for term in 0..TERMS {
            let route = sr.ring_route_from_terminal(node, term, RING - 1).unwrap();
            if !network.setup(&route, request(load)).unwrap().is_connected() {
                return false;
            }
        }
    }
    true
}

/// All broadcasts re-established after link 0 fails?
fn wrapped_ok(load: Ratio) -> bool {
    let sr = builders::dual_star_ring(RING, TERMS).unwrap();
    let config = SwitchConfig::uniform(1, Time::from_integer(BOUND)).unwrap();
    let mut network = Network::new(sr.topology().clone(), config, CdvPolicy::Hard);
    let sources: Vec<(usize, usize)> = (0..RING)
        .flat_map(|n| (0..TERMS).map(move |t| (n, t)))
        .collect();
    let report = failover::reestablish(&mut network, &sr, 0, &sources, request(load)).unwrap();
    report.lost == 0
}

fn max_load(mut ok: impl FnMut(Ratio) -> bool) -> Ratio {
    let (mut lo, mut hi) = (Ratio::ZERO, Ratio::ONE);
    if ok(hi) {
        return hi;
    }
    for _ in 0..7 {
        let mid = (lo + hi) / ratio(2, 1);
        if ok(mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

fn main() {
    header(
        "artifact",
        "failover: capacity before vs after a single ring link failure (Figure 9 design)",
    );
    header(
        "setup",
        format!("{RING} dual-ring nodes x {TERMS} terminals, {BOUND}-cell queues, hard CAC"),
    );
    columns(&["configuration", "max_symmetric_load"]);
    let healthy = max_load(healthy_ok);
    let wrapped = max_load(wrapped_ok);
    row(&["healthy_ring".into(), f(healthy.to_f64())]);
    row(&["after_link_failure".into(), f(wrapped.to_f64())]);
    header(
        "capacity_retained",
        f(if healthy.is_positive() {
            wrapped.to_f64() / healthy.to_f64()
        } else {
            0.0
        }),
    );
}
