//! Regenerates **Figure 12**: capacity with one vs two priority
//! levels under asymmetric load.

use rtcac_bench::{columns, f, header, row};
use rtcac_rtnet::experiments::fig12;

fn main() {
    let fig = fig12::run(fig12::Params::default()).expect("figure 12 sweep");
    header("artifact", "Figure 12: one vs two priority levels");
    header(
        "setup",
        format!(
            "16 ring nodes, N={} terminals, 32-cell high / 64-cell low queues",
            fig.terminals
        ),
    );
    columns(&[
        "p",
        "one_priority",
        "two_priorities",
        "smalls_low",
        "big_low",
    ]);
    for pt in &fig.points {
        row(&[
            f(pt.share.to_f64()),
            f(pt.one_priority.to_f64()),
            f(pt.two_priorities.to_f64()),
            f(pt.smalls_low.to_f64()),
            f(pt.big_low.to_f64()),
        ]);
    }
}
