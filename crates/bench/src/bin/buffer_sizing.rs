//! **Buffer sizing**: the per-node FIFO queue needed to carry a given
//! symmetric cyclic load — the §5 design feedback loop ("the outcomes
//! of the CAC check also help to set network parameters such as ring
//! node buffer sizes").
//!
//! The computed worst-case per-port delay *is* the queue occupancy the
//! port must absorb, so the table reads directly as "cells of buffer
//! per ring node per priority".

use rtcac_bench::{columns, f, header, row, series};
use rtcac_cac::Priority;
use rtcac_rational::ratio;
use rtcac_rtnet::workload;

fn main() {
    header(
        "artifact",
        "buffer sizing: required ring-node queue (cells) vs load (section 5 design use)",
    );
    header("setup", "16 ring nodes, symmetric cyclic traffic, hard CAC");
    for terminals in [1usize, 4, 8, 16] {
        series(format!("N={terminals}"));
        columns(&["load", "required_queue_cells", "fits_32_cell_queue"]);
        for step in 1..=19i128 {
            let load = ratio(step, 20);
            let analysis = match workload::symmetric(16, terminals, load) {
                Ok(a) => a,
                Err(_) => break,
            };
            match analysis.port_bound(0, Priority::HIGHEST) {
                Ok(bound) => {
                    let cells = bound.as_ratio().ceil();
                    row(&[
                        f(load.to_f64()),
                        cells.to_string(),
                        (cells <= 32).to_string(),
                    ]);
                }
                Err(_) => {
                    row(&[f(load.to_f64()), "overload".into(), "false".into()]);
                    break;
                }
            }
        }
    }
}
