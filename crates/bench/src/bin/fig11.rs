//! Regenerates **Figure 11**: admissible total bandwidth vs the big
//! terminal's traffic share, for N ∈ {1, 8, 16}.

use rtcac_bench::{columns, f, header, row, series};
use rtcac_rtnet::experiments::fig11;

fn main() {
    let fig = fig11::run(fig11::Params::default()).expect("figure 11 sweep");
    header("artifact", "Figure 11: asymmetric cyclic traffic support");
    header(
        "setup",
        "16 ring nodes, one terminal takes share p, hard CAC",
    );
    for s in &fig.series {
        series(format!("N={}", s.terminals));
        columns(&["p", "max_load", "max_load_Mbps"]);
        for pt in &s.points {
            row(&[
                f(pt.share.to_f64()),
                f(pt.max_load.to_f64()),
                f(pt.max_load_mbps),
            ]);
        }
    }
}
