//! **Extension**: cyclic broadcast as true point-to-multipoint VCs vs
//! the ring-path approximation of the Figure 10 analysis.
//!
//! The §5 analysis counts only ring output ports (each node
//! "contributes 87 µs"). A real p2mp cyclic VC also reserves the
//! drop-off ports down to every terminal; those downlinks each carry
//! *all* broadcasts, so they can bind before the ring ports do. The
//! sweep measures the largest symmetric load at which every broadcast
//! tree is admitted, next to the ring-only model's verdict.

use rtcac_bench::{columns, f, header, row};
use rtcac_bitstream::{CbrParams, Rate, Time, TrafficContract};
use rtcac_cac::{Priority, SwitchConfig};
use rtcac_net::builders;
use rtcac_rational::{ratio, Ratio};
use rtcac_rtnet::workload;
use rtcac_signaling::{CdvPolicy, Network, SetupRequest};

const BOUND: i128 = 32;

fn p2mp_ok(nodes: usize, terms: usize, load: Ratio) -> bool {
    let sr = builders::star_ring(nodes, terms).unwrap();
    let config = SwitchConfig::uniform(1, Time::from_integer(BOUND)).unwrap();
    let mut network = Network::new(sr.topology().clone(), config, CdvPolicy::Hard);
    let pcr = load / ratio((nodes * terms) as i128, 1);
    for node in 0..nodes {
        for term in 0..terms {
            let tree = sr.broadcast_tree(node, term).unwrap();
            let request = SetupRequest::new(
                TrafficContract::cbr(CbrParams::new(Rate::new(pcr)).unwrap()),
                Priority::HIGHEST,
                Time::from_integer(1_000_000),
            );
            if !network
                .setup_multicast(&tree, request)
                .unwrap()
                .is_connected()
            {
                return false;
            }
        }
    }
    true
}

fn max_load(mut ok: impl FnMut(Ratio) -> bool) -> Ratio {
    let (mut lo, mut hi) = (Ratio::ZERO, Ratio::ONE);
    if ok(hi) {
        return hi;
    }
    for _ in 0..7 {
        let mid = (lo + hi) / ratio(2, 1);
        if ok(mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

fn main() {
    header(
        "artifact",
        "extension: p2mp cyclic broadcast capacity vs the ring-only Figure 10 model",
    );
    header(
        "setup",
        "star-ring, symmetric CBR broadcast, hard CAC, 32-cell queues",
    );
    columns(&[
        "ring_nodes",
        "terminals",
        "ring_model_max_load",
        "p2mp_max_load",
    ]);
    for (nodes, terms) in [(4usize, 2usize), (8, 2), (8, 4)] {
        let ring_model = max_load(|b| {
            workload::symmetric(nodes, terms, b)
                .map(|a| a.admissible().unwrap_or(false))
                .unwrap_or(false)
        });
        let p2mp = max_load(|b| p2mp_ok(nodes, terms, b));
        row(&[
            nodes.to_string(),
            terms.to_string(),
            f(ring_model.to_f64()),
            f(p2mp.to_f64()),
        ]);
    }
}
