//! Regenerates **Figure 13**: soft vs hard CAC capacity under
//! asymmetric load.

use rtcac_bench::{columns, f, header, row};
use rtcac_rtnet::experiments::fig13;

fn main() {
    let fig = fig13::run(fig13::Params::default()).expect("figure 13 sweep");
    header("artifact", "Figure 13: soft vs hard CAC");
    header(
        "setup",
        format!(
            "16 ring nodes, N={} terminals, square-root vs summed CDV",
            fig.terminals
        ),
    );
    columns(&["p", "hard", "soft"]);
    for pt in &fig.points {
        row(&[
            f(pt.share.to_f64()),
            f(pt.hard.to_f64()),
            f(pt.soft.to_f64()),
        ]);
    }
}
