//! Heap measurement: a counting global allocator and an RSS reader.
//!
//! Two independent views of memory, cross-checkable against each other:
//!
//! * [`CountingAlloc`] — a zero-dependency `GlobalAlloc` wrapper over
//!   the system allocator that reports every alloc/dealloc into the
//!   process-wide counters in `rtcac_obs` ([`rtcac_obs::alloc_live_bytes`]).
//!   Exact to the byte for what the program *requested*, blind to
//!   allocator overhead. Install it from a binary root:
//!
//!   ```ignore
//!   #[global_allocator]
//!   static ALLOC: rtcac_bench::memory::CountingAlloc = rtcac_bench::memory::CountingAlloc;
//!   ```
//!
//! * [`vm_rss_bytes`] — the kernel's resident-set figure from
//!   `/proc/self/status` (Linux; `0` elsewhere). Includes allocator
//!   slack, code and stacks — the number an operator sees in `top`.
//!
//! The `mem_footprint` bench records both so a reader can see that the
//! per-connection deltas are real memory, not accounting artifacts.

use std::alloc::{GlobalAlloc, Layout, System};

/// A counting wrapper around the system allocator. Every successful
/// allocation and deallocation is recorded into the `rtcac_obs` heap
/// counters with relaxed atomics; the allocation itself is delegated
/// untouched, so behavior (alignment, zeroing) is exactly [`System`]'s.
pub struct CountingAlloc;

// SAFETY: pure delegation to `System`, which upholds the `GlobalAlloc`
// contract; the counter updates are lock-free atomics and never
// allocate, so there is no reentrancy.
#[allow(unsafe_code)]
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc(layout);
        if !ptr.is_null() {
            rtcac_obs::note_alloc(layout.size());
        }
        ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        rtcac_obs::note_dealloc(layout.size());
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc_zeroed(layout);
        if !ptr.is_null() {
            rtcac_obs::note_alloc(layout.size());
        }
        ptr
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let new_ptr = System.realloc(ptr, layout, new_size);
        if !new_ptr.is_null() {
            rtcac_obs::note_dealloc(layout.size());
            rtcac_obs::note_alloc(new_size);
        }
        new_ptr
    }
}

/// The process's resident set size in bytes, from `VmRSS` in
/// `/proc/self/status`. Returns `0` when the file or field is absent
/// (non-Linux platforms) — callers treat `0` as "unavailable".
#[cfg(target_os = "linux")]
pub fn vm_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmRSS:") {
            let kib: u64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
            return kib * 1024;
        }
    }
    0
}

/// The process's resident set size in bytes; always `0` off Linux.
#[cfg(not(target_os = "linux"))]
pub fn vm_rss_bytes() -> u64 {
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg(target_os = "linux")]
    fn rss_is_positive_on_linux() {
        assert!(vm_rss_bytes() > 0, "a running process is resident");
    }
}
