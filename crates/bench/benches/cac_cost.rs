//! Cost of the §4.3 admission check as a function of established
//! connections and priority levels — the operational concern the paper
//! raises in §4.3 discussion 2 ("the computation ... increases
//! proportionally with the number of priority levels").
//!
//! Plain harness-less timing (std::time::Instant) — the registry is
//! offline, so criterion is unavailable.

use rtcac_bench::{human_time, time_op};
use rtcac_bitstream::{Rate, Time, TrafficContract, VbrParams};
use rtcac_cac::{ConnectionId, ConnectionRequest, Priority, Switch, SwitchConfig};
use rtcac_net::LinkId;
use rtcac_rational::ratio;
use std::hint::black_box;
use std::time::Duration;

fn contract(k: u64) -> TrafficContract {
    TrafficContract::vbr(
        VbrParams::new(
            Rate::new(ratio(1, 40 + (k % 11) as i128)),
            Rate::new(ratio(1, 600 + (k % 17) as i128)),
            2 + k % 6,
        )
        .unwrap(),
    )
}

/// A switch preloaded with `n` established connections spread over 4
/// incoming links and `levels` priorities. Quantization keeps the
/// exact-rational denominators of the heterogeneous contracts bounded
/// (the production configuration for large switches).
fn loaded_switch(n: u64, levels: u8) -> Switch {
    let config = SwitchConfig::uniform(levels, Time::from_integer(500))
        .unwrap()
        .with_quantization(4096)
        .unwrap();
    let mut sw = Switch::new(config);
    for k in 0..n {
        let request = ConnectionRequest::new(
            contract(k),
            Time::from_integer(64),
            LinkId::external((k % 4) as u32),
            LinkId::external(100),
            Priority::new((k % levels as u64) as u8),
        );
        let decision = sw.admit(ConnectionId::new(k), request).unwrap();
        assert!(decision.is_admitted(), "bench preload must fit");
    }
    sw
}

const BUDGET: Duration = Duration::from_millis(200);

fn report(name: &str, secs: f64) {
    println!("{name:<44} {}", human_time(secs));
}

fn main() {
    for n in [8u64, 32, 128] {
        let sw = loaded_switch(n, 1);
        let probe = ConnectionRequest::new(
            contract(9999),
            Time::from_integer(64),
            LinkId::external(1),
            LinkId::external(100),
            Priority::HIGHEST,
        );
        let t = time_op(|| black_box(sw.check(black_box(&probe)).unwrap()), BUDGET);
        report(&format!("cac_check_vs_connections/{n}"), t);
    }
    for levels in [1u8, 2, 4] {
        let sw = loaded_switch(64, levels);
        let probe = ConnectionRequest::new(
            contract(9999),
            Time::from_integer(64),
            LinkId::external(1),
            LinkId::external(100),
            Priority::HIGHEST,
        );
        let t = time_op(|| black_box(sw.check(black_box(&probe)).unwrap()), BUDGET);
        report(&format!("cac_check_vs_priorities/{levels}"), t);
    }
    {
        let sw = loaded_switch(64, 1);
        let probe = ConnectionRequest::new(
            contract(4242),
            Time::from_integer(64),
            LinkId::external(2),
            LinkId::external(100),
            Priority::HIGHEST,
        );
        let t = time_op(
            || {
                let mut sw = sw.clone();
                let d = sw.admit(ConnectionId::new(999_999), probe).unwrap();
                assert!(d.is_admitted());
                sw.release(ConnectionId::new(999_999)).unwrap();
                black_box(sw.connection_count())
            },
            BUDGET,
        );
        report("cac_admit_release_cycle_64_established", t);
    }
}
