//! Micro-benchmarks of the bit-stream algebra (Algorithms 2.1,
//! 3.1-3.4, 4.1): the per-operation cost that dominates a CAC check.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rtcac_bitstream::{BitStream, Rate, Time, TrafficContract, VbrParams};
use rtcac_rational::ratio;
use std::hint::black_box;

/// A worst-case VBR stream with distinct small-rational parameters so
/// aggregates accumulate many distinct breakpoints.
fn vbr_stream(k: i128) -> BitStream {
    let pcr = ratio(1, 2 + (k % 7));
    let scr = ratio(1, 20 + k % 13);
    TrafficContract::vbr(
        VbrParams::new(Rate::new(pcr), Rate::new(scr), 4 + (k % 9) as u64).unwrap(),
    )
    .worst_case_stream()
}

fn aggregate(n: i128) -> BitStream {
    let parts: Vec<BitStream> = (0..n).map(vbr_stream).collect();
    BitStream::multiplex_all(&parts)
}

fn bench_multiplex(c: &mut Criterion) {
    let mut group = c.benchmark_group("multiplex");
    for n in [2i128, 16, 64, 256] {
        let agg = aggregate(n);
        let one = vbr_stream(n + 1);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(agg.multiplex(black_box(&one))))
        });
    }
    group.finish();
}

fn bench_filter(c: &mut Criterion) {
    let mut group = c.benchmark_group("filter");
    for n in [2i128, 16, 64, 256] {
        let agg = aggregate(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(agg.filter()))
        });
    }
    group.finish();
}

fn bench_delay(c: &mut Criterion) {
    let mut group = c.benchmark_group("delay");
    let s = vbr_stream(3);
    for cdv in [32i128, 128, 512] {
        group.bench_with_input(BenchmarkId::from_parameter(cdv), &cdv, |b, &cdv| {
            b.iter(|| black_box(s.delay(Time::from_integer(cdv))))
        });
    }
    group.finish();
}

fn bench_delay_bound(c: &mut Criterion) {
    let mut group = c.benchmark_group("delay_bound");
    for n in [2i128, 16, 64, 256] {
        let arrival = aggregate(n);
        let interference = aggregate(n / 2).filter();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(arrival.delay_bound(black_box(&interference)).ok()))
        });
    }
    group.finish();
}

fn bench_worst_case_stream(c: &mut Criterion) {
    c.bench_function("algorithm_2_1_contract_to_stream", |b| {
        let contract = TrafficContract::vbr(
            VbrParams::new(Rate::new(ratio(1, 3)), Rate::new(ratio(1, 17)), 12).unwrap(),
        );
        b.iter(|| black_box(contract.worst_case_stream()))
    });
}

criterion_group!(
    benches,
    bench_multiplex,
    bench_filter,
    bench_delay,
    bench_delay_bound,
    bench_worst_case_stream
);
criterion_main!(benches);
