//! Micro-benchmarks of the bit-stream algebra (Algorithms 2.1,
//! 3.1-3.4, 4.1): the per-operation cost that dominates a CAC check.
//!
//! Plain harness-less timing (std::time::Instant) — the registry is
//! offline, so criterion is unavailable.

use rtcac_bench::{human_time, time_op};
use rtcac_bitstream::{BitStream, Rate, Time, TrafficContract, VbrParams};
use rtcac_rational::ratio;
use std::hint::black_box;
use std::time::Duration;

/// A worst-case VBR stream with distinct small-rational parameters so
/// aggregates accumulate many distinct breakpoints.
fn vbr_stream(k: i128) -> BitStream {
    let pcr = ratio(1, 2 + (k % 7));
    let scr = ratio(1, 20 + k % 13);
    TrafficContract::vbr(
        VbrParams::new(Rate::new(pcr), Rate::new(scr), 4 + (k % 9) as u64).unwrap(),
    )
    .worst_case_stream()
}

fn aggregate(n: i128) -> BitStream {
    let parts: Vec<BitStream> = (0..n).map(vbr_stream).collect();
    BitStream::multiplex_all(&parts)
}

const BUDGET: Duration = Duration::from_millis(200);

fn report(name: &str, secs: f64) {
    println!("{name:<44} {}", human_time(secs));
}

fn main() {
    for n in [2i128, 16, 64, 256] {
        let agg = aggregate(n);
        let one = vbr_stream(n + 1);
        let t = time_op(|| black_box(agg.multiplex(black_box(&one))), BUDGET);
        report(&format!("multiplex/{n}"), t);
    }
    for n in [2i128, 16, 64, 256] {
        let agg = aggregate(n);
        let t = time_op(|| black_box(agg.filter()), BUDGET);
        report(&format!("filter/{n}"), t);
    }
    let s = vbr_stream(3);
    for cdv in [32i128, 128, 512] {
        let t = time_op(|| black_box(s.delay(Time::from_integer(cdv))), BUDGET);
        report(&format!("delay/{cdv}"), t);
    }
    for n in [2i128, 16, 64, 256] {
        let arrival = aggregate(n);
        let interference = aggregate(n / 2).filter();
        let t = time_op(
            || black_box(arrival.delay_bound(black_box(&interference)).ok()),
            BUDGET,
        );
        report(&format!("delay_bound/{n}"), t);
    }
    let contract = TrafficContract::vbr(
        VbrParams::new(Rate::new(ratio(1, 3)), Rate::new(ratio(1, 17)), 12).unwrap(),
    );
    let t = time_op(|| black_box(contract.worst_case_stream()), BUDGET);
    report("algorithm_2_1_contract_to_stream", t);
}
