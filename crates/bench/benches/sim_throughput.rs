//! Throughput of the cell-level simulator: slots per second for the
//! bound-validation scenarios.
//!
//! Plain harness-less timing (std::time::Instant) — the registry is
//! offline, so criterion is unavailable.

use rtcac_bench::time_op;
use rtcac_bitstream::{CbrParams, Rate, TrafficContract};
use rtcac_cac::{ConnectionId, Priority};
use rtcac_net::builders;
use rtcac_rational::ratio;
use rtcac_sim::{Simulation, TrafficPattern};
use std::hint::black_box;
use std::time::Duration;

fn ring_sim(terminals: usize) -> Simulation {
    let sr = builders::star_ring(8, terminals).unwrap();
    let mut sim = Simulation::new(sr.topology());
    let mut id = 0u64;
    for node in 0..8 {
        for t in 0..terminals {
            let route = sr.ring_route_from_terminal(node, t, 7).unwrap();
            let contract = TrafficContract::cbr(
                CbrParams::new(Rate::new(ratio(1, (16 * terminals) as i128 * 2))).unwrap(),
            );
            sim.add_connection(
                ConnectionId::new(id),
                route,
                Priority::HIGHEST,
                contract,
                TrafficPattern::Greedy,
            )
            .unwrap();
            id += 1;
        }
    }
    sim
}

fn main() {
    const SLOTS: u64 = 20_000;
    for terminals in [1usize, 4] {
        let sim = ring_sim(terminals);
        let secs = time_op(
            || black_box(sim.run(SLOTS).total_drops()),
            Duration::from_millis(400),
        );
        let slots_per_sec = SLOTS as f64 / secs;
        println!("sim_slots/ring8/{terminals:<2} {slots_per_sec:>14.0} slots/s");
    }
}
