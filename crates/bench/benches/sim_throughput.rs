//! Throughput of the cell-level simulator: slots per second for the
//! bound-validation scenarios.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rtcac_bitstream::{CbrParams, Rate, TrafficContract};
use rtcac_cac::{ConnectionId, Priority};
use rtcac_net::builders;
use rtcac_rational::ratio;
use rtcac_sim::{Simulation, TrafficPattern};
use std::hint::black_box;

fn ring_sim(terminals: usize) -> Simulation {
    let sr = builders::star_ring(8, terminals).unwrap();
    let mut sim = Simulation::new(sr.topology());
    let mut id = 0u64;
    for node in 0..8 {
        for t in 0..terminals {
            let route = sr.ring_route_from_terminal(node, t, 7).unwrap();
            let contract = TrafficContract::cbr(
                CbrParams::new(Rate::new(ratio(1, (16 * terminals) as i128 * 2))).unwrap(),
            );
            sim.add_connection(
                ConnectionId::new(id),
                route,
                Priority::HIGHEST,
                contract,
                TrafficPattern::Greedy,
            )
            .unwrap();
            id += 1;
        }
    }
    sim
}

fn bench_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_slots");
    group.sample_size(10);
    const SLOTS: u64 = 20_000;
    group.throughput(Throughput::Elements(SLOTS));
    for terminals in [1usize, 4] {
        let sim = ring_sim(terminals);
        group.bench_with_input(
            BenchmarkId::new("ring8", terminals),
            &terminals,
            |b, _| b.iter(|| black_box(sim.run(SLOTS).total_drops())),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_sim);
criterion_main!(benches);
