//! Cell delay variation accumulation over upstream queueing points.

use rtcac_bitstream::Time;
use rtcac_rational::{sqrt_upper, Ratio};

use crate::CacError;

/// Precision denominator for the soft (square-root) accumulation: the
/// result is exact to within 1/10⁶ of a cell time, always rounded up.
const SQRT_PRECISION: i128 = 1_000_000;

/// How the cell delay variation (CDV) a connection accumulates over
/// upstream switches is estimated (paper §4.3, discussion 1).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum CdvPolicy {
    /// Worst case: the plain sum of the upstream per-hop delay bounds.
    /// Required for **hard** real-time guarantees.
    #[default]
    Hard,
    /// Square root of the sum of squared per-hop bounds — a less
    /// conservative estimate for **soft** real-time connections (the
    /// probability of hitting the maximum delay at *every* hop is
    /// negligible). Rounded up so it stays an upper estimate of the
    /// model it represents.
    SoftSqrt,
}

impl CdvPolicy {
    /// Accumulates per-hop delay bounds into the CDV seen by the next
    /// hop downstream.
    ///
    /// # Errors
    ///
    /// Returns [`CacError::NegativeBound`] if any bound is negative,
    /// or [`CacError::Numeric`] on arithmetic overflow.
    ///
    /// ```
    /// use rtcac_bitstream::Time;
    /// use rtcac_cac::CdvPolicy;
    ///
    /// let hops = [Time::from_integer(32); 4];
    /// assert_eq!(CdvPolicy::Hard.accumulate(&hops)?, Time::from_integer(128));
    /// // sqrt(4 * 32²) = 64.
    /// let soft = CdvPolicy::SoftSqrt.accumulate(&hops)?;
    /// assert!(soft >= Time::from_integer(64));
    /// assert!(soft < Time::from_integer(65));
    /// # Ok::<(), rtcac_cac::CacError>(())
    /// ```
    pub fn accumulate(&self, upstream_bounds: &[Time]) -> Result<Time, CacError> {
        for &b in upstream_bounds {
            if b.is_negative() {
                return Err(CacError::NegativeBound(b));
            }
        }
        match self {
            CdvPolicy::Hard => Ok(upstream_bounds.iter().copied().sum()),
            CdvPolicy::SoftSqrt => {
                let mut sum_sq = Ratio::ZERO;
                for b in upstream_bounds {
                    let r = b.as_ratio();
                    let sq = r.checked_mul(r).ok_or(CacError::Numeric)?;
                    sum_sq = sum_sq.checked_add(sq).ok_or(CacError::Numeric)?;
                }
                let root = sqrt_upper(sum_sq, SQRT_PRECISION).map_err(|_| CacError::Numeric)?;
                Ok(Time::new(root))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtcac_rational::ratio;

    #[test]
    fn hard_is_plain_sum() {
        let bounds = [
            Time::from_integer(10),
            Time::from_integer(20),
            Time::from_integer(2),
        ];
        assert_eq!(
            CdvPolicy::Hard.accumulate(&bounds).unwrap(),
            Time::from_integer(32)
        );
    }

    #[test]
    fn empty_upstream_is_zero() {
        assert_eq!(CdvPolicy::Hard.accumulate(&[]).unwrap(), Time::ZERO);
        assert_eq!(CdvPolicy::SoftSqrt.accumulate(&[]).unwrap(), Time::ZERO);
    }

    #[test]
    fn soft_matches_pythagoras() {
        // 3-4 right triangle: sqrt(9 + 16) = 5.
        let bounds = [Time::from_integer(3), Time::from_integer(4)];
        let soft = CdvPolicy::SoftSqrt.accumulate(&bounds).unwrap();
        assert!(soft >= Time::from_integer(5));
        assert!(soft <= Time::from_integer(5) + Time::new(ratio(1, 100_000)));
    }

    #[test]
    fn soft_never_exceeds_hard() {
        let bounds = [
            Time::from_integer(32),
            Time::from_integer(32),
            Time::from_integer(16),
            Time::from_integer(8),
        ];
        let hard = CdvPolicy::Hard.accumulate(&bounds).unwrap();
        let soft = CdvPolicy::SoftSqrt.accumulate(&bounds).unwrap();
        assert!(soft <= hard);
    }

    #[test]
    fn soft_equals_hard_for_single_hop() {
        let bounds = [Time::from_integer(32)];
        let hard = CdvPolicy::Hard.accumulate(&bounds).unwrap();
        let soft = CdvPolicy::SoftSqrt.accumulate(&bounds).unwrap();
        // Rounded up by at most the precision step.
        assert!(soft >= hard);
        assert!(soft - hard <= Time::new(ratio(1, 100_000)));
    }

    #[test]
    fn soft_is_conservative_upper_bound() {
        // The returned value squared must dominate the sum of squares.
        let bounds = [Time::from_integer(7), Time::from_integer(11)];
        let soft = CdvPolicy::SoftSqrt.accumulate(&bounds).unwrap();
        let sum_sq = ratio(7 * 7 + 11 * 11, 1);
        assert!(soft.as_ratio() * soft.as_ratio() >= sum_sq);
    }

    #[test]
    fn negative_bound_rejected() {
        let bounds = [Time::from_integer(-1)];
        assert!(matches!(
            CdvPolicy::Hard.accumulate(&bounds),
            Err(CacError::NegativeBound(_))
        ));
        assert!(matches!(
            CdvPolicy::SoftSqrt.accumulate(&bounds),
            Err(CacError::NegativeBound(_))
        ));
    }

    #[test]
    fn default_is_hard() {
        assert_eq!(CdvPolicy::default(), CdvPolicy::Hard);
    }
}
