//! The transport-agnostic admission lifecycle core.
//!
//! The paper's §4.3 CAC is one per-hop bookkeeping discipline — check,
//! reserve, commit, release against the `(in-link, out-link, priority)`
//! aggregates — regardless of whether the connection is a point-to-point
//! [`Route`] or a point-to-multipoint [`MulticastTree`]. This module
//! captures that discipline once:
//!
//! * [`RoutePlan`] — the transport-agnostic *shape* of a connection:
//!   one [`HopSpec`] per queueing point plus the hop indices feeding
//!   each terminal, built from either a path or a tree.
//! * [`ReservationPlan`] — the *priced* hop ledger: per-hop
//!   [`ConnectionRequest`]s with CDV pre-accumulated by a [`CdvPolicy`]
//!   from the advertised upstream bounds, and the guaranteed delay per
//!   terminal (the QoS feasibility gate).
//! * [`ReservationPlan::reserve`] — the reserve walk with first-refusal
//!   rollback, parameterized over a [`HopDriver`] so the serial
//!   signaling layer and the concurrent sharded engine drive the same
//!   loop.
//!
//! Drivers differ only in *where* the switch state lives (a plain map
//! vs. locked shards) and what bookkeeping (events, metrics, epoch
//! rewinds) each phase records.

use rtcac_bitstream::{Time, TrafficContract};
use rtcac_net::{LinkId, MulticastTree, NetError, NodeId, Route, Topology};

use crate::{AdmissionDecision, CacError, CdvPolicy, ConnectionRequest, Priority, RejectReason};

/// The pseudo incoming link used for a connection injected locally at a
/// switch (a route or tree rooted at the switch itself): traffic enters
/// from the switch fabric, not from a transmission link, so it bypasses
/// the incoming-link overload check.
pub const LOCAL_INJECTION: LinkId = LinkId::external(u32::MAX);

/// One queueing point of a [`RoutePlan`]: the switch, its in/out links,
/// and which earlier hops feed the CDV seen here.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HopSpec {
    /// The switch running the CAC check.
    pub node: NodeId,
    /// The link the connection's cells arrive on ([`LOCAL_INJECTION`]
    /// when the connection originates at this switch).
    pub in_link: LinkId,
    /// The outgoing link whose FIFO the connection joins.
    pub out_link: LinkId,
    /// Indices (into the plan's hop list) of the upstream queueing
    /// points on this hop's root path, in root-to-hop order; their
    /// advertised bounds accumulate into this hop's CDV.
    pub upstream: Vec<usize>,
}

/// The transport-agnostic shape of a connection: its queueing points
/// and, per terminal (destination or leaf), the hops on that terminal's
/// path. Built from a [`Route`] or a [`MulticastTree`]; everything
/// downstream of this type is transport-blind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoutePlan {
    hops: Vec<HopSpec>,
    /// `(terminal node, hop indices on its root path)`, sorted by node
    /// for trees; a single entry (the destination) for paths.
    terminals: Vec<(NodeId, Vec<usize>)>,
}

impl RoutePlan {
    /// The plan of a point-to-point route: hop `k`'s CDV accumulates
    /// over hops `0..k`, and the single terminal (the destination) is
    /// reached through every hop.
    ///
    /// # Errors
    ///
    /// Returns [`NetError`] if the route belongs to another topology.
    pub fn from_route(topology: &Topology, route: &Route) -> Result<RoutePlan, NetError> {
        let points = route.queueing_points(topology)?;
        let mut hops = Vec::with_capacity(points.len());
        for (k, &(node, out_link)) in points.iter().enumerate() {
            let in_link = route
                .incoming_link(topology, node)?
                .unwrap_or(LOCAL_INJECTION);
            hops.push(HopSpec {
                node,
                in_link,
                out_link,
                upstream: (0..k).collect(),
            });
        }
        let destination = route.destination(topology)?;
        let all: Vec<usize> = (0..hops.len()).collect();
        Ok(RoutePlan {
            hops,
            terminals: vec![(destination, all)],
        })
    }

    /// The plan of a point-to-multipoint tree: one hop per
    /// [`MulticastTree::queueing_points`] entry (one leg per switch
    /// port, CDV accumulated along the port's root path), one terminal
    /// per leaf.
    ///
    /// # Errors
    ///
    /// Returns [`NetError`] if the tree belongs to another topology.
    pub fn from_tree(topology: &Topology, tree: &MulticastTree) -> Result<RoutePlan, NetError> {
        let points = tree.queueing_points(topology)?;
        // Hop index per tree out-link, for root-path lookups.
        let index_of: std::collections::BTreeMap<LinkId, usize> = points
            .iter()
            .enumerate()
            .map(|(i, &(_, out_link, _))| (out_link, i))
            .collect();
        let mut hops = Vec::with_capacity(points.len());
        for &(node, out_link, _) in &points {
            let in_link = tree.parent(out_link).unwrap_or(LOCAL_INJECTION);
            let path = tree
                .root_path(out_link)
                .ok_or(NetError::UnknownLink(out_link))?;
            // Upstream queueing points: the switch-departing links on
            // the root path before this one (non-switch links, like an
            // end-system root's access link, are not queueing points
            // and have no hop index).
            let upstream = path[..path.len() - 1]
                .iter()
                .filter_map(|l| index_of.get(l).copied())
                .collect();
            hops.push(HopSpec {
                node,
                in_link,
                out_link,
                upstream,
            });
        }
        let mut terminals = Vec::new();
        for (leaf, path) in tree.leaf_paths(topology)? {
            let indices = path
                .iter()
                .filter_map(|l| index_of.get(l).copied())
                .collect();
            terminals.push((leaf, indices));
        }
        Ok(RoutePlan { hops, terminals })
    }

    /// The plan's queueing points, in reservation order.
    pub fn hops(&self) -> &[HopSpec] {
        &self.hops
    }

    /// The terminals and the hop indices on each terminal's path.
    pub fn terminals(&self) -> &[(NodeId, Vec<usize>)] {
        &self.terminals
    }
}

/// One priced hop of a [`ReservationPlan`]: the pricing of one leg.
///
/// The hop carries only what *varies* per leg — links and accumulated
/// CDV. The traffic contract and priority are stored **once** on the
/// owning [`ReservationPlan`] (they are identical for every leg of a
/// connection); [`ReservationPlan::request_for`] materializes the full
/// [`ConnectionRequest`] at the driver boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlannedHop {
    /// The switch running the CAC check.
    pub node: NodeId,
    /// The link the connection's cells arrive on ([`LOCAL_INJECTION`]
    /// when the connection originates at this switch).
    pub in_link: LinkId,
    /// The outgoing link whose FIFO the connection joins.
    pub out_link: LinkId,
    /// The CDV accumulated over this hop's upstream queueing points.
    pub cdv: Time,
    /// The switch's advertised (fixed) per-hop delay bound.
    pub advertised: Time,
    /// The CDV leaving this hop (upstream plus this hop's advertised
    /// bound under the same policy) — the next hop's `cdv` on a path.
    pub cdv_out: Time,
}

/// What a [`ReservationPlan::reserve`] walk concluded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReserveOutcome {
    /// Every hop admitted; the connection may commit.
    Reserved,
    /// A hop refused; every previously reserved leg was rolled back.
    Refused {
        /// The switch that refused.
        at: NodeId,
        /// The refusing hop's index in the plan.
        index: usize,
        /// Why the switch refused.
        reason: RejectReason,
        /// Reserved legs undone by the rollback (a leg per hop; one
        /// release at a node frees all of its legs).
        legs_rolled_back: usize,
        /// The distinct nodes released, in rollback (reverse) order.
        rolled_back: Vec<NodeId>,
    },
}

/// The transport-specific half of the reserve walk: where the switch
/// state lives and what bookkeeping each phase records.
pub trait HopDriver {
    /// The driver's error type (API misuse, not admission rejections).
    type Error;

    /// Runs the CAC check for one leg at its switch, reserving capacity
    /// if it admits. `request` is the leg's admission request,
    /// materialized by the walk from the plan's shared contract and the
    /// hop's pricing.
    fn admit(
        &mut self,
        index: usize,
        hop: &PlannedHop,
        request: ConnectionRequest,
    ) -> Result<AdmissionDecision, Self::Error>;

    /// Rolls back every leg previously reserved at `node` (one release
    /// frees all legs of the connection at that switch).
    fn rollback(&mut self, node: NodeId) -> Result<(), Self::Error>;
}

/// A fully-priced hop ledger: every leg's admission request with CDV
/// pre-accumulated from advertised upstream bounds, plus the
/// guaranteed delay per terminal. Both the serial signaling layer and
/// the concurrent engine build one of these, gate it against the
/// requested QoS, and [`reserve`](ReservationPlan::reserve) it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReservationPlan {
    /// The source contract, stored once for every leg of the plan.
    contract: TrafficContract,
    /// The transmission priority, shared by every leg.
    priority: Priority,
    hops: Vec<PlannedHop>,
    terminals: Vec<(NodeId, Time)>,
}

impl ReservationPlan {
    /// Prices a [`RoutePlan`]: looks up each hop's advertised bound,
    /// accumulates CDV per hop under `policy`, and sums each terminal's
    /// guaranteed delay. The `advertised` lookup abstracts over where
    /// switch configuration lives (live switches vs. engine configs).
    ///
    /// # Errors
    ///
    /// Propagates `advertised` lookup failures and CDV accumulation
    /// errors ([`CacError::NegativeBound`] / [`CacError::Numeric`]).
    pub fn price<E: From<CacError>>(
        plan: &RoutePlan,
        policy: CdvPolicy,
        contract: TrafficContract,
        priority: Priority,
        advertised: impl FnMut(NodeId) -> Result<Time, E>,
    ) -> Result<ReservationPlan, E> {
        Self::price_inflated(plan, policy, contract, priority, advertised, |_| Time::ZERO)
    }

    /// [`price`](ReservationPlan::price) with per-link CDV inflation: a
    /// degraded link contributes `inflation(link)` extra cell delay
    /// variation to every hop downstream of it (its own ingress hop
    /// included), on top of the policy-accumulated advertised bounds.
    /// Inflation only ever *adds* CDV, so a degraded link can tighten an
    /// admission decision but never loosen one; an all-zero lookup is
    /// exactly [`price`](ReservationPlan::price).
    ///
    /// # Errors
    ///
    /// As [`price`](ReservationPlan::price).
    pub fn price_inflated<E: From<CacError>>(
        plan: &RoutePlan,
        policy: CdvPolicy,
        contract: TrafficContract,
        priority: Priority,
        mut advertised: impl FnMut(NodeId) -> Result<Time, E>,
        mut inflation: impl FnMut(LinkId) -> Time,
    ) -> Result<ReservationPlan, E> {
        let mut bounds = Vec::with_capacity(plan.hops().len());
        let mut extras = Vec::with_capacity(plan.hops().len());
        for hop in plan.hops() {
            bounds.push(advertised(hop.node)?);
            extras.push(inflation(hop.in_link));
        }
        let mut hops = Vec::with_capacity(plan.hops().len());
        for (k, hop) in plan.hops().iter().enumerate() {
            let mut through: Vec<Time> = hop.upstream.iter().map(|&i| bounds[i]).collect();
            // Jitter inflation accumulated over the upstream links plus
            // this hop's own ingress link.
            let inflate: Time = hop
                .upstream
                .iter()
                .map(|&i| extras[i])
                .chain(std::iter::once(extras[k]))
                .sum();
            let cdv = policy.accumulate(&through).map_err(E::from)? + inflate;
            through.push(bounds[k]);
            // The egress CDV picks up the out-link's inflation too, so
            // on a path `rows[k].cdv_out == rows[k+1].cdv_in` still
            // holds (hop k's out link is hop k+1's in link).
            let cdv_out =
                policy.accumulate(&through).map_err(E::from)? + inflate + inflation(hop.out_link);
            hops.push(PlannedHop {
                node: hop.node,
                in_link: hop.in_link,
                out_link: hop.out_link,
                cdv,
                advertised: bounds[k],
                cdv_out,
            });
        }
        let terminals = plan
            .terminals()
            .iter()
            .map(|(node, indices)| (*node, indices.iter().map(|&i| bounds[i]).sum()))
            .collect();
        Ok(ReservationPlan {
            contract,
            priority,
            hops,
            terminals,
        })
    }

    /// The priced hops, in reservation order.
    pub fn hops(&self) -> &[PlannedHop] {
        &self.hops
    }

    /// The source traffic contract every leg shares.
    pub fn contract(&self) -> TrafficContract {
        self.contract
    }

    /// The transmission priority every leg shares.
    pub fn priority(&self) -> Priority {
        self.priority
    }

    /// Materializes the full admission request of hop `index` from the
    /// plan's shared contract/priority and the hop's own pricing.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn request_for(&self, index: usize) -> ConnectionRequest {
        let hop = &self.hops[index];
        ConnectionRequest::new(
            self.contract,
            hop.cdv,
            hop.in_link,
            hop.out_link,
            self.priority,
        )
    }

    /// The guaranteed end-to-end queueing delay per terminal (sorted by
    /// node for trees; the single destination for paths).
    pub fn terminals(&self) -> &[(NodeId, Time)] {
        &self.terminals
    }

    /// The guaranteed delay the plan can achieve: the worst terminal's
    /// sum of advertised bounds. A request whose delay bound is below
    /// this is infeasible before any switch is consulted (the QoS
    /// gate).
    pub fn achievable(&self) -> Time {
        self.terminals
            .iter()
            .map(|&(_, d)| d)
            .max()
            .unwrap_or(Time::ZERO)
    }

    /// The reserve walk: admits leg by leg in plan order; the first
    /// refusal rolls back every reserved leg (reverse order, deduped by
    /// node) through the driver and reports [`ReserveOutcome::Refused`].
    ///
    /// # Errors
    ///
    /// Propagates the driver's error unchanged; admission rejections
    /// are outcomes, not errors.
    pub fn reserve<D: HopDriver>(&self, driver: &mut D) -> Result<ReserveOutcome, D::Error> {
        self.reserve_observed(driver, |_, _, _| {})
    }

    /// [`reserve`](ReservationPlan::reserve) with a per-hop observer:
    /// `observe(index, hop, decision)` fires after every switch
    /// decision, before any rollback — the seam provenance reports and
    /// trace events hang off without touching the walk itself.
    ///
    /// # Errors
    ///
    /// As [`reserve`](ReservationPlan::reserve).
    pub fn reserve_observed<D: HopDriver>(
        &self,
        driver: &mut D,
        mut observe: impl FnMut(usize, &PlannedHop, &AdmissionDecision),
    ) -> Result<ReserveOutcome, D::Error> {
        let mut reserved: Vec<NodeId> = Vec::new();
        for (index, hop) in self.hops.iter().enumerate() {
            let decision = driver.admit(index, hop, self.request_for(index))?;
            observe(index, hop, &decision);
            match decision {
                AdmissionDecision::Admitted(_) => reserved.push(hop.node),
                AdmissionDecision::Rejected(reason) => {
                    let legs_rolled_back = reserved.len();
                    let mut rolled_back: Vec<NodeId> = Vec::new();
                    for &node in reserved.iter().rev() {
                        if !rolled_back.contains(&node) {
                            rolled_back.push(node);
                            driver.rollback(node)?;
                        }
                    }
                    return Ok(ReserveOutcome::Refused {
                        at: hop.node,
                        index,
                        reason,
                        legs_rolled_back,
                        rolled_back,
                    });
                }
            }
        }
        Ok(ReserveOutcome::Reserved)
    }

    /// The release order for an established plan: its distinct nodes in
    /// reservation order (one release at a node frees every leg there).
    pub fn release_nodes(&self) -> Vec<NodeId> {
        release_order(self.hops.iter().map(|h| h.node))
    }

    /// The provenance skeleton for this priced plan: one
    /// [`HopRow`](crate::HopRow) per hop with the pricing-side columns
    /// (deadline, CDV in/out) filled and every verdict
    /// [`NotEvaluated`](crate::HopVerdict::NotEvaluated) until the
    /// reserve walk records decisions into it. Shared by every driver
    /// so reports compare byte-identical across them.
    pub fn report_rows(&self) -> Vec<crate::HopRow> {
        self.hops
            .iter()
            .map(|hop| crate::HopRow {
                node: hop.node,
                in_link: hop.in_link,
                out_link: hop.out_link,
                priority: self.priority,
                computed_bound: None,
                deadline: hop.advertised,
                cdv_in: hop.cdv,
                cdv_out: hop.cdv_out,
                verdict: crate::HopVerdict::NotEvaluated,
            })
            .collect()
    }
}

/// Distinct nodes of a queueing-point sequence in first-occurrence
/// order — the per-node release order shared by every teardown path
/// (one [`Switch::release`](crate::Switch::release) frees all legs of a
/// connection at a node).
pub fn release_order(nodes: impl IntoIterator<Item = NodeId>) -> Vec<NodeId> {
    let mut out: Vec<NodeId> = Vec::new();
    for node in nodes {
        if !out.contains(&node) {
            out.push(node);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ConnectionId, Switch, SwitchConfig};
    use rtcac_bitstream::{CbrParams, Rate};
    use rtcac_rational::ratio;
    use std::collections::BTreeMap;

    /// src -> sw1 -> {a, sw2 -> {b, c}} plus a unicast spine
    /// src -> sw1 -> sw2 -> b.
    fn two_level() -> (Topology, Vec<NodeId>, Vec<LinkId>) {
        let mut t = Topology::new();
        let src = t.add_end_system("src");
        let sw1 = t.add_switch("sw1");
        let sw2 = t.add_switch("sw2");
        let a = t.add_end_system("a");
        let b = t.add_end_system("b");
        let c = t.add_end_system("c");
        let up = t.add_link(src, sw1).unwrap();
        let da = t.add_link(sw1, a).unwrap();
        let trunk = t.add_link(sw1, sw2).unwrap();
        let db = t.add_link(sw2, b).unwrap();
        let dc = t.add_link(sw2, c).unwrap();
        (t, vec![src, sw1, sw2, a, b, c], vec![up, da, trunk, db, dc])
    }

    fn contract() -> TrafficContract {
        TrafficContract::cbr(CbrParams::new(Rate::new(ratio(1, 8))).unwrap())
    }

    fn price(t: &Topology, plan: &RoutePlan, bound: i128) -> ReservationPlan {
        let _ = t;
        ReservationPlan::price::<CacError>(
            plan,
            CdvPolicy::Hard,
            contract(),
            Priority::HIGHEST,
            |_| Ok(Time::from_integer(bound)),
        )
        .unwrap()
    }

    #[test]
    fn route_plan_chains_upstream_hops() {
        let (t, nodes, links) = two_level();
        let route = Route::new(&t, vec![links[0], links[2], links[3]]).unwrap();
        let plan = RoutePlan::from_route(&t, &route).unwrap();
        assert_eq!(plan.hops().len(), 2);
        assert_eq!(plan.hops()[0].node, nodes[1]);
        assert_eq!(plan.hops()[0].upstream, Vec::<usize>::new());
        assert_eq!(plan.hops()[1].node, nodes[2]);
        assert_eq!(plan.hops()[1].upstream, vec![0]);
        assert_eq!(plan.terminals(), &[(nodes[4], vec![0, 1])]);
        // The source's access hop enters via the real access link.
        assert_eq!(plan.hops()[0].in_link, links[0]);
    }

    #[test]
    fn tree_plan_follows_root_paths() {
        let (t, nodes, links) = two_level();
        let tree = MulticastTree::new(&t, links.clone()).unwrap();
        let plan = RoutePlan::from_tree(&t, &tree).unwrap();
        assert_eq!(plan.hops().len(), 4); // da, trunk, db, dc
        for hop in plan.hops() {
            match hop.node {
                n if n == nodes[1] => assert!(hop.upstream.is_empty()),
                n if n == nodes[2] => assert_eq!(hop.upstream.len(), 1),
                other => panic!("unexpected hop node {other}"),
            }
        }
        // Terminals sorted by leaf node: a through one hop, b/c two.
        let terminals = plan.terminals();
        assert_eq!(terminals.len(), 3);
        assert_eq!(terminals[0].0, nodes[3]);
        assert_eq!(terminals[0].1.len(), 1);
        assert_eq!(terminals[1].1.len(), 2);
    }

    #[test]
    fn pricing_accumulates_cdv_and_terminal_delays() {
        let (t, _, links) = two_level();
        let tree = MulticastTree::new(&t, links.clone()).unwrap();
        let plan = RoutePlan::from_tree(&t, &tree).unwrap();
        let priced = price(&t, &plan, 32);
        // First-level legs see zero CDV, second-level legs 32.
        let cdvs: Vec<Time> = priced.hops().iter().map(|h| h.cdv).collect();
        assert!(cdvs.contains(&Time::ZERO));
        assert!(cdvs.contains(&Time::from_integer(32)));
        // Worst leaf crosses two switches: 64 cells achievable.
        assert_eq!(priced.achievable(), Time::from_integer(64));
    }

    #[test]
    fn inflation_adds_cdv_downstream_and_zero_is_price() {
        let (t, _, links) = two_level();
        let route = Route::new(&t, vec![links[0], links[2], links[3]]).unwrap();
        let plan = RoutePlan::from_route(&t, &route).unwrap();
        let base = price(&t, &plan, 32);

        // An all-zero inflation lookup is exactly `price`.
        let zero = ReservationPlan::price_inflated::<CacError>(
            &plan,
            CdvPolicy::Hard,
            contract(),
            Priority::HIGHEST,
            |_| Ok(Time::from_integer(32)),
            |_| Time::ZERO,
        )
        .unwrap();
        assert_eq!(zero, base);

        // Degrading the trunk (hop 1's ingress, hop 0's egress) adds
        // its inflation to hop 1's CDV and both hops' egress CDV, but
        // leaves hop 0's ingress CDV alone.
        let extra = Time::from_integer(5);
        let inflated = ReservationPlan::price_inflated::<CacError>(
            &plan,
            CdvPolicy::Hard,
            contract(),
            Priority::HIGHEST,
            |_| Ok(Time::from_integer(32)),
            |l| if l == links[2] { extra } else { Time::ZERO },
        )
        .unwrap();
        assert_eq!(inflated.hops()[0].cdv, base.hops()[0].cdv);
        assert_eq!(inflated.hops()[0].cdv_out, base.hops()[0].cdv_out + extra);
        assert_eq!(inflated.hops()[1].cdv, base.hops()[1].cdv + extra);
        assert_eq!(inflated.hops()[1].cdv_out, base.hops()[1].cdv_out + extra);
        // The path invariant survives inflation: hop k's egress CDV is
        // hop k+1's ingress CDV.
        assert_eq!(inflated.hops()[0].cdv_out, inflated.hops()[1].cdv);

        // Inflation only ever *adds* CDV — every leg's admission input
        // is at least its uninflated counterpart — and the advertised
        // achievable delay (sums of advertised bounds) is untouched.
        for (inf, plain) in inflated.hops().iter().zip(base.hops()) {
            assert!(inf.cdv >= plain.cdv);
            assert!(inf.cdv_out >= plain.cdv_out);
            assert_eq!(inf.advertised, plain.advertised);
        }
        assert_eq!(inflated.achievable(), base.achievable());
        assert_eq!(inflated.terminals(), base.terminals());
    }

    #[test]
    fn report_rows_carry_pricing_columns() {
        let (t, nodes, links) = two_level();
        let route = Route::new(&t, vec![links[0], links[2], links[3]]).unwrap();
        let plan = RoutePlan::from_route(&t, &route).unwrap();
        let priced = price(&t, &plan, 32);
        let rows = priced.report_rows();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].node, nodes[1]);
        assert_eq!(rows[0].cdv_in, Time::ZERO);
        assert_eq!(rows[0].cdv_out, Time::from_integer(32));
        assert_eq!(rows[1].cdv_in, Time::from_integer(32));
        assert_eq!(rows[1].cdv_out, Time::from_integer(64));
        for row in &rows {
            assert_eq!(row.deadline, Time::from_integer(32));
            assert_eq!(row.computed_bound, None);
            assert_eq!(row.verdict, crate::HopVerdict::NotEvaluated);
        }
        // A hop's outgoing CDV is the next hop's incoming CDV on a path.
        assert_eq!(rows[0].cdv_out, rows[1].cdv_in);
    }

    /// A test driver over plain switches that records its call trace.
    struct MapDriver {
        id: ConnectionId,
        switches: BTreeMap<NodeId, Switch>,
        trace: Vec<String>,
    }

    impl HopDriver for MapDriver {
        type Error = CacError;

        fn admit(
            &mut self,
            _index: usize,
            hop: &PlannedHop,
            request: ConnectionRequest,
        ) -> Result<AdmissionDecision, CacError> {
            self.trace.push(format!("admit {}", hop.node));
            self.switches
                .get_mut(&hop.node)
                .expect("switch present")
                .admit(self.id, request)
        }

        fn rollback(&mut self, node: NodeId) -> Result<(), CacError> {
            self.trace.push(format!("rollback {node}"));
            self.switches
                .get_mut(&node)
                .expect("switch present")
                .release(self.id)
                .map(|_| ())
        }
    }

    #[test]
    fn reserve_walk_admits_every_leg_once() {
        let (t, nodes, links) = two_level();
        let tree = MulticastTree::new(&t, links.clone()).unwrap();
        let plan = RoutePlan::from_tree(&t, &tree).unwrap();
        let priced = price(&t, &plan, 32);
        let config = SwitchConfig::uniform(1, Time::from_integer(32)).unwrap();
        let mut driver = MapDriver {
            id: ConnectionId::new(1),
            switches: [nodes[1], nodes[2]]
                .iter()
                .map(|&n| (n, Switch::new(config.clone())))
                .collect(),
            trace: Vec::new(),
        };
        let outcome = priced.reserve(&mut driver).unwrap();
        assert_eq!(outcome, ReserveOutcome::Reserved);
        assert_eq!(
            driver
                .trace
                .iter()
                .filter(|s| s.starts_with("admit"))
                .count(),
            4
        );
        // Each switch holds both of its legs under the one id.
        for switch in driver.switches.values() {
            assert_eq!(switch.connection_count(), 2);
            assert!(switch.has_connection(ConnectionId::new(1)));
        }
        assert_eq!(priced.release_nodes(), vec![nodes[1], nodes[2]]);
    }

    #[test]
    fn refusal_rolls_back_reserved_legs_deduped() {
        let (t, nodes, links) = two_level();
        let tree = MulticastTree::new(&t, links.clone()).unwrap();
        let plan = RoutePlan::from_tree(&t, &tree).unwrap();
        let priced = price(&t, &plan, 32);
        // sw1 admits both legs and sw2 its first (db); the second sw2
        // leg (dc) pushes the trunk's incoming aggregate past capacity
        // and refuses, so all three reserved legs roll back with one
        // release per switch.
        let wide = SwitchConfig::uniform(1, Time::from_integer(32)).unwrap();
        let mut sw2 = Switch::new(wide.clone());
        let filler = ConnectionRequest::new(
            TrafficContract::cbr(CbrParams::new(Rate::new(ratio(7, 8))).unwrap()),
            Time::ZERO,
            links[2],
            links[3],
            Priority::HIGHEST,
        );
        assert!(matches!(
            sw2.admit(ConnectionId::new(99), filler).unwrap(),
            AdmissionDecision::Admitted(_)
        ));
        let mut driver = MapDriver {
            id: ConnectionId::new(1),
            switches: [(nodes[1], Switch::new(wide)), (nodes[2], sw2)]
                .into_iter()
                .collect(),
            trace: Vec::new(),
        };
        let outcome = priced.reserve(&mut driver).unwrap();
        match outcome {
            ReserveOutcome::Refused {
                at,
                legs_rolled_back,
                rolled_back,
                ..
            } => {
                assert_eq!(at, nodes[2]);
                assert_eq!(legs_rolled_back, 3);
                // Reverse-reservation order, deduped by node.
                assert_eq!(rolled_back, vec![nodes[2], nodes[1]]);
            }
            other => panic!("expected refusal, got {other:?}"),
        }
        // Bit-identical abort: no residual legs of the refused id.
        for switch in driver.switches.values() {
            assert!(!switch.has_connection(ConnectionId::new(1)));
        }
        // One rollback call per switch despite three reserved legs.
        assert_eq!(
            driver
                .trace
                .iter()
                .filter(|s| s.starts_with("rollback"))
                .count(),
            2
        );
    }

    #[test]
    fn release_order_dedups_in_first_occurrence_order() {
        let a = NodeId::external(1);
        let b = NodeId::external(2);
        assert_eq!(release_order([a, b, a, b, a]), vec![a, b]);
        assert_eq!(release_order([]), Vec::<NodeId>::new());
    }
}
