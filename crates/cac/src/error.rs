//! Errors and rejection reasons for admission control.

use core::fmt;

use rtcac_bitstream::{StreamError, Time};
use rtcac_net::LinkId;

use crate::{ConnectionId, Priority};

/// Why a connection request failed the CAC check. A rejection is a
/// *normal outcome* of admission control, not a programming error —
/// hence it is carried in [`AdmissionDecision::Rejected`], not in
/// [`CacError`].
///
/// [`AdmissionDecision::Rejected`]: crate::AdmissionDecision::Rejected
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum RejectReason {
    /// Admitting the connection would push the computed worst-case
    /// queueing delay of `priority` past the switch's advertised bound.
    BoundExceeded {
        /// The outgoing link whose queue would overrun.
        out_link: LinkId,
        /// The priority level whose bound would be violated (the new
        /// connection's own level, or a lower one it would disturb).
        priority: Priority,
        /// The computed worst-case delay with the connection added.
        computed: Time,
        /// The switch's advertised bound for that level.
        advertised: Time,
    },
    /// The long-run load at the outgoing link would exceed its
    /// capacity, making the worst-case delay unbounded.
    Overload {
        /// The outgoing link that would saturate.
        out_link: LinkId,
        /// The priority level at which the overload was detected.
        priority: Priority,
    },
    /// The long-run load of the connections sharing the *incoming*
    /// link would exceed its capacity — they could never all arrive
    /// (detected before link filtering would mask it).
    IncomingOverload {
        /// The incoming link that would saturate.
        in_link: LinkId,
        /// The priority level of the aggregate that saturates it.
        priority: Priority,
    },
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RejectReason::BoundExceeded {
                out_link,
                priority,
                computed,
                advertised,
            } => write!(
                f,
                "delay bound exceeded at link {out_link} priority {priority}: computed {computed} > advertised {advertised} cell times"
            ),
            RejectReason::Overload { out_link, priority } => write!(
                f,
                "long-run overload at link {out_link} priority {priority}: worst-case delay unbounded"
            ),
            RejectReason::IncomingOverload { in_link, priority } => write!(
                f,
                "long-run overload on incoming link {in_link} priority {priority}: aggregate exceeds link bandwidth"
            ),
        }
    }
}

/// Error produced by misusing the CAC API (as opposed to a legitimate
/// admission rejection, which is [`RejectReason`]).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CacError {
    /// The priority level is not served by this switch.
    UnknownPriority(Priority),
    /// No connection with this id is established at the switch.
    UnknownConnection(ConnectionId),
    /// A connection with this id is already established at the switch.
    DuplicateConnection(ConnectionId),
    /// Invalid switch configuration.
    BadConfig(&'static str),
    /// A per-hop delay bound fed to CDV accumulation was negative.
    NegativeBound(Time),
    /// Arithmetic overflow while accumulating CDV.
    Numeric,
    /// A stream computation failed (numeric overflow or invalid
    /// stream); indicates an internal inconsistency.
    Stream(StreamError),
}

impl fmt::Display for CacError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CacError::UnknownPriority(p) => {
                write!(f, "priority {p} is not served by this switch")
            }
            CacError::UnknownConnection(id) => {
                write!(f, "connection {id} is not established at this switch")
            }
            CacError::DuplicateConnection(id) => {
                write!(f, "connection {id} is already established at this switch")
            }
            CacError::BadConfig(what) => write!(f, "invalid switch configuration: {what}"),
            CacError::NegativeBound(b) => {
                write!(f, "negative per-hop delay bound {b}")
            }
            CacError::Numeric => write!(f, "arithmetic overflow accumulating cdv"),
            CacError::Stream(e) => write!(f, "stream computation failed: {e}"),
        }
    }
}

impl std::error::Error for CacError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CacError::Stream(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StreamError> for CacError {
    fn from(e: StreamError) -> Self {
        CacError::Stream(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reject_reason_messages() {
        let r = RejectReason::BoundExceeded {
            out_link: LinkId::external(1),
            priority: Priority::HIGHEST,
            computed: Time::from_integer(40),
            advertised: Time::from_integer(32),
        };
        let msg = r.to_string();
        assert!(msg.contains("40"));
        assert!(msg.contains("32"));
        let o = RejectReason::Overload {
            out_link: LinkId::external(1),
            priority: Priority::new(1),
        };
        assert!(o.to_string().contains("unbounded"));
    }

    #[test]
    fn cac_error_messages_and_source() {
        use std::error::Error;
        let cases: Vec<CacError> = vec![
            CacError::UnknownPriority(Priority::new(9)),
            CacError::UnknownConnection(ConnectionId::new(5)),
            CacError::DuplicateConnection(ConnectionId::new(5)),
            CacError::BadConfig("nope"),
            CacError::NegativeBound(Time::from_integer(-1)),
            CacError::Numeric,
            CacError::Stream(StreamError::Empty),
        ];
        for e in &cases {
            assert!(!e.to_string().is_empty());
        }
        assert!(cases[6].source().is_some());
        assert!(cases[0].source().is_none());
    }

    #[test]
    fn stream_error_converts() {
        let e: CacError = StreamError::Empty.into();
        assert!(matches!(e, CacError::Stream(StreamError::Empty)));
    }
}
