//! Connection identifiers and per-switch admission requests.

use core::fmt;

use rtcac_bitstream::{BitStream, Time, TrafficContract};
use rtcac_net::LinkId;

use crate::Priority;

/// Globally unique identifier of a real-time connection (VC).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ConnectionId(u64);

impl ConnectionId {
    /// Creates a connection id from a raw value.
    pub const fn new(raw: u64) -> ConnectionId {
        ConnectionId(raw)
    }

    /// The raw value.
    pub const fn raw(&self) -> u64 {
        self.0
    }
}

impl fmt::Display for ConnectionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vc{}", self.0)
    }
}

/// A connection's admission parameters as seen by **one switch**: the
/// source traffic contract, the cell delay variation accumulated over
/// *upstream* queueing points, the incoming and outgoing links at this
/// switch, and the transmission priority (paper §4.3: the switch stores
/// `(PCR, SCR, MBS, CDV)` per connection).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConnectionRequest {
    contract: TrafficContract,
    cdv: Time,
    in_link: LinkId,
    out_link: LinkId,
    priority: Priority,
}

impl ConnectionRequest {
    /// Creates a per-switch admission request.
    pub fn new(
        contract: TrafficContract,
        cdv: Time,
        in_link: LinkId,
        out_link: LinkId,
        priority: Priority,
    ) -> ConnectionRequest {
        ConnectionRequest {
            contract,
            cdv,
            in_link,
            out_link,
            priority,
        }
    }

    /// The source traffic contract.
    pub fn contract(&self) -> TrafficContract {
        self.contract
    }

    /// Accumulated cell delay variation over upstream queueing points.
    pub fn cdv(&self) -> Time {
        self.cdv
    }

    /// The incoming link at this switch.
    pub fn in_link(&self) -> LinkId {
        self.in_link
    }

    /// The outgoing link at this switch.
    pub fn out_link(&self) -> LinkId {
        self.out_link
    }

    /// The transmission priority.
    pub fn priority(&self) -> Priority {
        self.priority
    }

    /// **Step 1** of the §4.3 admission check: the worst-case arrival
    /// stream of this connection at the switch — the contract's
    /// worst-case generation (Algorithm 2.1) distorted by the
    /// accumulated upstream jitter (Algorithm 3.1).
    pub fn arrival_stream(&self) -> BitStream {
        self.contract.worst_case_stream().delay(self.cdv)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtcac_bitstream::{CbrParams, Rate};
    use rtcac_rational::ratio;

    fn request() -> ConnectionRequest {
        let contract = TrafficContract::cbr(CbrParams::new(Rate::new(ratio(1, 8))).unwrap());
        ConnectionRequest::new(
            contract,
            Time::from_integer(32),
            LinkId::external(0),
            LinkId::external(1),
            Priority::HIGHEST,
        )
    }

    #[test]
    fn accessors() {
        let r = request();
        assert_eq!(r.cdv(), Time::from_integer(32));
        assert_eq!(r.in_link(), LinkId::external(0));
        assert_eq!(r.out_link(), LinkId::external(1));
        assert_eq!(r.priority(), Priority::HIGHEST);
        assert_eq!(r.contract().pcr(), Rate::new(ratio(1, 8)));
    }

    #[test]
    fn arrival_stream_reflects_cdv() {
        let r = request();
        let fresh = r.contract().worst_case_stream();
        let arrived = r.arrival_stream();
        assert_eq!(arrived, fresh.delay(Time::from_integer(32)));
        // Jitter clumps traffic: the arrival envelope dominates.
        let t = Time::from_integer(4);
        assert!(arrived.cumulative(t) >= fresh.cumulative(t));
    }

    #[test]
    fn connection_id_display() {
        assert_eq!(ConnectionId::new(7).to_string(), "vc7");
        assert_eq!(ConnectionId::new(7).raw(), 7);
        assert!(ConnectionId::new(1) < ConnectionId::new(2));
    }
}
