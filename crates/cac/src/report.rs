//! Decision provenance: the per-hop ledger behind an admission verdict.
//!
//! Every priced setup can carry an [`AdmissionReport`] — one
//! [`HopRow`] per queueing point, assembled from the
//! [`ReservationPlan`](crate::ReservationPlan) pricing pass and filled
//! in during the reserve walk — so a verdict is never just a counter
//! bump: the exact bound-vs-deadline comparison that admitted or
//! refused each hop is recorded. Both the serial signaling walk and
//! the concurrent engine build their reports through the same
//! [`ReservationPlan::report_rows`](crate::ReservationPlan::report_rows)
//! / [`HopRow::record_decision`] pair, which is what makes the two
//! drivers' reports byte-identical for the same scenario.

use std::fmt;

use rtcac_bitstream::Time;
use rtcac_net::{LinkId, NodeId};

use crate::{AdmissionDecision, Priority, RejectReason};

/// What the reserve walk concluded about one hop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HopVerdict {
    /// The switch admitted the leg.
    Admitted,
    /// The switch refused the leg.
    Rejected(RejectReason),
    /// The walk never reached this hop (an earlier hop refused, or a
    /// gate before the walk did).
    NotEvaluated,
}

impl fmt::Display for HopVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HopVerdict::Admitted => write!(f, "admitted"),
            HopVerdict::Rejected(reason) => write!(f, "REJECTED: {reason}"),
            HopVerdict::NotEvaluated => write!(f, "not evaluated"),
        }
    }
}

/// One row of an [`AdmissionReport`]: the CAC comparison at one
/// queueing point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HopRow {
    /// The switch running the CAC check.
    pub node: NodeId,
    /// The incoming link of the leg ([`LOCAL_INJECTION`] at the
    /// source).
    ///
    /// [`LOCAL_INJECTION`]: crate::LOCAL_INJECTION
    pub in_link: LinkId,
    /// The outgoing link whose FIFO the connection would join.
    pub out_link: LinkId,
    /// The request's priority level.
    pub priority: Priority,
    /// The worst-case delay the switch computed for this leg at its
    /// own priority (Algorithm 4.1). `None` until the walk reaches the
    /// hop, or when the refusal carried no computed bound (e.g. an
    /// aggregate overload).
    pub computed_bound: Option<Time>,
    /// The hop's deadline: the advertised per-hop bound the computed
    /// delay must not exceed.
    pub deadline: Time,
    /// CDV accumulated over the hop's upstream queueing points — the
    /// jitter the leg's request arrives with.
    pub cdv_in: Time,
    /// CDV leaving the hop (upstream plus this hop's advertised
    /// bound), i.e. the next hop's `cdv_in` on a path.
    pub cdv_out: Time,
    /// What the walk concluded about this hop.
    pub verdict: HopVerdict,
}

impl HopRow {
    /// Fills in the walk's conclusion for this hop from the switch's
    /// decision — the one shared code path that turns decisions into
    /// rows for every driver.
    pub fn record_decision(&mut self, decision: &AdmissionDecision) {
        match decision {
            AdmissionDecision::Admitted(bounds) => {
                self.computed_bound = bounds.bound_for(self.priority);
                self.verdict = HopVerdict::Admitted;
            }
            AdmissionDecision::Rejected(reason) => {
                self.computed_bound = match reason {
                    RejectReason::BoundExceeded { computed, .. } => Some(*computed),
                    _ => None,
                };
                self.verdict = HopVerdict::Rejected(*reason);
            }
        }
    }
}

/// The end-to-end verdict an [`AdmissionReport`] explains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionVerdict {
    /// Every hop admitted; the connection committed with this
    /// guaranteed end-to-end delay.
    Admitted {
        /// The guaranteed end-to-end queueing delay (worst terminal).
        guaranteed_delay: Time,
    },
    /// Refused before any switch was consulted: the requested delay
    /// bound is below what the route's advertised bounds can achieve.
    RejectedQos {
        /// The requested end-to-end delay bound.
        requested: Time,
        /// The smallest bound the route can guarantee.
        achievable: Time,
    },
    /// A switch refused during the reserve walk.
    RejectedHop {
        /// The refusing switch.
        at: NodeId,
        /// The refusing hop's index into the report rows.
        index: usize,
    },
}

/// The per-hop provenance of one admission verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdmissionReport {
    /// One row per queueing point, in reservation (plan) order.
    pub rows: Vec<HopRow>,
    /// The end-to-end verdict the rows explain.
    pub verdict: AdmissionVerdict,
}

impl AdmissionReport {
    /// Creates a report from filled rows and the final verdict.
    pub fn new(rows: Vec<HopRow>, verdict: AdmissionVerdict) -> AdmissionReport {
        AdmissionReport { rows, verdict }
    }

    /// Whether the verdict is an admission.
    pub fn is_admitted(&self) -> bool {
        matches!(self.verdict, AdmissionVerdict::Admitted { .. })
    }

    /// The row whose refusal decided the verdict, if a hop refused.
    pub fn rejecting_row(&self) -> Option<&HopRow> {
        match self.verdict {
            AdmissionVerdict::RejectedHop { index, .. } => self.rows.get(index),
            _ => None,
        }
    }

    /// A one-line summary of the verdict — the form attached to
    /// rejection events in the observability ring.
    pub fn summary(&self) -> String {
        match &self.verdict {
            AdmissionVerdict::Admitted { guaranteed_delay } => {
                format!("admitted: guaranteed delay {guaranteed_delay}")
            }
            AdmissionVerdict::RejectedQos {
                requested,
                achievable,
            } => format!(
                "rejected by QoS gate: requested bound {requested} below achievable {achievable}"
            ),
            AdmissionVerdict::RejectedHop { at, index } => match self.rejecting_row() {
                Some(row) => {
                    let computed = row
                        .computed_bound
                        .map_or_else(|| "-".to_string(), |t| t.to_string());
                    format!(
                        "rejected at node {at} (hop {}/{}): computed bound {computed} vs deadline {} \
                         [prio {}, cdv_in {}, cdv_out {}] — {}",
                        index + 1,
                        self.rows.len(),
                        row.deadline,
                        row.priority,
                        row.cdv_in,
                        row.cdv_out,
                        row.verdict
                    )
                }
                None => format!("rejected at node {at} (hop index {index} out of range)"),
            },
        }
    }

    /// Renders the full per-hop table with caller-supplied node/link
    /// naming (scenario names in the CLI; `Display` ids elsewhere).
    pub fn render_with(
        &self,
        mut node_name: impl FnMut(NodeId) -> String,
        mut link_name: impl FnMut(LinkId) -> String,
    ) -> String {
        let mut out = String::new();
        out.push_str(&self.summary());
        out.push('\n');
        for (k, row) in self.rows.iter().enumerate() {
            let computed = row
                .computed_bound
                .map_or_else(|| "-".to_string(), |t| t.to_string());
            let marker = match self.verdict {
                AdmissionVerdict::RejectedHop { index, .. } if index == k => "  <- refused here",
                _ => "",
            };
            out.push_str(&format!(
                "  hop {} at {} out={} prio={}: computed={} deadline={} cdv_in={} cdv_out={} verdict={}{}\n",
                k + 1,
                node_name(row.node),
                link_name(row.out_link),
                row.priority,
                computed,
                row.deadline,
                row.cdv_in,
                row.cdv_out,
                row.verdict,
                marker
            ));
        }
        out
    }

    /// [`render_with`](AdmissionReport::render_with) using `Display`
    /// ids for nodes and links.
    pub fn render(&self) -> String {
        self.render_with(|n| n.to_string(), |l| l.to_string())
    }
}
