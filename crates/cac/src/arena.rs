//! The dense-id leg arena: `Vec`-backed storage for a switch's
//! established connection legs.
//!
//! Each admitted leg lives in a slab slot addressed by a dense per-
//! switch `u32` id; freed slots chain into an in-slab free list and are
//! reused before the slab grows, so a switch under steady churn never
//! reallocates. Public iteration order is provided by the switch's
//! sorted `(connection, out-link)` index, not the arena — slots move
//! through the free list in LIFO order and carry no ordering of their
//! own.

use rtcac_net::LinkId;

use crate::intern::ContractHandle;
use crate::{ConnectionId, Priority};

/// One established leg: the identifying links plus a handle to the
/// interned `(contract, CDV)` entry that induced its arrival envelope.
/// Everything a [`crate::ConnectionRequest`] carries is recoverable
/// from the leg and its intern entry.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Leg {
    pub id: ConnectionId,
    pub handle: ContractHandle,
    pub in_link: LinkId,
    pub out_link: LinkId,
    pub priority: Priority,
}

/// Sentinel terminating the free list.
const NO_SLOT: u32 = u32::MAX;

#[derive(Debug, Clone)]
enum Slot {
    Occupied(Leg),
    Free { next: u32 },
}

/// The slab of legs with its free list.
#[derive(Debug, Clone, Default)]
pub(crate) struct LegArena {
    slots: Vec<Slot>,
    free_head: u32,
    live: usize,
}

impl LegArena {
    pub(crate) fn new() -> LegArena {
        LegArena {
            slots: Vec::new(),
            free_head: NO_SLOT,
            live: 0,
        }
    }

    /// Stores a leg, reusing the most recently freed slot if any, and
    /// returns its dense id.
    pub(crate) fn insert(&mut self, leg: Leg) -> u32 {
        self.live += 1;
        if self.free_head != NO_SLOT {
            let slot = self.free_head;
            match self.slots[slot as usize] {
                Slot::Free { next } => self.free_head = next,
                Slot::Occupied(_) => unreachable!("free head points at a live slot"),
            }
            self.slots[slot as usize] = Slot::Occupied(leg);
            slot
        } else {
            assert!(self.slots.len() < NO_SLOT as usize, "leg arena full");
            self.slots.push(Slot::Occupied(leg));
            (self.slots.len() - 1) as u32
        }
    }

    /// Removes and returns the leg at `slot`, chaining the slot onto
    /// the free list.
    pub(crate) fn remove(&mut self, slot: u32) -> Leg {
        let leg = match self.slots[slot as usize] {
            Slot::Occupied(leg) => leg,
            Slot::Free { .. } => panic!("remove of a free leg slot"),
        };
        self.slots[slot as usize] = Slot::Free {
            next: self.free_head,
        };
        self.free_head = slot;
        self.live -= 1;
        leg
    }

    /// The leg at a live slot.
    pub(crate) fn get(&self, slot: u32) -> &Leg {
        match &self.slots[slot as usize] {
            Slot::Occupied(leg) => leg,
            Slot::Free { .. } => panic!("use of a free leg slot"),
        }
    }

    /// Number of live legs.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn len(&self) -> usize {
        self.live
    }

    /// Total slab slots, live or free.
    pub(crate) fn slots(&self) -> usize {
        self.slots.len()
    }

    /// Approximate resident heap bytes of the slab.
    pub(crate) fn resident_bytes(&self) -> usize {
        self.slots.capacity() * std::mem::size_of::<Slot>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leg(id: u64) -> Leg {
        Leg {
            id: ConnectionId::new(id),
            handle: ContractHandle::from_raw_for_test(0),
            in_link: LinkId::external(0),
            out_link: LinkId::external(1),
            priority: Priority::HIGHEST,
        }
    }

    #[test]
    fn insert_remove_reuses_slots_lifo() {
        let mut arena = LegArena::new();
        let a = arena.insert(leg(1));
        let b = arena.insert(leg(2));
        let c = arena.insert(leg(3));
        assert_eq!((a, b, c), (0, 1, 2));
        assert_eq!(arena.len(), 3);
        assert_eq!(arena.remove(b).id, ConnectionId::new(2));
        assert_eq!(arena.remove(a).id, ConnectionId::new(1));
        assert_eq!(arena.len(), 1);
        // LIFO reuse: the last freed slot comes back first; the slab
        // does not grow.
        assert_eq!(arena.insert(leg(4)), a);
        assert_eq!(arena.insert(leg(5)), b);
        assert_eq!(arena.slots(), 3);
        assert_eq!(arena.get(c).id, ConnectionId::new(3));
    }

    #[test]
    #[should_panic(expected = "free leg slot")]
    fn double_remove_panics() {
        let mut arena = LegArena::new();
        let a = arena.insert(leg(1));
        arena.remove(a);
        arena.remove(a);
    }
}
