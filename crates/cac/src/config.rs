//! Switch configuration: priority levels and advertised delay bounds.

use core::fmt;

use rtcac_bitstream::Time;

use crate::CacError;

/// A static transmission priority level. `0` is the **highest**
/// priority; larger values are lower priorities (served only when all
/// higher-priority FIFO queues are empty).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Priority(u8);

impl Priority {
    /// The highest priority level (served first).
    pub const HIGHEST: Priority = Priority(0);

    /// Creates a priority level (`0` = highest).
    pub const fn new(level: u8) -> Priority {
        Priority(level)
    }

    /// The numeric level (`0` = highest).
    pub const fn level(&self) -> u8 {
        self.0
    }

    /// Whether `self` is served strictly before `other`.
    pub fn outranks(&self, other: Priority) -> bool {
        self.0 < other.0
    }
}

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl From<u8> for Priority {
    fn from(level: u8) -> Self {
        Priority(level)
    }
}

/// Configuration of a CAC-managed switch: how many real-time priority
/// levels it serves and the **fixed** queueing delay bound it advertises
/// for each (paper §4.1: the bound equals the FIFO queue size in cells,
/// so meeting the bound also guarantees zero loss).
///
/// # Examples
///
/// ```
/// use rtcac_bitstream::Time;
/// use rtcac_cac::{Priority, SwitchConfig};
///
/// // Two real-time levels: a 32-cell high-priority queue and a
/// // 64-cell low-priority queue.
/// let config = SwitchConfig::with_bounds([
///     Time::from_integer(32),
///     Time::from_integer(64),
/// ])?;
/// assert_eq!(config.levels(), 2);
/// assert_eq!(config.bound(Priority::new(1))?, Time::from_integer(64));
/// # Ok::<(), rtcac_cac::CacError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SwitchConfig {
    bounds: Vec<Time>,
    quantization: Option<i128>,
}

impl SwitchConfig {
    /// A configuration with `levels` priority levels, all advertising
    /// the same delay bound.
    ///
    /// # Errors
    ///
    /// Returns [`CacError::BadConfig`] if `levels == 0` or the bound is
    /// not positive.
    pub fn uniform(levels: u8, bound: Time) -> Result<SwitchConfig, CacError> {
        SwitchConfig::with_bounds(vec![bound; levels as usize])
    }

    /// A configuration with one bound per priority level, highest
    /// priority first.
    ///
    /// # Errors
    ///
    /// Returns [`CacError::BadConfig`] if the list is empty, longer
    /// than 255 levels, or any bound is not positive.
    pub fn with_bounds<I>(bounds: I) -> Result<SwitchConfig, CacError>
    where
        I: IntoIterator<Item = Time>,
    {
        let bounds: Vec<Time> = bounds.into_iter().collect();
        if bounds.is_empty() {
            return Err(CacError::BadConfig("at least one priority level required"));
        }
        if bounds.len() > u8::MAX as usize {
            return Err(CacError::BadConfig("too many priority levels"));
        }
        if bounds.iter().any(|b| !b.is_positive()) {
            return Err(CacError::BadConfig("delay bounds must be positive"));
        }
        Ok(SwitchConfig {
            bounds,
            quantization: None,
        })
    }

    /// Enables conservative arrival-stream quantization: every admitted
    /// connection's worst-case stream is coarsened onto a `1/grid`
    /// denominator grid (see `BitStream::coarsen`) before entering the
    /// switch tables.
    ///
    /// Quantization dominates the exact envelopes, so all guarantees
    /// remain valid; it trades a sliver of capacity for arithmetic
    /// whose denominators cannot compound across hundreds of
    /// heterogeneous contracts (without it, exact `i128` rationals can
    /// overflow near ~100 connections with coprime contract rates).
    ///
    /// # Errors
    ///
    /// Returns [`CacError::BadConfig`] if `grid` is not positive.
    pub fn with_quantization(mut self, grid: i128) -> Result<SwitchConfig, CacError> {
        if grid <= 0 {
            return Err(CacError::BadConfig("quantization grid must be positive"));
        }
        self.quantization = Some(grid);
        Ok(self)
    }

    /// The configured quantization grid, if any.
    pub fn quantization(&self) -> Option<i128> {
        self.quantization
    }

    /// Number of real-time priority levels.
    pub fn levels(&self) -> u8 {
        self.bounds.len() as u8
    }

    /// The advertised delay bound (equivalently, FIFO queue size in
    /// cells) of a priority level.
    ///
    /// # Errors
    ///
    /// Returns [`CacError::UnknownPriority`] for a level the switch does
    /// not serve.
    pub fn bound(&self, priority: Priority) -> Result<Time, CacError> {
        self.bounds
            .get(priority.level() as usize)
            .copied()
            .ok_or(CacError::UnknownPriority(priority))
    }

    /// All priority levels, highest first.
    pub fn priorities(&self) -> impl Iterator<Item = Priority> + '_ {
        (0..self.bounds.len() as u8).map(Priority::new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priority_ordering() {
        assert!(Priority::HIGHEST.outranks(Priority::new(1)));
        assert!(!Priority::new(1).outranks(Priority::new(1)));
        assert!(!Priority::new(2).outranks(Priority::new(1)));
        assert!(Priority::new(1) < Priority::new(2));
        assert_eq!(Priority::from(3u8).level(), 3);
        assert_eq!(Priority::new(2).to_string(), "p2");
    }

    #[test]
    fn uniform_config() {
        let c = SwitchConfig::uniform(3, Time::from_integer(32)).unwrap();
        assert_eq!(c.levels(), 3);
        for p in c.priorities() {
            assert_eq!(c.bound(p).unwrap(), Time::from_integer(32));
        }
    }

    #[test]
    fn with_bounds_per_level() {
        let c =
            SwitchConfig::with_bounds([Time::from_integer(16), Time::from_integer(64)]).unwrap();
        assert_eq!(c.bound(Priority::HIGHEST).unwrap(), Time::from_integer(16));
        assert_eq!(c.bound(Priority::new(1)).unwrap(), Time::from_integer(64));
        assert!(matches!(
            c.bound(Priority::new(2)),
            Err(CacError::UnknownPriority(_))
        ));
    }

    #[test]
    fn rejects_bad_configs() {
        assert!(SwitchConfig::uniform(0, Time::from_integer(32)).is_err());
        assert!(SwitchConfig::uniform(1, Time::ZERO).is_err());
        assert!(SwitchConfig::uniform(1, Time::from_integer(-3)).is_err());
        assert!(SwitchConfig::with_bounds(std::iter::empty()).is_err());
    }

    #[test]
    fn quantization_configuration() {
        let c = SwitchConfig::uniform(1, Time::from_integer(32))
            .unwrap()
            .with_quantization(64)
            .unwrap();
        assert_eq!(c.quantization(), Some(64));
        assert!(SwitchConfig::uniform(1, Time::from_integer(32))
            .unwrap()
            .with_quantization(0)
            .is_err());
        assert_eq!(
            SwitchConfig::uniform(1, Time::from_integer(32))
                .unwrap()
                .quantization(),
            None
        );
    }

    #[test]
    fn priorities_iterate_highest_first() {
        let c = SwitchConfig::uniform(3, Time::from_integer(8)).unwrap();
        let levels: Vec<u8> = c.priorities().map(|p| p.level()).collect();
        assert_eq!(levels, vec![0, 1, 2]);
    }
}
