//! Per-switch connection admission control for hard real-time ATM
//! connections — the paper's §4.3.
//!
//! Each [`Switch`] keeps, for every (incoming link, outgoing link,
//! priority) triple, the aggregated worst-case arrival [`BitStream`] of
//! the connections admitted through it, and advertises a **fixed**
//! queueing delay bound per priority level equal to its FIFO queue size
//! in cells. A new connection is admitted if and only if, with its
//! worst-case (jitter-distorted) arrival stream added, the computed
//! worst-case queueing delay of its own priority *and of every lower
//! priority* still fits the advertised bounds (Steps 1–6 of §4.3).
//!
//! Because admitted traffic never queues longer than the advertised
//! bound, the FIFO queue (sized to that bound) also never overflows —
//! admission simultaneously guarantees bounded delay and zero cell
//! loss.
//!
//! [`BitStream`]: rtcac_bitstream::BitStream
//!
//! # Examples
//!
//! ```
//! use rtcac_bitstream::{Rate, Time, TrafficContract, VbrParams};
//! use rtcac_cac::{AdmissionDecision, ConnectionId, ConnectionRequest, Priority, Switch, SwitchConfig};
//! use rtcac_net::LinkId;
//! use rtcac_rational::ratio;
//!
//! // A switch with one priority level and a 32-cell FIFO (the RTnet
//! // configuration: 87 µs at 155 Mbps).
//! let config = SwitchConfig::uniform(1, Time::from_integer(32))?;
//! let mut switch = Switch::new(config);
//!
//! let contract = TrafficContract::vbr(VbrParams::new(
//!     Rate::new(ratio(1, 4)),
//!     Rate::new(ratio(1, 16)),
//!     8,
//! )?);
//! let request = ConnectionRequest::new(
//!     contract,
//!     Time::from_integer(64), // accumulated upstream CDV
//!     LinkId::external(0),    // incoming port
//!     LinkId::external(1),    // outgoing port
//!     Priority::HIGHEST,
//! );
//!
//! match switch.admit(ConnectionId::new(1), request)? {
//!     AdmissionDecision::Admitted(report) => {
//!         assert!(report.bound_for(Priority::HIGHEST).unwrap() <= Time::from_integer(32));
//!     }
//!     AdmissionDecision::Rejected(reason) => panic!("unexpected rejection: {reason}"),
//! }
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arena;
pub mod baseline;
mod cdv;
mod config;
mod connection;
mod error;
mod intern;
mod plan;
mod report;
mod sof_cache;
mod switch;
mod tables;

pub use cdv::CdvPolicy;
pub use config::{Priority, SwitchConfig};
pub use connection::{ConnectionId, ConnectionRequest};
pub use error::{CacError, RejectReason};
pub use intern::ContractHandle;
pub use plan::{
    release_order, HopDriver, HopSpec, PlannedHop, ReservationPlan, ReserveOutcome, RoutePlan,
    LOCAL_INJECTION,
};
pub use report::{AdmissionReport, AdmissionVerdict, HopRow, HopVerdict};
pub use sof_cache::SofCache;
pub use switch::{AdmissionDecision, BoundsReport, Switch};
