//! The per-switch stream bookkeeping of §4.3.
//!
//! For every (incoming link `i`, outgoing link `j`, priority `p`) the
//! switch stores the aggregated worst-case arrival stream
//! `Sia(i,j,p)` of the admitted connections. All other streams of the
//! paper's data-structure list are derived from it:
//!
//! - `Sif(i,j,p) = filter(Sia(i,j,p))` — what can actually cross the
//!   incoming link;
//! - `Soa(j,p)   = Σᵢ Sif(i,j,p)` — the aggregate arriving at output
//!   port `j` for priority `p`;
//! - `Sia(i,j)(p) = Σ_{p' ≻ p} Sia(i,j,p')` — the higher-priority
//!   aggregate per incoming link;
//! - `Sof(j)(p)  = filter(Σᵢ filter(Sia(i,j)(p)))` — the worst-case
//!   higher-priority *transmission* stream that interferes with `p`.

use std::collections::BTreeMap;
use std::collections::BTreeSet;

use rtcac_bitstream::BitStream;
use rtcac_net::LinkId;

use crate::Priority;

/// Key of one aggregate: (incoming link, outgoing link, priority).
pub(crate) type Key = (LinkId, LinkId, Priority);

/// The stored `Sia(i,j,p)` aggregates of one switch.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub(crate) struct Tables {
    sia: BTreeMap<Key, BitStream>,
}

impl Tables {
    pub(crate) fn new() -> Tables {
        Tables::default()
    }

    /// The stored aggregate for a key, or the zero stream.
    pub(crate) fn arrival(&self, i: LinkId, j: LinkId, p: Priority) -> BitStream {
        self.sia
            .get(&(i, j, p))
            .cloned()
            .unwrap_or_else(BitStream::zero)
    }

    /// Multiplexes a stream into a key's aggregate.
    pub(crate) fn add(&mut self, i: LinkId, j: LinkId, p: Priority, stream: &BitStream) {
        let entry = self.sia.entry((i, j, p)).or_insert_with(BitStream::zero);
        *entry = entry.multiplex(stream);
    }

    /// Replaces a key's aggregate wholesale (used when recomputing
    /// after a release); a zero stream removes the entry.
    pub(crate) fn set(&mut self, i: LinkId, j: LinkId, p: Priority, stream: BitStream) {
        if stream.is_zero() {
            self.sia.remove(&(i, j, p));
        } else {
            self.sia.insert((i, j, p), stream);
        }
    }

    /// Number of non-zero aggregates.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn len(&self) -> usize {
        self.sia.len()
    }

    /// Approximate resident heap bytes of the stored aggregates.
    pub(crate) fn resident_bytes(&self) -> usize {
        self.sia
            .values()
            .map(|s| std::mem::size_of::<Key>() + s.resident_bytes())
            .sum()
    }

    /// The total long-run rate currently crossing incoming link `i`
    /// (all outgoing links and priorities).
    pub(crate) fn in_link_long_run(&self, i: LinkId) -> rtcac_bitstream::Rate {
        self.sia
            .iter()
            .filter(|(&(ki, _, _), _)| ki == i)
            .map(|(_, s)| s.long_run_rate())
            .sum()
    }

    /// All incoming links that currently feed output link `j` (at any
    /// priority).
    pub(crate) fn in_links(&self, j: LinkId) -> BTreeSet<LinkId> {
        self.sia
            .keys()
            .filter(|&&(_, kj, _)| kj == j)
            .map(|&(ki, _, _)| ki)
            .collect()
    }

    /// All output links with any stored aggregate.
    pub(crate) fn out_links(&self) -> BTreeSet<LinkId> {
        self.sia.keys().map(|&(_, kj, _)| kj).collect()
    }

    /// `Soa(j,p) = Σᵢ filter(Sia(i,j,p))`, optionally excluding one
    /// incoming link (Step 3 swaps that link's contribution for an
    /// updated one).
    pub(crate) fn output_aggregate_excluding(
        &self,
        j: LinkId,
        p: Priority,
        skip: Option<LinkId>,
    ) -> BitStream {
        let mut agg = BitStream::zero();
        for (&(ki, kj, kp), stream) in &self.sia {
            if kj == j && kp == p && Some(ki) != skip {
                agg = agg.multiplex(&stream.filter());
            }
        }
        agg
    }

    /// `Soa(j,p)` with nothing excluded.
    pub(crate) fn output_aggregate(&self, j: LinkId, p: Priority) -> BitStream {
        self.output_aggregate_excluding(j, p, None)
    }

    /// `Sia(i,j)(p) = Σ_{p' ≻ p} Sia(i,j,p')`: the higher-priority
    /// aggregate on one incoming link.
    pub(crate) fn higher_in(&self, i: LinkId, j: LinkId, p: Priority) -> BitStream {
        let mut agg = BitStream::zero();
        for (&(ki, kj, kp), stream) in &self.sia {
            if ki == i && kj == j && kp.outranks(p) {
                agg = agg.multiplex(stream);
            }
        }
        agg
    }

    /// `Sof(j)(p) = filter(Σᵢ filter(Sia(i,j)(p)))` — the filtered
    /// higher-priority interference at output port `j`, optionally with
    /// an extra stream injected at one incoming link (Step 5 evaluates
    /// the effect of the candidate connection on lower priorities).
    pub(crate) fn interference_with(
        &self,
        j: LinkId,
        p: Priority,
        extra: Option<(LinkId, &BitStream)>,
    ) -> BitStream {
        let mut links = self.in_links(j);
        if let Some((i, _)) = extra {
            links.insert(i);
        }
        let mut agg = BitStream::zero();
        for i in links {
            let mut per_link = self.higher_in(i, j, p);
            if let Some((ei, stream)) = extra {
                if ei == i {
                    per_link = per_link.multiplex(stream);
                }
            }
            agg = agg.multiplex(&per_link.filter());
        }
        agg.filter()
    }

    /// `Sof(j)(p)` with no hypothetical addition.
    pub(crate) fn interference(&self, j: LinkId, p: Priority) -> BitStream {
        self.interference_with(j, p, None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtcac_bitstream::{Rate, Time};
    use rtcac_rational::ratio;

    fn l(n: u32) -> LinkId {
        LinkId::external(n)
    }

    fn burst(rate_num: i128, rate_den: i128, until: i128) -> BitStream {
        BitStream::from_rate_breaks([
            (ratio(2, 1), ratio(0, 1)),
            (ratio(rate_num, rate_den), ratio(until, 1)),
        ])
        .unwrap()
    }

    #[test]
    fn add_and_arrival() {
        let mut t = Tables::new();
        assert!(t.arrival(l(0), l(1), Priority::HIGHEST).is_zero());
        let s = burst(1, 4, 2);
        t.add(l(0), l(1), Priority::HIGHEST, &s);
        assert_eq!(t.arrival(l(0), l(1), Priority::HIGHEST), s);
        t.add(l(0), l(1), Priority::HIGHEST, &s);
        assert_eq!(t.arrival(l(0), l(1), Priority::HIGHEST), s.multiplex(&s));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn set_zero_removes() {
        let mut t = Tables::new();
        t.add(l(0), l(1), Priority::HIGHEST, &burst(1, 4, 2));
        t.set(l(0), l(1), Priority::HIGHEST, BitStream::zero());
        assert_eq!(t.len(), 0);
        assert!(t.arrival(l(0), l(1), Priority::HIGHEST).is_zero());
    }

    #[test]
    fn link_enumeration() {
        let mut t = Tables::new();
        t.add(l(0), l(5), Priority::HIGHEST, &burst(1, 8, 1));
        t.add(l(1), l(5), Priority::new(1), &burst(1, 8, 1));
        t.add(l(0), l(6), Priority::HIGHEST, &burst(1, 8, 1));
        let ins: Vec<LinkId> = t.in_links(l(5)).into_iter().collect();
        assert_eq!(ins, vec![l(0), l(1)]);
        let outs: Vec<LinkId> = t.out_links().into_iter().collect();
        assert_eq!(outs, vec![l(5), l(6)]);
    }

    #[test]
    fn output_aggregate_filters_per_in_link() {
        let mut t = Tables::new();
        // Two bursty aggregates on different in-links: each is filtered
        // to <= 1 before summing, so the output aggregate peaks at 2,
        // not 4.
        t.add(l(0), l(5), Priority::HIGHEST, &burst(1, 8, 2));
        t.add(l(1), l(5), Priority::HIGHEST, &burst(1, 8, 2));
        let agg = t.output_aggregate(l(5), Priority::HIGHEST);
        assert_eq!(agg.peak_rate(), Rate::new(ratio(2, 1)));
    }

    #[test]
    fn output_aggregate_excluding_skips_link() {
        let mut t = Tables::new();
        t.add(l(0), l(5), Priority::HIGHEST, &burst(1, 8, 2));
        t.add(l(1), l(5), Priority::HIGHEST, &burst(1, 8, 2));
        let partial = t.output_aggregate_excluding(l(5), Priority::HIGHEST, Some(l(1)));
        assert_eq!(partial, t.arrival(l(0), l(5), Priority::HIGHEST).filter());
    }

    #[test]
    fn higher_in_collects_outranking_levels_only() {
        let mut t = Tables::new();
        let s0 = burst(1, 8, 1);
        let s1 = burst(1, 4, 1);
        t.add(l(0), l(5), Priority::new(0), &s0);
        t.add(l(0), l(5), Priority::new(1), &s1);
        t.add(l(0), l(5), Priority::new(2), &burst(1, 2, 1));
        assert!(t.higher_in(l(0), l(5), Priority::new(0)).is_zero());
        assert_eq!(t.higher_in(l(0), l(5), Priority::new(1)), s0);
        assert_eq!(t.higher_in(l(0), l(5), Priority::new(2)), s0.multiplex(&s1));
    }

    #[test]
    fn interference_is_filtered() {
        let mut t = Tables::new();
        t.add(l(0), l(5), Priority::HIGHEST, &burst(1, 8, 4));
        t.add(l(1), l(5), Priority::HIGHEST, &burst(1, 8, 4));
        let sof = t.interference(l(5), Priority::new(1));
        // Output filtering caps the interference at the link rate.
        assert!(sof.peak_rate() <= Rate::FULL);
        assert!(!sof.is_zero());
        // Highest priority sees no interference.
        assert!(t.interference(l(5), Priority::HIGHEST).is_zero());
    }

    #[test]
    fn interference_with_extra_stream() {
        let mut t = Tables::new();
        t.add(l(0), l(5), Priority::HIGHEST, &burst(1, 8, 2));
        let extra = burst(1, 8, 2);
        let without = t.interference(l(5), Priority::new(1));
        let with_same_link = t.interference_with(l(5), Priority::new(1), Some((l(0), &extra)));
        let with_new_link = t.interference_with(l(5), Priority::new(1), Some((l(7), &extra)));
        // Adding interference can only inflate the envelope.
        let ts = Time::from_integer(6);
        assert!(with_same_link.cumulative(ts) >= without.cumulative(ts));
        assert!(with_new_link.cumulative(ts) >= without.cumulative(ts));
        // On a fresh in-link the extra stream is filtered independently,
        // so the two placements differ in general.
        assert!(with_new_link.peak_rate() <= Rate::new(ratio(2, 1)));
    }
}
