//! The [`Switch`]: stateful per-switch admission control (§4.3).

use rtcac_bitstream::{BitStream, Rate, StreamError, Time};
use rtcac_net::LinkId;

use crate::arena::{Leg, LegArena};
use crate::intern::ContractIntern;
use crate::tables::Tables;
use crate::{
    CacError, ConnectionId, ConnectionRequest, Priority, RejectReason, SofCache, SwitchConfig,
};

/// The outcome of a CAC check: either the connection fits (with the
/// computed worst-case bounds as evidence) or it must be rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmissionDecision {
    /// The connection can be established at this switch.
    Admitted(BoundsReport),
    /// The connection would violate a delay bound guarantee.
    Rejected(RejectReason),
}

impl AdmissionDecision {
    /// Whether the decision is an admission.
    pub fn is_admitted(&self) -> bool {
        matches!(self, AdmissionDecision::Admitted(_))
    }
}

/// Evidence produced by a successful CAC check: the computed worst-case
/// queueing delay at the connection's outgoing link for its own
/// priority and for every lower priority it could have disturbed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BoundsReport {
    out_link: LinkId,
    bounds: Vec<(Priority, Time)>,
}

impl BoundsReport {
    /// The outgoing link the report applies to.
    pub fn out_link(&self) -> LinkId {
        self.out_link
    }

    /// The computed worst-case delays, highest priority first.
    pub fn bounds(&self) -> &[(Priority, Time)] {
        &self.bounds
    }

    /// The computed worst-case delay for one priority level, if it was
    /// part of the check.
    pub fn bound_for(&self, priority: Priority) -> Option<Time> {
        self.bounds
            .iter()
            .find(|(p, _)| *p == priority)
            .map(|&(_, d)| d)
    }
}

/// A CAC-managed static-priority FIFO switch.
///
/// Holds the §4.3 stream tables and the set of established connections,
/// and implements the six-step admission check. See the crate-level
/// example for a full walkthrough.
///
/// A connection may hold several *legs* at one switch — one per
/// outgoing link — which is how point-to-multipoint VCs reserve every
/// branch port of their tree under a single connection id.
///
/// # Resident-state layout
///
/// Legs live in a dense-id [`LegArena`] (a `Vec` slab with an in-slot
/// free list), each holding only its links, priority, and a refcounted
/// [`ContractIntern`] handle to the `(contract, CDV)` entry that owns
/// the arrival envelope — one envelope per *distinct* parameter pair,
/// however many legs carry it. A sorted `(connection, out-link) → slot`
/// index provides lookups and the **stable public iteration order**
/// (ascending by `(connection, out-link)`, exactly the order the former
/// `BTreeMap` storage iterated), so admission ledgers and snapshot
/// encodings are byte-identical across the representation change.
#[derive(Debug, Clone)]
pub struct Switch {
    config: SwitchConfig,
    tables: Tables,
    intern: ContractIntern,
    legs: LegArena,
    /// Sorted by key; one entry per established leg.
    index: Vec<((ConnectionId, LinkId), u32)>,
    epoch: u64,
}

impl Switch {
    /// Creates a switch with the given priority configuration.
    pub fn new(config: SwitchConfig) -> Switch {
        Switch {
            config,
            tables: Tables::new(),
            intern: ContractIntern::new(),
            legs: LegArena::new(),
            index: Vec::new(),
            epoch: 0,
        }
    }

    /// Rebuilds a switch from a previously admitted set of connection
    /// legs — the warm-restart constructor.
    ///
    /// Each leg re-derives its arrival stream exactly as the original
    /// admission did ([`ConnectionRequest::arrival_stream`] plus the
    /// config's quantization grid) and is multiplexed into the stream
    /// tables **without** re-running the admission check: the legs were
    /// admitted once and the caller re-verifies the resulting bounds
    /// afterwards. Because the table aggregates are rebuilt by the same
    /// multiplexing the release path uses, the restored tables are
    /// bit-identical to the tables the legs originally produced.
    ///
    /// # Errors
    ///
    /// Returns [`CacError::DuplicateConnection`] when the same
    /// `(connection, out-link)` leg appears twice,
    /// [`CacError::UnknownPriority`] for a leg at a level the config
    /// does not serve, and the quantization conditions of the arrival
    /// derivation.
    pub fn restore(
        config: SwitchConfig,
        epoch: u64,
        legs: impl IntoIterator<Item = (ConnectionId, ConnectionRequest)>,
    ) -> Result<Switch, CacError> {
        let mut switch = Switch::new(config);
        for (id, request) in legs {
            switch.config.bound(request.priority())?;
            if switch.find_leg(id, request.out_link()).is_some() {
                return Err(CacError::DuplicateConnection(id));
            }
            switch.attach_leg(id, &request)?;
        }
        switch.epoch = epoch;
        Ok(switch)
    }

    /// The switch's configuration.
    pub fn config(&self) -> &SwitchConfig {
        &self.config
    }

    /// The table epoch: a counter bumped on every state mutation
    /// (successful admit or release). [`SofCache`] entries are tagged
    /// with the epoch they were computed at, so a cached Algorithm 4.1
    /// result is valid exactly while the epoch is unchanged.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Rewinds the table epoch to `to`, an earlier value previously
    /// observed via [`Switch::epoch`].
    ///
    /// The caller must guarantee the stream tables and connection set
    /// are bit-identical to their state when `to` was read — i.e. every
    /// admit since then has been undone by a matching release. A
    /// two-phase engine uses this after rolling back an aborted
    /// reservation so the shard is indistinguishable from the
    /// pre-reserve state and warm [`SofCache`] entries stay valid;
    /// pair it with [`SofCache::invalidate_newer`] so entries written
    /// during the rolled-back window can never be mistaken for current.
    ///
    /// # Panics
    ///
    /// Debug-asserts that `to` does not exceed the current epoch.
    pub fn rewind_epoch(&mut self, to: u64) {
        debug_assert!(
            to <= self.epoch,
            "rewind_epoch({to}) past current epoch {}",
            self.epoch
        );
        self.epoch = to;
    }

    /// The fixed queueing delay bound the switch advertises for a
    /// priority level (paper §4.1: equal to the FIFO queue size).
    ///
    /// # Errors
    ///
    /// Returns [`CacError::UnknownPriority`] for an unserved level.
    pub fn advertised_bound(&self, priority: Priority) -> Result<Time, CacError> {
        self.config.bound(priority)
    }

    /// Number of established connection legs (one per connection and
    /// outgoing link; a unicast connection has exactly one).
    pub fn connection_count(&self) -> usize {
        self.index.len()
    }

    /// Whether a connection holds any leg here.
    pub fn has_connection(&self, id: ConnectionId) -> bool {
        !self.leg_range(id).is_empty()
    }

    /// The established connection legs and their admission parameters,
    /// ascending by `(connection, out-link)`. Requests are
    /// reconstructed from the leg and its interned `(contract, CDV)`
    /// entry — bit-identical to the request originally admitted.
    pub fn connections(&self) -> impl Iterator<Item = (ConnectionId, ConnectionRequest)> + '_ {
        self.index.iter().map(move |&(_, slot)| {
            let leg = self.legs.get(slot);
            (leg.id, self.request_of(leg))
        })
    }

    /// The long-run (sustained) load admitted on an outgoing link,
    /// normalized to the link bandwidth.
    pub fn sustained_load(&self, out_link: LinkId) -> Rate {
        self.index
            .iter()
            .filter_map(|&(_, slot)| {
                let leg = self.legs.get(slot);
                (leg.out_link == out_link)
                    .then(|| self.intern.contract(leg.handle).sustained_rate())
            })
            .sum()
    }

    /// Number of distinct interned `(contract, CDV)` entries currently
    /// alive — at most the number of legs, typically far fewer.
    pub fn interned_contracts(&self) -> usize {
        self.intern.len()
    }

    /// Total leg-arena slots ever grown (live plus free-listed): how
    /// large the resident population has peaked.
    pub fn leg_slots(&self) -> usize {
        self.legs.slots()
    }

    /// Approximate resident heap bytes of the admission state: the leg
    /// arena, the sorted leg index, the intern table (envelopes
    /// included), and the `(i, j, p)` stream aggregates.
    pub fn resident_bytes(&self) -> usize {
        self.legs.resident_bytes()
            + self.index.capacity() * std::mem::size_of::<((ConnectionId, LinkId), u32)>()
            + self.intern.resident_bytes()
            + self.tables.resident_bytes()
    }

    /// Index positions of `id`'s legs (contiguous: the index is sorted
    /// by `(connection, out-link)`).
    fn leg_range(&self, id: ConnectionId) -> std::ops::Range<usize> {
        let start = self.index.partition_point(|&((cid, _), _)| cid < id);
        let len = self.index[start..].partition_point(|&((cid, _), _)| cid == id);
        start..start + len
    }

    /// The arena slot of one leg, if established.
    fn find_leg(&self, id: ConnectionId, out_link: LinkId) -> Option<u32> {
        self.index
            .binary_search_by(|&(key, _)| key.cmp(&(id, out_link)))
            .ok()
            .map(|pos| self.index[pos].1)
    }

    /// Reconstructs the admission request of an established leg.
    fn request_of(&self, leg: &Leg) -> ConnectionRequest {
        ConnectionRequest::new(
            self.intern.contract(leg.handle),
            self.intern.cdv(leg.handle),
            leg.in_link,
            leg.out_link,
            leg.priority,
        )
    }

    /// Commits one leg: acquires (or creates) its intern entry,
    /// multiplexes the interned envelope into the stream tables, and
    /// stores the leg in the arena + sorted index. The caller has
    /// already checked for duplicates.
    fn attach_leg(
        &mut self,
        id: ConnectionId,
        request: &ConnectionRequest,
    ) -> Result<(), CacError> {
        let grid = self.config.quantization();
        let handle = self.intern.acquire(request.contract(), request.cdv(), || {
            let s = request.arrival_stream();
            match grid {
                Some(grid) => s.coarsen(grid).map_err(CacError::from),
                None => Ok(s),
            }
        })?;
        self.tables.add(
            request.in_link(),
            request.out_link(),
            request.priority(),
            self.intern.stream(handle),
        );
        let slot = self.legs.insert(Leg {
            id,
            handle,
            in_link: request.in_link(),
            out_link: request.out_link(),
            priority: request.priority(),
        });
        let key = (id, request.out_link());
        let pos = self.index.partition_point(|&(k, _)| k < key);
        self.index.insert(pos, (key, slot));
        Ok(())
    }

    /// **Steps 1–6 of §4.3**: checks whether a new connection fits,
    /// without mutating the switch.
    ///
    /// # Errors
    ///
    /// Returns [`CacError::UnknownPriority`] if the requested priority
    /// is not served, or [`CacError::Stream`] on an internal numeric
    /// failure. A connection that merely does not fit is reported as
    /// [`AdmissionDecision::Rejected`], not as an error.
    pub fn check(&self, request: &ConnectionRequest) -> Result<AdmissionDecision, CacError> {
        self.check_inner(request, None)
    }

    /// Like [`Switch::check`], but memoizes the epoch-stable parts of
    /// the computation (the `Sof` interference chains and lower-priority
    /// output aggregates) in `cache`. Entries from an older table epoch
    /// miss and are recomputed, so the result is always identical to an
    /// uncached [`Switch::check`].
    ///
    /// # Errors
    ///
    /// Exactly the conditions of [`Switch::check`].
    pub fn check_cached(
        &self,
        request: &ConnectionRequest,
        cache: &mut SofCache,
    ) -> Result<AdmissionDecision, CacError> {
        self.check_inner(request, Some(cache))
    }

    fn check_inner(
        &self,
        request: &ConnectionRequest,
        mut cache: Option<&mut SofCache>,
    ) -> Result<AdmissionDecision, CacError> {
        let p = request.priority();
        let advertised = self.config.bound(p)?;
        let (i, j) = (request.in_link(), request.out_link());

        // Step 1: worst-case arrival stream of the new connection
        // (coarsened onto the configured grid, if any — a dominating
        // approximation, so all bounds stay valid).
        let s = self.arrival_of(request)?;

        // The incoming link itself must be able to carry the new
        // connection in the long run; without this check, filtering
        // would silently truncate an infeasible aggregate to the link
        // rate and hide the overload.
        if self.tables.in_link_long_run(i) + s.long_run_rate() > Rate::FULL {
            return Ok(AdmissionDecision::Rejected(
                RejectReason::IncomingOverload {
                    in_link: i,
                    priority: p,
                },
            ));
        }

        // Step 2: updated incoming aggregate and its link-filtered form.
        let sia_new = self.tables.arrival(i, j, p).multiplex(&s);
        let sif_new = sia_new.filter();

        // Step 3: updated output aggregate — swap in-link i's old
        // contribution for the new one.
        let soa_new = self
            .tables
            .output_aggregate_excluding(j, p, Some(i))
            .multiplex(&sif_new);

        // Step 4: delay bound at the connection's own priority under
        // the (unchanged) higher-priority interference.
        let sof = match cache.as_deref_mut() {
            Some(c) => c.interference(self.epoch, (j, p), || self.tables.interference(j, p)),
            None => self.tables.interference(j, p),
        };
        let mut bounds = Vec::new();
        match Self::bound_or_reject(&soa_new, &sof, j, p, advertised)? {
            Ok(d) => bounds.push((p, d)),
            Err(reason) => return Ok(AdmissionDecision::Rejected(reason)),
        }

        // Step 5–6: every lower priority must still meet its bound with
        // the new connection added to its interference.
        for p1 in self.config.priorities() {
            if !p.outranks(p1) {
                continue;
            }
            let advertised1 = self.config.bound(p1)?;
            let soa1 = match cache.as_deref_mut() {
                Some(c) => c.aggregate(self.epoch, (j, p1), || self.tables.output_aggregate(j, p1)),
                None => self.tables.output_aggregate(j, p1),
            };
            if soa1.is_zero() {
                bounds.push((p1, Time::ZERO));
                continue;
            }
            let sof1 = self.tables.interference_with(j, p1, Some((i, &s)));
            match Self::bound_or_reject(&soa1, &sof1, j, p1, advertised1)? {
                Ok(d) => bounds.push((p1, d)),
                Err(reason) => return Ok(AdmissionDecision::Rejected(reason)),
            }
        }

        Ok(AdmissionDecision::Admitted(BoundsReport {
            out_link: j,
            bounds,
        }))
    }

    /// Runs the CAC check and, if it passes, commits the connection
    /// leg to the switch tables.
    ///
    /// # Errors
    ///
    /// Returns [`CacError::DuplicateConnection`] if `id` already holds
    /// a leg on the same outgoing link (another outgoing link is a new
    /// multicast branch, which is fine), plus the conditions of
    /// [`Switch::check`].
    pub fn admit(
        &mut self,
        id: ConnectionId,
        request: ConnectionRequest,
    ) -> Result<AdmissionDecision, CacError> {
        self.admit_inner(id, request, None)
    }

    /// Like [`Switch::admit`], but runs the check through `cache`
    /// (see [`Switch::check_cached`]). A successful admission bumps the
    /// table epoch, implicitly invalidating every cached entry.
    ///
    /// # Errors
    ///
    /// Exactly the conditions of [`Switch::admit`].
    pub fn admit_cached(
        &mut self,
        id: ConnectionId,
        request: ConnectionRequest,
        cache: &mut SofCache,
    ) -> Result<AdmissionDecision, CacError> {
        self.admit_inner(id, request, Some(cache))
    }

    fn admit_inner(
        &mut self,
        id: ConnectionId,
        request: ConnectionRequest,
        cache: Option<&mut SofCache>,
    ) -> Result<AdmissionDecision, CacError> {
        if self.find_leg(id, request.out_link()).is_some() {
            return Err(CacError::DuplicateConnection(id));
        }
        let decision = self.check_inner(&request, cache)?;
        if decision.is_admitted() {
            self.attach_leg(id, &request)?;
            self.epoch += 1;
        }
        Ok(decision)
    }

    /// Tears down every leg of an established connection, returning
    /// their admission parameters.
    ///
    /// # Errors
    ///
    /// Returns [`CacError::UnknownConnection`] if `id` holds no leg
    /// here.
    pub fn release(&mut self, id: ConnectionId) -> Result<Vec<ConnectionRequest>, CacError> {
        let range = self.leg_range(id);
        if range.is_empty() {
            return Err(CacError::UnknownConnection(id));
        }
        // The connection's legs are contiguous in the sorted index:
        // drain that range directly, handing each slot to the arena
        // free list and dropping its intern reference — no intermediate
        // key list is materialized.
        let mut released = Vec::with_capacity(range.len());
        for (_, slot) in self.index.drain(range) {
            let leg = self.legs.remove(slot);
            released.push(ConnectionRequest::new(
                self.intern.contract(leg.handle),
                self.intern.cdv(leg.handle),
                leg.in_link,
                leg.out_link,
                leg.priority,
            ));
            self.intern.release(leg.handle);
        }
        // Rebuild every affected aggregate from the remaining legs
        // (exact, and immune to accumulated demultiplex ordering),
        // multiplexing in index order so the result is bit-identical
        // to the aggregate the same legs originally produced.
        for request in &released {
            let key = (request.in_link(), request.out_link(), request.priority());
            let rebuilt = BitStream::multiplex_all(self.index.iter().filter_map(|&(_, slot)| {
                let leg = self.legs.get(slot);
                ((leg.in_link, leg.out_link, leg.priority) == key)
                    .then(|| self.intern.stream(leg.handle))
            }));
            self.tables.set(
                request.in_link(),
                request.out_link(),
                request.priority(),
                rebuilt,
            );
        }
        self.epoch += 1;
        Ok(released)
    }

    /// The current computed worst-case queueing delay for a priority at
    /// an outgoing link, given the established connections only.
    ///
    /// # Errors
    ///
    /// Returns [`CacError::UnknownPriority`] for an unserved level or
    /// [`CacError::Stream`] if the established traffic is overloaded
    /// (cannot happen if all admissions went through [`Switch::admit`]).
    pub fn computed_bound(&self, out_link: LinkId, priority: Priority) -> Result<Time, CacError> {
        self.config.bound(priority)?;
        let soa = self.tables.output_aggregate(out_link, priority);
        if soa.is_zero() {
            return Ok(Time::ZERO);
        }
        let sof = self.tables.interference(out_link, priority);
        soa.delay_bound(&sof).map_err(CacError::from)
    }

    /// Like [`Switch::computed_bound`], but memoizes the Algorithm 4.1
    /// result in `cache`, keyed by `(out_link, priority)` and tagged
    /// with the current table epoch.
    ///
    /// # Errors
    ///
    /// Exactly the conditions of [`Switch::computed_bound`].
    pub fn computed_bound_cached(
        &self,
        out_link: LinkId,
        priority: Priority,
        cache: &mut SofCache,
    ) -> Result<Time, CacError> {
        self.config.bound(priority)?;
        if let Some(bound) = cache.bound(self.epoch, (out_link, priority)) {
            return Ok(bound);
        }
        let bound = self.computed_bound(out_link, priority)?;
        cache.store_bound(self.epoch, (out_link, priority), bound);
        Ok(bound)
    }

    /// All outgoing links with established traffic.
    pub fn active_out_links(&self) -> Vec<LinkId> {
        self.tables.out_links().into_iter().collect()
    }

    /// The (possibly quantized) worst-case arrival stream of a request.
    /// When an identical `(contract, CDV)` pair is already interned,
    /// its envelope is reused — the same pure function evaluated once.
    fn arrival_of(&self, request: &ConnectionRequest) -> Result<BitStream, CacError> {
        if let Some(s) = self.intern.lookup(request.contract(), request.cdv()) {
            return Ok(s.clone());
        }
        let s = request.arrival_stream();
        match self.config.quantization() {
            Some(grid) => s.coarsen(grid).map_err(CacError::from),
            None => Ok(s),
        }
    }

    fn bound_or_reject(
        arrival: &BitStream,
        interference: &BitStream,
        out_link: LinkId,
        priority: Priority,
        advertised: Time,
    ) -> Result<Result<Time, RejectReason>, CacError> {
        match arrival.delay_bound(interference) {
            Ok(d) if d <= advertised => Ok(Ok(d)),
            Ok(d) => Ok(Err(RejectReason::BoundExceeded {
                out_link,
                priority,
                computed: d,
                advertised,
            })),
            Err(StreamError::Overload { .. }) => {
                Ok(Err(RejectReason::Overload { out_link, priority }))
            }
            Err(e) => Err(CacError::Stream(e)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtcac_bitstream::{CbrParams, TrafficContract, VbrParams};
    use rtcac_rational::ratio;

    fn l(n: u32) -> LinkId {
        LinkId::external(n)
    }

    fn cbr(num: i128, den: i128) -> TrafficContract {
        TrafficContract::cbr(CbrParams::new(Rate::new(ratio(num, den))).unwrap())
    }

    fn vbr(pn: i128, pd: i128, sn: i128, sd: i128, mbs: u64) -> TrafficContract {
        TrafficContract::vbr(
            VbrParams::new(Rate::new(ratio(pn, pd)), Rate::new(ratio(sn, sd)), mbs).unwrap(),
        )
    }

    fn one_level_switch(bound: i128) -> Switch {
        Switch::new(SwitchConfig::uniform(1, Time::from_integer(bound)).unwrap())
    }

    fn request(contract: TrafficContract, cdv: i128, i: u32, p: u8) -> ConnectionRequest {
        ConnectionRequest::new(
            contract,
            Time::from_integer(cdv),
            l(i),
            l(100),
            Priority::new(p),
        )
    }

    #[test]
    fn admit_single_connection() {
        let mut sw = one_level_switch(32);
        let d = sw
            .admit(ConnectionId::new(1), request(cbr(1, 8), 0, 0, 0))
            .unwrap();
        assert!(d.is_admitted());
        assert_eq!(sw.connection_count(), 1);
        assert!(sw.has_connection(ConnectionId::new(1)));
        assert_eq!(sw.sustained_load(l(100)), Rate::new(ratio(1, 8)));
    }

    #[test]
    fn check_does_not_mutate() {
        let sw = one_level_switch(32);
        let before = sw.connection_count();
        let _ = sw.check(&request(cbr(1, 8), 0, 0, 0)).unwrap();
        assert_eq!(sw.connection_count(), before);
        assert_eq!(
            sw.computed_bound(l(100), Priority::HIGHEST).unwrap(),
            Time::ZERO
        );
    }

    #[test]
    fn duplicate_id_is_error() {
        let mut sw = one_level_switch(32);
        sw.admit(ConnectionId::new(1), request(cbr(1, 8), 0, 0, 0))
            .unwrap();
        assert!(matches!(
            sw.admit(ConnectionId::new(1), request(cbr(1, 8), 0, 1, 0)),
            Err(CacError::DuplicateConnection(_))
        ));
    }

    #[test]
    fn unknown_priority_is_error() {
        let sw = one_level_switch(32);
        assert!(matches!(
            sw.check(&request(cbr(1, 8), 0, 0, 3)),
            Err(CacError::UnknownPriority(_))
        ));
    }

    #[test]
    fn overload_rejected() {
        let mut sw = one_level_switch(1_000_000);
        // Two CBR connections at 3/5 each: long-run 6/5 > 1.
        let d1 = sw
            .admit(ConnectionId::new(1), request(cbr(3, 5), 0, 0, 0))
            .unwrap();
        assert!(d1.is_admitted());
        let d2 = sw
            .admit(ConnectionId::new(2), request(cbr(3, 5), 0, 1, 0))
            .unwrap();
        assert!(matches!(
            d2,
            AdmissionDecision::Rejected(RejectReason::Overload { .. })
        ));
        assert_eq!(sw.connection_count(), 1);
    }

    #[test]
    fn bound_exceeded_rejected_with_jitter() {
        // A tight 2-cell bound; jittered CBR connections clump into
        // bursts that eventually exceed it.
        let mut sw = one_level_switch(2);
        let mut admitted = 0;
        for k in 0..8 {
            let d = sw
                .admit(ConnectionId::new(k), request(cbr(1, 10), 40, k as u32, 0))
                .unwrap();
            match d {
                AdmissionDecision::Admitted(_) => admitted += 1,
                AdmissionDecision::Rejected(RejectReason::BoundExceeded {
                    computed,
                    advertised,
                    ..
                }) => {
                    assert!(computed > advertised);
                    break;
                }
                AdmissionDecision::Rejected(r) => panic!("unexpected: {r}"),
            }
        }
        assert!(admitted >= 1, "at least one connection must fit");
        assert!(admitted < 8, "the tight bound must eventually reject");
        // The committed state still honors the bound.
        let d = sw.computed_bound(l(100), Priority::HIGHEST).unwrap();
        assert!(d <= Time::from_integer(2));
    }

    #[test]
    fn admission_report_contains_bounds() {
        let mut sw = one_level_switch(32);
        match sw
            .admit(ConnectionId::new(1), request(vbr(1, 2, 1, 10, 6), 16, 0, 0))
            .unwrap()
        {
            AdmissionDecision::Admitted(report) => {
                assert_eq!(report.out_link(), l(100));
                let b = report.bound_for(Priority::HIGHEST).unwrap();
                assert!(b <= Time::from_integer(32));
                assert_eq!(report.bounds().len(), 1);
            }
            other => panic!("expected admission, got {other:?}"),
        }
    }

    #[test]
    fn release_restores_capacity() {
        let mut sw = one_level_switch(4);
        // Fill until rejection.
        let mut ids = Vec::new();
        for k in 0..20 {
            let d = sw
                .admit(ConnectionId::new(k), request(cbr(1, 10), 30, k as u32, 0))
                .unwrap();
            if d.is_admitted() {
                ids.push(ConnectionId::new(k));
            } else {
                break;
            }
        }
        let full = sw.connection_count();
        assert!(full > 0);
        // Releasing one connection must allow a similar one back in.
        let released = sw.release(ids[0]).unwrap();
        assert_eq!(released.len(), 1);
        assert_eq!(sw.connection_count(), full - 1);
        let d = sw.admit(ConnectionId::new(99), released[0]).unwrap();
        assert!(d.is_admitted());
        assert_eq!(sw.connection_count(), full);
    }

    #[test]
    fn release_unknown_is_error() {
        let mut sw = one_level_switch(32);
        assert!(matches!(
            sw.release(ConnectionId::new(9)),
            Err(CacError::UnknownConnection(_))
        ));
    }

    #[test]
    fn lower_priority_protected_from_new_higher_traffic() {
        // Level 0: 8-cell bound; level 1: 8-cell bound.
        let config =
            SwitchConfig::with_bounds([Time::from_integer(8), Time::from_integer(8)]).unwrap();
        let mut sw = Switch::new(config);
        // Fill priority 1 close to its bound with jittered CBR traffic.
        let mut k = 0u64;
        loop {
            let d = sw
                .admit(ConnectionId::new(k), request(cbr(1, 12), 60, k as u32, 1))
                .unwrap();
            k += 1;
            if !d.is_admitted() || k > 30 {
                break;
            }
        }
        let low_before = sw.computed_bound(l(100), Priority::new(1)).unwrap();
        assert!(low_before <= Time::from_integer(8));
        // Now a big bursty high-priority connection: its own bound may
        // hold (small aggregate at level 0) but it must not wreck level
        // 1. Admission must either reject it or keep level 1's computed
        // bound within the advertised one.
        let d = sw
            .admit(
                ConnectionId::new(999),
                request(vbr(1, 1, 1, 3, 32), 60, 99, 0),
            )
            .unwrap();
        let low_after = sw.computed_bound(l(100), Priority::new(1)).unwrap();
        assert!(
            low_after <= Time::from_integer(8),
            "lower priority bound violated after {d:?}"
        );
    }

    #[test]
    fn higher_priority_unaffected_by_lower_admission() {
        let config =
            SwitchConfig::with_bounds([Time::from_integer(8), Time::from_integer(64)]).unwrap();
        let mut sw = Switch::new(config);
        sw.admit(ConnectionId::new(1), request(cbr(1, 4), 20, 0, 0))
            .unwrap();
        let hi_before = sw.computed_bound(l(100), Priority::HIGHEST).unwrap();
        // Admit lower-priority traffic.
        sw.admit(ConnectionId::new(2), request(vbr(1, 2, 1, 5, 16), 20, 1, 1))
            .unwrap();
        let hi_after = sw.computed_bound(l(100), Priority::HIGHEST).unwrap();
        assert_eq!(hi_before, hi_after);
    }

    #[test]
    fn report_covers_lower_levels() {
        let config =
            SwitchConfig::with_bounds([Time::from_integer(16), Time::from_integer(64)]).unwrap();
        let mut sw = Switch::new(config);
        sw.admit(ConnectionId::new(1), request(cbr(1, 4), 10, 0, 1))
            .unwrap();
        match sw
            .admit(ConnectionId::new(2), request(cbr(1, 4), 10, 1, 0))
            .unwrap()
        {
            AdmissionDecision::Admitted(report) => {
                assert!(report.bound_for(Priority::HIGHEST).is_some());
                assert!(report.bound_for(Priority::new(1)).is_some());
            }
            other => panic!("expected admission, got {other:?}"),
        }
    }

    #[test]
    fn connections_iterator() {
        let mut sw = one_level_switch(32);
        sw.admit(ConnectionId::new(5), request(cbr(1, 8), 0, 0, 0))
            .unwrap();
        let listed: Vec<ConnectionId> = sw.connections().map(|(id, _)| id).collect();
        assert_eq!(listed, vec![ConnectionId::new(5)]);
        assert_eq!(sw.active_out_links(), vec![l(100)]);
    }

    #[test]
    fn quantized_switch_is_sound_and_scales() {
        // Heterogeneous contracts whose exact aggregation would blow up
        // i128 denominators: quantization keeps arithmetic bounded and
        // the committed state still honors the advertised bound.
        let config = SwitchConfig::uniform(1, Time::from_integer(500))
            .unwrap()
            .with_quantization(4096)
            .unwrap();
        let mut sw = Switch::new(config);
        for k in 0..128u64 {
            let contract = vbr(
                1,
                40 + (k % 11) as i128,
                1,
                600 + (k % 17) as i128,
                2 + k % 6,
            );
            let req = ConnectionRequest::new(
                contract,
                Time::from_integer(64),
                l((k % 4) as u32),
                l(100),
                Priority::HIGHEST,
            );
            let decision = sw.admit(ConnectionId::new(k), req).unwrap();
            assert!(decision.is_admitted(), "connection {k} rejected");
        }
        let bound = sw.computed_bound(l(100), Priority::HIGHEST).unwrap();
        assert!(bound <= Time::from_integer(500));
        // Quantized bounds dominate the per-connection exact ones: the
        // quantized aggregate is built from dominating envelopes.
        assert_eq!(sw.connection_count(), 128);
    }

    #[test]
    fn multicast_legs_share_one_id() {
        // One p2mp connection reserving two output ports of the same
        // switch under a single id.
        let config = SwitchConfig::uniform(1, Time::from_integer(32)).unwrap();
        let mut sw = Switch::new(config);
        let id = ConnectionId::new(7);
        let leg = |out: u32| {
            ConnectionRequest::new(
                cbr(1, 8),
                Time::from_integer(16),
                l(0),
                l(out),
                Priority::HIGHEST,
            )
        };
        assert!(sw.admit(id, leg(100)).unwrap().is_admitted());
        assert!(sw.admit(id, leg(101)).unwrap().is_admitted());
        // Same id, same out link: rejected as a duplicate.
        assert!(matches!(
            sw.admit(id, leg(100)),
            Err(CacError::DuplicateConnection(_))
        ));
        assert_eq!(sw.connection_count(), 2);
        assert!(sw.has_connection(id));
        // Release removes both legs and frees both ports.
        let released = sw.release(id).unwrap();
        assert_eq!(released.len(), 2);
        assert_eq!(sw.connection_count(), 0);
        assert_eq!(
            sw.computed_bound(l(100), Priority::HIGHEST).unwrap(),
            Time::ZERO
        );
        assert_eq!(
            sw.computed_bound(l(101), Priority::HIGHEST).unwrap(),
            Time::ZERO
        );
    }

    #[test]
    fn epoch_tracks_mutations_only() {
        let mut sw = one_level_switch(32);
        assert_eq!(sw.epoch(), 0);
        // A pure check does not bump the epoch.
        let _ = sw.check(&request(cbr(1, 8), 0, 0, 0)).unwrap();
        assert_eq!(sw.epoch(), 0);
        sw.admit(ConnectionId::new(1), request(cbr(1, 8), 0, 0, 0))
            .unwrap();
        assert_eq!(sw.epoch(), 1);
        // A rejected admission leaves the tables (and epoch) untouched.
        let d = sw
            .admit(ConnectionId::new(2), request(cbr(9, 10), 0, 1, 0))
            .unwrap();
        assert!(!d.is_admitted());
        assert_eq!(sw.epoch(), 1);
        sw.release(ConnectionId::new(1)).unwrap();
        assert_eq!(sw.epoch(), 2);
    }

    #[test]
    fn rewind_epoch_with_invalidation_keeps_cache_honest() {
        let mut sw = one_level_switch(32);
        let mut cache = SofCache::new();
        sw.admit(ConnectionId::new(1), request(cbr(1, 8), 0, 0, 0))
            .unwrap();
        let pre = sw.epoch();
        let bound_pre = sw
            .computed_bound_cached(l(100), Priority::HIGHEST, &mut cache)
            .unwrap();
        // A reserve that later aborts: admit then undo via release.
        sw.admit_cached(
            ConnectionId::new(2),
            request(cbr(1, 8), 0, 1, 0),
            &mut cache,
        )
        .unwrap();
        sw.release(ConnectionId::new(2)).unwrap();
        sw.rewind_epoch(pre);
        cache.invalidate_newer(pre);
        assert_eq!(sw.epoch(), pre);
        // The pre-reserve entry survives and is served as a hit...
        let hits_before = cache.hits();
        let bound_back = sw
            .computed_bound_cached(l(100), Priority::HIGHEST, &mut cache)
            .unwrap();
        assert_eq!(bound_back, bound_pre);
        assert_eq!(cache.hits(), hits_before + 1);
        // ...and when the epoch re-advances past the invalidated window
        // with *different* tables, no stale entry can answer: the next
        // lookup must miss and recompute.
        sw.admit(ConnectionId::new(3), request(cbr(1, 4), 0, 2, 0))
            .unwrap();
        let fresh = sw.computed_bound(l(100), Priority::HIGHEST).unwrap();
        let misses_before = cache.misses();
        let cached = sw
            .computed_bound_cached(l(100), Priority::HIGHEST, &mut cache)
            .unwrap();
        assert_eq!(cached, fresh);
        assert_eq!(cache.misses(), misses_before + 1);
    }

    #[test]
    fn cached_check_agrees_with_uncached() {
        let mut sw = one_level_switch(8);
        let mut cache = SofCache::new();
        for k in 0..12u64 {
            let req = request(cbr(1, 10), 30, k as u32, 0);
            let plain = sw.check(&req).unwrap();
            let cached = sw.check_cached(&req, &mut cache).unwrap();
            assert_eq!(plain, cached);
            let d = sw
                .admit_cached(ConnectionId::new(k), req, &mut cache)
                .unwrap();
            assert_eq!(d, plain);
        }
        assert!(
            cache.hits() > 0,
            "repeat lookups at a stable epoch must hit"
        );
    }

    #[test]
    fn cached_bound_invalidated_by_epoch_bump() {
        let mut sw = one_level_switch(32);
        let mut cache = SofCache::new();
        sw.admit(ConnectionId::new(1), request(cbr(1, 8), 0, 0, 0))
            .unwrap();
        let b1 = sw
            .computed_bound_cached(l(100), Priority::HIGHEST, &mut cache)
            .unwrap();
        // Second lookup at the same epoch: served from cache.
        let hits_before = cache.hits();
        let b2 = sw
            .computed_bound_cached(l(100), Priority::HIGHEST, &mut cache)
            .unwrap();
        assert_eq!(b1, b2);
        assert_eq!(cache.hits(), hits_before + 1);
        // Mutating the switch invalidates the entry: the next lookup
        // recomputes and returns the fresh value.
        sw.admit(ConnectionId::new(2), request(cbr(1, 8), 16, 1, 0))
            .unwrap();
        let fresh = sw.computed_bound(l(100), Priority::HIGHEST).unwrap();
        let cached = sw
            .computed_bound_cached(l(100), Priority::HIGHEST, &mut cache)
            .unwrap();
        assert_eq!(cached, fresh);
    }

    #[test]
    fn advertised_bound_matches_config() {
        let sw = one_level_switch(32);
        assert_eq!(
            sw.advertised_bound(Priority::HIGHEST).unwrap(),
            Time::from_integer(32)
        );
        assert!(sw.advertised_bound(Priority::new(1)).is_err());
    }
}
