//! Contract interning: one arrival envelope per distinct
//! `(contract, CDV)` pair, shared by every leg that carries it.
//!
//! A switch near capacity holds thousands of legs, but the set of
//! *distinct* admission parameters is tiny — a handful of traffic
//! contracts crossed with the few CDV values the upstream hop depths
//! produce. Storing the worst-case arrival [`BitStream`] per leg (as
//! the original `BTreeMap` tables did) duplicates the same envelope
//! thousands of times; interning stores it once, refcounted in a slab,
//! and hands each leg a copyable [`ContractHandle`].
//!
//! The interned stream is the same pure function of `(contract, cdv,
//! grid)` the admission check evaluates —
//! [`ConnectionRequest::arrival_stream`] plus the config's coarsening
//! grid — so sharing it is invisible to every bound: aggregates built
//! from interned streams are bit-identical to aggregates built from
//! per-leg copies.
//!
//! [`ConnectionRequest::arrival_stream`]: crate::ConnectionRequest::arrival_stream

use std::collections::BTreeMap;

use rtcac_bitstream::{BitStream, Time, TrafficContract};

use crate::CacError;

/// A cheap, copyable reference to an interned `(contract, CDV)` entry
/// of **one switch's** [`ContractIntern`]. Handles are per-switch slab
/// indices: never mix handles across switches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ContractHandle(u32);

impl ContractHandle {
    /// The raw slab index (stable for the life of the entry).
    pub const fn raw(self) -> u32 {
        self.0
    }

    #[cfg(test)]
    pub(crate) fn from_raw_for_test(raw: u32) -> ContractHandle {
        ContractHandle(raw)
    }
}

/// Sentinel terminating the in-slab free list.
const NO_SLOT: u32 = u32::MAX;

/// One live intern entry: the admission parameters and the arrival
/// envelope they induce, plus the number of legs referencing it.
#[derive(Debug, Clone)]
struct Entry {
    contract: TrafficContract,
    cdv: Time,
    stream: BitStream,
    refs: u32,
}

/// A slab slot: either a live entry or a link in the free list.
#[derive(Debug, Clone)]
enum Slot {
    Occupied(Entry),
    Free { next: u32 },
}

/// The per-switch contract intern table: a slab of refcounted
/// [`Entry`]s with an ordered index from `(contract, cdv)` to slot, so
/// lookups are deterministic and freed slots are reused before the slab
/// grows.
#[derive(Debug, Clone, Default)]
pub(crate) struct ContractIntern {
    slots: Vec<Slot>,
    free_head: u32,
    index: BTreeMap<(TrafficContract, Time), u32>,
}

impl ContractIntern {
    pub(crate) fn new() -> ContractIntern {
        ContractIntern {
            slots: Vec::new(),
            free_head: NO_SLOT,
            index: BTreeMap::new(),
        }
    }

    /// Acquires a handle for `(contract, cdv)`, bumping the refcount of
    /// an existing entry or computing the stream via `make` for a new
    /// one.
    ///
    /// # Errors
    ///
    /// Propagates `make`'s error (the entry is not created).
    pub(crate) fn acquire(
        &mut self,
        contract: TrafficContract,
        cdv: Time,
        make: impl FnOnce() -> Result<BitStream, CacError>,
    ) -> Result<ContractHandle, CacError> {
        if let Some(&slot) = self.index.get(&(contract, cdv)) {
            match &mut self.slots[slot as usize] {
                Slot::Occupied(entry) => entry.refs += 1,
                Slot::Free { .. } => unreachable!("indexed slot is free"),
            }
            return Ok(ContractHandle(slot));
        }
        let stream = make()?;
        let entry = Entry {
            contract,
            cdv,
            stream,
            refs: 1,
        };
        let slot = if self.free_head != NO_SLOT {
            let slot = self.free_head;
            match self.slots[slot as usize] {
                Slot::Free { next } => self.free_head = next,
                Slot::Occupied(_) => unreachable!("free head points at a live slot"),
            }
            self.slots[slot as usize] = Slot::Occupied(entry);
            slot
        } else {
            self.slots.push(Slot::Occupied(entry));
            (self.slots.len() - 1) as u32
        };
        self.index.insert((contract, cdv), slot);
        Ok(ContractHandle(slot))
    }

    /// Drops one reference. When the last reference goes, the entry is
    /// removed from the index and its slot chained onto the free list;
    /// returns whether the entry died.
    pub(crate) fn release(&mut self, handle: ContractHandle) -> bool {
        let slot = handle.0;
        let entry = match &mut self.slots[slot as usize] {
            Slot::Occupied(entry) => entry,
            Slot::Free { .. } => panic!("release of a dead intern handle"),
        };
        debug_assert!(entry.refs > 0);
        entry.refs -= 1;
        if entry.refs > 0 {
            return false;
        }
        let key = (entry.contract, entry.cdv);
        self.index.remove(&key);
        self.slots[slot as usize] = Slot::Free {
            next: self.free_head,
        };
        self.free_head = slot;
        true
    }

    /// The interned stream for `(contract, cdv)` if present, without
    /// touching any refcount — the read-only check path reuses it
    /// instead of recomputing Alg 2.1 + 3.1 + coarsening.
    pub(crate) fn lookup(&self, contract: TrafficContract, cdv: Time) -> Option<&BitStream> {
        self.index
            .get(&(contract, cdv))
            .map(|&slot| match &self.slots[slot as usize] {
                Slot::Occupied(entry) => &entry.stream,
                Slot::Free { .. } => unreachable!("indexed slot is free"),
            })
    }

    fn entry(&self, handle: ContractHandle) -> &Entry {
        match &self.slots[handle.0 as usize] {
            Slot::Occupied(entry) => entry,
            Slot::Free { .. } => panic!("use of a dead intern handle"),
        }
    }

    /// The interned arrival envelope.
    pub(crate) fn stream(&self, handle: ContractHandle) -> &BitStream {
        &self.entry(handle).stream
    }

    /// The interned traffic contract.
    pub(crate) fn contract(&self, handle: ContractHandle) -> TrafficContract {
        self.entry(handle).contract
    }

    /// The interned accumulated CDV.
    pub(crate) fn cdv(&self, handle: ContractHandle) -> Time {
        self.entry(handle).cdv
    }

    /// The current refcount of a live entry.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn refs(&self, handle: ContractHandle) -> u32 {
        self.entry(handle).refs
    }

    /// Number of live (distinct) entries.
    pub(crate) fn len(&self) -> usize {
        self.index.len()
    }

    /// Total slab slots, live or free — how far the slab has ever grown.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn slots(&self) -> usize {
        self.slots.len()
    }

    /// Approximate resident heap bytes of the intern table: slab +
    /// index nodes + the interned stream segments.
    pub(crate) fn resident_bytes(&self) -> usize {
        let slab = self.slots.capacity() * std::mem::size_of::<Slot>();
        let index = self.index.len()
            * (std::mem::size_of::<(TrafficContract, Time)>() + std::mem::size_of::<u32>());
        let streams: usize = self
            .slots
            .iter()
            .map(|slot| match slot {
                Slot::Occupied(entry) => entry.stream.resident_bytes(),
                Slot::Free { .. } => 0,
            })
            .sum();
        slab + index + streams
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtcac_bitstream::{CbrParams, Rate};
    use rtcac_rational::ratio;

    fn cbr(num: i128, den: i128) -> TrafficContract {
        TrafficContract::cbr(CbrParams::new(Rate::new(ratio(num, den))).unwrap())
    }

    fn stream_of(contract: TrafficContract, cdv: Time) -> BitStream {
        contract.worst_case_stream().delay(cdv)
    }

    #[test]
    fn acquire_dedups_and_counts_refs() {
        let mut intern = ContractIntern::new();
        let c = cbr(1, 8);
        let cdv = Time::from_integer(16);
        let h1 = intern.acquire(c, cdv, || Ok(stream_of(c, cdv))).unwrap();
        let h2 = intern
            .acquire(c, cdv, || panic!("second acquire must hit"))
            .unwrap();
        assert_eq!(h1, h2);
        assert_eq!(intern.refs(h1), 2);
        assert_eq!(intern.len(), 1);
        // A different CDV is a distinct entry.
        let h3 = intern
            .acquire(c, Time::ZERO, || Ok(stream_of(c, Time::ZERO)))
            .unwrap();
        assert_ne!(h1, h3);
        assert_eq!(intern.len(), 2);
        assert_eq!(intern.contract(h1), c);
        assert_eq!(intern.cdv(h1), cdv);
        assert_eq!(*intern.stream(h1), stream_of(c, cdv));
    }

    #[test]
    fn release_frees_slot_for_reuse() {
        let mut intern = ContractIntern::new();
        let c = cbr(1, 4);
        let h = intern
            .acquire(c, Time::ZERO, || Ok(stream_of(c, Time::ZERO)))
            .unwrap();
        let h2 = intern.acquire(c, Time::ZERO, || unreachable!()).unwrap();
        assert!(!intern.release(h));
        assert!(intern.release(h2));
        assert_eq!(intern.len(), 0);
        // The freed slot is reused before the slab grows.
        let c2 = cbr(1, 2);
        let h3 = intern
            .acquire(c2, Time::ZERO, || Ok(stream_of(c2, Time::ZERO)))
            .unwrap();
        assert_eq!(h3.raw(), h.raw());
        assert_eq!(intern.slots(), 1);
    }

    #[test]
    fn failed_make_leaves_table_untouched() {
        let mut intern = ContractIntern::new();
        let c = cbr(1, 8);
        let r = intern.acquire(c, Time::ZERO, || {
            Err(CacError::BadConfig("synthetic failure"))
        });
        assert!(r.is_err());
        assert_eq!(intern.len(), 0);
        assert_eq!(intern.slots(), 0);
    }
}
