//! Epoch-tagged memoization of Algorithm 4.1 inputs and results.
//!
//! The admission check recomputes, for every probe, the same
//! higher-priority interference chain `Sof(j)(p)` and output aggregate
//! `Soa(j)(p)` — quantities that only change when the switch *commits*
//! or *releases* a connection. [`SofCache`] memoizes them keyed by
//! `(out-link, priority)` and tags every entry with the switch's
//! [table epoch](crate::Switch::epoch); the switch bumps its epoch on
//! each commit/release, so a stale entry can never be returned — it
//! simply misses and is recomputed.
//!
//! The cache lives *outside* the [`Switch`](crate::Switch) so that a
//! concurrent engine can keep one per shard without the switch itself
//! growing interior mutability.

use std::collections::BTreeMap;

use rtcac_bitstream::{BitStream, Time};
use rtcac_net::LinkId;

use crate::Priority;

type Key = (LinkId, Priority);

/// Memoized per-port CAC state, validated against a table epoch.
///
/// All lookups go through [`Switch::check_cached`],
/// [`Switch::admit_cached`] and [`Switch::computed_bound_cached`]
/// (which pass the switch's current epoch); entries written at an
/// older epoch are treated as absent.
///
/// [`Switch::check_cached`]: crate::Switch::check_cached
/// [`Switch::admit_cached`]: crate::Switch::admit_cached
/// [`Switch::computed_bound_cached`]: crate::Switch::computed_bound_cached
#[derive(Debug, Clone, Default)]
pub struct SofCache {
    interference: BTreeMap<Key, (u64, BitStream)>,
    aggregates: BTreeMap<Key, (u64, BitStream)>,
    bounds: BTreeMap<Key, (u64, Time)>,
    hits: u64,
    misses: u64,
}

impl SofCache {
    /// Creates an empty cache.
    pub fn new() -> SofCache {
        SofCache::default()
    }

    /// Number of lookups answered from a current-epoch entry.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of lookups that had to recompute (absent or stale entry).
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Drops every entry (the counters are kept).
    pub fn clear(&mut self) {
        self.interference.clear();
        self.aggregates.clear();
        self.bounds.clear();
    }

    /// Drops every entry written at an epoch *newer* than `epoch`.
    ///
    /// Required after [`Switch::rewind_epoch`](crate::Switch::rewind_epoch):
    /// once the epoch counter is rewound, the switch will re-reach the
    /// dropped epochs with potentially different tables, so entries
    /// tagged with them would otherwise produce false hits. Entries at
    /// `epoch` or older are kept (they stay valid or harmlessly stale).
    pub fn invalidate_newer(&mut self, epoch: u64) {
        self.interference.retain(|_, &mut (e, _)| e <= epoch);
        self.aggregates.retain(|_, &mut (e, _)| e <= epoch);
        self.bounds.retain(|_, &mut (e, _)| e <= epoch);
    }

    pub(crate) fn interference(
        &mut self,
        epoch: u64,
        key: Key,
        compute: impl FnOnce() -> BitStream,
    ) -> BitStream {
        Self::memo(
            &mut self.interference,
            &mut self.hits,
            &mut self.misses,
            epoch,
            key,
            compute,
        )
    }

    pub(crate) fn aggregate(
        &mut self,
        epoch: u64,
        key: Key,
        compute: impl FnOnce() -> BitStream,
    ) -> BitStream {
        Self::memo(
            &mut self.aggregates,
            &mut self.hits,
            &mut self.misses,
            epoch,
            key,
            compute,
        )
    }

    pub(crate) fn bound(&mut self, epoch: u64, key: Key) -> Option<Time> {
        match self.bounds.get(&key) {
            Some(&(e, b)) if e == epoch => {
                self.hits += 1;
                Some(b)
            }
            _ => {
                self.misses += 1;
                None
            }
        }
    }

    pub(crate) fn store_bound(&mut self, epoch: u64, key: Key, bound: Time) {
        self.bounds.insert(key, (epoch, bound));
    }

    fn memo<T: Clone>(
        map: &mut BTreeMap<Key, (u64, T)>,
        hits: &mut u64,
        misses: &mut u64,
        epoch: u64,
        key: Key,
        compute: impl FnOnce() -> T,
    ) -> T {
        if let Some((e, v)) = map.get(&key) {
            if *e == epoch {
                *hits += 1;
                return v.clone();
            }
        }
        *misses += 1;
        let v = compute();
        map.insert(key, (epoch, v.clone()));
        v
    }
}
