//! The **peak bandwidth allocation** baseline — the conventional CAC
//! the paper's introduction argues against.
//!
//! Peak allocation admits a connection as long as the sum of peak cell
//! rates on each outgoing link stays within the link bandwidth. The
//! introduction explains why this is *not* sufficient for hard
//! real-time guarantees: jitter introduced at upstream nodes lets cells
//! arrive faster than their source rate, so the aggregated arrival rate
//! can transiently exceed the link bandwidth and queueing delays become
//! unpredictable. [`PeakAllocation`] implements the baseline so the
//! claim can be quantified (see the `baseline_peak` benchmark binary
//! and the `baseline_peak_allocation` integration tests).

use std::collections::BTreeMap;

use rtcac_bitstream::Rate;
use rtcac_net::LinkId;

use crate::{CacError, ConnectionId, ConnectionRequest};

/// A peak-bandwidth-allocation admission controller: admits while
/// `Σ PCR <= capacity` per outgoing link. No delay bounds are computed
/// or guaranteed.
///
/// # Examples
///
/// ```
/// use rtcac_bitstream::{CbrParams, Rate, Time, TrafficContract};
/// use rtcac_cac::{baseline::PeakAllocation, ConnectionId, ConnectionRequest, Priority};
/// use rtcac_net::LinkId;
/// use rtcac_rational::ratio;
///
/// let mut cac = PeakAllocation::new();
/// let contract = TrafficContract::cbr(CbrParams::new(Rate::new(ratio(2, 3)))?);
/// let request = ConnectionRequest::new(
///     contract,
///     Time::ZERO,
///     LinkId::external(0),
///     LinkId::external(1),
///     Priority::HIGHEST,
/// );
/// assert!(cac.admit(ConnectionId::new(1), request)?);
/// // A second 2/3-peak connection exceeds the link: rejected.
/// let request2 = ConnectionRequest::new(
///     contract,
///     Time::ZERO,
///     LinkId::external(2),
///     LinkId::external(1),
///     Priority::HIGHEST,
/// );
/// assert!(!cac.admit(ConnectionId::new(2), request2)?);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct PeakAllocation {
    allocated: BTreeMap<LinkId, Rate>,
    connections: BTreeMap<ConnectionId, ConnectionRequest>,
}

impl PeakAllocation {
    /// Creates an empty controller.
    pub fn new() -> PeakAllocation {
        PeakAllocation::default()
    }

    /// The peak bandwidth currently allocated on a link.
    pub fn allocated(&self, link: LinkId) -> Rate {
        self.allocated.get(&link).copied().unwrap_or(Rate::ZERO)
    }

    /// Number of admitted connections.
    pub fn connection_count(&self) -> usize {
        self.connections.len()
    }

    /// Whether the request fits under peak allocation (no commitment).
    pub fn check(&self, request: &ConnectionRequest) -> bool {
        self.allocated(request.out_link()) + request.contract().pcr() <= Rate::FULL
    }

    /// Admits the connection if the aggregated peak bandwidth on its
    /// outgoing link stays within the link. Returns whether it was
    /// admitted.
    ///
    /// # Errors
    ///
    /// Returns [`CacError::DuplicateConnection`] for a reused id.
    pub fn admit(
        &mut self,
        id: ConnectionId,
        request: ConnectionRequest,
    ) -> Result<bool, CacError> {
        if self.connections.contains_key(&id) {
            return Err(CacError::DuplicateConnection(id));
        }
        if !self.check(&request) {
            return Ok(false);
        }
        *self
            .allocated
            .entry(request.out_link())
            .or_insert(Rate::ZERO) += request.contract().pcr();
        self.connections.insert(id, request);
        Ok(true)
    }

    /// Releases an admitted connection.
    ///
    /// # Errors
    ///
    /// Returns [`CacError::UnknownConnection`] for an unknown id.
    pub fn release(&mut self, id: ConnectionId) -> Result<ConnectionRequest, CacError> {
        let request = self
            .connections
            .remove(&id)
            .ok_or(CacError::UnknownConnection(id))?;
        if let Some(rate) = self.allocated.get_mut(&request.out_link()) {
            *rate -= request.contract().pcr();
        }
        Ok(request)
    }

    /// The admitted requests (e.g. to re-analyze them with the
    /// worst-case machinery).
    pub fn connections(&self) -> impl Iterator<Item = (ConnectionId, &ConnectionRequest)> + '_ {
        self.connections.iter().map(|(&id, r)| (id, r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Priority;
    use rtcac_bitstream::{CbrParams, Time, TrafficContract};
    use rtcac_rational::ratio;

    fn request(pcr_num: i128, pcr_den: i128, in_link: u32) -> ConnectionRequest {
        ConnectionRequest::new(
            TrafficContract::cbr(CbrParams::new(Rate::new(ratio(pcr_num, pcr_den))).unwrap()),
            Time::from_integer(64),
            LinkId::external(in_link),
            LinkId::external(100),
            Priority::HIGHEST,
        )
    }

    #[test]
    fn admits_up_to_link_capacity() {
        let mut cac = PeakAllocation::new();
        for k in 0..4 {
            assert!(cac
                .admit(ConnectionId::new(k), request(1, 4, k as u32))
                .unwrap());
        }
        // The link is exactly full; the next one is rejected.
        assert!(!cac.admit(ConnectionId::new(9), request(1, 4, 9)).unwrap());
        assert_eq!(cac.allocated(LinkId::external(100)), Rate::FULL);
        assert_eq!(cac.connection_count(), 4);
    }

    #[test]
    fn release_restores_capacity() {
        let mut cac = PeakAllocation::new();
        cac.admit(ConnectionId::new(1), request(2, 3, 0)).unwrap();
        assert!(!cac.admit(ConnectionId::new(2), request(2, 3, 1)).unwrap());
        cac.release(ConnectionId::new(1)).unwrap();
        assert!(cac.admit(ConnectionId::new(2), request(2, 3, 1)).unwrap());
    }

    #[test]
    fn duplicate_and_unknown_ids() {
        let mut cac = PeakAllocation::new();
        cac.admit(ConnectionId::new(1), request(1, 8, 0)).unwrap();
        assert!(matches!(
            cac.admit(ConnectionId::new(1), request(1, 8, 1)),
            Err(CacError::DuplicateConnection(_))
        ));
        assert!(matches!(
            cac.release(ConnectionId::new(5)),
            Err(CacError::UnknownConnection(_))
        ));
    }

    #[test]
    fn peak_allocation_ignores_jitter_risk() {
        // The intro's criticism, stated as a test: peak allocation
        // happily fills the link with jitter-distorted CBR connections
        // whose worst-case queueing delay (per the paper's analysis)
        // blows past any small FIFO queue.
        let mut peak = PeakAllocation::new();
        let mut streams = Vec::new();
        for k in 0..10u64 {
            let req = request(1, 10, k as u32);
            assert!(peak.admit(ConnectionId::new(k), req).unwrap());
            streams.push(req.arrival_stream());
        }
        let aggregate = rtcac_bitstream::BitStream::multiplex_all(&streams);
        let bound = aggregate
            .delay_bound(&rtcac_bitstream::BitStream::zero())
            .unwrap();
        assert!(
            bound > Time::from_integer(32),
            "worst-case delay {bound} should exceed a 32-cell queue"
        );
    }
}
