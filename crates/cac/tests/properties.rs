//! Randomized property tests for the per-switch admission control:
//! whatever sequence of admissions and releases happens, the committed
//! state always honors the advertised guarantees.
//!
//! The registry is offline, so instead of proptest these run seeded
//! loops over a local SplitMix64 generator.

use rtcac_bitstream::{Rate, Time, TrafficContract, VbrParams};
use rtcac_cac::{ConnectionId, ConnectionRequest, Priority, Switch, SwitchConfig};
use rtcac_net::LinkId;
use rtcac_rational::ratio;

const CASES: u64 = 64;

struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn range(&mut self, lo: i128, hi: i128) -> i128 {
        let span = (hi - lo + 1) as u128;
        lo + (u128::from(self.next()) % span) as i128
    }
}

/// A compact encoding of one operation against the switch.
#[derive(Debug, Clone)]
enum Op {
    /// Try to admit a connection with these small parameters.
    Admit {
        pcr_den: i128,
        scr_extra_den: i128,
        mbs: u64,
        cdv: i128,
        in_link: u32,
        priority: u8,
    },
    /// Release the k-th live connection (mod live count).
    Release(usize),
}

fn arb_op(rng: &mut Rng) -> Op {
    // 3:1 admit-to-release ratio, mirroring the original strategy.
    if rng.range(0, 3) < 3 {
        Op::Admit {
            pcr_den: rng.range(2, 24),
            scr_extra_den: rng.range(0, 60),
            mbs: rng.range(1, 8) as u64,
            cdv: rng.range(0, 96),
            in_link: rng.range(0, 3) as u32,
            priority: rng.range(0, 1) as u8,
        }
    } else {
        Op::Release(rng.range(0, 15) as usize)
    }
}

fn arb_ops(rng: &mut Rng, max_len: usize) -> Vec<Op> {
    let len = rng.range(1, max_len as i128) as usize;
    (0..len).map(|_| arb_op(rng)).collect()
}

fn request_of(op: &Op) -> Option<ConnectionRequest> {
    let Op::Admit {
        pcr_den,
        scr_extra_den,
        mbs,
        cdv,
        in_link,
        priority,
    } = op
    else {
        return None;
    };
    let pcr = ratio(1, *pcr_den);
    let scr = ratio(1, *pcr_den + *scr_extra_den);
    let contract = TrafficContract::vbr(
        VbrParams::new(Rate::new(pcr), Rate::new(scr), *mbs).expect("valid by construction"),
    );
    Some(ConnectionRequest::new(
        contract,
        Time::from_integer(*cdv),
        LinkId::external(*in_link),
        LinkId::external(100),
        Priority::new(*priority),
    ))
}

fn two_level_switch() -> Switch {
    Switch::new(
        SwitchConfig::with_bounds([Time::from_integer(24), Time::from_integer(96)]).unwrap(),
    )
}

/// After any operation sequence, every priority's computed bound fits
/// its advertised bound — the committed state never violates the
/// guarantee the switch hands out.
#[test]
fn committed_state_always_honors_bounds() {
    let mut rng = Rng(201);
    for _ in 0..CASES {
        let ops = arb_ops(&mut rng, 39);
        let mut sw = two_level_switch();
        let mut live: Vec<ConnectionId> = Vec::new();
        let mut next = 0u64;
        for op in &ops {
            match op {
                Op::Admit { .. } => {
                    let req = request_of(op).unwrap();
                    let id = ConnectionId::new(next);
                    next += 1;
                    if sw.admit(id, req).unwrap().is_admitted() {
                        live.push(id);
                    }
                }
                Op::Release(k) => {
                    if !live.is_empty() {
                        let id = live.remove(k % live.len());
                        sw.release(id).unwrap();
                    }
                }
            }
            for p in [Priority::new(0), Priority::new(1)] {
                let bound = sw.computed_bound(LinkId::external(100), p).unwrap();
                let advertised = sw.advertised_bound(p).unwrap();
                assert!(
                    bound <= advertised,
                    "priority {p}: {bound} > {advertised} after {op:?}"
                );
            }
        }
        assert_eq!(sw.connection_count(), live.len());
    }
}

/// `check` never mutates and always agrees with the subsequent `admit`
/// on the same request.
#[test]
fn check_is_pure_and_consistent_with_admit() {
    let mut rng = Rng(202);
    for _ in 0..CASES {
        let ops = arb_ops(&mut rng, 19);
        let mut sw = two_level_switch();
        let mut next = 0u64;
        for op in &ops {
            if let Some(req) = request_of(op) {
                let checked = sw.check(&req).unwrap().is_admitted();
                let count_before = sw.connection_count();
                assert_eq!(sw.connection_count(), count_before);
                let admitted = sw
                    .admit(ConnectionId::new(next), req)
                    .unwrap()
                    .is_admitted();
                next += 1;
                assert_eq!(checked, admitted);
            }
        }
    }
}

/// Admit-then-release is a perfect no-op on the observable state (exact
/// arithmetic: the bounds are bit-identical).
#[test]
fn admit_release_roundtrip_is_identity() {
    let mut rng = Rng(203);
    for _ in 0..CASES {
        let setup = arb_ops(&mut rng, 12);
        let probe = loop {
            let op = arb_op(&mut rng);
            if matches!(op, Op::Admit { .. }) {
                break op;
            }
        };
        let mut sw = two_level_switch();
        let mut next = 0u64;
        for op in &setup {
            if let Some(req) = request_of(op) {
                let _ = sw.admit(ConnectionId::new(next), req).unwrap();
                next += 1;
            }
        }
        let before: Vec<_> = [Priority::new(0), Priority::new(1)]
            .iter()
            .map(|&p| sw.computed_bound(LinkId::external(100), p).unwrap())
            .collect();
        let req = request_of(&probe).unwrap();
        let id = ConnectionId::new(9_999);
        if sw.admit(id, req).unwrap().is_admitted() {
            sw.release(id).unwrap();
        }
        let after: Vec<_> = [Priority::new(0), Priority::new(1)]
            .iter()
            .map(|&p| sw.computed_bound(LinkId::external(100), p).unwrap())
            .collect();
        assert_eq!(before, after);
    }
}

/// A small pool of distinct `(contract, CDV)` classes for the intern
/// properties: interning keys on exactly that pair, so `k` distinct
/// classes can never intern more than `k` entries no matter how many
/// legs share them.
fn class_pool() -> Vec<(TrafficContract, Time)> {
    (0..8)
        .map(|k| {
            let contract = TrafficContract::vbr(
                VbrParams::new(
                    Rate::new(ratio(1, 6 + k)),
                    Rate::new(ratio(1, 60 + 5 * k)),
                    2 + k as u64 % 4,
                )
                .expect("valid by construction"),
            );
            (contract, Time::from_integer(8 * (k % 3)))
        })
        .collect()
}

fn class_request(pool: &[(TrafficContract, Time)], class: usize, salt: u64) -> ConnectionRequest {
    let (contract, cdv) = pool[class % pool.len()];
    ConnectionRequest::new(
        contract,
        cdv,
        LinkId::external((salt % 3) as u32),
        LinkId::external(100),
        Priority::new((salt % 2) as u8),
    )
}

/// Memory-scale satellite: under arbitrary admit/release churn, the
/// intern table holds exactly one entry per *distinct live*
/// `(contract, CDV)` class — never one per leg, and never a stale
/// entry for a class whose last leg was released.
#[test]
fn intern_dedups_to_distinct_live_classes_under_churn() {
    let pool = class_pool();
    let mut rng = Rng(205);
    for _ in 0..CASES {
        let mut sw = two_level_switch();
        let mut live: Vec<(ConnectionId, usize)> = Vec::new();
        let mut next = 0u64;
        for step in 0..60 {
            if rng.range(0, 3) < 3 || live.is_empty() {
                let class = rng.range(0, pool.len() as i128 - 1) as usize;
                let req = class_request(&pool, class, rng.next());
                let id = ConnectionId::new(next);
                next += 1;
                if sw.admit(id, req).unwrap().is_admitted() {
                    live.push((id, class));
                }
            } else {
                let k = rng.range(0, live.len() as i128 - 1) as usize;
                let (id, _) = live.swap_remove(k);
                sw.release(id).unwrap();
            }
            let distinct: std::collections::BTreeSet<usize> =
                live.iter().map(|&(_, c)| c).collect();
            assert_eq!(
                sw.interned_contracts(),
                distinct.len(),
                "step {step}: {} interned for {} distinct live classes",
                sw.interned_contracts(),
                distinct.len()
            );
        }
    }
}

/// Memory-scale satellite: 10 000 connect/release cycles through a
/// bounded live window leak nothing — every refcount returns to zero
/// (empty intern table) and the leg arena's free list caps the slot
/// count at the peak concurrent population, not the cycle count.
#[test]
fn intern_refcounts_and_leg_slots_do_not_leak_over_10k_cycles() {
    const CYCLES: u64 = 10_000;
    const WINDOW: usize = 16;
    let pool = class_pool();
    let mut sw = two_level_switch();
    let mut live: std::collections::VecDeque<ConnectionId> = Default::default();
    let mut admitted = 0u64;
    for cycle in 0..CYCLES {
        let req = class_request(&pool, cycle as usize, cycle);
        let id = ConnectionId::new(cycle);
        if sw.admit(id, req).unwrap().is_admitted() {
            admitted += 1;
            live.push_back(id);
        }
        if live.len() > WINDOW {
            sw.release(live.pop_front().unwrap()).unwrap();
        }
        assert!(
            sw.leg_slots() <= WINDOW + 1,
            "cycle {cycle}: {} slots for a window of {WINDOW}",
            sw.leg_slots()
        );
        assert!(sw.interned_contracts() <= pool.len());
    }
    assert!(
        admitted > CYCLES / 2,
        "workload mostly rejected: {admitted}"
    );
    while let Some(id) = live.pop_front() {
        sw.release(id).unwrap();
    }
    assert_eq!(sw.connection_count(), 0);
    assert_eq!(
        sw.interned_contracts(),
        0,
        "released everything but intern entries survive"
    );
}

/// Memory-scale satellite: a quantizing switch's computed bounds
/// dominate the exact switch's (coarsening never under-estimates
/// traffic) and stay within the documented budget — a factor of 1.5
/// plus two cell times at grid 64 (see `BitStream::coarsen` and
/// DESIGN.md §12).
#[test]
fn coarsened_bounds_dominate_exact_within_budget() {
    const GRID: i128 = 64;
    let mut rng = Rng(206);
    for _ in 0..CASES {
        let ops = arb_ops(&mut rng, 29);
        let mut exact = two_level_switch();
        let mut coarse = Switch::new(
            SwitchConfig::with_bounds([Time::from_integer(24), Time::from_integer(96)])
                .unwrap()
                .with_quantization(GRID)
                .unwrap(),
        );
        let mut next = 0u64;
        for op in &ops {
            let Some(req) = request_of(op) else { continue };
            // Admit to both only where both agree, so the two switches
            // price the same committed population.
            if !(exact.check(&req).unwrap().is_admitted()
                && coarse.check(&req).unwrap().is_admitted())
            {
                continue;
            }
            let id = ConnectionId::new(next);
            next += 1;
            assert!(exact.admit(id, req).unwrap().is_admitted());
            assert!(coarse.admit(id, req).unwrap().is_admitted());
            for p in [Priority::new(0), Priority::new(1)] {
                let d_exact = exact.computed_bound(LinkId::external(100), p).unwrap();
                let d_coarse = coarse.computed_bound(LinkId::external(100), p).unwrap();
                assert!(
                    d_coarse >= d_exact,
                    "priority {p}: coarsened bound {d_coarse} below exact {d_exact}"
                );
                assert!(
                    d_coarse.to_f64() <= d_exact.to_f64() * 1.5 + 2.0,
                    "priority {p}: coarsened bound {d_coarse} outside budget of exact {d_exact}"
                );
            }
        }
    }
}

/// Total sustained load of admitted connections never exceeds the link
/// bandwidth (a consequence the admission must enforce).
#[test]
fn sustained_load_never_exceeds_link() {
    let mut rng = Rng(204);
    for _ in 0..CASES {
        let ops = arb_ops(&mut rng, 39);
        let mut sw = two_level_switch();
        let mut next = 0u64;
        for op in &ops {
            if let Some(req) = request_of(op) {
                let _ = sw.admit(ConnectionId::new(next), req).unwrap();
                next += 1;
            }
        }
        assert!(sw.sustained_load(LinkId::external(100)) <= Rate::FULL);
    }
}
