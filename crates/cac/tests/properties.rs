//! Property-based tests for the per-switch admission control: whatever
//! sequence of admissions and releases happens, the committed state
//! always honors the advertised guarantees.

use proptest::collection::vec;
use proptest::prelude::*;
use rtcac_bitstream::{Rate, Time, TrafficContract, VbrParams};
use rtcac_cac::{
    ConnectionId, ConnectionRequest, Priority, Switch, SwitchConfig,
};
use rtcac_net::LinkId;
use rtcac_rational::ratio;

/// A compact encoding of one operation against the switch.
#[derive(Debug, Clone)]
enum Op {
    /// Try to admit a connection with these small parameters.
    Admit {
        pcr_den: i128,
        scr_extra_den: i128,
        mbs: u64,
        cdv: i128,
        in_link: u32,
        priority: u8,
    },
    /// Release the k-th live connection (mod live count).
    Release(usize),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (2i128..=24, 0i128..=60, 1u64..=8, 0i128..=96, 0u32..=3, 0u8..=1).prop_map(
            |(pcr_den, scr_extra_den, mbs, cdv, in_link, priority)| Op::Admit {
                pcr_den,
                scr_extra_den,
                mbs,
                cdv,
                in_link,
                priority,
            }
        ),
        1 => (0usize..16).prop_map(Op::Release),
    ]
}

fn request_of(op: &Op) -> Option<ConnectionRequest> {
    let Op::Admit {
        pcr_den,
        scr_extra_den,
        mbs,
        cdv,
        in_link,
        priority,
    } = op
    else {
        return None;
    };
    let pcr = ratio(1, *pcr_den);
    let scr = ratio(1, *pcr_den + *scr_extra_den);
    let contract = TrafficContract::vbr(
        VbrParams::new(Rate::new(pcr), Rate::new(scr), *mbs).expect("valid by construction"),
    );
    Some(ConnectionRequest::new(
        contract,
        Time::from_integer(*cdv),
        LinkId::external(*in_link),
        LinkId::external(100),
        Priority::new(*priority),
    ))
}

fn two_level_switch() -> Switch {
    Switch::new(
        SwitchConfig::with_bounds([Time::from_integer(24), Time::from_integer(96)]).unwrap(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// After any operation sequence, every priority's computed bound
    /// fits its advertised bound — the committed state never violates
    /// the guarantee the switch hands out.
    #[test]
    fn committed_state_always_honors_bounds(ops in vec(arb_op(), 1..40)) {
        let mut sw = two_level_switch();
        let mut live: Vec<ConnectionId> = Vec::new();
        let mut next = 0u64;
        for op in &ops {
            match op {
                Op::Admit { .. } => {
                    let req = request_of(op).unwrap();
                    let id = ConnectionId::new(next);
                    next += 1;
                    if sw.admit(id, req).unwrap().is_admitted() {
                        live.push(id);
                    }
                }
                Op::Release(k) => {
                    if !live.is_empty() {
                        let id = live.remove(k % live.len());
                        sw.release(id).unwrap();
                    }
                }
            }
            for p in [Priority::new(0), Priority::new(1)] {
                let bound = sw.computed_bound(LinkId::external(100), p).unwrap();
                let advertised = sw.advertised_bound(p).unwrap();
                prop_assert!(
                    bound <= advertised,
                    "priority {p}: {bound} > {advertised} after {op:?}"
                );
            }
        }
        prop_assert_eq!(sw.connection_count(), live.len());
    }

    /// `check` never mutates and always agrees with the subsequent
    /// `admit` on the same request.
    #[test]
    fn check_is_pure_and_consistent_with_admit(ops in vec(arb_op(), 1..20)) {
        let mut sw = two_level_switch();
        let mut next = 0u64;
        for op in &ops {
            if let Some(req) = request_of(op) {
                let checked = sw.check(&req).unwrap().is_admitted();
                let count_before = sw.connection_count();
                prop_assert_eq!(sw.connection_count(), count_before);
                let admitted = sw
                    .admit(ConnectionId::new(next), req)
                    .unwrap()
                    .is_admitted();
                next += 1;
                prop_assert_eq!(checked, admitted);
            }
        }
    }

    /// Admit-then-release is a perfect no-op on the observable state
    /// (exact arithmetic: the bounds are bit-identical).
    #[test]
    fn admit_release_roundtrip_is_identity(
        setup in vec(arb_op(), 0..12),
        probe in arb_op().prop_filter("admit only", |op| matches!(op, Op::Admit { .. })),
    ) {
        let mut sw = two_level_switch();
        let mut next = 0u64;
        for op in &setup {
            if let Some(req) = request_of(op) {
                let _ = sw.admit(ConnectionId::new(next), req).unwrap();
                next += 1;
            }
        }
        let before: Vec<_> = [Priority::new(0), Priority::new(1)]
            .iter()
            .map(|&p| sw.computed_bound(LinkId::external(100), p).unwrap())
            .collect();
        let req = request_of(&probe).unwrap();
        let id = ConnectionId::new(9_999);
        if sw.admit(id, req).unwrap().is_admitted() {
            sw.release(id).unwrap();
        }
        let after: Vec<_> = [Priority::new(0), Priority::new(1)]
            .iter()
            .map(|&p| sw.computed_bound(LinkId::external(100), p).unwrap())
            .collect();
        prop_assert_eq!(before, after);
    }

    /// Total sustained load of admitted connections never exceeds the
    /// link bandwidth (a consequence the admission must enforce).
    #[test]
    fn sustained_load_never_exceeds_link(ops in vec(arb_op(), 1..40)) {
        let mut sw = two_level_switch();
        let mut next = 0u64;
        for op in &ops {
            if let Some(req) = request_of(op) {
                let _ = sw.admit(ConnectionId::new(next), req).unwrap();
                next += 1;
            }
        }
        prop_assert!(sw.sustained_load(LinkId::external(100)) <= Rate::FULL);
    }
}
