//! Topology generators for storm rounds.
//!
//! The star-ring family of [`rtcac_net::builders`] covers the paper's
//! reference fabric; storm rounds also need *shapes the admission
//! paths were never tuned for*. The deterministic generators
//! (star-of-star-rings, fat-tree) live in `rtcac_net::builders`; this
//! module adds the seeded sparse-WAN generator and the kind selector
//! the fuzzer draws from.

use rtcac_net::{builders, NetError, NodeId, Topology};
use rtcac_sim::SimRng;

/// The topology families a storm round can draw.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopologyKind {
    /// Two-level hierarchy: a top ring of region hubs, each hanging a
    /// star-ring of its own (`rtcac_net::builders::star_of_star_rings`).
    StarOfRings,
    /// A k-ary fat-tree (core/aggregation/edge) with hosts on the
    /// edge switches (`rtcac_net::builders::fat_tree`).
    FatTree,
    /// A seeded sparse WAN: a random spanning tree over the switches
    /// plus a few chord links, one terminal per switch.
    SparseWan,
}

impl TopologyKind {
    /// Every generator, in the order the `mixed` CLI mode cycles.
    pub const ALL: [TopologyKind; 3] = [
        TopologyKind::StarOfRings,
        TopologyKind::FatTree,
        TopologyKind::SparseWan,
    ];

    /// The CLI spelling.
    pub fn name(self) -> &'static str {
        match self {
            TopologyKind::StarOfRings => "star-of-rings",
            TopologyKind::FatTree => "fat-tree",
            TopologyKind::SparseWan => "wan",
        }
    }

    /// Parses a CLI spelling.
    pub fn parse(name: &str) -> Option<TopologyKind> {
        TopologyKind::ALL.into_iter().find(|k| k.name() == name)
    }
}

impl std::fmt::Display for TopologyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A modest instance of `kind`, sized from seeded draws — small
/// enough that a fuzz round stays fast, varied enough that shard
/// counts, route lengths, and branch degrees differ between rounds.
///
/// # Errors
///
/// Propagates [`NetError`] from the underlying builders (unreachable
/// for the parameter ranges drawn here).
pub fn generate_topology(kind: TopologyKind, rng: &mut SimRng) -> Result<Topology, NetError> {
    generate_topology_sized(kind, rng, None)
}

/// [`generate_topology`] with an optional switch budget. With
/// `nodes = None` the fuzzer's small seeded draws apply; with
/// `Some(budget)` each family is sized to land *near* `budget`
/// switches (each generator's combinatorics quantize the count — a
/// fat-tree needs `5k²/4` switches for even `k` — so the realized
/// count is the closest shape at or under the budget, never more than
/// a constant factor below it).
///
/// # Errors
///
/// Propagates [`NetError`] from the underlying builders (unreachable
/// for the parameter ranges produced here).
pub fn generate_topology_sized(
    kind: TopologyKind,
    rng: &mut SimRng,
    nodes: Option<usize>,
) -> Result<Topology, NetError> {
    let Some(budget) = nodes else {
        return match kind {
            TopologyKind::StarOfRings => {
                let regions = 2 + rng.gen_below(2) as usize;
                let ring_nodes = 2 + rng.gen_below(2) as usize;
                let terminals = 1 + rng.gen_below(2) as usize;
                builders::star_of_star_rings(regions, ring_nodes, terminals)
            }
            TopologyKind::FatTree => builders::fat_tree(4),
            TopologyKind::SparseWan => {
                let switches = 5 + rng.gen_below(6) as usize;
                let chords = 1 + rng.gen_below(3) as usize;
                sparse_wan(rng, switches, chords)
            }
        };
    };
    let budget = budget.max(4);
    match kind {
        TopologyKind::StarOfRings => {
            // switches = regions × (ring_nodes + 1); a square-ish
            // split keeps both the top ring and the per-region rings
            // proportional to √budget.
            let regions = isqrt(budget).max(2);
            let ring_nodes = (budget / regions).saturating_sub(1).max(2);
            builders::star_of_star_rings(regions, ring_nodes, 1)
        }
        TopologyKind::FatTree => {
            // switches = 5k²/4 for even k ≥ 2.
            let k = (isqrt(budget * 4 / 5) & !1).max(2);
            builders::fat_tree(k)
        }
        TopologyKind::SparseWan => sparse_wan(rng, budget, budget / 4),
    }
}

/// Integer square root: the largest `r` with `r * r <= n`.
fn isqrt(n: usize) -> usize {
    if n < 2 {
        return n;
    }
    let mut r = n / 2;
    loop {
        let next = (r + n / r) / 2;
        if next >= r {
            return r;
        }
        r = next;
    }
}

/// A seeded sparse WAN: `switches` switch nodes joined by a random
/// spanning tree (every switch after the first picks a random earlier
/// switch as its uplink), plus up to `chords` extra duplex links
/// between random non-adjacent switches, and one terminal per switch.
/// Equal seeds give equal graphs.
///
/// # Errors
///
/// Propagates [`NetError`] from link insertion (unreachable for
/// `switches >= 2`).
pub fn sparse_wan(rng: &mut SimRng, switches: usize, chords: usize) -> Result<Topology, NetError> {
    let switches = switches.max(2);
    let mut topology = Topology::new();
    let ids: Vec<NodeId> = (0..switches)
        .map(|i| topology.add_switch(format!("w{i}")))
        .collect();
    let mut adjacent: Vec<(usize, usize)> = Vec::new();
    for i in 1..switches {
        let up = rng.gen_below(i as u64) as usize;
        topology.add_duplex(ids[i], ids[up])?;
        adjacent.push((up.min(i), up.max(i)));
    }
    for _ in 0..chords {
        let a = rng.gen_below(switches as u64) as usize;
        let b = rng.gen_below(switches as u64) as usize;
        let key = (a.min(b), a.max(b));
        if a != b && !adjacent.contains(&key) {
            topology.add_duplex(ids[a], ids[b])?;
            adjacent.push(key);
        }
    }
    for (i, &switch) in ids.iter().enumerate() {
        let host = topology.add_end_system(format!("w{i}h"));
        topology.add_duplex(host, switch)?;
    }
    Ok(topology)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_round_trip_their_names() {
        for kind in TopologyKind::ALL {
            assert_eq!(TopologyKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(TopologyKind::parse("nonsense"), None);
    }

    #[test]
    fn sparse_wan_is_connected_and_deterministic() {
        let mut rng = SimRng::seed_from_u64(11);
        let t = sparse_wan(&mut rng, 9, 3).unwrap();
        assert_eq!(t.switches().count(), 9);
        assert_eq!(t.end_systems().count(), 9);
        // Spanning tree construction ⇒ every terminal reaches every
        // other terminal.
        let hosts: Vec<NodeId> = t.end_systems().map(|n| n.id()).collect();
        for &to in &hosts[1..] {
            assert!(t.shortest_route(hosts[0], to).is_ok());
        }
        // Equal seeds give byte-equal graphs.
        let mut rng2 = SimRng::seed_from_u64(11);
        let t2 = sparse_wan(&mut rng2, 9, 3).unwrap();
        assert_eq!(t.links().len(), t2.links().len());
        assert_eq!(
            t.nodes().iter().map(|n| n.name()).collect::<Vec<_>>(),
            t2.nodes().iter().map(|n| n.name()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn generate_topology_covers_every_kind() {
        let mut rng = SimRng::seed_from_u64(5);
        for kind in TopologyKind::ALL {
            let t = generate_topology(kind, &mut rng).unwrap();
            assert!(t.switches().count() >= 2, "{kind}: too few switches");
            assert!(t.end_systems().count() >= 2, "{kind}: too few terminals");
        }
    }

    /// The lifted-caps satellite: every family must scale to a
    /// thousand-switch fabric, landing near (and never over 2× under)
    /// the requested budget.
    #[test]
    fn sized_generation_reaches_a_thousand_switches() {
        for kind in TopologyKind::ALL {
            let mut rng = SimRng::seed_from_u64(0x1000);
            let t = generate_topology_sized(kind, &mut rng, Some(1000)).unwrap();
            let switches = t.switches().count();
            assert!(
                (500..=1000).contains(&switches),
                "{kind}: {switches} switches for a budget of 1000"
            );
            assert!(t.end_systems().count() >= 2, "{kind}: too few terminals");
        }
    }

    #[test]
    fn sized_generation_is_deterministic_and_handles_tiny_budgets() {
        for kind in TopologyKind::ALL {
            for budget in [1, 4, 37] {
                let mut a = SimRng::seed_from_u64(9);
                let mut b = SimRng::seed_from_u64(9);
                let ta = generate_topology_sized(kind, &mut a, Some(budget)).unwrap();
                let tb = generate_topology_sized(kind, &mut b, Some(budget)).unwrap();
                assert!(ta.switches().count() >= 2);
                assert_eq!(
                    ta.nodes().iter().map(|n| n.name()).collect::<Vec<_>>(),
                    tb.nodes().iter().map(|n| n.name()).collect::<Vec<_>>(),
                    "{kind} budget {budget}: not deterministic"
                );
            }
        }
    }

    #[test]
    fn isqrt_is_exact() {
        for n in 0..2000usize {
            let r = isqrt(n);
            assert!(r * r <= n && (r + 1) * (r + 1) > n, "isqrt({n}) = {r}");
        }
    }
}
