//! Self-similar VBR background traffic.
//!
//! Real VBR traffic is long-range dependent: burstiness does not
//! smooth out under aggregation the way Poisson arrivals do. The
//! classic construction (Willinger et al.) superposes many on/off
//! sources with heavy-tailed on/off periods; aggregate variance then
//! decays like `m^(2H-2)` with Hurst parameter `H > 1/2` instead of
//! Poisson's `1/m`.
//!
//! [`LrdVbrSource`] is the std-only, seeded analogue: a fixed bank of
//! deterministic on/off phases whose periods span several octaves
//! (`2^3 … 2^(3+octaves)` slots). The slow sources contribute
//! correlations at every lag up to their period, so block-averaged
//! variance decays visibly slower than a memoryless source's — which
//! the unit test checks directly. The fuzzer reads the source as an
//! *arrival intensity*: more active sources in a slot, more connect
//! directives emitted in that slot.

use rtcac_sim::SimRng;

/// One deterministic on/off phase: active while
/// `(slot + phase) mod period < on`.
#[derive(Debug, Clone, Copy)]
struct OnOff {
    period: u64,
    on: u64,
    phase: u64,
}

/// A superposition of seeded on/off sources with multi-octave
/// periods, evaluated per slot. Equal seeds give equal processes.
#[derive(Debug, Clone)]
pub struct LrdVbrSource {
    sources: Vec<OnOff>,
}

impl LrdVbrSource {
    /// A bank of `3 * octaves` sources, three per octave, with
    /// periods `2^3 … 2^(2 + octaves)` and seeded on-fractions and
    /// phases. `octaves` is clamped to `1..=16`.
    pub fn new(rng: &mut SimRng, octaves: u32) -> LrdVbrSource {
        let octaves = octaves.clamp(1, 16);
        let mut sources = Vec::new();
        for octave in 0..octaves {
            let period = 8u64 << octave;
            for _ in 0..3 {
                // On-fraction in [1/4, 3/4) of the period, so every
                // timescale contributes both bursts and silences.
                let on = period / 4 + rng.gen_below((period / 2).max(1));
                let phase = rng.gen_below(period);
                sources.push(OnOff { period, on, phase });
            }
        }
        LrdVbrSource { sources }
    }

    /// How many sources are in their on-period at `slot` — the
    /// background arrival intensity the fuzzer modulates with.
    pub fn intensity(&self, slot: u64) -> u64 {
        self.sources
            .iter()
            .filter(|s| (slot + s.phase) % s.period < s.on)
            .count() as u64
    }

    /// The number of superposed sources (the maximum intensity).
    pub fn sources(&self) -> usize {
        self.sources.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Variance of `xs` block-averaged over windows of `m` slots.
    fn block_variance(xs: &[f64], m: usize) -> f64 {
        let blocks: Vec<f64> = xs
            .chunks_exact(m)
            .map(|c| c.iter().sum::<f64>() / m as f64)
            .collect();
        let mean = blocks.iter().sum::<f64>() / blocks.len() as f64;
        blocks.iter().map(|b| (b - mean).powi(2)).sum::<f64>() / blocks.len() as f64
    }

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = SimRng::seed_from_u64(21);
        let mut b = SimRng::seed_from_u64(21);
        let sa = LrdVbrSource::new(&mut a, 5);
        let sb = LrdVbrSource::new(&mut b, 5);
        for slot in 0..500 {
            assert_eq!(sa.intensity(slot), sb.intensity(slot));
        }
    }

    #[test]
    fn intensity_varies_and_stays_bounded() {
        let mut rng = SimRng::seed_from_u64(8);
        let source = LrdVbrSource::new(&mut rng, 4);
        let series: Vec<u64> = (0..2_000).map(|s| source.intensity(s)).collect();
        let max = *series.iter().max().unwrap();
        let min = *series.iter().min().unwrap();
        assert!(max as usize <= source.sources());
        assert!(max > min, "a bursty source is not constant");
    }

    /// The long-range-dependence check: block-averaged variance of
    /// the superposition must decay much slower than the `1/m` a
    /// memoryless (shuffled) source shows. We compare the variance
    /// ratio var(m=64)/var(m=1) against the Poisson prediction 1/64:
    /// self-similar traffic keeps an order of magnitude more.
    #[test]
    fn aggregate_variance_decays_slower_than_poisson() {
        let mut rng = SimRng::seed_from_u64(77);
        let source = LrdVbrSource::new(&mut rng, 6);
        let series: Vec<f64> = (0..4_096).map(|s| source.intensity(s) as f64).collect();
        let v1 = block_variance(&series, 1);
        let v64 = block_variance(&series, 64);
        assert!(v1 > 0.0);
        let ratio = v64 / v1;
        assert!(
            ratio > 4.0 / 64.0,
            "variance ratio {ratio:.4} decayed like short-range traffic"
        );

        // The same samples shuffled (seeded Fisher-Yates) destroy the
        // correlation structure; their block variance must be close
        // to the 1/m law — the contrast proving the slow decay above
        // comes from long-range correlation, not the marginals.
        let mut shuffled = series.clone();
        let mut shuffle_rng = SimRng::seed_from_u64(78);
        for i in (1..shuffled.len()).rev() {
            let j = shuffle_rng.gen_below(i as u64 + 1) as usize;
            shuffled.swap(i, j);
        }
        let shuffled_ratio = block_variance(&shuffled, 64) / v1;
        assert!(
            ratio > 3.0 * shuffled_ratio,
            "correlated ratio {ratio:.4} vs shuffled {shuffled_ratio:.4}"
        );
    }
}
