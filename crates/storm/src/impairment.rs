//! Time-varying impairment profiles.
//!
//! A profile compiles into a deterministic stream of `(slot, event)`
//! pairs over the fuzzer's discrete time. Fail/heal events drive the
//! health overlay (the same transitions a [`rtcac_fault::FaultPlan`]
//! fires); degrade/restore events drive the CDV-inflation seam of the
//! admission paths — a degraded link adds jitter that *tightens*
//! Algorithm 4.1's bounds for every connection priced across it until
//! the link is restored.
//!
//! Every compiled schedule ends clean: whatever it failed it heals,
//! whatever it degraded it restores, so a storm round's final audits
//! (no orphans, guarantees intact, original decisions restored) run
//! against a healthy network.

use rtcac_fault::{FaultEvent, FaultPlan};
use rtcac_net::{LinkId, NodeId, Topology};
use rtcac_sim::SimRng;

/// The impairment shapes a storm round can schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProfileKind {
    /// One inter-switch link flaps down/up on a fixed period.
    Flap,
    /// A few links brown out: CDV inflation ramps up in stages, then
    /// every link is restored at once.
    Brownout,
    /// One link degrades, then fails outright, then heals, then
    /// restores — the full degrade-then-heal arc.
    DegradeHeal,
    /// A correlated regional outage: one switch and an adjacent
    /// inter-switch link fail together and heal together.
    Regional,
}

impl ProfileKind {
    /// Every profile, in the order the `mixed` CLI mode cycles.
    pub const ALL: [ProfileKind; 4] = [
        ProfileKind::Flap,
        ProfileKind::Brownout,
        ProfileKind::DegradeHeal,
        ProfileKind::Regional,
    ];

    /// The CLI spelling.
    pub fn name(self) -> &'static str {
        match self {
            ProfileKind::Flap => "flap",
            ProfileKind::Brownout => "brownout",
            ProfileKind::DegradeHeal => "degrade-heal",
            ProfileKind::Regional => "regional",
        }
    }

    /// Parses a CLI spelling.
    pub fn parse(name: &str) -> Option<ProfileKind> {
        ProfileKind::ALL.into_iter().find(|k| k.name() == name)
    }
}

impl std::fmt::Display for ProfileKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One scheduled impairment transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ImpairmentEvent {
    /// Mark a link down.
    FailLink(LinkId),
    /// Restore a failed link.
    HealLink(LinkId),
    /// Mark a node down.
    FailNode(NodeId),
    /// Restore a failed node.
    HealNode(NodeId),
    /// Add `cells` of CDV inflation on a link.
    DegradeLink(LinkId, u64),
    /// Clear a link's CDV inflation.
    RestoreLink(LinkId),
}

/// Inter-switch links of `topology`, the only targets profiles touch
/// (impairing an access link just severs one terminal; impairing the
/// fabric is what stresses rerouting and repricing).
fn fabric_links(topology: &Topology) -> Vec<LinkId> {
    topology
        .links()
        .iter()
        .filter(|l| {
            let from_switch = topology.node(l.from()).map(|n| n.is_switch());
            let to_switch = topology.node(l.to()).map(|n| n.is_switch());
            matches!((from_switch, to_switch), (Ok(true), Ok(true)))
        })
        .map(|l| l.id())
        .collect()
}

/// Compiles `kind` against `topology` into a deterministic `(slot,
/// event)` schedule spanning `span` fuzzer slots. Equal seeds give
/// equal schedules; every schedule heals and restores everything it
/// impaired by its final slot.
pub fn compile_profile(
    kind: ProfileKind,
    topology: &Topology,
    rng: &mut SimRng,
    span: u64,
) -> Vec<(u64, ImpairmentEvent)> {
    let fabric = fabric_links(topology);
    if fabric.is_empty() {
        return Vec::new();
    }
    let span = span.max(6);
    let pick = |rng: &mut SimRng| fabric[rng.gen_below(fabric.len() as u64) as usize];
    let mut events = Vec::new();
    match kind {
        ProfileKind::Flap => {
            let link = pick(rng);
            let period = (span / 6).max(1);
            let mut down = false;
            let mut slot = period;
            while slot < span {
                events.push((
                    slot,
                    if down {
                        ImpairmentEvent::HealLink(link)
                    } else {
                        ImpairmentEvent::FailLink(link)
                    },
                ));
                down = !down;
                slot += period;
            }
            if down {
                events.push((span, ImpairmentEvent::HealLink(link)));
            }
        }
        ProfileKind::Brownout => {
            let mut targets = vec![pick(rng)];
            let second = pick(rng);
            if second != targets[0] {
                targets.push(second);
            }
            for (stage, cells) in [16u64, 48, 96].into_iter().enumerate() {
                let slot = span * (stage as u64 + 1) / 5;
                for &link in &targets {
                    events.push((slot, ImpairmentEvent::DegradeLink(link, cells)));
                }
            }
            for &link in &targets {
                events.push((span * 4 / 5, ImpairmentEvent::RestoreLink(link)));
            }
        }
        ProfileKind::DegradeHeal => {
            let link = pick(rng);
            events.push((span / 5, ImpairmentEvent::DegradeLink(link, 32)));
            events.push((span * 2 / 5, ImpairmentEvent::FailLink(link)));
            events.push((span * 3 / 5, ImpairmentEvent::HealLink(link)));
            events.push((span * 4 / 5, ImpairmentEvent::RestoreLink(link)));
        }
        ProfileKind::Regional => {
            let link = pick(rng);
            // The region is the link's tail switch: take the switch
            // and the fabric link down together, heal together —
            // correlated, not independent, failures.
            if let Ok(l) = topology.link(link) {
                let node = l.from();
                events.push((span / 3, ImpairmentEvent::FailLink(link)));
                events.push((span / 3, ImpairmentEvent::FailNode(node)));
                events.push((span * 2 / 3, ImpairmentEvent::HealNode(node)));
                events.push((span * 2 / 3, ImpairmentEvent::HealLink(link)));
            }
        }
    }
    events
}

/// The fail/heal subset of a schedule as a [`FaultPlan`], for driving
/// the chaos harness's health overlay directly (degrade/restore
/// events have no overlay equivalent and are skipped).
pub fn fault_plan_of(events: &[(u64, ImpairmentEvent)]) -> FaultPlan {
    FaultPlan::new(
        events
            .iter()
            .filter_map(|&(slot, event)| {
                let fault = match event {
                    ImpairmentEvent::FailLink(l) => FaultEvent::LinkDown(l),
                    ImpairmentEvent::HealLink(l) => FaultEvent::LinkUp(l),
                    ImpairmentEvent::FailNode(n) => FaultEvent::NodeDown(n),
                    ImpairmentEvent::HealNode(n) => FaultEvent::NodeUp(n),
                    ImpairmentEvent::DegradeLink(..) | ImpairmentEvent::RestoreLink(_) => {
                        return None
                    }
                };
                Some((slot, fault))
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topo::sparse_wan;
    use std::collections::BTreeMap;

    fn test_topology() -> Topology {
        let mut rng = SimRng::seed_from_u64(3);
        sparse_wan(&mut rng, 8, 2).unwrap()
    }

    #[test]
    fn profiles_round_trip_their_names() {
        for kind in ProfileKind::ALL {
            assert_eq!(ProfileKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(ProfileKind::parse("sunny"), None);
    }

    /// Replays a schedule's health/degradation state transitions and
    /// asserts it ends fully healed and restored.
    fn assert_ends_clean(events: &[(u64, ImpairmentEvent)]) {
        let mut down_links: BTreeMap<LinkId, ()> = BTreeMap::new();
        let mut down_nodes: BTreeMap<NodeId, ()> = BTreeMap::new();
        let mut degraded: BTreeMap<LinkId, u64> = BTreeMap::new();
        let mut sorted = events.to_vec();
        sorted.sort_by_key(|&(slot, _)| slot);
        for (_, event) in sorted {
            match event {
                ImpairmentEvent::FailLink(l) => drop(down_links.insert(l, ())),
                ImpairmentEvent::HealLink(l) => drop(down_links.remove(&l)),
                ImpairmentEvent::FailNode(n) => drop(down_nodes.insert(n, ())),
                ImpairmentEvent::HealNode(n) => drop(down_nodes.remove(&n)),
                ImpairmentEvent::DegradeLink(l, cells) => drop(degraded.insert(l, cells)),
                ImpairmentEvent::RestoreLink(l) => drop(degraded.remove(&l)),
            }
        }
        assert!(down_links.is_empty(), "links left down");
        assert!(down_nodes.is_empty(), "nodes left down");
        assert!(degraded.is_empty(), "links left degraded");
    }

    #[test]
    fn every_profile_compiles_deterministically_and_ends_clean() {
        let topology = test_topology();
        for kind in ProfileKind::ALL {
            let mut a = SimRng::seed_from_u64(17);
            let mut b = SimRng::seed_from_u64(17);
            let ea = compile_profile(kind, &topology, &mut a, 60);
            let eb = compile_profile(kind, &topology, &mut b, 60);
            assert_eq!(ea, eb, "{kind}: schedules diverge for equal seeds");
            assert!(!ea.is_empty(), "{kind}: empty schedule");
            assert_ends_clean(&ea);
        }
    }

    #[test]
    fn flap_alternates_and_brownout_stages_ramp() {
        let topology = test_topology();
        let mut rng = SimRng::seed_from_u64(2);
        let flaps = compile_profile(ProfileKind::Flap, &topology, &mut rng, 60);
        let fails = flaps
            .iter()
            .filter(|(_, e)| matches!(e, ImpairmentEvent::FailLink(_)))
            .count();
        let heals = flaps
            .iter()
            .filter(|(_, e)| matches!(e, ImpairmentEvent::HealLink(_)))
            .count();
        assert_eq!(fails, heals, "every flap down has an up");
        assert!(fails >= 2, "a flap profile flaps more than once");

        let mut rng = SimRng::seed_from_u64(2);
        let brown = compile_profile(ProfileKind::Brownout, &topology, &mut rng, 60);
        let stages: Vec<u64> = brown
            .iter()
            .filter_map(|(_, e)| match e {
                ImpairmentEvent::DegradeLink(_, cells) => Some(*cells),
                _ => None,
            })
            .collect();
        assert!(stages.windows(2).all(|w| w[0] <= w[1]), "stages ramp up");
    }

    #[test]
    fn fault_plan_keeps_only_health_transitions() {
        let topology = test_topology();
        let mut rng = SimRng::seed_from_u64(9);
        let events = compile_profile(ProfileKind::DegradeHeal, &topology, &mut rng, 60);
        let plan = fault_plan_of(&events);
        assert_eq!(plan.events().len(), 2, "one fail + one heal");
    }
}
