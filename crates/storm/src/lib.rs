//! `rtcac-storm` — the adversarial workload engine.
//!
//! The chaos harness of [`rtcac_fault`] shakes one hand-picked
//! topology with memoryless faults; this crate turns the hostility up
//! and makes it *structured*:
//!
//! * **Impairment profiles** ([`ProfileKind`]) — time-varying link
//!   degradation schedules (flapping links, regional brownouts,
//!   degrade-then-heal arcs, correlated regional outages) compiled
//!   into deterministic event streams ([`ImpairmentEvent`]) that
//!   drive both the fail/heal health overlay and the CDV-inflation
//!   seam of the admission paths.
//! * **Self-similar background traffic** ([`LrdVbrSource`]) — a
//!   superposition of seeded on/off sources whose periods span
//!   multiple octaves, giving the long-range-dependent burst
//!   structure real VBR traffic shows (variance decaying slower than
//!   Poisson under aggregation), used to modulate connection arrival
//!   intensity.
//! * **Topology generators** ([`TopologyKind`]) — star-of-star-rings,
//!   fat-tree, and seeded sparse WAN graphs beyond the star-ring
//!   family, scalable to thousands of switches.
//! * **A differential scenario fuzzer** ([`generate`]) — random
//!   *valid* `.rtcac` scenario files (connects, releases, multicast
//!   trees, fault/heal, degrade/restore and crankback directives over
//!   generated topologies) that the CLI replays through both the
//!   serial signaling path and the concurrent engine, asserting
//!   decision parity and byte-identical admission ledgers.
//!
//! Everything is seeded through [`rtcac_sim::SimRng`]: equal seeds
//! give equal topologies, schedules, and scenario files, so a failing
//! storm round replays from its seed alone.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod fuzz;
mod impairment;
mod topo;
mod traffic;

pub use fuzz::{generate, ConnectForm, Directive, FuzzConfig, StormScenario};
pub use impairment::{compile_profile, fault_plan_of, ImpairmentEvent, ProfileKind};
pub use topo::{generate_topology, generate_topology_sized, sparse_wan, TopologyKind};
pub use traffic::LrdVbrSource;
