//! The differential scenario fuzzer: seeded, *valid* `.rtcac`
//! scenario files over generated topologies.
//!
//! [`generate`] draws a topology, compiles an impairment profile into
//! interleaved fault/degrade directives, and fills the slots between
//! them with connects (unicast, explicit-route, crankback, multicast
//! trees) and releases whose arrival intensity follows the
//! self-similar background source. The output is a *structured*
//! scenario — [`StormScenario`] holds the directive list, renders the
//! scenario text ([`StormScenario::emit`]), and supports subsetting
//! ([`StormScenario::retain`]) so a failing scenario can be
//! delta-minimized while staying parseable.
//!
//! Every directive also carries a resolution-independent signature
//! ([`StormScenario::signature`]): the *resolved* link set of each
//! connect plus its request parameters. The CLI re-derives the same
//! canonical form from the parsed scenario, so emit → parse →
//! signature round-trips prove the emitter and the parser agree about
//! what every directive means — not just that the text parses.

use std::collections::BTreeMap;

use rtcac_net::{LinkId, MulticastTree, NetError, NodeId, Topology};
use rtcac_sim::SimRng;

use crate::impairment::{compile_profile, ImpairmentEvent, ProfileKind};
use crate::topo::{generate_topology_sized, TopologyKind};
use crate::traffic::LrdVbrSource;

/// How a generated connect names its path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConnectForm {
    /// `connect NAME from=A to=B` — breadth-first shortest route.
    Shortest {
        /// Source terminal name.
        from: String,
        /// Destination terminal name.
        to: String,
    },
    /// `connect NAME route=l1,l2,…` — the links spelled out.
    ExplicitRoute {
        /// Link names in path order.
        links: Vec<String>,
    },
    /// `connect NAME from=A to=B crankback=N` — shortest route with an
    /// ATM crankback retry budget.
    Crankback {
        /// Source terminal name.
        from: String,
        /// Destination terminal name.
        to: String,
        /// Retry budget.
        budget: usize,
    },
    /// `mconnect NAME tree=l1,l2,…` — a multicast tree spelled out.
    Tree {
        /// Tree links.
        links: Vec<String>,
    },
    /// `connect-mcast NAME ROOT L1,L2` — shortest tree grown from the
    /// root to the named leaves.
    Mcast {
        /// Root terminal name.
        root: String,
        /// Leaf terminal names.
        leaves: Vec<String>,
    },
}

/// One generated scenario directive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Directive {
    /// A connection setup in one of the [`ConnectForm`]s.
    Connect {
        /// Scenario-local connection name.
        name: String,
        /// The emitted form.
        form: ConnectForm,
        /// Canonical contract text (`cbr:1/8` or `vbr:1/4,1/16,8`).
        contract: String,
        /// Explicit priority level, when emitted.
        priority: Option<u8>,
        /// Explicit delay bound in cells, when emitted.
        delay: Option<u64>,
        /// Whether this connect is a multicast tree.
        multicast: bool,
        /// The links the form resolves to, in the order the parser's
        /// resolution produces — the signature's ground truth.
        resolved_links: Vec<String>,
    },
    /// `release NAME` — tear the named connection down.
    Release {
        /// The connect directive's name.
        name: String,
    },
    /// `fail-link NAME`.
    FailLink {
        /// Link name.
        link: String,
    },
    /// `heal-link NAME`.
    HealLink {
        /// Link name.
        link: String,
    },
    /// `fail-node NAME`.
    FailNode {
        /// Node name.
        node: String,
    },
    /// `heal-node NAME`.
    HealNode {
        /// Node name.
        node: String,
    },
    /// `degrade-link NAME cdv=N` — CDV inflation on a link.
    DegradeLink {
        /// Link name.
        link: String,
        /// Extra CDV in cells.
        cells: u64,
    },
    /// `restore-link NAME` — clear a link's CDV inflation.
    RestoreLink {
        /// Link name.
        link: String,
    },
    /// `chaos seed=N steps=N rate=P` — an embedded chaos session.
    Chaos {
        /// Chaos seed.
        seed: u64,
        /// Chaos steps.
        steps: u64,
        /// Fault rate percent.
        rate: u64,
    },
}

impl Directive {
    /// The scenario line this directive emits.
    fn emit(&self) -> String {
        match self {
            Directive::Connect {
                name,
                form,
                contract,
                priority,
                delay,
                ..
            } => {
                let mut line = match form {
                    ConnectForm::Shortest { from, to } => {
                        format!("connect {name} from={from} to={to}")
                    }
                    ConnectForm::ExplicitRoute { links } => {
                        format!("connect {name} route={}", links.join(","))
                    }
                    ConnectForm::Crankback { from, to, budget } => {
                        format!("connect {name} from={from} to={to} crankback={budget}")
                    }
                    ConnectForm::Tree { links } => {
                        format!("mconnect {name} tree={}", links.join(","))
                    }
                    ConnectForm::Mcast { root, leaves } => {
                        format!("connect-mcast {name} {root} {}", leaves.join(","))
                    }
                };
                line.push_str(&format!(" contract={contract}"));
                if let Some(p) = priority {
                    line.push_str(&format!(" priority={p}"));
                }
                if let Some(d) = delay {
                    line.push_str(&format!(" delay={d}"));
                }
                line
            }
            Directive::Release { name } => format!("release {name}"),
            Directive::FailLink { link } => format!("fail-link {link}"),
            Directive::HealLink { link } => format!("heal-link {link}"),
            Directive::FailNode { node } => format!("fail-node {node}"),
            Directive::HealNode { node } => format!("heal-node {node}"),
            Directive::DegradeLink { link, cells } => format!("degrade-link {link} cdv={cells}"),
            Directive::RestoreLink { link } => format!("restore-link {link}"),
            Directive::Chaos { seed, steps, rate } => {
                format!("chaos seed={seed} steps={steps} rate={rate}")
            }
        }
    }

    /// The canonical, resolution-independent description the CLI
    /// re-derives from a parsed scenario (see the module docs).
    fn signature(&self) -> String {
        match self {
            Directive::Connect {
                name,
                contract,
                priority,
                delay,
                multicast,
                resolved_links,
                form,
                ..
            } => {
                let kind = if *multicast { "tree" } else { "unicast" };
                let crankback = match form {
                    ConnectForm::Crankback { budget, .. } => budget.to_string(),
                    _ => "-".into(),
                };
                format!(
                    "connect {name} {kind} links={} contract={contract} priority={} delay={} crankback={crankback}",
                    resolved_links.join(","),
                    priority.unwrap_or(0),
                    delay.unwrap_or(1_000_000),
                )
            }
            other => other.emit(),
        }
    }
}

/// Configuration of one fuzz round.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// The topology family to draw.
    pub topology: TopologyKind,
    /// The impairment profile to schedule, if any.
    pub profile: Option<ProfileKind>,
    /// Fuzzer time slots — connect volume scales with this.
    pub slots: u64,
    /// Whether a round may append an embedded `chaos` directive.
    pub allow_chaos: bool,
    /// Optional switch budget: `None` keeps the small seeded draws
    /// that make fuzz rounds fast; `Some(n)` sizes the topology to
    /// roughly `n` switches (see
    /// [`generate_topology_sized`](crate::generate_topology_sized)).
    pub nodes: Option<usize>,
}

impl Default for FuzzConfig {
    fn default() -> FuzzConfig {
        FuzzConfig {
            topology: TopologyKind::SparseWan,
            profile: None,
            slots: 20,
            allow_chaos: true,
            nodes: None,
        }
    }
}

/// A generated scenario: header (topology + policy) and directive
/// list, structured so the minimizer can subset it.
#[derive(Debug, Clone)]
pub struct StormScenario {
    /// Policy, switch, endsystem, and link lines, in file order.
    pub header: Vec<String>,
    /// The generated directives, in file order.
    pub directives: Vec<Directive>,
}

impl StormScenario {
    /// Renders the scenario file text.
    pub fn emit(&self) -> String {
        let mut text = String::new();
        for line in &self.header {
            text.push_str(line);
            text.push('\n');
        }
        text.push('\n');
        for directive in &self.directives {
            text.push_str(&directive.emit());
            text.push('\n');
        }
        text
    }

    /// The canonical directive signatures, in file order.
    pub fn signature(&self) -> Vec<String> {
        self.directives.iter().map(Directive::signature).collect()
    }

    /// A subset scenario keeping directive `i` iff `keep[i]`, with
    /// dangling `release` directives (whose connect was dropped)
    /// removed so the subset still parses. `keep` may be shorter than
    /// the directive list; missing entries drop.
    pub fn retain(&self, keep: &[bool]) -> StormScenario {
        let mut kept_names: Vec<&str> = Vec::new();
        let mut directives = Vec::new();
        for (i, directive) in self.directives.iter().enumerate() {
            if !keep.get(i).copied().unwrap_or(false) {
                continue;
            }
            match directive {
                Directive::Connect { name, .. } => {
                    kept_names.push(name);
                    directives.push(directive.clone());
                }
                Directive::Release { name } => {
                    if kept_names.iter().any(|n| n == name) {
                        directives.push(directive.clone());
                    }
                }
                _ => directives.push(directive.clone()),
            }
        }
        StormScenario {
            header: self.header.clone(),
            directives,
        }
    }
}

/// Generates one seeded scenario. Equal `(seed, config)` give equal
/// scenarios — a storm violation replays from its seed alone.
///
/// # Errors
///
/// Propagates [`NetError`] from topology generation or route
/// resolution (unreachable over the connected generated graphs).
pub fn generate(seed: u64, config: &FuzzConfig) -> Result<StormScenario, NetError> {
    let mut rng = SimRng::seed_from_u64(seed);
    let topology = generate_topology_sized(config.topology, &mut rng, config.nodes)?;

    let link_names: BTreeMap<LinkId, String> = topology
        .links()
        .iter()
        .enumerate()
        .map(|(i, l)| (l.id(), format!("l{i}")))
        .collect();
    let node_name = |id: NodeId| -> String {
        topology
            .node(id)
            .map_or_else(|_| id.to_string(), |n| n.name().to_owned())
    };
    let link_name = |id: LinkId| -> String {
        link_names
            .get(&id)
            .cloned()
            .unwrap_or_else(|| id.to_string())
    };

    // Header: policy, switches (uniform bounds; two levels half the
    // time so priority=1 connects are exercised), terminals, links —
    // nodes and links in id order, so re-parsing reproduces the ids.
    let soft = rng.gen_below(10) == 0;
    let levels = 1 + rng.gen_below(2) as u8;
    let base = 24 + 8 * rng.gen_below(6);
    let bounds = if levels == 2 {
        format!("{base},{}", base * 2)
    } else {
        format!("{base}")
    };
    let mut header = vec![format!("policy {}", if soft { "soft" } else { "hard" })];
    for node in topology.nodes() {
        if node.is_switch() {
            header.push(format!("switch {} bounds={bounds}", node.name()));
        } else {
            header.push(format!("endsystem {}", node.name()));
        }
    }
    for link in topology.links() {
        header.push(format!(
            "link {} {} {}",
            link_name(link.id()),
            node_name(link.from()),
            node_name(link.to()),
        ));
    }

    let terminals: Vec<NodeId> = topology.end_systems().map(|n| n.id()).collect();
    let span = config.slots.max(4);
    let mut events: Vec<(u64, ImpairmentEvent)> = match config.profile {
        Some(kind) => compile_profile(kind, &topology, &mut rng, span),
        None => Vec::new(),
    };
    events.sort_by_key(|&(slot, _)| slot);
    let lrd = LrdVbrSource::new(&mut rng, 4);

    let mut directives: Vec<Directive> = Vec::new();
    let mut live: Vec<usize> = Vec::new();
    let mut next_conn = 0usize;
    let mut event_i = 0usize;
    for slot in 0..=span {
        while event_i < events.len() && events[event_i].0 <= slot {
            directives.push(directive_of_event(
                events[event_i].1,
                &node_name,
                &link_name,
            ));
            event_i += 1;
        }
        if slot == span {
            break;
        }
        // Background intensity modulates how many connects arrive in
        // this slot: 1..=3 of them, bursting with the LRD source.
        let connects = 1 + (lrd.intensity(slot) * 2 / lrd.sources() as u64).min(2);
        for _ in 0..connects {
            let directive = gen_connect(
                &mut rng, &topology, &terminals, &node_name, &link_name, levels, next_conn,
            )?;
            live.push(directives.len());
            directives.push(directive);
            next_conn += 1;
        }
        if !live.is_empty() && rng.gen_below(100) < 30 {
            let pick = rng.gen_below(live.len() as u64) as usize;
            let idx = live.swap_remove(pick);
            if let Directive::Connect { name, .. } = &directives[idx] {
                let name = name.clone();
                directives.push(Directive::Release { name });
            }
        }
    }
    if config.allow_chaos && rng.gen_below(100) < 8 {
        directives.push(Directive::Chaos {
            seed: rng.gen_below(1_000_000),
            steps: 24,
            rate: 30,
        });
    }
    Ok(StormScenario { header, directives })
}

/// Translates a compiled impairment event into its directive.
fn directive_of_event(
    event: ImpairmentEvent,
    node_name: &impl Fn(NodeId) -> String,
    link_name: &impl Fn(LinkId) -> String,
) -> Directive {
    match event {
        ImpairmentEvent::FailLink(l) => Directive::FailLink { link: link_name(l) },
        ImpairmentEvent::HealLink(l) => Directive::HealLink { link: link_name(l) },
        ImpairmentEvent::FailNode(n) => Directive::FailNode { node: node_name(n) },
        ImpairmentEvent::HealNode(n) => Directive::HealNode { node: node_name(n) },
        ImpairmentEvent::DegradeLink(l, cells) => Directive::DegradeLink {
            link: link_name(l),
            cells,
        },
        ImpairmentEvent::RestoreLink(l) => Directive::RestoreLink { link: link_name(l) },
    }
}

/// Draws one connect directive: seeded endpoints, form, contract,
/// priority, and delay. The resolved link set is computed with the
/// same breadth-first searches the parser uses, so the signature is
/// the parser's ground truth.
fn gen_connect(
    rng: &mut SimRng,
    topology: &Topology,
    terminals: &[NodeId],
    node_name: &impl Fn(NodeId) -> String,
    link_name: &impl Fn(LinkId) -> String,
    levels: u8,
    index: usize,
) -> Result<Directive, NetError> {
    let name = format!("c{index}");
    let pick = |rng: &mut SimRng| terminals[rng.gen_below(terminals.len() as u64) as usize];
    let from = pick(rng);
    let mut to = pick(rng);
    while to == from {
        to = pick(rng);
    }
    let roll = rng.gen_below(100);
    let want_tree = roll >= 80 && terminals.len() >= 3;
    let (form, multicast, resolved_links) = if want_tree {
        let root = from;
        let mut leaves = vec![to];
        let mut extra = pick(rng);
        while extra == root || extra == leaves[0] {
            extra = pick(rng);
        }
        leaves.push(extra);
        let tree = MulticastTree::shortest_tree(topology, root, &leaves)?;
        let links: Vec<String> = tree.links().iter().map(|&l| link_name(l)).collect();
        if roll < 90 {
            (
                ConnectForm::Mcast {
                    root: node_name(root),
                    leaves: leaves.iter().map(|&n| node_name(n)).collect(),
                },
                true,
                links,
            )
        } else {
            (
                ConnectForm::Tree {
                    links: links.clone(),
                },
                true,
                links,
            )
        }
    } else {
        let route = topology.shortest_route(from, to)?;
        let links: Vec<String> = route.links().iter().map(|&l| link_name(l)).collect();
        if roll < 55 {
            (
                ConnectForm::Shortest {
                    from: node_name(from),
                    to: node_name(to),
                },
                false,
                links,
            )
        } else if roll < 70 {
            (
                ConnectForm::ExplicitRoute {
                    links: links.clone(),
                },
                false,
                links,
            )
        } else {
            (
                ConnectForm::Crankback {
                    from: node_name(from),
                    to: node_name(to),
                    budget: 1 + rng.gen_below(3) as usize,
                },
                false,
                links,
            )
        }
    };
    let contract = if rng.gen_below(100) < 60 {
        format!("cbr:1/{}", 1u64 << (2 + rng.gen_below(5)))
    } else {
        let pcr_log = 2 + rng.gen_below(3);
        let scr_log = pcr_log + 1 + rng.gen_below(3);
        format!(
            "vbr:1/{},1/{},{}",
            1u64 << pcr_log,
            1u64 << scr_log,
            2 + rng.gen_below(15)
        )
    };
    let priority = (levels == 2 && rng.gen_below(100) < 25).then_some(1u8);
    let delay = match rng.gen_below(100) {
        0..=59 => None,
        60..=84 => Some(64u64 << rng.gen_below(3)),
        _ => Some(4 + rng.gen_below(24)),
    };
    Ok(Directive::Connect {
        name,
        form,
        contract,
        priority,
        delay,
        multicast,
        resolved_links,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let config = FuzzConfig::default();
        let a = generate(42, &config).unwrap();
        let b = generate(42, &config).unwrap();
        assert_eq!(a.emit(), b.emit());
        assert_eq!(a.signature(), b.signature());
        assert_ne!(a.emit(), generate(43, &config).unwrap().emit());
    }

    #[test]
    fn scenarios_cover_the_directive_space() {
        // Across a seed sweep every directive family must appear —
        // a fuzzer that silently stops emitting trees or releases
        // loses coverage without failing anything.
        let mut saw_tree = false;
        let mut saw_crankback = false;
        let mut saw_release = false;
        let mut saw_fault = false;
        let mut saw_degrade = false;
        for seed in 0..40 {
            let config = FuzzConfig {
                profile: Some(ProfileKind::ALL[seed as usize % 4]),
                ..FuzzConfig::default()
            };
            let s = generate(seed, &config).unwrap();
            for d in &s.directives {
                match d {
                    Directive::Connect {
                        multicast, form, ..
                    } => {
                        saw_tree |= *multicast;
                        saw_crankback |= matches!(form, ConnectForm::Crankback { .. });
                    }
                    Directive::Release { .. } => saw_release = true,
                    Directive::FailLink { .. } | Directive::FailNode { .. } => saw_fault = true,
                    Directive::DegradeLink { .. } => saw_degrade = true,
                    _ => {}
                }
            }
        }
        assert!(saw_tree, "no multicast connects generated");
        assert!(saw_crankback, "no crankback connects generated");
        assert!(saw_release, "no releases generated");
        assert!(saw_fault, "no fault directives generated");
        assert!(saw_degrade, "no degrade directives generated");
    }

    #[test]
    fn retain_drops_dangling_releases() {
        let config = FuzzConfig::default();
        let mut scenario = None;
        // Find a seed whose scenario has a release.
        for seed in 0..50 {
            let s = generate(seed, &config).unwrap();
            if s.directives
                .iter()
                .any(|d| matches!(d, Directive::Release { .. }))
            {
                scenario = Some(s);
                break;
            }
        }
        let scenario = scenario.expect("some seed yields a release");
        // Keep only the releases: every one of them dangles, so the
        // subset must drop them all.
        let keep: Vec<bool> = scenario
            .directives
            .iter()
            .map(|d| matches!(d, Directive::Release { .. }))
            .collect();
        let subset = scenario.retain(&keep);
        assert!(subset.directives.is_empty());
        // Keeping everything keeps everything.
        let all = vec![true; scenario.directives.len()];
        assert_eq!(
            scenario.retain(&all).directives.len(),
            scenario.directives.len()
        );
    }

    #[test]
    fn every_topology_kind_generates() {
        for (i, kind) in TopologyKind::ALL.into_iter().enumerate() {
            let config = FuzzConfig {
                topology: kind,
                ..FuzzConfig::default()
            };
            let s = generate(100 + i as u64, &config).unwrap();
            assert!(!s.directives.is_empty(), "{kind}: no directives");
            assert!(s.header.iter().any(|l| l.starts_with("switch ")));
        }
    }
}
