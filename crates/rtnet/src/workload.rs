//! The §5 workload generators: symmetric and asymmetric cyclic
//! traffic over the RTnet star-ring.

use rtcac_bitstream::{CbrParams, Rate, Time, TrafficContract};
use rtcac_cac::Priority;
use rtcac_rational::{ratio, Ratio};

use crate::{CdvMode, RingAnalysis, RtnetError};

/// How connections map onto priority levels in an asymmetric workload.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum PrioritySplit {
    /// Everything at the single highest priority with the 32-cell
    /// bound (Figures 10, 11, 13).
    #[default]
    SingleLevel,
    /// Two levels: the big terminal's connection keeps the 32-cell
    /// high priority; the many small connections — the collectively
    /// bursty, delay-tolerant aggregate — use the 64-cell low-priority
    /// queue (Figure 12's two-priority configuration).
    SmallsLow,
    /// Two levels with the big terminal's connection demoted to the
    /// 64-cell low priority instead. Kept for the ablation study: the
    /// low priority must wait out the entire high-priority worst-case
    /// burst (one simultaneous cell per upstream connection), which a
    /// 64-cell bound cannot cover — this split is essentially
    /// inadmissible at scale.
    BigLow,
}

/// The advertised per-hop bound of the RTnet high-priority cyclic
/// queue: 32 cells (≈ 87 µs per ring node).
pub fn default_hop_bound() -> Time {
    Time::from_integer(crate::units::RING_QUEUE_CELLS)
}

/// Symmetric cyclic traffic (Figure 10): every one of the
/// `ring_nodes × terminals` terminals broadcasts a CBR connection with
/// `PCR = total_load / (ring_nodes × terminals)`, single priority,
/// hard CDV, 32-cell per-hop bound.
///
/// # Errors
///
/// Returns [`RtnetError::BadParameter`] for degenerate shapes or a
/// non-positive / over-unity load.
pub fn symmetric(
    ring_nodes: usize,
    terminals: usize,
    total_load: Ratio,
) -> Result<RingAnalysis, RtnetError> {
    build(
        ring_nodes,
        terminals,
        total_load,
        None,
        CdvMode::Hard,
        PrioritySplit::SingleLevel,
    )
}

/// [`symmetric`] with an explicit CDV accumulation mode (e.g. the soft
/// square-root scheme of Figure 13 applied to a symmetric load).
///
/// # Errors
///
/// As [`symmetric`].
pub fn symmetric_with(
    ring_nodes: usize,
    terminals: usize,
    total_load: Ratio,
    mode: CdvMode,
) -> Result<RingAnalysis, RtnetError> {
    build(
        ring_nodes,
        terminals,
        total_load,
        None,
        mode,
        PrioritySplit::SingleLevel,
    )
}

/// Asymmetric cyclic traffic (Figure 11): terminal 0 of ring node 0
/// generates `big_share` of the total load; the remaining
/// `ring_nodes × terminals − 1` terminals split the rest equally.
/// Single priority, hard CDV.
///
/// # Errors
///
/// As [`symmetric`], plus a `big_share` outside `[0, 1]`.
pub fn asymmetric(
    ring_nodes: usize,
    terminals: usize,
    total_load: Ratio,
    big_share: Ratio,
) -> Result<RingAnalysis, RtnetError> {
    build(
        ring_nodes,
        terminals,
        total_load,
        Some(big_share),
        CdvMode::Hard,
        PrioritySplit::SingleLevel,
    )
}

/// Asymmetric traffic with full control: CDV accumulation mode and
/// priority assignment (see [`PrioritySplit`]).
///
/// # Errors
///
/// As [`asymmetric`].
pub fn asymmetric_with(
    ring_nodes: usize,
    terminals: usize,
    total_load: Ratio,
    big_share: Ratio,
    mode: CdvMode,
    split: PrioritySplit,
) -> Result<RingAnalysis, RtnetError> {
    build(
        ring_nodes,
        terminals,
        total_load,
        Some(big_share),
        mode,
        split,
    )
}

fn build(
    ring_nodes: usize,
    terminals: usize,
    total_load: Ratio,
    big_share: Option<Ratio>,
    mode: CdvMode,
    split: PrioritySplit,
) -> Result<RingAnalysis, RtnetError> {
    if terminals == 0 {
        return Err(RtnetError::BadParameter("need at least one terminal"));
    }
    if !total_load.is_positive() || total_load > Ratio::ONE {
        return Err(RtnetError::BadParameter("total load must be in (0, 1]"));
    }
    if let Some(share) = big_share {
        if share.is_negative() || share > Ratio::ONE {
            return Err(RtnetError::BadParameter("big share must be in [0, 1]"));
        }
    }
    let bounds = if split == PrioritySplit::SingleLevel {
        vec![default_hop_bound()]
    } else {
        vec![default_hop_bound(), default_hop_bound() * ratio(2, 1)]
    };
    let (big_priority, small_priority) = match split {
        PrioritySplit::SingleLevel => (Priority::HIGHEST, Priority::HIGHEST),
        PrioritySplit::SmallsLow => (Priority::HIGHEST, Priority::new(1)),
        PrioritySplit::BigLow => (Priority::new(1), Priority::HIGHEST),
    };
    let mut analysis = RingAnalysis::new(ring_nodes, bounds, mode)?;
    let all_terminals = ring_nodes * terminals;
    match big_share {
        None => {
            let pcr = total_load / ratio(all_terminals as i128, 1);
            let stream = cbr_stream(pcr)?;
            for node in 0..ring_nodes {
                for _ in 0..terminals {
                    analysis.add_connection(node, stream.clone(), small_priority)?;
                }
            }
        }
        Some(share) => {
            let big_rate = total_load * share;
            if big_rate.is_positive() {
                analysis.add_connection(0, cbr_stream(big_rate)?, big_priority)?;
            }
            let rest = total_load - big_rate;
            if all_terminals > 1 && rest.is_positive() {
                let small_rate = rest / ratio(all_terminals as i128 - 1, 1);
                let small = cbr_stream(small_rate)?;
                for node in 0..ring_nodes {
                    let locals = if node == 0 { terminals - 1 } else { terminals };
                    for _ in 0..locals {
                        analysis.add_connection(node, small.clone(), small_priority)?;
                    }
                }
            }
        }
    }
    Ok(analysis)
}

fn cbr_stream(pcr: Ratio) -> Result<rtcac_bitstream::BitStream, RtnetError> {
    Ok(TrafficContract::cbr(CbrParams::new(Rate::new(pcr))?).worst_case_stream())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symmetric_shape() {
        let a = symmetric(16, 4, ratio(1, 2)).unwrap();
        assert_eq!(a.ring_nodes(), 16);
        assert_eq!(a.levels(), 1);
        // Light symmetric load is admissible.
        assert!(a.admissible().unwrap());
    }

    #[test]
    fn symmetric_validation() {
        assert!(symmetric(16, 0, ratio(1, 2)).is_err());
        assert!(symmetric(16, 4, ratio(0, 1)).is_err());
        assert!(symmetric(16, 4, ratio(3, 2)).is_err());
    }

    #[test]
    fn asymmetric_extremes() {
        // share 0: everything on the small terminals.
        let a = asymmetric(8, 2, ratio(1, 4), ratio(0, 1)).unwrap();
        assert!(a.admissible().unwrap());
        // share 1: one big terminal only.
        let a = asymmetric(8, 2, ratio(1, 4), ratio(1, 1)).unwrap();
        assert!(a.admissible().unwrap());
        // invalid shares.
        assert!(asymmetric(8, 2, ratio(1, 4), ratio(-1, 4)).is_err());
        assert!(asymmetric(8, 2, ratio(1, 4), ratio(5, 4)).is_err());
    }

    #[test]
    fn two_priority_configuration() {
        let a = asymmetric_with(
            8,
            2,
            ratio(1, 4),
            ratio(1, 2),
            CdvMode::Hard,
            PrioritySplit::SmallsLow,
        )
        .unwrap();
        assert_eq!(a.levels(), 2);
        assert_eq!(
            a.hop_bound(Priority::new(1)).unwrap(),
            Time::from_integer(64)
        );
    }

    #[test]
    fn asymmetric_share_one_with_single_terminal_matches_paper_setup() {
        // N = 1, p = 1/(16N): asymmetric equals symmetric by
        // construction; both must agree on admissibility.
        let sym = symmetric(16, 1, ratio(1, 2)).unwrap();
        let asym = asymmetric(16, 1, ratio(1, 2), ratio(1, 16)).unwrap();
        assert_eq!(sym.admissible().unwrap(), asym.admissible().unwrap());
    }
}
