//! Worst-case queueing analysis of broadcast traffic on the RTnet ring.
//!
//! Every terminal's cyclic-transmission connection is broadcast: it
//! enters the ring at its node's ring output port and traverses
//! `ring_nodes − 1` consecutive ring links, reaching every other node.
//! Ring link `j` therefore carries the connections of the nodes `0` to
//! `span − 1` hops upstream; a connection `m` hops from home has
//! accumulated `m` queueing points of cell delay variation.
//!
//! [`RingAnalysis`] builds each port's worst-case aggregate with the
//! paper's bit-stream algebra — per-connection jitter distortion
//! (Algorithm 3.1), per-incoming-link filtering (Algorithm 3.4),
//! multiplexing (Algorithm 3.2) — and bounds its queueing delay
//! (Algorithm 4.1), per priority level.

use core::fmt;

use rtcac_bitstream::{BitStream, ContractError, StreamError, Time};
use rtcac_cac::Priority;
use rtcac_rational::{sqrt_upper, RatioError};

/// Precision denominator for soft (square-root) CDV accumulation.
const SQRT_PRECISION: i128 = 1_000_000;

/// Error produced by the RTnet analysis and experiment drivers.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RtnetError {
    /// Stream algebra failure (overload shows up here).
    Stream(StreamError),
    /// Invalid traffic contract while building a workload.
    Contract(ContractError),
    /// Exact arithmetic failure.
    Numeric(RatioError),
    /// Invalid analysis parameter.
    BadParameter(&'static str),
    /// A priority level outside the configured bounds.
    UnknownPriority(Priority),
}

impl fmt::Display for RtnetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RtnetError::Stream(e) => write!(f, "stream analysis failed: {e}"),
            RtnetError::Contract(e) => write!(f, "invalid traffic contract: {e}"),
            RtnetError::Numeric(e) => write!(f, "numeric failure: {e}"),
            RtnetError::BadParameter(what) => write!(f, "invalid parameter: {what}"),
            RtnetError::UnknownPriority(p) => write!(f, "priority {p} is not configured"),
        }
    }
}

impl std::error::Error for RtnetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RtnetError::Stream(e) => Some(e),
            RtnetError::Contract(e) => Some(e),
            RtnetError::Numeric(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StreamError> for RtnetError {
    fn from(e: StreamError) -> Self {
        RtnetError::Stream(e)
    }
}

impl From<ContractError> for RtnetError {
    fn from(e: ContractError) -> Self {
        RtnetError::Contract(e)
    }
}

impl From<RatioError> for RtnetError {
    fn from(e: RatioError) -> Self {
        RtnetError::Numeric(e)
    }
}

/// How a connection's CDV grows with the number of upstream hops.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum CdvMode {
    /// Hard: `m` hops contribute `m · bound` (worst case, §4.3).
    #[default]
    Hard,
    /// Soft: `m` hops contribute `bound · √m` (square-root summation,
    /// §4.3 discussion 1; rounded up).
    SoftSqrt,
    /// No accumulation at all: sources arrive undistorted. Used as the
    /// seed of the iterative (fixed-point) CDV scheme and for
    /// best-case comparisons.
    None,
}

/// Worst-case queueing analysis of broadcast traffic on a
/// unidirectional ring of static-priority FIFO switches.
///
/// See the [crate-level documentation](crate) and
/// [`workload`](crate::workload) for convenient constructors.
#[derive(Debug, Clone)]
pub struct RingAnalysis {
    ring_nodes: usize,
    span: usize,
    hop_bounds: Vec<Time>,
    cdv_mode: CdvMode,
    /// Per ring node: the source worst-case stream and priority of each
    /// connection entering the ring there.
    node_sources: Vec<Vec<(BitStream, Priority)>>,
}

impl RingAnalysis {
    /// Creates an empty analysis for a ring of `ring_nodes` switches
    /// whose output ports advertise `hop_bounds` (one per priority
    /// level, highest first). Broadcasts span `ring_nodes − 1` links.
    ///
    /// # Errors
    ///
    /// Returns [`RtnetError::BadParameter`] for fewer than two ring
    /// nodes, no priority levels, or non-positive bounds.
    pub fn new(
        ring_nodes: usize,
        hop_bounds: Vec<Time>,
        cdv_mode: CdvMode,
    ) -> Result<RingAnalysis, RtnetError> {
        if ring_nodes < 2 {
            return Err(RtnetError::BadParameter("need at least two ring nodes"));
        }
        if hop_bounds.is_empty() {
            return Err(RtnetError::BadParameter("need at least one priority level"));
        }
        if hop_bounds.iter().any(|b| !b.is_positive()) {
            return Err(RtnetError::BadParameter("hop bounds must be positive"));
        }
        Ok(RingAnalysis {
            ring_nodes,
            span: ring_nodes - 1,
            hop_bounds,
            cdv_mode,
            node_sources: vec![Vec::new(); ring_nodes],
        })
    }

    /// Number of ring nodes.
    pub fn ring_nodes(&self) -> usize {
        self.ring_nodes
    }

    /// Ring links each broadcast traverses.
    pub fn span(&self) -> usize {
        self.span
    }

    /// Priority levels configured.
    pub fn levels(&self) -> u8 {
        self.hop_bounds.len() as u8
    }

    /// The advertised per-hop bound of a priority level.
    ///
    /// # Errors
    ///
    /// Returns [`RtnetError::UnknownPriority`] for an unconfigured
    /// level.
    pub fn hop_bound(&self, priority: Priority) -> Result<Time, RtnetError> {
        self.hop_bounds
            .get(priority.level() as usize)
            .copied()
            .ok_or(RtnetError::UnknownPriority(priority))
    }

    /// Registers a broadcast connection entering the ring at `node`
    /// with the given worst-case *source* stream (CDV zero — the
    /// analysis adds per-hop jitter itself).
    ///
    /// # Errors
    ///
    /// Returns [`RtnetError::BadParameter`] for an out-of-range node or
    /// [`RtnetError::UnknownPriority`] for an unconfigured level.
    pub fn add_connection(
        &mut self,
        node: usize,
        source: BitStream,
        priority: Priority,
    ) -> Result<(), RtnetError> {
        if node >= self.ring_nodes {
            return Err(RtnetError::BadParameter("ring node index out of range"));
        }
        self.hop_bound(priority)?;
        if !source.is_zero() {
            self.node_sources[node].push((source, priority));
        }
        Ok(())
    }

    /// The CDV a connection of `priority` has accumulated after `m`
    /// upstream queueing points.
    ///
    /// # Errors
    ///
    /// Returns [`RtnetError::UnknownPriority`] or a numeric failure in
    /// the soft square root.
    pub fn cdv_after_hops(&self, m: usize, priority: Priority) -> Result<Time, RtnetError> {
        let bound = self.hop_bound(priority)?;
        match self.cdv_mode {
            CdvMode::None => Ok(Time::ZERO),
            CdvMode::Hard => Ok(Time::new(
                bound.as_ratio() * rtcac_rational::ratio(m as i128, 1),
            )),
            CdvMode::SoftSqrt => {
                let root = sqrt_upper(rtcac_rational::ratio(m as i128, 1), SQRT_PRECISION)?;
                // The square-root estimate can never exceed the hard
                // sum; clamp away the upward rounding of the root.
                let hard = bound.as_ratio() * rtcac_rational::ratio(m as i128, 1);
                Ok(Time::new((bound.as_ratio() * root).min(hard)))
            }
        }
    }

    /// The aggregate stream of `node`'s connections at `priority`, as
    /// distorted after `m` hops of jitter (each connection delayed
    /// individually per Algorithm 3.1, then multiplexed).
    fn node_aggregate(
        &self,
        node: usize,
        priority: Priority,
        m: usize,
    ) -> Result<BitStream, RtnetError> {
        let cdv = self.cdv_after_hops(m, priority)?;
        let mut agg = BitStream::zero();
        for (stream, p) in &self.node_sources[node] {
            if *p == priority {
                agg = agg.multiplex(&stream.delay(cdv));
            }
        }
        Ok(agg)
    }

    /// The worst-case aggregate of `priority` traffic arriving at ring
    /// output port `port`: the filtered ring-in transit aggregate plus
    /// the local terminals' (individually filtered) streams.
    pub fn port_arrival(&self, port: usize, priority: Priority) -> Result<BitStream, RtnetError> {
        self.check_port(port)?;
        // Transit traffic shares the single ring-in link: multiplex all
        // upstream node aggregates, then filter once.
        let mut ring_in = BitStream::zero();
        for m in 1..self.span {
            let node = (port + self.ring_nodes - m) % self.ring_nodes;
            ring_in = ring_in.multiplex(&self.node_aggregate(node, priority, m)?);
        }
        let mut arrival = ring_in.filter();
        // Local terminals each arrive on a dedicated uplink.
        for (stream, p) in &self.node_sources[port] {
            if *p == priority {
                arrival = arrival.multiplex(&stream.filter());
            }
        }
        Ok(arrival)
    }

    /// The filtered higher-priority interference at `port` seen by
    /// `priority` (the paper's `Sof(j)(p)`).
    pub fn port_interference(
        &self,
        port: usize,
        priority: Priority,
    ) -> Result<BitStream, RtnetError> {
        self.check_port(port)?;
        let mut total = BitStream::zero();
        // Ring-in link: all higher-priority transit traffic, filtered
        // by that one link.
        let mut ring_in = BitStream::zero();
        for m in 1..self.span {
            let node = (port + self.ring_nodes - m) % self.ring_nodes;
            for level in 0..self.levels() {
                let p = Priority::new(level);
                if p.outranks(priority) {
                    ring_in = ring_in.multiplex(&self.node_aggregate(node, p, m)?);
                }
            }
        }
        total = total.multiplex(&ring_in.filter());
        // Local uplinks: each terminal's higher-priority stream,
        // filtered per uplink.
        for (stream, p) in &self.node_sources[port] {
            if p.outranks(priority) {
                total = total.multiplex(&stream.filter());
            }
        }
        Ok(total.filter())
    }

    /// The computed worst-case queueing delay at one ring output port
    /// for one priority (Algorithm 4.1).
    ///
    /// # Errors
    ///
    /// Returns [`RtnetError::Stream`] carrying
    /// [`StreamError::Overload`] when the port is overloaded in the
    /// long run.
    pub fn port_bound(&self, port: usize, priority: Priority) -> Result<Time, RtnetError> {
        let arrival = self.port_arrival(port, priority)?;
        if arrival.is_zero() {
            return Ok(Time::ZERO);
        }
        let interference = self.port_interference(port, priority)?;
        Ok(arrival.delay_bound(&interference)?)
    }

    /// The computed bounds of every port for one priority. Symmetric
    /// workloads are detected and computed once.
    ///
    /// # Errors
    ///
    /// As [`RingAnalysis::port_bound`].
    pub fn port_bounds(&self, priority: Priority) -> Result<Vec<Time>, RtnetError> {
        if self.is_symmetric() {
            let d = self.port_bound(0, priority)?;
            return Ok(vec![d; self.ring_nodes]);
        }
        (0..self.ring_nodes)
            .map(|j| self.port_bound(j, priority))
            .collect()
    }

    /// Whether the whole load passes the hard CAC check: every port's
    /// computed bound, at every priority, fits the advertised bound.
    ///
    /// Long-run overload counts as inadmissible (not as an error).
    ///
    /// # Errors
    ///
    /// Returns only internal numeric failures.
    pub fn admissible(&self) -> Result<bool, RtnetError> {
        for level in 0..self.levels() {
            let p = Priority::new(level);
            let advertised = self.hop_bound(p)?;
            match self.port_bounds(p) {
                Ok(bounds) => {
                    if bounds.iter().any(|d| *d > advertised) {
                        return Ok(false);
                    }
                }
                Err(RtnetError::Stream(StreamError::Overload { .. })) => return Ok(false),
                Err(e) => return Err(e),
            }
        }
        Ok(true)
    }

    /// The worst end-to-end queueing delay bound over all broadcast
    /// connections of a priority: the maximum over source nodes of the
    /// summed computed bounds along the `span` consecutive ports the
    /// broadcast crosses.
    ///
    /// # Errors
    ///
    /// As [`RingAnalysis::port_bound`].
    pub fn end_to_end_bound(&self, priority: Priority) -> Result<Time, RtnetError> {
        let bounds = self.port_bounds(priority)?;
        let mut worst = Time::ZERO;
        for start in 0..self.ring_nodes {
            if self.node_sources[start].iter().all(|(_, p)| *p != priority) {
                continue;
            }
            let total: Time = (0..self.span)
                .map(|m| bounds[(start + m) % self.ring_nodes])
                .sum();
            worst = worst.max(total);
        }
        Ok(worst)
    }

    fn is_symmetric(&self) -> bool {
        self.node_sources.windows(2).all(|w| w[0] == w[1])
    }

    fn check_port(&self, port: usize) -> Result<(), RtnetError> {
        if port < self.ring_nodes {
            Ok(())
        } else {
            Err(RtnetError::BadParameter("port index out of range"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtcac_bitstream::{CbrParams, Rate, TrafficContract};
    use rtcac_rational::ratio;

    fn cbr_stream(num: i128, den: i128) -> BitStream {
        TrafficContract::cbr(CbrParams::new(Rate::new(ratio(num, den))).unwrap())
            .worst_case_stream()
    }

    fn bounds32() -> Vec<Time> {
        vec![Time::from_integer(32)]
    }

    #[test]
    fn construction_validation() {
        assert!(RingAnalysis::new(1, bounds32(), CdvMode::Hard).is_err());
        assert!(RingAnalysis::new(4, vec![], CdvMode::Hard).is_err());
        assert!(RingAnalysis::new(4, vec![Time::ZERO], CdvMode::Hard).is_err());
        let a = RingAnalysis::new(4, bounds32(), CdvMode::Hard).unwrap();
        assert_eq!(a.ring_nodes(), 4);
        assert_eq!(a.span(), 3);
        assert_eq!(a.levels(), 1);
    }

    #[test]
    fn add_connection_validation() {
        let mut a = RingAnalysis::new(4, bounds32(), CdvMode::Hard).unwrap();
        assert!(a
            .add_connection(0, cbr_stream(1, 10), Priority::HIGHEST)
            .is_ok());
        assert!(a
            .add_connection(9, cbr_stream(1, 10), Priority::HIGHEST)
            .is_err());
        assert!(a
            .add_connection(0, cbr_stream(1, 10), Priority::new(1))
            .is_err());
    }

    #[test]
    fn cdv_accumulation_modes() {
        let hard = RingAnalysis::new(16, bounds32(), CdvMode::Hard).unwrap();
        assert_eq!(
            hard.cdv_after_hops(4, Priority::HIGHEST).unwrap(),
            Time::from_integer(128)
        );
        assert_eq!(
            hard.cdv_after_hops(0, Priority::HIGHEST).unwrap(),
            Time::ZERO
        );
        let soft = RingAnalysis::new(16, bounds32(), CdvMode::SoftSqrt).unwrap();
        let c4 = soft.cdv_after_hops(4, Priority::HIGHEST).unwrap();
        // sqrt(4) * 32 = 64 (rounded up within precision).
        assert!(c4 >= Time::from_integer(64));
        assert!(c4 < Time::from_integer(65));
        // Soft never exceeds hard.
        for m in 0..15 {
            assert!(
                soft.cdv_after_hops(m, Priority::HIGHEST).unwrap()
                    <= hard.cdv_after_hops(m, Priority::HIGHEST).unwrap()
            );
        }
    }

    #[test]
    fn empty_ring_is_admissible_with_zero_bounds() {
        let a = RingAnalysis::new(8, bounds32(), CdvMode::Hard).unwrap();
        assert!(a.admissible().unwrap());
        assert_eq!(a.port_bound(0, Priority::HIGHEST).unwrap(), Time::ZERO);
        assert_eq!(a.end_to_end_bound(Priority::HIGHEST).unwrap(), Time::ZERO);
    }

    #[test]
    fn symmetric_detection_and_bounds() {
        let mut a = RingAnalysis::new(8, bounds32(), CdvMode::Hard).unwrap();
        for node in 0..8 {
            a.add_connection(node, cbr_stream(1, 20), Priority::HIGHEST)
                .unwrap();
        }
        let bounds = a.port_bounds(Priority::HIGHEST).unwrap();
        assert_eq!(bounds.len(), 8);
        assert!(bounds.windows(2).all(|w| w[0] == w[1]));
        // End to end = span * per-hop.
        let e2e = a.end_to_end_bound(Priority::HIGHEST).unwrap();
        assert_eq!(e2e.as_ratio(), bounds[0].as_ratio() * ratio(7, 1));
    }

    #[test]
    fn load_increases_bounds() {
        let mut light = RingAnalysis::new(8, bounds32(), CdvMode::Hard).unwrap();
        let mut heavy = RingAnalysis::new(8, bounds32(), CdvMode::Hard).unwrap();
        for node in 0..8 {
            light
                .add_connection(node, cbr_stream(1, 40), Priority::HIGHEST)
                .unwrap();
            heavy
                .add_connection(node, cbr_stream(1, 10), Priority::HIGHEST)
                .unwrap();
        }
        let dl = light.port_bound(0, Priority::HIGHEST).unwrap();
        let dh = heavy.port_bound(0, Priority::HIGHEST).unwrap();
        assert!(dh >= dl);
    }

    #[test]
    fn soft_cdv_gives_tighter_bounds() {
        let make = |mode| {
            let mut a = RingAnalysis::new(16, bounds32(), mode).unwrap();
            for node in 0..16 {
                a.add_connection(node, cbr_stream(1, 25), Priority::HIGHEST)
                    .unwrap();
            }
            a
        };
        let hard = make(CdvMode::Hard)
            .port_bound(0, Priority::HIGHEST)
            .unwrap();
        let soft = make(CdvMode::SoftSqrt)
            .port_bound(0, Priority::HIGHEST)
            .unwrap();
        assert!(soft <= hard);
    }

    #[test]
    fn overload_is_inadmissible_not_error() {
        let mut a = RingAnalysis::new(4, bounds32(), CdvMode::Hard).unwrap();
        // Each node injects 1/2; each link carries 3 nodes' traffic =
        // 3/2 > 1 long run.
        for node in 0..4 {
            a.add_connection(node, cbr_stream(1, 2), Priority::HIGHEST)
                .unwrap();
        }
        assert!(!a.admissible().unwrap());
        assert!(matches!(
            a.port_bound(0, Priority::HIGHEST),
            Err(RtnetError::Stream(StreamError::Overload { .. }))
        ));
    }

    #[test]
    fn two_priorities_interference() {
        let mut a = RingAnalysis::new(
            8,
            vec![Time::from_integer(32), Time::from_integer(64)],
            CdvMode::Hard,
        )
        .unwrap();
        for node in 0..8 {
            a.add_connection(node, cbr_stream(1, 30), Priority::HIGHEST)
                .unwrap();
            a.add_connection(node, cbr_stream(1, 30), Priority::new(1))
                .unwrap();
        }
        // The high priority sees no interference.
        assert!(a.port_interference(0, Priority::HIGHEST).unwrap().is_zero());
        // The low priority sees the filtered high-priority aggregate.
        let sof = a.port_interference(0, Priority::new(1)).unwrap();
        assert!(!sof.is_zero());
        assert!(sof.peak_rate() <= Rate::FULL);
        // And its bound is at least the high priority's.
        let d0 = a.port_bound(0, Priority::HIGHEST).unwrap();
        let d1 = a.port_bound(0, Priority::new(1)).unwrap();
        assert!(d1 >= d0);
    }

    #[test]
    fn asymmetric_ports_differ() {
        let mut a = RingAnalysis::new(8, bounds32(), CdvMode::Hard).unwrap();
        a.add_connection(0, cbr_stream(1, 3), Priority::HIGHEST)
            .unwrap();
        for node in 1..8 {
            a.add_connection(node, cbr_stream(1, 50), Priority::HIGHEST)
                .unwrap();
        }
        let bounds = a.port_bounds(Priority::HIGHEST).unwrap();
        // Not all ports identical under asymmetric load.
        assert!(bounds.windows(2).any(|w| w[0] != w[1]));
        // End-to-end picks the worst broadcast path: at least the
        // average path (total minus one port) and at most every port.
        let e2e = a.end_to_end_bound(Priority::HIGHEST).unwrap();
        let total: Time = bounds.iter().copied().sum();
        let min_port = *bounds.iter().min().unwrap();
        assert!(e2e >= total - min_port - *bounds.iter().max().unwrap());
        assert!(e2e <= total);
        assert!(e2e.is_positive());
    }
}
