//! Iterative (fixed-point) CDV propagation — the design alternative
//! the paper *rejects* in §4.3 ("the CAC algorithms proposed in this
//! paper avoid iteration procedures in the delay bound calculation by
//! having each switch provide fixed delay bounds to connections
//! regardless of the current traffic load").
//!
//! With fixed advertised bounds, a connection's CDV after `m` hops is
//! `m · D_adv` even when the actual computed bounds are much smaller.
//! The alternative iterates: compute the port bounds with some CDV
//! assumption, feed the *computed* bounds back in as the next CDV
//! assumption, and repeat. The iteration is monotone from below, so a
//! few rounds give the self-consistent (tighter) bound; comparing
//! capacities quantifies what the paper's simpler design costs
//! (`cargo run -p rtcac-bench --bin ablation_cdv`).

use rtcac_bitstream::{StreamError, Time};
use rtcac_cac::Priority;
use rtcac_rational::ratio;

use crate::{CdvMode, RingAnalysis, RtnetError};

/// Granularity the iterated CDV is rounded *up* to between steps
/// (1/256 of a cell time). Rounding up keeps every step conservative
/// and stops exact-rational denominators from compounding across
/// iterations; convergence at `ceil(D(X)) == X` still certifies the
/// sound self-consistency condition `D(X) <= X`.
const GRID: i128 = 256;

fn ceil_to_grid(t: Time) -> Time {
    let scaled = (t.as_ratio() * ratio(GRID, 1)).ceil();
    Time::new(ratio(scaled, GRID))
}

/// The result of the fixed-point iteration for a symmetric load.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FixedPoint {
    /// The self-consistent per-hop bound (every port, by symmetry).
    pub per_hop: Time,
    /// Iterations executed.
    pub iterations: u32,
    /// Whether the last two iterations agreed exactly.
    pub converged: bool,
}

/// Computes the self-consistent per-hop bound of the symmetric
/// workload by fixed-point iteration: start from `D = 0`, recompute
/// port bounds with per-hop CDV `m · D`, repeat.
///
/// The iteration is monotone non-decreasing (larger CDV assumptions
/// yield larger envelopes and bounds), so it either converges or
/// diverges past any finite bound; divergence surfaces as
/// [`StreamError::Overload`] or as `converged == false`.
///
/// # Errors
///
/// Returns [`RtnetError::Stream`] carrying [`StreamError::Overload`]
/// when the load is infeasible even with zero CDV.
pub fn symmetric_fixed_point(
    ring_nodes: usize,
    terminals: usize,
    load: rtcac_rational::Ratio,
    max_iterations: u32,
) -> Result<FixedPoint, RtnetError> {
    let mut current = Time::ZERO;
    let mut iterations = 0;
    let mut converged = false;
    while iterations < max_iterations {
        iterations += 1;
        let next = ceil_to_grid(bound_with_hop_cdv(ring_nodes, terminals, load, current)?);
        if next == current {
            converged = true;
            break;
        }
        current = next;
    }
    Ok(FixedPoint {
        per_hop: current,
        iterations,
        converged,
    })
}

/// One iteration step: the symmetric per-port bound when every
/// connection's CDV grows by `hop_cdv` per upstream hop.
fn bound_with_hop_cdv(
    ring_nodes: usize,
    terminals: usize,
    load: rtcac_rational::Ratio,
    hop_cdv: Time,
) -> Result<Time, RtnetError> {
    let analysis = if hop_cdv.is_zero() {
        // Iteration seed: sources arrive undistorted.
        symmetric_with_mode(ring_nodes, terminals, load, Time::ONE, CdvMode::None)?
    } else {
        symmetric_with_mode(ring_nodes, terminals, load, hop_cdv, CdvMode::Hard)?
    };
    analysis
        .port_bound(0, Priority::HIGHEST)
        .map_err(strip_overload_context)
}

fn symmetric_with_mode(
    ring_nodes: usize,
    terminals: usize,
    load: rtcac_rational::Ratio,
    hop_bound: Time,
    mode: CdvMode,
) -> Result<RingAnalysis, RtnetError> {
    // The workload builder hard-codes the 32-cell bound; rebuild the
    // same symmetric population on a custom-bound analysis.
    let mut analysis = RingAnalysis::new(ring_nodes, vec![hop_bound], mode)?;
    let all = ring_nodes * terminals;
    let pcr = load / rtcac_rational::ratio(all as i128, 1);
    let stream = rtcac_bitstream::TrafficContract::cbr_with_rate(pcr)
        .map_err(RtnetError::from)?
        .worst_case_stream();
    for node in 0..ring_nodes {
        for _ in 0..terminals {
            analysis.add_connection(node, stream.clone(), Priority::HIGHEST)?;
        }
    }
    Ok(analysis)
}

fn strip_overload_context(e: RtnetError) -> RtnetError {
    match e {
        RtnetError::Stream(StreamError::Overload { arrival, service }) => {
            RtnetError::Stream(StreamError::Overload { arrival, service })
        }
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload;
    use rtcac_rational::ratio;

    #[test]
    fn fixed_point_converges_and_is_tighter_than_advertised() {
        let fp = symmetric_fixed_point(16, 16, ratio(7, 20), 32).unwrap();
        assert!(fp.converged, "{fp:?}");
        // The paper's fixed-CDV analysis at the same load computes a
        // ~25-cell per-hop bound (Figure 10); the self-consistent bound
        // must be no larger.
        let fixed = workload::symmetric(16, 16, ratio(7, 20))
            .unwrap()
            .port_bound(0, Priority::HIGHEST)
            .unwrap();
        assert!(fp.per_hop <= fixed, "{} > {}", fp.per_hop, fixed);
        assert!(fp.per_hop.is_positive());
    }

    #[test]
    fn fixed_point_monotone_iterations() {
        // Manually run two steps and verify monotonicity from zero.
        let load = ratio(1, 2);
        let d0 = bound_with_hop_cdv(16, 4, load, Time::ZERO).unwrap();
        let d1 = bound_with_hop_cdv(16, 4, load, d0).unwrap();
        assert!(d1 >= d0);
        let d2 = bound_with_hop_cdv(16, 4, load, d1).unwrap();
        assert!(d2 >= d1);
    }

    #[test]
    fn fixed_point_detects_overload() {
        // Load > 16/15 per-link long run is infeasible even with zero CDV.
        let result = symmetric_fixed_point(16, 1, ratio(1, 1), 8);
        // Load 1.0: per-link 15/16 < 1 is feasible long-run; bound is
        // finite but large — it must simply not error.
        assert!(result.is_ok());
    }

    #[test]
    fn fixed_point_vs_advertised_scheme_frontier() {
        // The ablation *finding* (see EXPERIMENTS.md): the iterated
        // self-consistent bound is tighter than the fixed-advertised
        // scheme at light loads, but at the admission frontier the
        // computed bound approaches the advertised 32 anyway, so both
        // schemes admit exactly the same loads on this grid — the
        // paper's "fixed bounds, no iteration" simplification is free.
        let mut fixed_max = ratio(0, 1);
        let mut iterated_max = ratio(0, 1);
        for step in 1..=12i128 {
            let load = ratio(step, 20);
            let analysis = workload::symmetric(16, 16, load).unwrap();
            let fixed_ok = analysis.admissible().unwrap();
            let fp = symmetric_fixed_point(16, 16, load, 48).unwrap();
            assert!(fp.converged, "load {load}: {fp:?}");
            let iterated_ok = fp.per_hop <= Time::from_integer(32);
            if fixed_ok {
                fixed_max = load;
                // Where both admit, the iterated bound is no looser
                // than the fixed one (tightness at light loads).
                let fixed_bound = analysis.port_bound(0, Priority::HIGHEST).unwrap();
                assert!(
                    fp.per_hop <= fixed_bound + Time::new(ratio(1, GRID)),
                    "load {load}: iterated {} vs fixed {}",
                    fp.per_hop,
                    fixed_bound
                );
            }
            if iterated_ok {
                iterated_max = load;
            }
        }
        assert_eq!(
            iterated_max, fixed_max,
            "both schemes should share the admission frontier on this grid"
        );
    }
}
