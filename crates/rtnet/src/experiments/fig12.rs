//! **Figure 12**: extra cyclic capacity gained by serving real-time
//! traffic at two priority levels instead of one.
//!
//! Setup as in Figure 11 (asymmetric load, N terminals per node). A
//! two-priority switch lets the operator *choose* an assignment of
//! connections to levels (32-cell high-priority queue, 64-cell
//! low-priority queue); the supported capacity is the best assignment's
//! capacity. The driver evaluates every [`PrioritySplit`]:
//!
//! - `SmallsLow` — the many small connections (collectively the bursty
//!   aggregate, and the delay-tolerant one) use the deeper 64-cell
//!   queue; the big terminal keeps the 32-cell level. This is where
//!   the gains come from at low asymmetry.
//! - `BigLow` — the big connection demoted instead. An ablation
//!   result: a low-priority connection must wait out the whole
//!   high-priority worst-case burst (one simultaneous cell per
//!   upstream connection), which the 64-cell bound cannot cover at
//!   scale, so this split admits almost nothing.
//! - `SingleLevel` — using only the high level (always available).
//!
//! The "2 priorities" curve is the pointwise best of the three; the
//! per-split numbers are also reported.

use rtcac_rational::{ratio, Ratio};

use crate::experiments::{asymmetric_admissible, max_admissible_load, PrioritySplit};
use crate::{units, CdvMode, RtnetError};

/// Sweep parameters. Defaults reproduce the paper's setup with N = 16.
#[derive(Debug, Clone)]
pub struct Params {
    /// Ring nodes (paper: 16).
    pub ring_nodes: usize,
    /// Terminals per ring node.
    pub terminals: usize,
    /// Number of `p` grid steps across [0, 1].
    pub share_steps: u32,
    /// Binary search iterations.
    pub search_iters: u32,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            ring_nodes: units::RING_NODES,
            terminals: 16,
            share_steps: 20,
            search_iters: 7,
        }
    }
}

/// One point of the Figure 12 comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point {
    /// The big terminal's share `p`.
    pub share: Ratio,
    /// Largest admissible load with a single priority level.
    pub one_priority: Ratio,
    /// Largest admissible load with two levels (best assignment).
    pub two_priorities: Ratio,
    /// Capacity of the `SmallsLow` assignment.
    pub smalls_low: Ratio,
    /// Capacity of the `BigLow` assignment (ablation).
    pub big_low: Ratio,
}

/// The full Figure 12 dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig12 {
    /// Terminals per ring node used.
    pub terminals: usize,
    /// Points by increasing share.
    pub points: Vec<Point>,
}

/// Runs the Figure 12 comparison.
///
/// # Errors
///
/// Propagates internal numeric failures.
pub fn run(params: Params) -> Result<Fig12, RtnetError> {
    let mut points = Vec::with_capacity(params.share_steps as usize + 1);
    for step in 0..=params.share_steps {
        let share = ratio(step as i128, params.share_steps as i128);
        let search = |split: PrioritySplit| {
            max_admissible_load(
                asymmetric_admissible(
                    params.ring_nodes,
                    params.terminals,
                    share,
                    CdvMode::Hard,
                    split,
                ),
                params.search_iters,
            )
        };
        let one = search(PrioritySplit::SingleLevel)?;
        let smalls_low = search(PrioritySplit::SmallsLow)?;
        let big_low = search(PrioritySplit::BigLow)?;
        points.push(Point {
            share,
            one_priority: one,
            two_priorities: one.max(smalls_low).max(big_low),
            smalls_low,
            big_low,
        });
    }
    Ok(Fig12 {
        terminals: params.terminals,
        points,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Params {
        Params {
            ring_nodes: 16,
            terminals: 8,
            share_steps: 4,
            search_iters: 5,
        }
    }

    #[test]
    fn two_priorities_never_worse() {
        let fig = run(quick()).unwrap();
        for p in &fig.points {
            assert!(
                p.two_priorities >= p.one_priority,
                "p={}: two priorities {} worse than one {}",
                p.share,
                p.two_priorities,
                p.one_priority
            );
        }
    }

    #[test]
    fn two_priorities_help_somewhere() {
        // Moving the delay-tolerant small aggregate to the deeper
        // low-priority queue must buy extra capacity at least at low
        // asymmetry.
        let fig = run(quick()).unwrap();
        let gained = fig.points.iter().any(|p| p.two_priorities > p.one_priority);
        assert!(gained, "two priorities never helped: {:?}", fig.points);
    }

    #[test]
    fn demoting_the_big_connection_is_hopeless_at_scale() {
        // The ablation claim: with 8 terminals per node, the BigLow
        // split is dominated by the blackout of ~100 simultaneous
        // higher-priority cells.
        let fig = run(quick()).unwrap();
        // At p = 0.5 the big connection exists and must wait out the
        // high-priority burst.
        let mid = &fig.points[2];
        assert!(
            mid.big_low < mid.smalls_low.max(mid.one_priority),
            "expected BigLow to underperform: {mid:?}"
        );
    }
}
