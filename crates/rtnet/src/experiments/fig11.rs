//! **Figure 11**: total admissible cyclic bandwidth under asymmetric
//! load, as a function of the big terminal's share `p`, for
//! N ∈ {1, 8, 16}.
//!
//! One terminal generates `p` of the total traffic; the rest is split
//! equally among the other `16N − 1` terminals. For each `p` the
//! driver binary-searches the largest total load that passes the hard
//! CAC check at every ring port.

use rtcac_rational::{ratio, Ratio};

use crate::experiments::{asymmetric_admissible, max_admissible_load, PrioritySplit};
use crate::{units, CdvMode, RtnetError};

/// Sweep parameters. Defaults reproduce the paper's setup.
#[derive(Debug, Clone)]
pub struct Params {
    /// Ring nodes (paper: 16).
    pub ring_nodes: usize,
    /// Terminals-per-node values to sweep (paper: 1, 8, 16).
    pub terminals: Vec<usize>,
    /// Number of `p` grid steps across [0, 1].
    pub share_steps: u32,
    /// Binary search iterations (resolution `1/2^iters` of the link).
    pub search_iters: u32,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            ring_nodes: units::RING_NODES,
            terminals: vec![1, 8, 16],
            share_steps: 20,
            search_iters: 7,
        }
    }
}

/// One point of a Figure 11 curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point {
    /// The big terminal's share `p` of the total traffic.
    pub share: Ratio,
    /// Largest admissible total load (normalized).
    pub max_load: Ratio,
    /// The same in Mbps.
    pub max_load_mbps: f64,
}

/// One curve (fixed N).
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Terminals per ring node.
    pub terminals: usize,
    /// Points by increasing share.
    pub points: Vec<Point>,
}

/// The full Figure 11 dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig11 {
    /// One series per terminals-per-node value.
    pub series: Vec<Series>,
}

/// Runs the Figure 11 sweep.
///
/// # Errors
///
/// Propagates internal numeric failures.
pub fn run(params: Params) -> Result<Fig11, RtnetError> {
    let mut series = Vec::with_capacity(params.terminals.len());
    for &n in &params.terminals {
        let mut points = Vec::with_capacity(params.share_steps as usize + 1);
        for step in 0..=params.share_steps {
            let share = ratio(step as i128, params.share_steps as i128);
            let max_load = max_admissible_load(
                asymmetric_admissible(
                    params.ring_nodes,
                    n,
                    share,
                    CdvMode::Hard,
                    PrioritySplit::SingleLevel,
                ),
                params.search_iters,
            )?;
            points.push(Point {
                share,
                max_load,
                max_load_mbps: units::rate_to_mbps(rtcac_bitstream::Rate::new(max_load)).to_f64(),
            });
        }
        series.push(Series {
            terminals: n,
            points,
        });
    }
    Ok(Fig11 { series })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Params {
        Params {
            ring_nodes: 16,
            terminals: vec![1, 16],
            share_steps: 4,
            search_iters: 5,
        }
    }

    #[test]
    fn supported_traffic_decreases_with_asymmetry() {
        // Across the meaningful range the capacity falls as one
        // terminal hogs a larger share. (At exactly p = 1 the workload
        // degenerates to a single smooth CBR connection with no
        // contention at all, so the capacity rebounds to the full
        // link — an honest consequence of the paper's own worst-case
        // model; see EXPERIMENTS.md.)
        let fig = run(quick()).unwrap();
        for s in &fig.series {
            let p0 = s.points[0].max_load; // p = 0
            let p50 = s.points[2].max_load; // p = 0.5
            let p75 = s.points[3].max_load; // p = 0.75
            assert!(
                p50 <= p0 && p75 <= p0,
                "N={}: capacity must fall with asymmetry ({p0} -> {p50} -> {p75})",
                s.terminals
            );
        }
    }

    #[test]
    fn burstier_nodes_support_less() {
        let fig = run(quick()).unwrap();
        let n1 = &fig.series[0];
        let n16 = &fig.series[1];
        // At every shared grid point, N=16 supports at most N=1 + slack.
        for (a, b) in n1.points.iter().zip(&n16.points) {
            assert!(
                b.max_load <= a.max_load + rtcac_rational::ratio(1, 16),
                "p={}: N16 {} vs N1 {}",
                a.share,
                b.max_load,
                a.max_load
            );
        }
    }

    #[test]
    fn all_points_positive_capacity() {
        let fig = run(quick()).unwrap();
        for s in &fig.series {
            for p in &s.points {
                assert!(
                    p.max_load.is_positive(),
                    "N={} p={} found zero capacity",
                    s.terminals,
                    p.share
                );
            }
        }
    }
}
