//! **Figure 13**: extra cyclic capacity gained by the soft CAC scheme
//! (square-root CDV accumulation) over the hard scheme.
//!
//! Setup as in Figure 11. The soft scheme estimates a connection's
//! accumulated jitter after `m` hops as `32·√m` instead of `32·m` —
//! not a worst-case guarantee, but appropriate for soft real-time
//! connections (§4.3 discussion 1).

use rtcac_rational::{ratio, Ratio};

use crate::experiments::{asymmetric_admissible, max_admissible_load, PrioritySplit};
use crate::{units, CdvMode, RtnetError};

/// Sweep parameters. Defaults reproduce the paper's setup with N = 16.
#[derive(Debug, Clone)]
pub struct Params {
    /// Ring nodes (paper: 16).
    pub ring_nodes: usize,
    /// Terminals per ring node.
    pub terminals: usize,
    /// Number of `p` grid steps across [0, 1].
    pub share_steps: u32,
    /// Binary search iterations.
    pub search_iters: u32,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            ring_nodes: units::RING_NODES,
            terminals: 16,
            share_steps: 20,
            search_iters: 7,
        }
    }
}

/// One point of the Figure 13 comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point {
    /// The big terminal's share `p`.
    pub share: Ratio,
    /// Largest admissible load under the hard CAC scheme.
    pub hard: Ratio,
    /// Largest admissible load under the soft CAC scheme.
    pub soft: Ratio,
}

/// The full Figure 13 dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig13 {
    /// Terminals per ring node used.
    pub terminals: usize,
    /// Points by increasing share.
    pub points: Vec<Point>,
}

/// Runs the Figure 13 comparison.
///
/// # Errors
///
/// Propagates internal numeric failures.
pub fn run(params: Params) -> Result<Fig13, RtnetError> {
    let mut points = Vec::with_capacity(params.share_steps as usize + 1);
    for step in 0..=params.share_steps {
        let share = ratio(step as i128, params.share_steps as i128);
        let hard = max_admissible_load(
            asymmetric_admissible(
                params.ring_nodes,
                params.terminals,
                share,
                CdvMode::Hard,
                PrioritySplit::SingleLevel,
            ),
            params.search_iters,
        )?;
        let soft = max_admissible_load(
            asymmetric_admissible(
                params.ring_nodes,
                params.terminals,
                share,
                CdvMode::SoftSqrt,
                PrioritySplit::SingleLevel,
            ),
            params.search_iters,
        )?;
        points.push(Point { share, hard, soft });
    }
    Ok(Fig13 {
        terminals: params.terminals,
        points,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Params {
        Params {
            ring_nodes: 16,
            terminals: 8,
            share_steps: 4,
            search_iters: 6,
        }
    }

    #[test]
    fn soft_never_admits_less() {
        let fig = run(quick()).unwrap();
        let tolerance = ratio(1, 32);
        for p in &fig.points {
            assert!(
                p.soft + tolerance >= p.hard,
                "p={}: soft {} below hard {}",
                p.share,
                p.soft,
                p.hard
            );
        }
    }

    #[test]
    fn soft_gains_capacity_somewhere() {
        let fig = run(quick()).unwrap();
        assert!(
            fig.points.iter().any(|p| p.soft > p.hard),
            "soft CAC never helped: {:?}",
            fig.points
        );
    }
}
