//! **Figure 10**: end-to-end queueing delay bounds of symmetric cyclic
//! traffic as a function of total load, for N ∈ {1, 4, 8, 16}
//! terminals per ring node.
//!
//! Each terminal opens a broadcast CBR connection with
//! `PCR = B / (16 N)`; the hard CAC scheme computes the worst-case
//! per-port bound (identical at every port by symmetry) and the
//! end-to-end bound is its sum over the 15 ring hops. A series ends at
//! the largest load that still passes the CAC check (computed per-hop
//! bound within the 32-cell queue).

use rtcac_cac::Priority;
use rtcac_rational::{ratio, Ratio};

use crate::{units, workload, RtnetError};

/// Sweep parameters. The defaults reproduce the paper's setup.
#[derive(Debug, Clone)]
pub struct Params {
    /// Ring nodes (paper: 16).
    pub ring_nodes: usize,
    /// Terminals-per-node values to sweep (paper: 1, 4, 8, 16).
    pub terminals: Vec<usize>,
    /// Number of load steps across (0, 1) (paper plots ~0.05 grid).
    pub load_steps: u32,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            ring_nodes: units::RING_NODES,
            terminals: vec![1, 4, 8, 16],
            load_steps: 20,
        }
    }
}

/// One measured point of a Figure 10 curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point {
    /// Total normalized cyclic load `B`.
    pub load: Ratio,
    /// The same load in Mbps (155 Mbps link).
    pub load_mbps: f64,
    /// Computed worst-case per-hop queueing delay, in cell times.
    pub per_hop_cells: f64,
    /// End-to-end queueing delay bound over the 15-hop broadcast, in
    /// cell times.
    pub end_to_end_cells: f64,
}

/// One curve (fixed N).
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Terminals per ring node.
    pub terminals: usize,
    /// Admissible points, by increasing load.
    pub points: Vec<Point>,
    /// The largest admissible load encountered by the sweep.
    pub max_admissible_load: Ratio,
}

/// The full Figure 10 dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig10 {
    /// One series per terminals-per-node value.
    pub series: Vec<Series>,
}

/// Runs the Figure 10 sweep.
///
/// # Errors
///
/// Propagates internal numeric failures; overload at a sweep point
/// simply terminates that series.
pub fn run(params: Params) -> Result<Fig10, RtnetError> {
    let mut series = Vec::with_capacity(params.terminals.len());
    for &n in &params.terminals {
        let mut points = Vec::new();
        let mut max_load = Ratio::ZERO;
        for step in 1..=params.load_steps {
            let load = ratio(step as i128, params.load_steps as i128);
            let analysis = workload::symmetric(params.ring_nodes, n, load)?;
            if !analysis.admissible()? {
                break;
            }
            let per_hop = analysis.port_bound(0, Priority::HIGHEST)?;
            let e2e = analysis.end_to_end_bound(Priority::HIGHEST)?;
            max_load = load;
            points.push(Point {
                load,
                load_mbps: units::rate_to_mbps(rtcac_bitstream::Rate::new(load)).to_f64(),
                per_hop_cells: per_hop.to_f64(),
                end_to_end_cells: e2e.to_f64(),
            });
        }
        series.push(Series {
            terminals: n,
            points,
            max_admissible_load: max_load,
        });
    }
    Ok(Fig10 { series })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_params() -> Params {
        Params {
            ring_nodes: 16,
            terminals: vec![1, 16],
            load_steps: 10,
        }
    }

    #[test]
    fn delay_grows_with_load() {
        let fig = run(small_params()).unwrap();
        for s in &fig.series {
            assert!(s.points.len() >= 2, "N={} too few points", s.terminals);
            for w in s.points.windows(2) {
                assert!(
                    w[1].end_to_end_cells >= w[0].end_to_end_cells,
                    "N={}: delay must grow with load",
                    s.terminals
                );
            }
        }
    }

    #[test]
    fn burstier_nodes_support_less_traffic() {
        // The paper's headline: N=16 saturates around 35% while N=1
        // reaches ~75%.
        let fig = run(small_params()).unwrap();
        let n1 = &fig.series[0];
        let n16 = &fig.series[1];
        assert!(n1.max_admissible_load > n16.max_admissible_load);
    }

    #[test]
    fn paper_anchor_points() {
        // N=1 supports ~75% (delay under 370 cells = 1 ms); N=16
        // supports ~35%.
        let fig = run(Params {
            ring_nodes: 16,
            terminals: vec![1, 16],
            load_steps: 20,
        })
        .unwrap();
        let n1 = &fig.series[0];
        assert!(
            n1.max_admissible_load.to_f64() >= 0.70,
            "N=1 supports {:.2}",
            n1.max_admissible_load.to_f64()
        );
        let at_75 = n1
            .points
            .iter()
            .find(|p| (p.load.to_f64() - 0.75).abs() < 1e-9);
        if let Some(p) = at_75 {
            assert!(
                p.end_to_end_cells <= 420.0,
                "N=1 at 75%: {} cells",
                p.end_to_end_cells
            );
        }
        let n16 = &fig.series[1];
        let max16 = n16.max_admissible_load.to_f64();
        assert!((0.25..=0.55).contains(&max16), "N=16 supports {max16:.2}");
    }

    #[test]
    fn per_hop_within_queue_everywhere() {
        let fig = run(small_params()).unwrap();
        for s in &fig.series {
            for p in &s.points {
                assert!(p.per_hop_cells <= 32.0 + 1e-9);
                // e2e = 15 hops * per-hop for the symmetric case.
                assert!((p.end_to_end_cells - 15.0 * p.per_hop_cells).abs() < 1e-6);
            }
        }
    }
}
