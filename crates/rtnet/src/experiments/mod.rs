//! Experiment drivers, one per paper artifact.
//!
//! Each module reproduces one table or figure of §5 and returns the
//! same rows/series the paper reports:
//!
//! | Module | Paper artifact |
//! |--------|----------------|
//! | [`table1`] | Table 1 — cyclic transmission classes |
//! | [`fig10`]  | Figure 10 — end-to-end delay bound vs symmetric load |
//! | [`fig11`]  | Figure 11 — admissible bandwidth vs asymmetry |
//! | [`fig12`]  | Figure 12 — one vs two priority levels |
//! | [`fig13`]  | Figure 13 — soft vs hard CAC |
//!
//! The drivers return plain data structures; the `rtcac-bench` binaries
//! print them in the paper's format.

pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod table1;

use rtcac_rational::{ratio, Ratio};

pub use crate::workload::PrioritySplit;
use crate::{workload, RtnetError};

/// Binary-searches the largest admissible total load in `[0, 1]` for a
/// workload family, to a resolution of `1/2^iterations`.
///
/// `admissible(load)` must be monotone (more load never becomes
/// admissible again); the §5 workloads are.
pub(crate) fn max_admissible_load(
    mut admissible: impl FnMut(Ratio) -> Result<bool, RtnetError>,
    iterations: u32,
) -> Result<Ratio, RtnetError> {
    let mut lo = Ratio::ZERO; // known admissible (empty network)
    let mut hi = Ratio::ONE; // pushed down when inadmissible
    if admissible(hi)? {
        return Ok(hi);
    }
    for _ in 0..iterations {
        let mid = (lo + hi) / ratio(2, 1);
        if admissible(mid)? {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Ok(lo)
}

/// Convenience: the admissibility closure for asymmetric single- or
/// two-priority workloads used by Figures 11–13.
pub(crate) fn asymmetric_admissible(
    ring_nodes: usize,
    terminals: usize,
    big_share: Ratio,
    mode: crate::CdvMode,
    split: PrioritySplit,
) -> impl FnMut(Ratio) -> Result<bool, RtnetError> {
    move |load: Ratio| {
        if !load.is_positive() {
            return Ok(true);
        }
        workload::asymmetric_with(ring_nodes, terminals, load, big_share, mode, split)?.admissible()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binary_search_converges() {
        // Admissible iff load <= 3/8.
        let result = max_admissible_load(|b| Ok(b <= ratio(3, 8)), 10).unwrap();
        assert!(result <= ratio(3, 8));
        assert!(result >= ratio(3, 8) - ratio(1, 1 << 9));
    }

    #[test]
    fn binary_search_full_link() {
        let result = max_admissible_load(|_| Ok(true), 10).unwrap();
        assert_eq!(result, Ratio::ONE);
    }

    #[test]
    fn binary_search_nothing_fits() {
        let result = max_admissible_load(|b| Ok(b.is_zero()), 6).unwrap();
        assert!(result < ratio(1, 32));
    }
}
