//! **Table 1**: the three cyclic transmission classes, their computed
//! bandwidth requirements, and a CAC feasibility verdict for each.
//!
//! Beyond reprinting the table, the driver runs the hard CAC check for
//! each class on the reference RTnet (16 ring nodes, 16 terminals,
//! class traffic split symmetrically) and reports whether the class's
//! delay requirement is met — the design validation the paper
//! describes in §5.

use rtcac_bitstream::Time;
use rtcac_cac::Priority;
use rtcac_rational::Ratio;

use crate::cyclic::{CyclicClass, ALL_CLASSES};
use crate::{units, workload, RtnetError};

/// Parameters for the feasibility check.
#[derive(Debug, Clone)]
pub struct Params {
    /// Ring nodes (paper: 16).
    pub ring_nodes: usize,
    /// Terminals per ring node (paper maximum: 16).
    pub terminals: usize,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            ring_nodes: units::RING_NODES,
            terminals: 16,
        }
    }
}

/// One row of the reproduced Table 1.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// The class.
    pub class: CyclicClass,
    /// Computed bandwidth in Mbps (the paper's last column).
    pub bandwidth_mbps: Ratio,
    /// Normalized load the class puts on the ring.
    pub load: Ratio,
    /// Whether the class alone passes the hard CAC check.
    pub admissible: bool,
    /// End-to-end queueing delay bound for the class's traffic, in
    /// cell times (when admissible).
    pub end_to_end_cells: Option<Time>,
    /// The class's delay requirement in cell times.
    pub required_cells: Time,
    /// Whether the delay requirement is met.
    pub meets_deadline: bool,
}

/// The reproduced Table 1 with feasibility verdicts.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1 {
    /// Rows in the paper's order (high, medium, low speed).
    pub rows: Vec<Row>,
    /// Whether all three classes together fit the link in the long run.
    pub combined_load: Ratio,
}

/// Builds the table.
///
/// # Errors
///
/// Propagates internal numeric failures.
pub fn run(params: Params) -> Result<Table1, RtnetError> {
    let mut rows = Vec::with_capacity(ALL_CLASSES.len());
    let mut combined_load = Ratio::ZERO;
    for class in ALL_CLASSES {
        let load = class.bandwidth_rate().as_ratio();
        combined_load += load;
        let analysis = workload::symmetric(params.ring_nodes, params.terminals, load)?;
        let admissible = analysis.admissible()?;
        let (end_to_end_cells, meets_deadline) = if admissible {
            let e2e = analysis.end_to_end_bound(Priority::HIGHEST)?;
            (Some(e2e), e2e <= class.delay_cells())
        } else {
            (None, false)
        };
        rows.push(Row {
            class,
            bandwidth_mbps: class.bandwidth_mbps(),
            load,
            admissible,
            end_to_end_cells,
            required_cells: class.delay_cells(),
            meets_deadline,
        });
    }
    Ok(Table1 {
        rows,
        combined_load,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_classes_individually_supported() {
        let table = run(Params::default()).unwrap();
        assert_eq!(table.rows.len(), 3);
        for row in &table.rows {
            assert!(
                row.admissible,
                "{} not admissible at load {}",
                row.class.name(),
                row.load
            );
            assert!(
                row.meets_deadline,
                "{} misses deadline: bound {:?} vs required {}",
                row.class.name(),
                row.end_to_end_cells,
                row.required_cells
            );
        }
    }

    #[test]
    fn combined_load_fits_link() {
        let table = run(Params::default()).unwrap();
        assert!(table.combined_load < Ratio::ONE);
    }

    #[test]
    fn bandwidth_ordering_matches_paper() {
        let table = run(Params::default()).unwrap();
        // High speed needs the most bandwidth, low speed the least.
        assert!(table.rows[0].bandwidth_mbps > table.rows[1].bandwidth_mbps);
        assert!(table.rows[1].bandwidth_mbps > table.rows[2].bandwidth_mbps);
    }
}
