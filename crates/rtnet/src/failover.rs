//! Ring wrap-around after a link failure — the fault-tolerance design
//! of the paper's Figure 9 ("the network can tolerate any single
//! link/node failure by using a hardware ring wrap-around technology
//! similar to that used in FDDI networks").
//!
//! RTnet ring nodes are joined by *dual* links. When the primary link
//! from node `f` to node `f+1` fails, a broadcast from node `k` can no
//! longer circle the ring; instead it splits into two branches:
//!
//! - **forward** on the primary ring from `k` up to the failure point
//!   `f`, and
//! - **backward** on the secondary ring from `k` down to `f+1`,
//!
//! which together still reach every other node. This module plans those
//! branch routes and re-establishes a network's connections after a
//! failure, so the capacity cost of surviving a fault can be measured
//! (`cargo run -p rtcac-bench --bin failover`).

use rtcac_cac::Priority;
use rtcac_net::{NetError, Route, StarRing};
use rtcac_signaling::{Network, SetupOutcome, SetupRequest, SignalError};

use crate::RtnetError;

/// The two branch routes replacing a full-circle broadcast from
/// `src_node` after the primary link `failed` (from node `failed` to
/// `failed + 1`) is lost. Either branch is `None` when it would have
/// zero hops (the source sits right next to the failure).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BranchRoutes {
    /// Forward branch on the primary ring (towards the failure).
    pub forward: Option<Route>,
    /// Backward branch on the secondary ring (away from the failure).
    pub backward: Option<Route>,
}

impl BranchRoutes {
    /// Total ring hops across both branches (always `ring_len - 1`:
    /// every other node is still reached exactly once).
    pub fn total_hops(&self) -> usize {
        let f = self
            .forward
            .as_ref()
            .map(|r| r.links().len() - 1)
            .unwrap_or(0);
        let b = self
            .backward
            .as_ref()
            .map(|r| r.links().len() - 1)
            .unwrap_or(0);
        f + b
    }
}

/// Plans the wrap-around branch routes for a broadcast entering the
/// ring at `(src_node, src_term)` after primary link `failed` is lost.
///
/// # Errors
///
/// Returns [`NetError::BadParameter`] if the star-ring has no secondary
/// ring or an index is out of range.
pub fn branch_routes(
    sr: &StarRing,
    src_node: usize,
    src_term: usize,
    failed: usize,
) -> Result<BranchRoutes, NetError> {
    if !sr.is_dual() {
        return Err(NetError::BadParameter(
            "wrap-around needs a dual ring (builders::dual_star_ring)",
        ));
    }
    let n = sr.ring_len();
    if failed >= n || src_node >= n {
        return Err(NetError::BadParameter("index out of range"));
    }
    // Forward: from src_node along primary links src..failed, reaching
    // node `failed` (hops = distance to the failure's tail node).
    let fwd_hops = (failed + n - src_node) % n;
    let forward = if fwd_hops > 0 {
        Some(sr.ring_route_from_terminal(src_node, src_term, fwd_hops)?)
    } else {
        None
    };
    // Backward: from src_node along secondary links down to the node
    // just past the failure (failed + 1).
    let bwd_hops = (src_node + n - (failed + 1)) % n;
    let backward = if bwd_hops > 0 {
        Some(sr.reverse_route_from_terminal(src_node, src_term, bwd_hops)?)
    } else {
        None
    };
    Ok(BranchRoutes { forward, backward })
}

/// Outcome of re-establishing a broadcast population after a failure.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FailoverReport {
    /// Broadcasts whose surviving branches were all re-admitted.
    pub reestablished: usize,
    /// Broadcasts that could not be fully re-admitted (some branch was
    /// rejected; its partial reservations were rolled back).
    pub lost: usize,
}

/// Re-establishes one broadcast per `(node, terminal)` pair in
/// `sources` over the wrapped ring, using `request` for every branch.
/// Partially admitted broadcasts are rolled back and counted as lost.
///
/// # Errors
///
/// Propagates topology/signaling failures ([`RtnetError::BadParameter`]
/// wraps them); rejections are counted, not raised.
pub fn reestablish(
    network: &mut Network,
    sr: &StarRing,
    failed: usize,
    sources: &[(usize, usize)],
    request: SetupRequest,
) -> Result<FailoverReport, RtnetError> {
    let mut report = FailoverReport::default();
    for &(node, term) in sources {
        let branches = branch_routes(sr, node, term, failed)
            .map_err(|_| RtnetError::BadParameter("invalid failover route"))?;
        let mut ids = Vec::new();
        let mut ok = true;
        for route in [&branches.forward, &branches.backward]
            .into_iter()
            .flatten()
        {
            match network.setup(route, request).map_err(signal_to_rtnet)? {
                SetupOutcome::Connected(info) => ids.push(info.id()),
                SetupOutcome::Rejected(_) => {
                    ok = false;
                    break;
                }
            }
        }
        if ok {
            report.reestablished += 1;
        } else {
            for id in ids {
                network.teardown(id).map_err(signal_to_rtnet)?;
            }
            report.lost += 1;
        }
    }
    Ok(report)
}

fn signal_to_rtnet(_e: SignalError) -> RtnetError {
    RtnetError::BadParameter("signaling failure during failover")
}

/// The end-to-end queueing delay bound guaranteed to the *worst*
/// surviving branch (the longest one), for capacity planning: after a
/// wrap the longest branch has up to `ring_len - 1` hops, same as the
/// healthy broadcast, but both directions now share each node's ports.
///
/// # Errors
///
/// Propagates signaling failures.
pub fn worst_branch_guarantee(
    network: &Network,
    sr: &StarRing,
    failed: usize,
    priority: Priority,
) -> Result<rtcac_bitstream::Time, RtnetError> {
    let mut worst = rtcac_bitstream::Time::ZERO;
    for node in 0..sr.ring_len() {
        let branches = branch_routes(sr, node, 0, failed)
            .map_err(|_| RtnetError::BadParameter("invalid failover route"))?;
        for route in [&branches.forward, &branches.backward]
            .into_iter()
            .flatten()
        {
            let d = network
                .achievable_delay(route, priority)
                .map_err(signal_to_rtnet)?;
            worst = worst.max(d);
        }
    }
    Ok(worst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtcac_bitstream::{CbrParams, Rate, Time, TrafficContract};
    use rtcac_cac::SwitchConfig;
    use rtcac_net::builders;
    use rtcac_rational::ratio;
    use rtcac_signaling::CdvPolicy;

    fn request(load_den: i128) -> SetupRequest {
        SetupRequest::new(
            TrafficContract::cbr(CbrParams::new(Rate::new(ratio(1, load_den))).unwrap()),
            Priority::HIGHEST,
            Time::from_integer(100_000),
        )
    }

    #[test]
    fn branches_cover_all_other_nodes() {
        let sr = builders::dual_star_ring(6, 1).unwrap();
        for failed in 0..6 {
            for src in 0..6 {
                let b = branch_routes(&sr, src, 0, failed).unwrap();
                assert_eq!(b.total_hops(), 5, "src {src} failed {failed}");
                // Collect every ring node reached by either branch.
                let mut reached = std::collections::BTreeSet::new();
                for route in [&b.forward, &b.backward].into_iter().flatten() {
                    for node in route.nodes(sr.topology()).unwrap() {
                        if let Some(pos) = sr.ring_nodes().iter().position(|&r| r == node) {
                            reached.insert(pos);
                        }
                    }
                }
                assert_eq!(reached.len(), 6, "src {src} failed {failed}: {reached:?}");
            }
        }
    }

    #[test]
    fn branches_avoid_the_failed_link() {
        let sr = builders::dual_star_ring(5, 1).unwrap();
        for failed in 0..5 {
            let failed_link = sr.ring_link(failed).unwrap();
            for src in 0..5 {
                let b = branch_routes(&sr, src, 0, failed).unwrap();
                for route in [&b.forward, &b.backward].into_iter().flatten() {
                    assert!(
                        !route.links().contains(&failed_link),
                        "src {src} failed {failed} uses the dead link"
                    );
                }
            }
        }
    }

    #[test]
    fn source_adjacent_to_failure_has_one_branch() {
        let sr = builders::dual_star_ring(4, 1).unwrap();
        // Source at node f: forward branch has 0 hops -> None.
        let b = branch_routes(&sr, 2, 0, 2).unwrap();
        assert!(b.forward.is_none());
        assert!(b.backward.is_some());
        // Source at node f+1: backward branch has 0 hops -> None.
        let b = branch_routes(&sr, 3, 0, 2).unwrap();
        assert!(b.forward.is_some());
        assert!(b.backward.is_none());
    }

    #[test]
    fn single_ring_topology_rejected() {
        let sr = builders::star_ring(4, 1).unwrap();
        assert!(branch_routes(&sr, 0, 0, 1).is_err());
    }

    #[test]
    fn reestablish_light_load_survives() {
        let sr = builders::dual_star_ring(5, 1).unwrap();
        let config = SwitchConfig::uniform(1, Time::from_integer(32)).unwrap();
        let mut network = Network::new(sr.topology().clone(), config, CdvPolicy::Hard);
        let sources: Vec<(usize, usize)> = (0..5).map(|n| (n, 0)).collect();
        let report = reestablish(&mut network, &sr, 2, &sources, request(50)).unwrap();
        assert_eq!(report.reestablished, 5);
        assert_eq!(report.lost, 0);
        // Two branch connections per broadcast except the two adjacent
        // sources (one branch each): 2*5 - 2 = 8.
        assert_eq!(network.connections().count(), 8);
    }

    #[test]
    fn reestablish_heavy_load_loses_broadcasts() {
        let sr = builders::dual_star_ring(5, 1).unwrap();
        let config = SwitchConfig::uniform(1, Time::from_integer(8)).unwrap();
        let mut network = Network::new(sr.topology().clone(), config, CdvPolicy::Hard);
        let sources: Vec<(usize, usize)> = (0..5).map(|n| (n, 0)).collect();
        let report = reestablish(&mut network, &sr, 0, &sources, request(4)).unwrap();
        assert!(report.lost > 0, "{report:?}");
        // Lost broadcasts left no partial reservations behind: every
        // established connection belongs to a fully-admitted broadcast.
        // (Adjacent sources have 1 branch, others 2.)
        let conns = network.connections().count();
        assert!(conns <= 2 * report.reestablished);
    }

    #[test]
    fn worst_branch_guarantee_reported() {
        let sr = builders::dual_star_ring(6, 1).unwrap();
        let config = SwitchConfig::uniform(1, Time::from_integer(32)).unwrap();
        let network = Network::new(sr.topology().clone(), config, CdvPolicy::Hard);
        let g = worst_branch_guarantee(&network, &sr, 3, Priority::HIGHEST).unwrap();
        // The longest branch after a wrap has ring_len - 1 = 5 hops.
        assert_eq!(g, Time::from_integer(5 * 32));
    }
}
