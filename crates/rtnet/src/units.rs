//! RTnet unit conventions (paper §5).
//!
//! RTnet links run at 155 Mbps; one ATM cell (53 bytes) then takes
//! about 2.7 µs, and the paper rounds 1 ms to **370 cell times**. All
//! CAC mathematics is done in normalized units (rates as fractions of
//! the link bandwidth, time in cell times); these helpers convert the
//! paper's engineering units into them.

use rtcac_bitstream::{Rate, Time};
use rtcac_rational::{ratio, Ratio};

/// RTnet link bandwidth in Mbps.
pub const LINK_MBPS: i128 = 155;

/// Cell times per millisecond (the paper's rounding: one cell time is
/// about 2.7 µs at 155 Mbps, and §5 uses 370 cells ≈ 1 ms).
pub const CELLS_PER_MS: i128 = 370;

/// The RTnet ring-node FIFO queue size for cyclic traffic, in cells
/// (32 cells ≈ 87 µs of queueing per node).
pub const RING_QUEUE_CELLS: i128 = 32;

/// Number of ring nodes in the reference RTnet configuration.
pub const RING_NODES: usize = 16;

/// Converts a bandwidth in Mbps to a normalized rate.
///
/// ```
/// use rtcac_rtnet::units;
/// use rtcac_rational::ratio;
/// assert_eq!(units::mbps_to_rate(ratio(31, 1)).as_ratio(), ratio(1, 5));
/// ```
pub fn mbps_to_rate(mbps: Ratio) -> Rate {
    Rate::new(mbps / ratio(LINK_MBPS, 1))
}

/// Converts a normalized rate to Mbps.
pub fn rate_to_mbps(rate: Rate) -> Ratio {
    rate.as_ratio() * ratio(LINK_MBPS, 1)
}

/// Converts milliseconds to cell times using the paper's 370 cells/ms.
///
/// ```
/// use rtcac_bitstream::Time;
/// use rtcac_rtnet::units;
/// use rtcac_rational::ratio;
/// assert_eq!(units::ms_to_cells(ratio(1, 1)), Time::from_integer(370));
/// ```
pub fn ms_to_cells(ms: Ratio) -> Time {
    Time::new(ms * ratio(CELLS_PER_MS, 1))
}

/// Converts cell times to milliseconds.
pub fn cells_to_ms(cells: Time) -> Ratio {
    cells.as_ratio() / ratio(CELLS_PER_MS, 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_roundtrip() {
        let r = mbps_to_rate(ratio(155, 2));
        assert_eq!(r.as_ratio(), ratio(1, 2));
        assert_eq!(rate_to_mbps(r), ratio(155, 2));
    }

    #[test]
    fn time_roundtrip() {
        let t = ms_to_cells(ratio(3, 2));
        assert_eq!(t, Time::from_integer(555));
        assert_eq!(cells_to_ms(t), ratio(3, 2));
    }

    #[test]
    fn paper_constants() {
        // The paper's "32-cell queue = 87 µs" check: 32 * 2.7 = 86.4.
        let queue_ms = cells_to_ms(Time::from_integer(RING_QUEUE_CELLS));
        let micros = queue_ms * ratio(1_000, 1);
        assert!(micros > ratio(86, 1) && micros < ratio(88, 1));
        // And "1 ms = 370 cell times".
        assert_eq!(ms_to_cells(ratio(1, 1)), Time::from_integer(370));
    }
}
