//! The RTnet evaluation of the paper's §5: applying the bit-stream CAC
//! scheme to the Mitsubishi Real-Time Industrial Control Network.
//!
//! RTnet (Figure 9) is a star-ring LAN: ring nodes joined by 155 Mbps
//! links, terminals attached to each ring node, and a hardware
//! wrap-around for fault tolerance. Its flagship real-time service is
//! **cyclic transmission** — a distributed shared memory where every
//! terminal periodically broadcasts its segment (Table 1's three
//! classes, [`cyclic`]).
//!
//! This crate provides:
//!
//! - [`units`]: the paper's unit conventions (155 Mbps link, cell times,
//!   the 370-cells-per-millisecond rule of thumb);
//! - [`cyclic`]: Table 1's cyclic transmission classes;
//! - [`RingAnalysis`]: the worst-case queueing analysis of broadcast
//!   traffic around the ring — per-port aggregates built with the
//!   bit-stream algebra, per-priority delay bounds, admissibility, and
//!   end-to-end bounds;
//! - [`workload`]: the symmetric and asymmetric load patterns of §5;
//! - [`failover`]: FDDI-style ring wrap-around after a link failure
//!   (the Figure 9 fault-tolerance design) and its capacity cost;
//! - [`experiments`]: one driver per paper artifact — Figures 10, 11,
//!   12, 13 and Table 1 — each returning the data series the paper
//!   plots.
//!
//! # Examples
//!
//! ```
//! use rtcac_rtnet::{experiments, workload};
//! use rtcac_rational::ratio;
//!
//! // One point of Figure 10: 16 ring nodes, 4 terminals per node,
//! // symmetric cyclic traffic at 40% total load.
//! let analysis = workload::symmetric(16, 4, ratio(2, 5))?;
//! assert!(analysis.admissible()?);
//! let e2e = analysis.end_to_end_bound(rtcac_cac::Priority::HIGHEST)?;
//! assert!(e2e.is_positive());
//!
//! // The whole Figure 10 sweep:
//! let fig10 = experiments::fig10::run(experiments::fig10::Params::default())?;
//! assert_eq!(fig10.series.len(), 4); // N = 1, 4, 8, 16
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analysis;
pub mod cyclic;
pub mod experiments;
pub mod failover;
pub mod iterative;
pub mod units;
pub mod workload;

pub use analysis::{CdvMode, RingAnalysis, RtnetError};
