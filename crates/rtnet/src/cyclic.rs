//! Cyclic transmission classes — the paper's Table 1.
//!
//! Cyclic transmission implements a real-time distributed shared
//! memory: each terminal periodically broadcasts its portion of the
//! shared memory. RTnet supports three classes, each with an update
//! period, a maximum allowed update delay, and a maximum shared-memory
//! size; the required bandwidth follows.

use rtcac_bitstream::{CbrParams, ContractError, Rate, Time, TrafficContract};
use rtcac_rational::{ratio, Ratio};

use crate::units;

/// One cyclic transmission class (a row of Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CyclicClass {
    name: &'static str,
    period_ms: i128,
    delay_ms: i128,
    memory_kb: i128,
}

/// The high-speed class: 1 ms period, 4 KB shared memory.
pub const HIGH_SPEED: CyclicClass = CyclicClass {
    name: "high speed",
    period_ms: 1,
    delay_ms: 1,
    memory_kb: 4,
};

/// The medium-speed class: 30 ms period, 64 KB shared memory.
pub const MEDIUM_SPEED: CyclicClass = CyclicClass {
    name: "medium speed",
    period_ms: 30,
    delay_ms: 30,
    memory_kb: 64,
};

/// The low-speed class: 150 ms period, 128 KB shared memory.
pub const LOW_SPEED: CyclicClass = CyclicClass {
    name: "low speed",
    period_ms: 150,
    delay_ms: 150,
    memory_kb: 128,
};

/// All three classes of Table 1, fastest first.
pub const ALL_CLASSES: [CyclicClass; 3] = [HIGH_SPEED, MEDIUM_SPEED, LOW_SPEED];

impl CyclicClass {
    /// The class name as printed in Table 1.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Memory update period in milliseconds.
    pub fn period_ms(&self) -> i128 {
        self.period_ms
    }

    /// Maximum allowable update delay in milliseconds.
    pub fn delay_ms(&self) -> i128 {
        self.delay_ms
    }

    /// Maximum shared-memory size in KB.
    pub fn memory_kb(&self) -> i128 {
        self.memory_kb
    }

    /// The maximum bandwidth the class requires in Mbps: the whole
    /// shared memory broadcast once per period
    /// (`memory · 8 / period`, with KB = 1024 bytes).
    ///
    /// ```
    /// use rtcac_rtnet::cyclic;
    /// // High speed: 4 KB per ms = 32.8 Mbps (the paper rounds to 32).
    /// let bw = cyclic::HIGH_SPEED.bandwidth_mbps();
    /// assert!(bw.to_f64() > 32.0 && bw.to_f64() < 33.0);
    /// ```
    pub fn bandwidth_mbps(&self) -> Ratio {
        // memory_kb * 1024 bytes * 8 bits / (period_ms * 10^3 µs)
        // expressed in Mbps = bits per µs.
        ratio(self.memory_kb * 1024 * 8, self.period_ms * 1_000)
    }

    /// The class's bandwidth as a normalized rate on a 155 Mbps link.
    pub fn bandwidth_rate(&self) -> Rate {
        units::mbps_to_rate(self.bandwidth_mbps())
    }

    /// The class's delay requirement in cell times.
    pub fn delay_cells(&self) -> Time {
        units::ms_to_cells(ratio(self.delay_ms, 1))
    }

    /// A CBR contract carrying a `share` fraction of the class's
    /// bandwidth (e.g. one terminal's slice of the shared memory).
    ///
    /// # Errors
    ///
    /// Returns [`ContractError::NonPositivePcr`] for a zero share and
    /// [`ContractError::PcrExceedsLink`] if the share exceeds the link.
    pub fn contract_for_share(&self, share: Ratio) -> Result<TrafficContract, ContractError> {
        let pcr = Rate::new(self.bandwidth_rate().as_ratio() * share);
        Ok(TrafficContract::Cbr(CbrParams::new(pcr)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_bandwidths_match_paper() {
        // Paper rows: 32, 17.5, 6.8 Mbps. Our exact computation (KB =
        // 1024) gives 32.8, 17.5, 7.0 — the paper's own rows round
        // inconsistently; all agree within 3%.
        let hs = HIGH_SPEED.bandwidth_mbps().to_f64();
        let ms = MEDIUM_SPEED.bandwidth_mbps().to_f64();
        let ls = LOW_SPEED.bandwidth_mbps().to_f64();
        assert!((hs - 32.0).abs() / 32.0 < 0.03, "high speed: {hs}");
        assert!((ms - 17.5).abs() / 17.5 < 0.03, "medium speed: {ms}");
        assert!((ls - 6.8).abs() / 6.8 < 0.03, "low speed: {ls}");
    }

    #[test]
    fn table1_periods_and_delays() {
        assert_eq!(HIGH_SPEED.period_ms(), 1);
        assert_eq!(MEDIUM_SPEED.delay_ms(), 30);
        assert_eq!(LOW_SPEED.memory_kb(), 128);
        assert_eq!(
            HIGH_SPEED.delay_cells(),
            rtcac_bitstream::Time::from_integer(370)
        );
        assert_eq!(ALL_CLASSES.len(), 3);
        assert_eq!(HIGH_SPEED.name(), "high speed");
    }

    #[test]
    fn total_cyclic_load_fits_the_link() {
        // The design claim behind Table 1: all three classes together
        // need well under the 155 Mbps link.
        let total: f64 = ALL_CLASSES
            .iter()
            .map(|c| c.bandwidth_mbps().to_f64())
            .sum();
        assert!(total < 155.0 * 0.5, "total cyclic load {total} Mbps");
    }

    #[test]
    fn contract_for_share() {
        let c = HIGH_SPEED.contract_for_share(ratio(1, 16)).unwrap();
        let expected = HIGH_SPEED.bandwidth_rate().as_ratio() / ratio(16, 1);
        assert_eq!(c.pcr().as_ratio(), expected);
        assert!(HIGH_SPEED.contract_for_share(ratio(0, 1)).is_err());
    }
}
