//! The [`Ratio`] type: a reduced fraction over `i128`.

use core::cmp::Ordering;
use core::hash::{Hash, Hasher};

/// Error produced by fallible [`Ratio`] constructors and operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RatioError {
    /// The denominator was zero.
    ZeroDenominator,
    /// An intermediate value exceeded the `i128` range.
    Overflow,
    /// Division by a zero-valued ratio.
    DivisionByZero,
    /// A string could not be parsed as a ratio.
    Parse,
}

impl core::fmt::Display for RatioError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            RatioError::ZeroDenominator => write!(f, "zero denominator"),
            RatioError::Overflow => write!(f, "arithmetic overflow in rational operation"),
            RatioError::DivisionByZero => write!(f, "division by zero-valued ratio"),
            RatioError::Parse => write!(f, "invalid rational literal"),
        }
    }
}

impl std::error::Error for RatioError {}

/// An exact rational number: a reduced fraction `num / den` with
/// `den > 0` and `gcd(|num|, den) == 1`.
///
/// `Ratio` is the numeric workhorse of the CAC algebra: stream rates
/// (cells per cell time, normalized to link bandwidth) and times
/// (cell times) are all `Ratio` values.
///
/// # Examples
///
/// ```
/// use rtcac_rational::Ratio;
///
/// let r = Ratio::new(6, 4)?;
/// assert_eq!(r.numer(), 3);
/// assert_eq!(r.denom(), 2);
/// assert_eq!(r.to_f64(), 1.5);
/// # Ok::<(), rtcac_rational::RatioError>(())
/// ```
#[derive(Clone, Copy)]
pub struct Ratio {
    num: i128,
    den: i128,
}

/// Greatest common divisor of two non-negative integers.
pub(crate) fn gcd(mut a: i128, mut b: i128) -> i128 {
    debug_assert!(a >= 0 && b >= 0);
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

impl Ratio {
    /// The value `0`.
    pub const ZERO: Ratio = Ratio { num: 0, den: 1 };
    /// The value `1`.
    pub const ONE: Ratio = Ratio { num: 1, den: 1 };
    /// The value `2`.
    pub const TWO: Ratio = Ratio { num: 2, den: 1 };

    /// Creates a reduced ratio `num / den`.
    ///
    /// # Errors
    ///
    /// Returns [`RatioError::ZeroDenominator`] if `den == 0`, and
    /// [`RatioError::Overflow`] if `num` or `den` is `i128::MIN`
    /// (whose absolute value is unrepresentable).
    ///
    /// ```
    /// use rtcac_rational::Ratio;
    /// assert_eq!(Ratio::new(-4, -8)?, Ratio::new(1, 2)?);
    /// assert!(Ratio::new(1, 0).is_err());
    /// # Ok::<(), rtcac_rational::RatioError>(())
    /// ```
    pub fn new(num: i128, den: i128) -> Result<Ratio, RatioError> {
        if den == 0 {
            return Err(RatioError::ZeroDenominator);
        }
        if num == i128::MIN || den == i128::MIN {
            return Err(RatioError::Overflow);
        }
        let sign = if (num < 0) ^ (den < 0) { -1 } else { 1 };
        let (num, den) = (num.abs(), den.abs());
        let g = gcd(num, den);
        Ok(Ratio {
            num: sign * (num / g),
            den: den / g,
        })
    }

    /// Creates a ratio from an integer value.
    ///
    /// ```
    /// use rtcac_rational::Ratio;
    /// assert_eq!(Ratio::from_integer(7).to_f64(), 7.0);
    /// ```
    pub const fn from_integer(value: i128) -> Ratio {
        Ratio { num: value, den: 1 }
    }

    /// The reduced numerator (carries the sign).
    pub const fn numer(&self) -> i128 {
        self.num
    }

    /// The reduced denominator (always positive).
    pub const fn denom(&self) -> i128 {
        self.den
    }

    /// Whether the value is exactly zero.
    pub const fn is_zero(&self) -> bool {
        self.num == 0
    }

    /// Whether the value is strictly positive.
    pub const fn is_positive(&self) -> bool {
        self.num > 0
    }

    /// Whether the value is strictly negative.
    pub const fn is_negative(&self) -> bool {
        self.num < 0
    }

    /// Whether the value is an integer (denominator 1).
    pub const fn is_integer(&self) -> bool {
        self.den == 1
    }

    /// Absolute value.
    ///
    /// ```
    /// use rtcac_rational::ratio;
    /// assert_eq!(ratio(-3, 4).abs(), ratio(3, 4));
    /// ```
    pub fn abs(self) -> Ratio {
        Ratio {
            num: self.num.abs(),
            den: self.den,
        }
    }

    /// The multiplicative inverse.
    ///
    /// # Errors
    ///
    /// Returns [`RatioError::DivisionByZero`] if the value is zero.
    pub fn recip(self) -> Result<Ratio, RatioError> {
        if self.num == 0 {
            return Err(RatioError::DivisionByZero);
        }
        Ok(Ratio {
            num: self.num.signum() * self.den,
            den: self.num.abs(),
        })
    }

    /// Largest integer `<= self`.
    ///
    /// ```
    /// use rtcac_rational::ratio;
    /// assert_eq!(ratio(7, 2).floor(), 3);
    /// assert_eq!(ratio(-7, 2).floor(), -4);
    /// ```
    pub fn floor(self) -> i128 {
        self.num.div_euclid(self.den)
    }

    /// Smallest integer `>= self`.
    ///
    /// ```
    /// use rtcac_rational::ratio;
    /// assert_eq!(ratio(7, 2).ceil(), 4);
    /// assert_eq!(ratio(-7, 2).ceil(), -3);
    /// ```
    pub fn ceil(self) -> i128 {
        -(-self.num).div_euclid(self.den)
    }

    /// Converts to `f64` (inexact; for reporting and plotting only).
    pub fn to_f64(self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// Creates the closest exact ratio to an `f64` with denominator
    /// bounded by `max_den` using continued-fraction expansion.
    ///
    /// Intended for configuration entry points (e.g. "0.35 load");
    /// internal computation never round-trips through floats.
    ///
    /// # Errors
    ///
    /// Returns [`RatioError::Parse`] if `value` is not finite or
    /// `max_den == 0`.
    ///
    /// ```
    /// use rtcac_rational::{ratio, Ratio};
    /// assert_eq!(Ratio::approx_f64(0.25, 1_000)?, ratio(1, 4));
    /// assert_eq!(Ratio::approx_f64(1.0 / 3.0, 1_000)?, ratio(1, 3));
    /// # Ok::<(), rtcac_rational::RatioError>(())
    /// ```
    pub fn approx_f64(value: f64, max_den: i128) -> Result<Ratio, RatioError> {
        if !value.is_finite() || max_den <= 0 {
            return Err(RatioError::Parse);
        }
        let negative = value < 0.0;
        let mut x = value.abs();
        // Continued fraction convergents h/k.
        let (mut h0, mut k0, mut h1, mut k1) = (0i128, 1i128, 1i128, 0i128);
        for _ in 0..64 {
            let a = x.floor();
            if a > i128::MAX as f64 {
                return Err(RatioError::Overflow);
            }
            let a = a as i128;
            let h2 = match a.checked_mul(h1).and_then(|v| v.checked_add(h0)) {
                Some(v) => v,
                None => break,
            };
            let k2 = match a.checked_mul(k1).and_then(|v| v.checked_add(k0)) {
                Some(v) => v,
                None => break,
            };
            if k2 > max_den {
                break;
            }
            h0 = h1;
            k0 = k1;
            h1 = h2;
            k1 = k2;
            let frac = x - a as f64;
            if frac < 1e-15 {
                break;
            }
            x = 1.0 / frac;
        }
        if k1 == 0 {
            return Err(RatioError::Parse);
        }
        Ratio::new(if negative { -h1 } else { h1 }, k1)
    }

    /// Checked addition.
    ///
    /// Returns `None` on `i128` overflow.
    pub fn checked_add(self, rhs: Ratio) -> Option<Ratio> {
        // a/b + c/d = (a*(d/g) + c*(b/g)) / (b/g*d) with g = gcd(b, d).
        let g = gcd(self.den, rhs.den);
        let lhs_scale = rhs.den / g;
        let rhs_scale = self.den / g;
        let num = self
            .num
            .checked_mul(lhs_scale)?
            .checked_add(rhs.num.checked_mul(rhs_scale)?)?;
        let den = self.den.checked_mul(lhs_scale)?;
        Ratio::new(num, den).ok()
    }

    /// Checked subtraction.
    ///
    /// Returns `None` on `i128` overflow.
    pub fn checked_sub(self, rhs: Ratio) -> Option<Ratio> {
        self.checked_add(Ratio {
            num: -rhs.num,
            den: rhs.den,
        })
    }

    /// Checked multiplication.
    ///
    /// Returns `None` on `i128` overflow.
    pub fn checked_mul(self, rhs: Ratio) -> Option<Ratio> {
        // Cross-reduce before multiplying to keep intermediates small.
        let g1 = gcd(self.num.abs(), rhs.den);
        let g2 = gcd(rhs.num.abs(), self.den);
        let num = (self.num / g1).checked_mul(rhs.num / g2)?;
        let den = (self.den / g2).checked_mul(rhs.den / g1)?;
        Ratio::new(num, den).ok()
    }

    /// Checked division.
    ///
    /// Returns `None` on overflow or if `rhs` is zero.
    pub fn checked_div(self, rhs: Ratio) -> Option<Ratio> {
        self.checked_mul(rhs.recip().ok()?)
    }

    /// Returns the smaller of two ratios.
    pub fn min(self, other: Ratio) -> Ratio {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Returns the larger of two ratios.
    pub fn max(self, other: Ratio) -> Ratio {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Clamps the value into `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn clamp(self, lo: Ratio, hi: Ratio) -> Ratio {
        assert!(lo <= hi, "Ratio::clamp: lo > hi");
        self.max(lo).min(hi)
    }

    /// Exact comparison that never overflows, using continued-fraction
    /// style descent when the cross products exceed `i128`.
    fn cmp_exact(&self, other: &Ratio) -> Ordering {
        // Fast path: checked cross-multiplication.
        if let (Some(lhs), Some(rhs)) = (
            self.num.checked_mul(other.den),
            other.num.checked_mul(self.den),
        ) {
            return lhs.cmp(&rhs);
        }
        // Slow path: compare signs, then integer parts, then recurse on
        // the reciprocal of the fractional parts (Stern–Brocot descent).
        match (self.num.signum(), other.num.signum()) {
            (a, b) if a != b => return a.cmp(&b),
            (-1, -1) => {
                return Ratio {
                    num: -other.num,
                    den: other.den,
                }
                .cmp_exact(&Ratio {
                    num: -self.num,
                    den: self.den,
                })
            }
            _ => {}
        }
        let (q1, r1) = (self.num / self.den, self.num % self.den);
        let (q2, r2) = (other.num / other.den, other.num % other.den);
        if q1 != q2 {
            return q1.cmp(&q2);
        }
        match (r1 == 0, r2 == 0) {
            (true, true) => Ordering::Equal,
            (true, false) => Ordering::Less,
            (false, true) => Ordering::Greater,
            (false, false) => {
                // self - q = r1/den1, other - q = r2/den2; comparing
                // r1/d1 vs r2/d2 is the reverse of d1/r1 vs d2/r2.
                Ratio {
                    num: other.den,
                    den: r2,
                }
                .cmp_exact(&Ratio {
                    num: self.den,
                    den: r1,
                })
            }
        }
    }
}

impl Default for Ratio {
    fn default() -> Self {
        Ratio::ZERO
    }
}

impl PartialEq for Ratio {
    fn eq(&self, other: &Self) -> bool {
        // Both are reduced with positive denominators, so field equality
        // is value equality.
        self.num == other.num && self.den == other.den
    }
}

impl Eq for Ratio {}

impl PartialOrd for Ratio {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Ratio {
    fn cmp(&self, other: &Self) -> Ordering {
        self.cmp_exact(other)
    }
}

impl Hash for Ratio {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.num.hash(state);
        self.den.hash(state);
    }
}

impl From<i128> for Ratio {
    fn from(value: i128) -> Self {
        Ratio::from_integer(value)
    }
}

impl From<i64> for Ratio {
    fn from(value: i64) -> Self {
        Ratio::from_integer(value as i128)
    }
}

impl From<u64> for Ratio {
    fn from(value: u64) -> Self {
        Ratio::from_integer(value as i128)
    }
}

impl From<u32> for Ratio {
    fn from(value: u32) -> Self {
        Ratio::from_integer(value as i128)
    }
}

impl From<i32> for Ratio {
    fn from(value: i32) -> Self {
        Ratio::from_integer(value as i128)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ratio;

    #[test]
    fn new_reduces() {
        let r = Ratio::new(6, 8).unwrap();
        assert_eq!((r.numer(), r.denom()), (3, 4));
    }

    #[test]
    fn new_normalizes_sign() {
        assert_eq!(Ratio::new(1, -2).unwrap(), Ratio::new(-1, 2).unwrap());
        assert_eq!(Ratio::new(-1, -2).unwrap(), Ratio::new(1, 2).unwrap());
        assert!(Ratio::new(-1, 2).unwrap().is_negative());
    }

    #[test]
    fn new_rejects_zero_denominator() {
        assert_eq!(Ratio::new(1, 0), Err(RatioError::ZeroDenominator));
    }

    #[test]
    fn new_rejects_i128_min() {
        assert_eq!(Ratio::new(i128::MIN, 1), Err(RatioError::Overflow));
        assert_eq!(Ratio::new(1, i128::MIN), Err(RatioError::Overflow));
    }

    #[test]
    fn zero_one_constants() {
        assert!(Ratio::ZERO.is_zero());
        assert!(Ratio::ONE.is_integer());
        assert_eq!(Ratio::ONE.numer(), 1);
        assert_eq!(Ratio::TWO, Ratio::from_integer(2));
    }

    #[test]
    fn floor_ceil() {
        assert_eq!(ratio(5, 2).floor(), 2);
        assert_eq!(ratio(5, 2).ceil(), 3);
        assert_eq!(ratio(-5, 2).floor(), -3);
        assert_eq!(ratio(-5, 2).ceil(), -2);
        assert_eq!(ratio(4, 2).floor(), 2);
        assert_eq!(ratio(4, 2).ceil(), 2);
    }

    #[test]
    fn recip() {
        assert_eq!(ratio(3, 4).recip().unwrap(), ratio(4, 3));
        assert_eq!(ratio(-3, 4).recip().unwrap(), ratio(-4, 3));
        assert_eq!(Ratio::ZERO.recip(), Err(RatioError::DivisionByZero));
    }

    #[test]
    fn ordering_basic() {
        assert!(ratio(1, 3) < ratio(1, 2));
        assert!(ratio(-1, 2) < ratio(1, 3));
        assert!(ratio(2, 4) == ratio(1, 2));
        assert!(ratio(7, 3) > ratio(2, 1));
    }

    #[test]
    fn ordering_huge_values_no_overflow() {
        // Cross products overflow i128; exact descent must still work.
        let big = i128::MAX / 2;
        let a = Ratio::new(big, big - 1).unwrap();
        let b = Ratio::new(big - 1, big - 2).unwrap();
        // (x)/(x-1) is decreasing in x, so a < b.
        assert!(a < b);
        assert!(b > a);
        let na = Ratio::new(-big, big - 1).unwrap();
        let nb = Ratio::new(-(big - 1), big - 2).unwrap();
        assert!(na > nb);
    }

    #[test]
    fn min_max_clamp() {
        assert_eq!(ratio(1, 2).min(ratio(1, 3)), ratio(1, 3));
        assert_eq!(ratio(1, 2).max(ratio(1, 3)), ratio(1, 2));
        assert_eq!(ratio(5, 1).clamp(Ratio::ZERO, Ratio::ONE), Ratio::ONE);
        assert_eq!(ratio(-5, 1).clamp(Ratio::ZERO, Ratio::ONE), Ratio::ZERO);
    }

    #[test]
    fn approx_f64_simple() {
        assert_eq!(Ratio::approx_f64(0.5, 100).unwrap(), ratio(1, 2));
        assert_eq!(Ratio::approx_f64(0.75, 100).unwrap(), ratio(3, 4));
        assert_eq!(Ratio::approx_f64(-0.2, 100).unwrap(), ratio(-1, 5));
        assert_eq!(Ratio::approx_f64(3.0, 100).unwrap(), ratio(3, 1));
    }

    #[test]
    fn approx_f64_rejects_non_finite() {
        assert!(Ratio::approx_f64(f64::NAN, 100).is_err());
        assert!(Ratio::approx_f64(f64::INFINITY, 100).is_err());
        assert!(Ratio::approx_f64(1.0, 0).is_err());
    }

    #[test]
    fn to_f64_roundtrip() {
        assert_eq!(ratio(1, 4).to_f64(), 0.25);
        assert_eq!(ratio(-7, 2).to_f64(), -3.5);
    }

    #[test]
    fn checked_ops_overflow_detected() {
        let big = Ratio::from_integer(i128::MAX / 2);
        assert!(big.checked_mul(big).is_none());
        assert!(big.checked_add(big).is_some()); // fits: i128::MAX - 1
        let max = Ratio::from_integer(i128::MAX);
        assert!(max.checked_add(Ratio::ONE).is_none());
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(Ratio::default(), Ratio::ZERO);
    }

    #[test]
    fn conversions_from_primitives() {
        assert_eq!(Ratio::from(5i64), ratio(5, 1));
        assert_eq!(Ratio::from(5u32), ratio(5, 1));
        assert_eq!(Ratio::from(-5i32), ratio(-5, 1));
    }

    #[test]
    fn ratio_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Ratio>();
    }
}
