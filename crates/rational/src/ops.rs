//! Operator implementations for [`Ratio`].
//!
//! All operators are checked and panic on `i128` overflow; use the
//! `checked_*` inherent methods for fallible arithmetic.

use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

use crate::Ratio;

impl Add for Ratio {
    type Output = Ratio;

    /// # Panics
    ///
    /// Panics on `i128` overflow.
    fn add(self, rhs: Ratio) -> Ratio {
        self.checked_add(rhs).expect("Ratio addition overflow")
    }
}

impl Sub for Ratio {
    type Output = Ratio;

    /// # Panics
    ///
    /// Panics on `i128` overflow.
    fn sub(self, rhs: Ratio) -> Ratio {
        self.checked_sub(rhs).expect("Ratio subtraction overflow")
    }
}

impl Mul for Ratio {
    type Output = Ratio;

    /// # Panics
    ///
    /// Panics on `i128` overflow.
    fn mul(self, rhs: Ratio) -> Ratio {
        self.checked_mul(rhs)
            .expect("Ratio multiplication overflow")
    }
}

impl Div for Ratio {
    type Output = Ratio;

    /// # Panics
    ///
    /// Panics on `i128` overflow or division by zero.
    fn div(self, rhs: Ratio) -> Ratio {
        self.checked_div(rhs)
            .expect("Ratio division overflow or division by zero")
    }
}

impl Neg for Ratio {
    type Output = Ratio;

    fn neg(self) -> Ratio {
        Ratio::ZERO - self
    }
}

impl AddAssign for Ratio {
    fn add_assign(&mut self, rhs: Ratio) {
        *self = *self + rhs;
    }
}

impl SubAssign for Ratio {
    fn sub_assign(&mut self, rhs: Ratio) {
        *self = *self - rhs;
    }
}

impl MulAssign for Ratio {
    fn mul_assign(&mut self, rhs: Ratio) {
        *self = *self * rhs;
    }
}

impl DivAssign for Ratio {
    fn div_assign(&mut self, rhs: Ratio) {
        *self = *self / rhs;
    }
}

impl Sum for Ratio {
    fn sum<I: Iterator<Item = Ratio>>(iter: I) -> Ratio {
        iter.fold(Ratio::ZERO, |acc, x| acc + x)
    }
}

impl<'a> Sum<&'a Ratio> for Ratio {
    fn sum<I: Iterator<Item = &'a Ratio>>(iter: I) -> Ratio {
        iter.copied().sum()
    }
}

#[cfg(test)]
mod tests {
    use crate::{ratio, Ratio};

    #[test]
    fn add_sub() {
        assert_eq!(ratio(1, 2) + ratio(1, 3), ratio(5, 6));
        assert_eq!(ratio(1, 2) - ratio(1, 3), ratio(1, 6));
        assert_eq!(ratio(1, 2) - ratio(1, 2), Ratio::ZERO);
    }

    #[test]
    fn mul_div() {
        assert_eq!(ratio(2, 3) * ratio(3, 4), ratio(1, 2));
        assert_eq!(ratio(1, 2) / ratio(1, 4), ratio(2, 1));
    }

    #[test]
    fn neg() {
        assert_eq!(-ratio(1, 2), ratio(-1, 2));
        assert_eq!(-Ratio::ZERO, Ratio::ZERO);
    }

    #[test]
    fn assign_ops() {
        let mut r = ratio(1, 2);
        r += ratio(1, 2);
        assert_eq!(r, Ratio::ONE);
        r -= ratio(1, 4);
        assert_eq!(r, ratio(3, 4));
        r *= ratio(4, 3);
        assert_eq!(r, Ratio::ONE);
        r /= ratio(1, 2);
        assert_eq!(r, Ratio::TWO);
    }

    #[test]
    fn sum_iterator() {
        let parts = [ratio(1, 4); 4];
        let total: Ratio = parts.iter().sum();
        assert_eq!(total, Ratio::ONE);
        let owned: Ratio = parts.into_iter().sum();
        assert_eq!(owned, Ratio::ONE);
        let empty: Ratio = core::iter::empty::<Ratio>().sum();
        assert_eq!(empty, Ratio::ZERO);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        let _ = Ratio::ONE / Ratio::ZERO;
    }

    #[test]
    fn large_chain_stays_reduced() {
        // A long alternating sum that would drift under f64 stays exact.
        let mut acc = Ratio::ZERO;
        for k in 1..=200i128 {
            let term = ratio(1, k);
            acc += term;
            acc -= term;
        }
        assert_eq!(acc, Ratio::ZERO);
    }
}
