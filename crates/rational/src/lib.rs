//! Exact rational arithmetic for worst-case real-time network analysis.
//!
//! The connection-admission-control algebra in the sibling crates composes
//! long chains of stream operations (multiplexing, filtering, delaying).
//! Floating point would accumulate drift and make conservation laws hold
//! only approximately; this crate provides an exact [`Ratio`] type over
//! `i128` so that invariants such as "demultiplexing undoes multiplexing"
//! hold with `==`.
//!
//! # Examples
//!
//! ```
//! use rtcac_rational::Ratio;
//!
//! let third = Ratio::new(1, 3)?;
//! let sixth = Ratio::new(1, 6)?;
//! assert_eq!(third + sixth, Ratio::new(1, 2)?);
//! assert!(third > sixth);
//! # Ok::<(), rtcac_rational::RatioError>(())
//! ```
//!
//! All arithmetic is checked: operators panic on overflow (documented on
//! each impl), while `checked_*` methods return `Option`. In practice the
//! CAC workloads keep numerators and denominators far below the `i128`
//! range because every operation reduces by the GCD.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod fmt;
mod isqrt;
mod ops;
mod ratio;

pub use isqrt::{isqrt_floor, sqrt_lower, sqrt_upper};
pub use ratio::{Ratio, RatioError};

/// Convenience constructor used pervasively in tests and examples.
///
/// # Panics
///
/// Panics if `den == 0`. Use [`Ratio::new`] for a fallible version.
///
/// ```
/// use rtcac_rational::{ratio, Ratio};
/// assert_eq!(ratio(2, 4), Ratio::new(1, 2).unwrap());
/// ```
pub fn ratio(num: i128, den: i128) -> Ratio {
    Ratio::new(num, den).expect("ratio: zero denominator")
}
