//! Formatting and parsing for [`Ratio`].

use core::fmt;
use core::str::FromStr;

use crate::{Ratio, RatioError};

impl fmt::Debug for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_integer() {
            write!(f, "Ratio({})", self.numer())
        } else {
            write!(f, "Ratio({}/{})", self.numer(), self.denom())
        }
    }
}

impl fmt::Display for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_integer() {
            write!(f, "{}", self.numer())
        } else {
            write!(f, "{}/{}", self.numer(), self.denom())
        }
    }
}

impl FromStr for Ratio {
    type Err = RatioError;

    /// Parses `"a/b"`, a plain integer `"a"`, or a decimal `"a.b"`.
    ///
    /// # Errors
    ///
    /// Returns [`RatioError::Parse`] on malformed input and
    /// [`RatioError::ZeroDenominator`] on `"a/0"`.
    ///
    /// ```
    /// use rtcac_rational::{ratio, Ratio};
    /// assert_eq!("3/4".parse::<Ratio>()?, ratio(3, 4));
    /// assert_eq!("-2".parse::<Ratio>()?, ratio(-2, 1));
    /// assert_eq!("0.25".parse::<Ratio>()?, ratio(1, 4));
    /// # Ok::<(), rtcac_rational::RatioError>(())
    /// ```
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        if let Some((num, den)) = s.split_once('/') {
            let num: i128 = num.trim().parse().map_err(|_| RatioError::Parse)?;
            let den: i128 = den.trim().parse().map_err(|_| RatioError::Parse)?;
            return Ratio::new(num, den);
        }
        if let Some((int_part, frac_part)) = s.split_once('.') {
            let negative = int_part.trim_start().starts_with('-');
            let int: i128 = if int_part == "-" || int_part.is_empty() {
                0
            } else {
                int_part.parse().map_err(|_| RatioError::Parse)?
            };
            if frac_part.is_empty() || !frac_part.bytes().all(|b| b.is_ascii_digit()) {
                return Err(RatioError::Parse);
            }
            if frac_part.len() > 30 {
                return Err(RatioError::Overflow);
            }
            let frac: i128 = frac_part.parse().map_err(|_| RatioError::Parse)?;
            let scale = 10i128
                .checked_pow(frac_part.len() as u32)
                .ok_or(RatioError::Overflow)?;
            let frac_ratio = Ratio::new(frac, scale)?;
            let int_ratio = Ratio::from_integer(int.abs());
            let magnitude = int_ratio
                .checked_add(frac_ratio)
                .ok_or(RatioError::Overflow)?;
            return if negative {
                Ok(-magnitude)
            } else {
                Ok(magnitude)
            };
        }
        let num: i128 = s.parse().map_err(|_| RatioError::Parse)?;
        Ok(Ratio::from_integer(num))
    }
}

#[cfg(test)]
mod tests {
    use crate::{ratio, Ratio, RatioError};

    #[test]
    fn display_integer_and_fraction() {
        assert_eq!(ratio(4, 2).to_string(), "2");
        assert_eq!(ratio(3, 4).to_string(), "3/4");
        assert_eq!(ratio(-3, 4).to_string(), "-3/4");
    }

    #[test]
    fn debug_nonempty() {
        assert_eq!(format!("{:?}", Ratio::ZERO), "Ratio(0)");
        assert_eq!(format!("{:?}", ratio(1, 2)), "Ratio(1/2)");
    }

    #[test]
    fn parse_fraction() {
        assert_eq!("3/4".parse::<Ratio>().unwrap(), ratio(3, 4));
        assert_eq!(" -6 / 8 ".parse::<Ratio>().unwrap(), ratio(-3, 4));
    }

    #[test]
    fn parse_integer() {
        assert_eq!("42".parse::<Ratio>().unwrap(), ratio(42, 1));
        assert_eq!("-7".parse::<Ratio>().unwrap(), ratio(-7, 1));
    }

    #[test]
    fn parse_decimal() {
        assert_eq!("0.5".parse::<Ratio>().unwrap(), ratio(1, 2));
        assert_eq!("1.25".parse::<Ratio>().unwrap(), ratio(5, 4));
        assert_eq!("-0.75".parse::<Ratio>().unwrap(), ratio(-3, 4));
        assert_eq!("-.5".parse::<Ratio>().unwrap(), ratio(-1, 2));
    }

    #[test]
    fn parse_errors() {
        assert_eq!("abc".parse::<Ratio>(), Err(RatioError::Parse));
        assert_eq!("1/0".parse::<Ratio>(), Err(RatioError::ZeroDenominator));
        assert_eq!("1.".parse::<Ratio>(), Err(RatioError::Parse));
        assert_eq!("1.2x".parse::<Ratio>(), Err(RatioError::Parse));
    }

    #[test]
    fn display_parse_roundtrip() {
        for r in [ratio(3, 7), ratio(-12, 5), Ratio::ZERO, ratio(100, 1)] {
            let s = r.to_string();
            assert_eq!(s.parse::<Ratio>().unwrap(), r);
        }
    }
}
