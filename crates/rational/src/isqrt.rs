//! Integer and rational square roots.
//!
//! The soft CAC scheme (paper §4.3, discussion 1) accumulates cell delay
//! variation as the square root of the sum of squared per-hop bounds.
//! Square roots of rationals are generally irrational, so we expose
//! *directional* bounds: [`sqrt_upper`] (safe for conservative CDV
//! accumulation) and [`sqrt_lower`].

use crate::{Ratio, RatioError};

/// Floor of the square root of a non-negative integer.
///
/// # Panics
///
/// Panics if `n < 0`.
///
/// ```
/// use rtcac_rational::isqrt_floor;
/// assert_eq!(isqrt_floor(0), 0);
/// assert_eq!(isqrt_floor(15), 3);
/// assert_eq!(isqrt_floor(16), 4);
/// assert_eq!(isqrt_floor(17), 4);
/// ```
pub fn isqrt_floor(n: i128) -> i128 {
    assert!(n >= 0, "isqrt_floor: negative input");
    if n < 2 {
        return n;
    }
    // Newton's method with an f64 seed, corrected to exactness.
    let mut x = (n as f64).sqrt() as i128;
    // Guard against f64 imprecision on huge inputs.
    while x.checked_mul(x).is_none_or(|sq| sq > n) {
        x -= 1;
    }
    while (x + 1).checked_mul(x + 1).is_some_and(|sq| sq <= n) {
        x += 1;
    }
    x
}

/// A rational `u` with `u * u >= x` and `u` within `1 / precision` of
/// the true square root. Suitable for conservative (safe-side)
/// accumulation of delay variation.
///
/// # Errors
///
/// Returns [`RatioError::Overflow`] if the scaled intermediate exceeds
/// `i128`, and [`RatioError::Parse`] if `x` is negative or
/// `precision <= 0`.
///
/// ```
/// use rtcac_rational::{ratio, sqrt_upper};
/// let u = sqrt_upper(ratio(2, 1), 1_000_000)?;
/// assert!(u * u >= ratio(2, 1));
/// assert!((u.to_f64() - 2f64.sqrt()).abs() < 1e-5);
/// # Ok::<(), rtcac_rational::RatioError>(())
/// ```
pub fn sqrt_upper(x: Ratio, precision: i128) -> Result<Ratio, RatioError> {
    sqrt_impl(x, precision, true)
}

/// A rational `l` with `l * l <= x` and `l` within `1 / precision` of
/// the true square root.
///
/// # Errors
///
/// Same conditions as [`sqrt_upper`].
///
/// ```
/// use rtcac_rational::{ratio, sqrt_lower};
/// let l = sqrt_lower(ratio(2, 1), 1_000_000)?;
/// assert!(l * l <= ratio(2, 1));
/// # Ok::<(), rtcac_rational::RatioError>(())
/// ```
pub fn sqrt_lower(x: Ratio, precision: i128) -> Result<Ratio, RatioError> {
    sqrt_impl(x, precision, false)
}

fn sqrt_impl(x: Ratio, precision: i128, upper: bool) -> Result<Ratio, RatioError> {
    if x.is_negative() || precision <= 0 {
        return Err(RatioError::Parse);
    }
    if x.is_zero() {
        return Ok(Ratio::ZERO);
    }
    // sqrt(n/d) = sqrt(n*d)/d. Scale by precision^2 for accuracy:
    // sqrt(x) ~= isqrt(x * p^2) / p, floor version; +1 for the ceiling.
    let p2 = precision
        .checked_mul(precision)
        .ok_or(RatioError::Overflow)?;
    let scaled = x
        .checked_mul(Ratio::from_integer(p2))
        .ok_or(RatioError::Overflow)?;
    // floor(scaled) underestimates; isqrt of it underestimates sqrt.
    let inner = scaled.floor();
    let root = isqrt_floor(inner);
    if upper {
        // (root + 1)^2 > inner >= floor(x * p^2) might still be below
        // x * p^2's true sqrt only if scaled wasn't integral; adding one
        // more unit covers the fractional remainder: (root+1)/p >= sqrt(x).
        Ratio::new(root + 1, precision)
    } else {
        // root/p <= sqrt(floor(x*p^2))/p <= sqrt(x).
        Ratio::new(root, precision)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ratio;

    #[test]
    fn isqrt_small_values() {
        let expect = [0, 1, 1, 1, 2, 2, 2, 2, 2, 3, 3];
        for (n, &e) in expect.iter().enumerate() {
            assert_eq!(isqrt_floor(n as i128), e, "isqrt({n})");
        }
    }

    #[test]
    fn isqrt_perfect_squares() {
        for k in [0i128, 1, 2, 17, 1_000, 1 << 30] {
            assert_eq!(isqrt_floor(k * k), k);
            if k > 0 {
                assert_eq!(isqrt_floor(k * k + 1), k);
                assert_eq!(isqrt_floor(k * k - 1), k - 1);
            }
        }
    }

    #[test]
    fn isqrt_huge() {
        let n = i128::MAX;
        let r = isqrt_floor(n);
        assert!(r.checked_mul(r).unwrap() <= n);
        assert!((r + 1).checked_mul(r + 1).is_none_or(|sq| sq > n));
    }

    #[test]
    #[should_panic(expected = "negative")]
    fn isqrt_negative_panics() {
        isqrt_floor(-1);
    }

    #[test]
    fn sqrt_bounds_bracket_true_root() {
        for (n, d) in [(2, 1), (1, 2), (9, 4), (370, 1), (32, 1)] {
            let x = ratio(n, d);
            let u = sqrt_upper(x, 1_000_000).unwrap();
            let l = sqrt_lower(x, 1_000_000).unwrap();
            assert!(u * u >= x, "upper bound fails for {n}/{d}");
            assert!(l * l <= x, "lower bound fails for {n}/{d}");
            assert!(u - l <= ratio(2, 1_000_000));
        }
    }

    #[test]
    fn sqrt_exact_on_perfect_squares() {
        let u = sqrt_upper(ratio(9, 1), 1_000).unwrap();
        let l = sqrt_lower(ratio(9, 1), 1_000).unwrap();
        assert!(l <= ratio(3, 1) && ratio(3, 1) <= u);
    }

    #[test]
    fn sqrt_zero() {
        assert_eq!(sqrt_upper(Ratio::ZERO, 100).unwrap(), Ratio::ZERO);
        assert_eq!(sqrt_lower(Ratio::ZERO, 100).unwrap(), Ratio::ZERO);
    }

    #[test]
    fn sqrt_rejects_negative_and_bad_precision() {
        assert!(sqrt_upper(ratio(-1, 1), 100).is_err());
        assert!(sqrt_upper(ratio(1, 1), 0).is_err());
        assert!(sqrt_lower(ratio(1, 1), -5).is_err());
    }
}
