//! Property-based tests for `rtcac-rational`.

use proptest::prelude::*;
use rtcac_rational::{isqrt_floor, ratio, sqrt_lower, sqrt_upper, Ratio};

/// A ratio with bounded components so arithmetic chains never overflow.
fn small_ratio() -> impl Strategy<Value = Ratio> {
    (-1_000_000i128..=1_000_000, 1i128..=1_000_000).prop_map(|(n, d)| ratio(n, d))
}

fn nonneg_ratio() -> impl Strategy<Value = Ratio> {
    (0i128..=1_000_000, 1i128..=1_000_000).prop_map(|(n, d)| ratio(n, d))
}

proptest! {
    #[test]
    fn construction_always_reduced(n in -10_000i128..=10_000, d in 1i128..=10_000) {
        let r = ratio(n, d);
        let g = {
            let (mut a, mut b) = (r.numer().abs(), r.denom());
            while b != 0 { let t = a % b; a = b; b = t; }
            a
        };
        prop_assert!(r.denom() > 0);
        prop_assert!(g == 1 || r.numer() == 0);
    }

    #[test]
    fn add_commutative(a in small_ratio(), b in small_ratio()) {
        prop_assert_eq!(a + b, b + a);
    }

    #[test]
    fn add_associative(a in small_ratio(), b in small_ratio(), c in small_ratio()) {
        prop_assert_eq!((a + b) + c, a + (b + c));
    }

    #[test]
    fn mul_commutative(a in small_ratio(), b in small_ratio()) {
        prop_assert_eq!(a * b, b * a);
    }

    #[test]
    fn mul_distributes_over_add(a in small_ratio(), b in small_ratio(), c in small_ratio()) {
        prop_assert_eq!(a * (b + c), a * b + a * c);
    }

    #[test]
    fn sub_inverts_add(a in small_ratio(), b in small_ratio()) {
        prop_assert_eq!((a + b) - b, a);
    }

    #[test]
    fn div_inverts_mul(a in small_ratio(), b in small_ratio()) {
        prop_assume!(!b.is_zero());
        prop_assert_eq!((a * b) / b, a);
    }

    #[test]
    fn ordering_consistent_with_f64(a in small_ratio(), b in small_ratio()) {
        // f64 comparison may tie for distinct close rationals but must
        // never reverse a strict rational ordering.
        if a < b {
            prop_assert!(a.to_f64() <= b.to_f64());
        } else if a > b {
            prop_assert!(a.to_f64() >= b.to_f64());
        } else {
            prop_assert_eq!(a.to_f64(), b.to_f64());
        }
    }

    #[test]
    fn ordering_transitive(a in small_ratio(), b in small_ratio(), c in small_ratio()) {
        let mut v = [a, b, c];
        v.sort();
        prop_assert!(v[0] <= v[1] && v[1] <= v[2]);
        prop_assert!(v[0] <= v[2]);
    }

    #[test]
    fn floor_ceil_bracket(a in small_ratio()) {
        let f = a.floor();
        let c = a.ceil();
        prop_assert!(Ratio::from_integer(f) <= a);
        prop_assert!(a <= Ratio::from_integer(c));
        prop_assert!(c - f <= 1);
    }

    #[test]
    fn display_parse_roundtrip(a in small_ratio()) {
        let s = a.to_string();
        prop_assert_eq!(s.parse::<Ratio>().unwrap(), a);
    }

    #[test]
    fn isqrt_is_floor_sqrt(n in 0i128..=1_000_000_000_000) {
        let r = isqrt_floor(n);
        prop_assert!(r * r <= n);
        prop_assert!((r + 1) * (r + 1) > n);
    }

    #[test]
    fn sqrt_bounds_bracket(x in nonneg_ratio()) {
        let u = sqrt_upper(x, 1_000_000).unwrap();
        let l = sqrt_lower(x, 1_000_000).unwrap();
        prop_assert!(u * u >= x);
        prop_assert!(l * l <= x);
        prop_assert!(l <= u);
    }

    #[test]
    fn approx_f64_within_tolerance(n in -1_000i128..=1_000, d in 1i128..=1_000) {
        let truth = ratio(n, d);
        let approx = Ratio::approx_f64(truth.to_f64(), 1_000_000).unwrap();
        prop_assert!((approx - truth).abs() <= ratio(1, 100_000));
    }
}
