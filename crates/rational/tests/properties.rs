//! Randomized property tests for `rtcac-rational`.
//!
//! The registry is offline, so instead of proptest these run seeded
//! loops over a local SplitMix64 generator: fully deterministic, no
//! external dependencies, same laws checked.

use rtcac_rational::{isqrt_floor, ratio, sqrt_lower, sqrt_upper, Ratio};

const CASES: u64 = 256;

struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `lo..=hi`.
    fn range(&mut self, lo: i128, hi: i128) -> i128 {
        let span = (hi - lo + 1) as u128;
        lo + (u128::from(self.next()) % span) as i128
    }
}

/// A ratio with bounded components so arithmetic chains never overflow.
fn small_ratio(rng: &mut Rng) -> Ratio {
    ratio(rng.range(-1_000_000, 1_000_000), rng.range(1, 1_000_000))
}

fn nonneg_ratio(rng: &mut Rng) -> Ratio {
    ratio(rng.range(0, 1_000_000), rng.range(1, 1_000_000))
}

#[test]
fn construction_always_reduced() {
    let mut rng = Rng(1);
    for _ in 0..CASES {
        let r = ratio(rng.range(-10_000, 10_000), rng.range(1, 10_000));
        let g = {
            let (mut a, mut b) = (r.numer().abs(), r.denom());
            while b != 0 {
                let t = a % b;
                a = b;
                b = t;
            }
            a
        };
        assert!(r.denom() > 0);
        assert!(g == 1 || r.numer() == 0);
    }
}

#[test]
fn add_commutative_and_associative() {
    let mut rng = Rng(2);
    for _ in 0..CASES {
        let (a, b, c) = (
            small_ratio(&mut rng),
            small_ratio(&mut rng),
            small_ratio(&mut rng),
        );
        assert_eq!(a + b, b + a);
        assert_eq!((a + b) + c, a + (b + c));
    }
}

#[test]
fn mul_commutative_and_distributive() {
    let mut rng = Rng(3);
    for _ in 0..CASES {
        let (a, b, c) = (
            small_ratio(&mut rng),
            small_ratio(&mut rng),
            small_ratio(&mut rng),
        );
        assert_eq!(a * b, b * a);
        assert_eq!(a * (b + c), a * b + a * c);
    }
}

#[test]
fn sub_inverts_add() {
    let mut rng = Rng(4);
    for _ in 0..CASES {
        let (a, b) = (small_ratio(&mut rng), small_ratio(&mut rng));
        assert_eq!((a + b) - b, a);
    }
}

#[test]
fn div_inverts_mul() {
    let mut rng = Rng(5);
    for _ in 0..CASES {
        let a = small_ratio(&mut rng);
        let b = small_ratio(&mut rng);
        if b.is_zero() {
            continue;
        }
        assert_eq!((a * b) / b, a);
    }
}

#[test]
fn ordering_consistent_with_f64() {
    let mut rng = Rng(6);
    for _ in 0..CASES {
        let (a, b) = (small_ratio(&mut rng), small_ratio(&mut rng));
        // f64 comparison may tie for distinct close rationals but must
        // never reverse a strict rational ordering.
        if a < b {
            assert!(a.to_f64() <= b.to_f64());
        } else if a > b {
            assert!(a.to_f64() >= b.to_f64());
        } else {
            assert_eq!(a.to_f64(), b.to_f64());
        }
    }
}

#[test]
fn ordering_transitive() {
    let mut rng = Rng(7);
    for _ in 0..CASES {
        let mut v = [
            small_ratio(&mut rng),
            small_ratio(&mut rng),
            small_ratio(&mut rng),
        ];
        v.sort();
        assert!(v[0] <= v[1] && v[1] <= v[2]);
        assert!(v[0] <= v[2]);
    }
}

#[test]
fn floor_ceil_bracket() {
    let mut rng = Rng(8);
    for _ in 0..CASES {
        let a = small_ratio(&mut rng);
        let f = a.floor();
        let c = a.ceil();
        assert!(Ratio::from_integer(f) <= a);
        assert!(a <= Ratio::from_integer(c));
        assert!(c - f <= 1);
    }
}

#[test]
fn display_parse_roundtrip() {
    let mut rng = Rng(9);
    for _ in 0..CASES {
        let a = small_ratio(&mut rng);
        let s = a.to_string();
        assert_eq!(s.parse::<Ratio>().unwrap(), a);
    }
}

#[test]
fn isqrt_is_floor_sqrt() {
    let mut rng = Rng(10);
    for _ in 0..CASES {
        let n = rng.range(0, 1_000_000_000_000);
        let r = isqrt_floor(n);
        assert!(r * r <= n);
        assert!((r + 1) * (r + 1) > n);
    }
}

#[test]
fn sqrt_bounds_bracket() {
    let mut rng = Rng(11);
    for _ in 0..CASES {
        let x = nonneg_ratio(&mut rng);
        let u = sqrt_upper(x, 1_000_000).unwrap();
        let l = sqrt_lower(x, 1_000_000).unwrap();
        assert!(u * u >= x);
        assert!(l * l <= x);
        assert!(l <= u);
    }
}

#[test]
fn approx_f64_within_tolerance() {
    let mut rng = Rng(12);
    for _ in 0..CASES {
        let truth = ratio(rng.range(-1_000, 1_000), rng.range(1, 1_000));
        let approx = Ratio::approx_f64(truth.to_f64(), 1_000_000).unwrap();
        assert!((approx - truth).abs() <= ratio(1, 100_000));
    }
}
