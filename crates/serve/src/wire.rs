//! The length-prefixed frame layer and primitive value codec.
//!
//! Every message on the wire is one *frame*:
//!
//! ```text
//! offset  size  field
//! 0       4     payload length `L` (big-endian u32, includes the
//!               version and type bytes; 2 ..= MAX_PAYLOAD)
//! 4       1     protocol version (PROTO_VERSION)
//! 5       1     frame type (see `proto`)
//! 6       L-2   body (frame-type specific)
//! ```
//!
//! The length prefix is validated *before* any allocation, so a
//! hostile peer cannot make the decoder reserve unbounded memory: a
//! frame longer than [`MAX_PAYLOAD`] is refused with
//! [`WireError::Oversized`] and the connection should be closed. All
//! multi-byte integers are big-endian; exact rationals travel as an
//! `(i128 numerator, i128 denominator)` pair and are re-validated by
//! [`rtcac_rational::Ratio::new`] on decode, so a malformed ratio is a
//! typed [`WireError::BadPayload`], never a panic.

use core::fmt;
use std::io::{self, Read, Write};

use rtcac_bitstream::{Rate, Time};
use rtcac_rational::Ratio;

/// Version byte every frame carries. Receivers refuse frames with a
/// different version with a typed error instead of guessing.
pub const PROTO_VERSION: u8 = 1;

/// Upper bound on a frame payload (version + type + body), in bytes.
///
/// Large enough for a point-to-multipoint tree touching every terminal
/// of a 256-switch star-ring (4 bytes per link), small enough that a
/// hostile length prefix cannot balloon the decoder's buffer.
pub const MAX_PAYLOAD: usize = 1 << 20;

/// Smallest legal payload: the version and frame-type bytes.
pub const MIN_PAYLOAD: usize = 2;

/// Typed failures of the frame and value codec.
#[derive(Debug)]
pub enum WireError {
    /// The underlying socket failed.
    Io(io::Error),
    /// The peer closed the connection cleanly (EOF between frames).
    Closed,
    /// The length prefix exceeds [`MAX_PAYLOAD`].
    Oversized {
        /// The advertised payload length.
        len: usize,
        /// The refusal threshold.
        max: usize,
    },
    /// The length prefix is below [`MIN_PAYLOAD`] (a frame without a
    /// version or type byte can mean nothing).
    Runt {
        /// The advertised payload length.
        len: usize,
    },
    /// The frame carries a protocol version this peer does not speak.
    UnsupportedVersion {
        /// The version byte received.
        got: u8,
    },
    /// The frame type byte names no known frame.
    UnknownFrame {
        /// The type byte received.
        got: u8,
    },
    /// The body does not decode as the frame type requires: truncated,
    /// trailing garbage, an invalid rational, a bad enum tag…
    BadPayload(&'static str),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "socket error: {e}"),
            WireError::Closed => write!(f, "peer closed the connection"),
            WireError::Oversized { len, max } => {
                write!(f, "frame payload of {len} bytes exceeds the {max}-byte cap")
            }
            WireError::Runt { len } => {
                write!(
                    f,
                    "frame payload of {len} bytes is below the 2-byte minimum"
                )
            }
            WireError::UnsupportedVersion { got } => {
                write!(
                    f,
                    "unsupported protocol version {got} (this peer speaks {PROTO_VERSION})"
                )
            }
            WireError::UnknownFrame { got } => write!(f, "unknown frame type {got:#04x}"),
            WireError::BadPayload(what) => write!(f, "malformed frame body: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> WireError {
        WireError::Io(e)
    }
}

impl WireError {
    /// Whether this error is a read timeout (the poll loops treat those
    /// as "no frame yet", everything else as fatal).
    pub fn is_timeout(&self) -> bool {
        matches!(
            self,
            WireError::Io(e) if e.kind() == io::ErrorKind::WouldBlock
                || e.kind() == io::ErrorKind::TimedOut
        )
    }
}

/// Fills `buf`, retrying timeouts once at least one byte of the frame
/// has arrived: a read timeout may only surface *between* frames, never
/// mid-frame, or the session poll loops (which use short socket
/// timeouts to notice shutdown) would tear partially-received frames
/// and desynchronize the stream.
fn read_full(
    reader: &mut impl Read,
    buf: &mut [u8],
    mut got: usize,
    mid_frame: bool,
) -> Result<(), WireError> {
    while got < buf.len() {
        match reader.read(&mut buf[got..]) {
            Ok(0) => {
                return Err(if got == 0 && !mid_frame {
                    WireError::Closed
                } else {
                    WireError::Io(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "connection closed mid-frame",
                    ))
                });
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e)
                if (got > 0 || mid_frame)
                    && (e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut) => {}
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    Ok(())
}

/// Reads one frame, returning its raw payload (version byte included).
///
/// A socket read timeout is surfaced (as a [`WireError::Io`] for which
/// [`WireError::is_timeout`] is true) only while waiting for a frame to
/// *start*; once any byte of a frame has arrived the read retries until
/// the frame completes, so poll loops never lose partial frames.
///
/// # Errors
///
/// [`WireError::Closed`] on clean EOF between frames,
/// [`WireError::Oversized`] / [`WireError::Runt`] on an invalid length
/// prefix (nothing is allocated in either case), [`WireError::Io`] on
/// socket failure or truncation mid-frame.
pub fn read_frame(reader: &mut impl Read) -> Result<Vec<u8>, WireError> {
    let mut prefix = [0u8; 4];
    read_full(reader, &mut prefix, 0, false)?;
    let len = u32::from_be_bytes(prefix) as usize;
    if len > MAX_PAYLOAD {
        return Err(WireError::Oversized {
            len,
            max: MAX_PAYLOAD,
        });
    }
    if len < MIN_PAYLOAD {
        return Err(WireError::Runt { len });
    }
    let mut payload = vec![0u8; len];
    read_full(reader, &mut payload, 0, true)?;
    Ok(payload)
}

/// Writes one frame around an already-encoded payload (which must
/// start with the version and type bytes).
///
/// # Errors
///
/// [`WireError::Oversized`] if the payload breaks the cap this side
/// enforces on receive (a server must never emit a frame its own
/// decoder would refuse), otherwise [`WireError::Io`].
pub fn write_frame(writer: &mut impl Write, payload: &[u8]) -> Result<(), WireError> {
    if payload.len() > MAX_PAYLOAD {
        return Err(WireError::Oversized {
            len: payload.len(),
            max: MAX_PAYLOAD,
        });
    }
    debug_assert!(payload.len() >= MIN_PAYLOAD);
    writer.write_all(&(payload.len() as u32).to_be_bytes())?;
    writer.write_all(payload)?;
    Ok(())
}

/// Append-only encoder over a byte vector.
#[derive(Debug, Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// Starts a payload with the version and frame-type bytes.
    pub fn frame(frame_type: u8) -> Enc {
        let mut enc = Enc {
            buf: Vec::with_capacity(32),
        };
        enc.u8(PROTO_VERSION);
        enc.u8(frame_type);
        enc
    }

    /// The encoded bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a big-endian u32.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian u64.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian i128.
    pub fn i128(&mut self, v: i128) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends an exact rational as numerator, denominator.
    pub fn ratio(&mut self, r: Ratio) {
        self.i128(r.numer());
        self.i128(r.denom());
    }

    /// Appends a time value (its underlying rational).
    pub fn time(&mut self, t: Time) {
        self.ratio(t.as_ratio());
    }

    /// Appends a rate value (its underlying rational).
    pub fn rate(&mut self, r: Rate) {
        self.ratio(r.as_ratio());
    }

    /// Appends a length-prefixed UTF-8 string (u32 length).
    pub fn string(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Appends a length-prefixed list of u32s (link indices).
    pub fn u32_list(&mut self, items: &[u32]) {
        self.u32(items.len() as u32);
        for &item in items {
            self.u32(item);
        }
    }
}

/// Cursor-based decoder over a received payload. Every read is
/// bounds-checked; running past the end is [`WireError::BadPayload`],
/// never a panic.
#[derive(Debug)]
pub struct Dec<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Dec<'a> {
    /// Wraps a payload for decoding.
    pub fn new(buf: &'a [u8]) -> Dec<'a> {
        Dec { buf, at: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.at
    }

    /// Fails unless the whole payload was consumed — trailing garbage
    /// means the sender and receiver disagree about the frame layout.
    pub fn expect_end(&self) -> Result<(), WireError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(WireError::BadPayload("trailing bytes after frame body"))
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::BadPayload("body truncated"));
        }
        let slice = &self.buf[self.at..self.at + n];
        self.at += n;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a big-endian u32.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a big-endian u64.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a big-endian i128.
    pub fn i128(&mut self) -> Result<i128, WireError> {
        Ok(i128::from_be_bytes(self.take(16)?.try_into().unwrap()))
    }

    /// Reads and validates an exact rational.
    pub fn ratio(&mut self) -> Result<Ratio, WireError> {
        let num = self.i128()?;
        let den = self.i128()?;
        Ratio::new(num, den).map_err(|_| WireError::BadPayload("invalid rational"))
    }

    /// Reads a time value.
    pub fn time(&mut self) -> Result<Time, WireError> {
        Ok(Time::new(self.ratio()?))
    }

    /// Reads a rate value.
    pub fn rate(&mut self) -> Result<Rate, WireError> {
        Ok(Rate::new(self.ratio()?))
    }

    /// Reads a length-prefixed UTF-8 string. The length is checked
    /// against the remaining bytes before any allocation.
    pub fn string(&mut self) -> Result<String, WireError> {
        let len = self.u32()? as usize;
        if len > self.remaining() {
            return Err(WireError::BadPayload("string length beyond body"));
        }
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::BadPayload("string not UTF-8"))
    }

    /// Reads a length-prefixed list of u32s. The element count is
    /// checked against the remaining bytes before any allocation, so a
    /// forged count cannot reserve unbounded memory.
    pub fn u32_list(&mut self) -> Result<Vec<u32>, WireError> {
        let count = self.u32()? as usize;
        if count.checked_mul(4).is_none_or(|b| b > self.remaining()) {
            return Err(WireError::BadPayload("list length beyond body"));
        }
        (0..count).map(|_| self.u32()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip() {
        let mut enc = Enc::frame(0x42);
        enc.u64(7);
        let payload = enc.finish();
        let mut wire = Vec::new();
        write_frame(&mut wire, &payload).unwrap();
        let back = read_frame(&mut wire.as_slice()).unwrap();
        assert_eq!(back, payload);
    }

    #[test]
    fn oversized_prefix_is_refused_before_allocating() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&(u32::MAX).to_be_bytes());
        match read_frame(&mut wire.as_slice()) {
            Err(WireError::Oversized { len, .. }) => assert_eq!(len, u32::MAX as usize),
            other => panic!("expected Oversized, got {other:?}"),
        }
    }

    #[test]
    fn runt_prefix_is_refused() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&1u32.to_be_bytes());
        wire.push(PROTO_VERSION);
        assert!(matches!(
            read_frame(&mut wire.as_slice()),
            Err(WireError::Runt { len: 1 })
        ));
    }

    #[test]
    fn clean_eof_is_closed_not_io() {
        assert!(matches!(
            read_frame(&mut [].as_slice()),
            Err(WireError::Closed)
        ));
    }

    #[test]
    fn forged_list_count_is_a_typed_error() {
        let mut enc = Enc::frame(0x01);
        enc.u32(u32::MAX); // claims 4 billion entries, provides none
        let payload = enc.finish();
        let mut dec = Dec::new(&payload[2..]);
        assert!(matches!(
            dec.u32_list(),
            Err(WireError::BadPayload("list length beyond body"))
        ));
    }
}
