//! A deliberately tiny HTTP/1.0 exposition endpoint.
//!
//! Enough of HTTP to let `curl`, Prometheus, and `rtcac stats --addr`
//! scrape the registry: `GET /metrics` (Prometheus text format),
//! `GET /metrics.json` (the registry's JSON form), and `GET /healthz`.
//! Anything else is a 404. Request bodies, keep-alive, and chunked
//! encoding are all out of scope — every response closes the socket.
//!
//! Each scrape first refreshes the engine's orphaned-reservation audit,
//! so `engine_orphaned_reservations` on the wire is always the *current*
//! count, never a stale gauge.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use rtcac_engine::AdmissionEngine;
use rtcac_obs::Registry;

/// Spawns the exposition endpoint on `addr`, returning the bound
/// address. The serving thread runs until the process exits.
pub(crate) fn spawn_metrics_endpoint(
    addr: &str,
    registry: Arc<Registry>,
    engine: Arc<AdmissionEngine>,
) -> std::io::Result<SocketAddr> {
    let listener = TcpListener::bind(addr)?;
    let bound = listener.local_addr()?;
    thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(stream) = stream else { continue };
            let registry = Arc::clone(&registry);
            let engine = Arc::clone(&engine);
            thread::spawn(move || serve_one(stream, &registry, &engine));
        }
    });
    Ok(bound)
}

/// Answers a single scrape request and closes the socket.
fn serve_one(stream: TcpStream, registry: &Registry, engine: &AdmissionEngine) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(stream);
    let mut request_line = String::new();
    if reader.read_line(&mut request_line).is_err() {
        return;
    }
    // Drain the remaining headers before answering: closing the socket
    // with unread bytes in the receive buffer makes the kernel send an
    // RST, which the client sees as a broken pipe instead of a reply.
    let mut header = String::new();
    for _ in 0..64 {
        header.clear();
        match reader.read_line(&mut header) {
            Ok(0) => break,
            Ok(_) if header == "\r\n" || header == "\n" => break,
            Ok(_) => {}
            Err(_) => break,
        }
    }
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let (status, content_type, body) = if method != "GET" {
        ("405 Method Not Allowed", "text/plain", "GET only\n".into())
    } else {
        match path {
            "/metrics" => {
                refresh_memory_gauges(registry, engine);
                engine.publish_orphan_audit();
                (
                    "200 OK",
                    "text/plain; version=0.0.4",
                    registry.snapshot().to_prometheus(),
                )
            }
            "/metrics.json" => {
                refresh_memory_gauges(registry, engine);
                engine.publish_orphan_audit();
                ("200 OK", "application/json", registry.snapshot().to_json())
            }
            "/healthz" => ("200 OK", "text/plain", "ok\n".into()),
            _ => ("404 Not Found", "text/plain", "not found\n".into()),
        }
    };
    let mut writer = write_half;
    let _ = write!(
        writer,
        "HTTP/1.0 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    );
    let _ = writer.flush();
}

/// Refreshes the memory gauges at scrape time so the figures on the
/// wire are current, never stale: `engine_resident_bytes` sums every
/// shard switch's admission-state footprint (brief per-shard locks),
/// `alloc_live_bytes` reads the process heap counter (non-zero only
/// when the binary installed the counting allocator from `rtcac-bench`).
fn refresh_memory_gauges(registry: &Registry, engine: &AdmissionEngine) {
    registry
        .gauge("engine_resident_bytes")
        .set(engine.resident_bytes() as u64);
    registry
        .gauge("alloc_live_bytes")
        .set(rtcac_obs::alloc_live_bytes());
}

/// A minimal blocking HTTP GET, for `rtcac stats --addr` and the tests:
/// connects, requests `path`, returns the response body on 200.
///
/// # Errors
///
/// Any socket failure, a malformed status line, or a non-200 status.
pub fn http_get(addr: &str, path: &str) -> std::io::Result<String> {
    let stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    let mut write_half = stream.try_clone()?;
    write!(write_half, "GET {path} HTTP/1.0\r\nHost: {addr}\r\n\r\n")?;
    write_half.flush()?;
    let mut response = String::new();
    BufReader::new(stream).read_to_string(&mut response)?;
    let (head, body) = response
        .split_once("\r\n\r\n")
        .ok_or_else(|| std::io::Error::other("malformed HTTP response"))?;
    let status_line = head.lines().next().unwrap_or("");
    let status = status_line.split_whitespace().nth(1).unwrap_or("");
    if status != "200" {
        return Err(std::io::Error::other(format!(
            "HTTP {} from {addr}{path}",
            if status.is_empty() { "<none>" } else { status }
        )));
    }
    Ok(body.to_string())
}
