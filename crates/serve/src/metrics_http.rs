//! A deliberately tiny HTTP/1.0 exposition endpoint.
//!
//! Enough of HTTP to let `curl`, Prometheus, `rtcac stats --addr`, and
//! `rtcac top` scrape the registry: `GET /metrics` (Prometheus text
//! format), `GET /metrics.json` (the registry's JSON form), and
//! `GET /healthz`. Anything else is a 404. Request bodies, keep-alive,
//! and chunked encoding are all out of scope — every response closes
//! the socket.
//!
//! The endpoint is defensive about its input: the request line is read
//! through a hard byte cap, so an oversized line is answered with a
//! typed `414` and a malformed one (bad UTF-8, missing method or path)
//! with a `400` — never a silently dropped connection, which a scraper
//! would misreport as "endpoint down" instead of "bad request".
//!
//! Each scrape first refreshes the engine's orphaned-reservation audit,
//! so `engine_orphaned_reservations` on the wire is always the *current*
//! count, never a stale gauge. `/healthz` answers `503 restoring` while
//! a boot-time snapshot restore is still in flight, so load balancers
//! and probes see "alive but not ready" rather than a false "ok".

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use rtcac_engine::AdmissionEngine;
use rtcac_obs::Registry;

/// Hard cap on the request line. Anything longer is answered with a
/// typed `414` — a scraper URL has no business being this long.
const MAX_REQUEST_LINE: usize = 4096;

/// Spawns the exposition endpoint on `addr`, returning the bound
/// address. The serving thread runs until the process exits.
/// `restoring` flips `/healthz` to `503` while a snapshot restore is
/// in flight.
pub(crate) fn spawn_metrics_endpoint(
    addr: &str,
    registry: Arc<Registry>,
    engine: Arc<AdmissionEngine>,
    restoring: Arc<AtomicBool>,
) -> std::io::Result<SocketAddr> {
    let listener = TcpListener::bind(addr)?;
    let bound = listener.local_addr()?;
    thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(stream) = stream else { continue };
            let registry = Arc::clone(&registry);
            let engine = Arc::clone(&engine);
            let restoring = Arc::clone(&restoring);
            thread::spawn(move || serve_one(stream, &registry, &engine, &restoring));
        }
    });
    Ok(bound)
}

/// What reading the request line produced.
enum RequestLine {
    /// A complete, UTF-8 clean line within the cap.
    Line(String),
    /// The peer closed without sending anything: nothing to answer.
    Closed,
    /// The line ran past [`MAX_REQUEST_LINE`] without a newline.
    Oversized,
    /// The line could not be read or is not UTF-8.
    Unreadable,
}

/// Reads one request line through the byte cap, classifying every
/// failure so the caller can answer with a typed status.
fn read_request_line(reader: &mut BufReader<TcpStream>) -> RequestLine {
    let mut raw = Vec::new();
    let mut capped = reader.take(MAX_REQUEST_LINE as u64 + 1);
    match capped.read_until(b'\n', &mut raw) {
        Ok(0) => RequestLine::Closed,
        Ok(_) if raw.last() != Some(&b'\n') && raw.len() > MAX_REQUEST_LINE => {
            RequestLine::Oversized
        }
        Ok(_) => match String::from_utf8(raw) {
            Ok(line) => RequestLine::Line(line),
            Err(_) => RequestLine::Unreadable,
        },
        Err(_) => RequestLine::Unreadable,
    }
}

/// Answers a single scrape request and closes the socket.
fn serve_one(
    stream: TcpStream,
    registry: &Registry,
    engine: &AdmissionEngine,
    restoring: &AtomicBool,
) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(stream);
    let request_line = match read_request_line(&mut reader) {
        RequestLine::Line(line) => line,
        RequestLine::Closed => return,
        RequestLine::Oversized => {
            respond(
                write_half,
                "414 URI Too Long",
                "text/plain",
                &format!("request line exceeds {MAX_REQUEST_LINE} bytes\n"),
            );
            return;
        }
        RequestLine::Unreadable => {
            respond(
                write_half,
                "400 Bad Request",
                "text/plain",
                "unreadable request line\n",
            );
            return;
        }
    };
    // Drain the remaining headers before answering: closing the socket
    // with unread bytes in the receive buffer makes the kernel send an
    // RST, which the client sees as a broken pipe instead of a reply.
    let mut header = String::new();
    for _ in 0..64 {
        header.clear();
        match reader.read_line(&mut header) {
            Ok(0) => break,
            Ok(_) if header == "\r\n" || header == "\n" => break,
            Ok(_) => {}
            Err(_) => break,
        }
    }
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let (status, content_type, body) = if method.is_empty() || path.is_empty() {
        (
            "400 Bad Request",
            "text/plain",
            "malformed request line\n".into(),
        )
    } else if method != "GET" {
        ("405 Method Not Allowed", "text/plain", "GET only\n".into())
    } else {
        match path {
            "/metrics" => {
                refresh_memory_gauges(registry, engine);
                engine.publish_orphan_audit();
                (
                    "200 OK",
                    "text/plain; version=0.0.4",
                    registry.snapshot().to_prometheus(),
                )
            }
            "/metrics.json" => {
                refresh_memory_gauges(registry, engine);
                engine.publish_orphan_audit();
                ("200 OK", "application/json", registry.snapshot().to_json())
            }
            "/healthz" => {
                if restoring.load(Ordering::SeqCst) {
                    (
                        "503 Service Unavailable",
                        "text/plain",
                        "restoring\n".into(),
                    )
                } else {
                    ("200 OK", "text/plain", "ok\n".into())
                }
            }
            _ => ("404 Not Found", "text/plain", "not found\n".into()),
        }
    };
    respond(write_half, status, content_type, &body);
}

/// Writes one complete HTTP/1.0 response.
fn respond(mut writer: TcpStream, status: &str, content_type: &str, body: &str) {
    let _ = write!(
        writer,
        "HTTP/1.0 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    );
    let _ = writer.flush();
}

/// Refreshes the memory gauges at scrape time so the figures on the
/// wire are current, never stale: `engine_resident_bytes` sums every
/// shard switch's admission-state footprint (brief per-shard locks),
/// `alloc_live_bytes` reads the process heap counter (non-zero only
/// when the binary installed the counting allocator from `rtcac-bench`).
fn refresh_memory_gauges(registry: &Registry, engine: &AdmissionEngine) {
    registry
        .gauge("engine_resident_bytes")
        .set(engine.resident_bytes() as u64);
    registry
        .gauge("alloc_live_bytes")
        .set(rtcac_obs::alloc_live_bytes());
}

/// A minimal blocking HTTP GET, for `rtcac stats --addr` and the tests:
/// connects, requests `path`, returns the response body on 200.
///
/// # Errors
///
/// Any socket failure, a malformed status line, or a non-200 status.
pub fn http_get(addr: &str, path: &str) -> std::io::Result<String> {
    let stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    let mut write_half = stream.try_clone()?;
    write!(write_half, "GET {path} HTTP/1.0\r\nHost: {addr}\r\n\r\n")?;
    write_half.flush()?;
    let mut response = String::new();
    BufReader::new(stream).read_to_string(&mut response)?;
    let (head, body) = response
        .split_once("\r\n\r\n")
        .ok_or_else(|| std::io::Error::other("malformed HTTP response"))?;
    let status_line = head.lines().next().unwrap_or("");
    let status = status_line.split_whitespace().nth(1).unwrap_or("");
    if status != "200" {
        return Err(std::io::Error::other(format!(
            "HTTP {} from {addr}{path}",
            if status.is_empty() { "<none>" } else { status }
        )));
    }
    Ok(body.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtcac_bitstream::Time;
    use rtcac_cac::SwitchConfig;
    use rtcac_net::builders;
    use rtcac_obs::Snapshot;
    use rtcac_signaling::CdvPolicy;

    fn endpoint() -> (SocketAddr, Arc<Registry>, Arc<AtomicBool>) {
        let registry = Arc::new(Registry::new());
        let sr = builders::star_ring(4, 2).expect("star ring");
        let engine = Arc::new(AdmissionEngine::with_registry(
            sr.topology().clone(),
            SwitchConfig::uniform(1, Time::from_integer(64)).expect("switch config"),
            CdvPolicy::Hard,
            Arc::clone(&registry),
        ));
        let restoring = Arc::new(AtomicBool::new(false));
        let addr = spawn_metrics_endpoint(
            "127.0.0.1:0",
            Arc::clone(&registry),
            engine,
            Arc::clone(&restoring),
        )
        .expect("bind endpoint");
        (addr, registry, restoring)
    }

    /// Sends raw bytes and returns the full response text — unlike
    /// [`http_get`] this keeps non-200 status lines visible.
    fn raw_request(addr: SocketAddr, bytes: &[u8]) -> String {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .expect("timeout");
        let mut write_half = stream.try_clone().expect("clone");
        write_half.write_all(bytes).expect("send");
        write_half.flush().expect("flush");
        // Half-close so the server's post-line reads see EOF instead
        // of waiting out the read timeout.
        let _ = write_half.shutdown(std::net::Shutdown::Write);
        let mut response = String::new();
        let _ = BufReader::new(stream).read_to_string(&mut response);
        response
    }

    #[test]
    fn concurrent_scrapes_under_churn_all_parse() {
        let (addr, registry, _restoring) = endpoint();
        let stop = Arc::new(AtomicBool::new(false));
        // Churn: writer threads hammer labelled counters and a
        // histogram while the scrapers read, so every scrape races
        // live registry updates.
        let writers: Vec<_> = (0u64..3)
            .map(|w| {
                let registry = Arc::clone(&registry);
                let stop = Arc::clone(&stop);
                thread::spawn(move || {
                    let shard = w.to_string();
                    let c = registry.counter_with("churn_total", &[("shard", &shard)]);
                    let h = registry.histogram("churn_ns");
                    while !stop.load(Ordering::Relaxed) {
                        c.inc();
                        h.record(w * 100 + 1);
                    }
                })
            })
            .collect();
        let scrapers: Vec<_> = (0..4)
            .map(|s| {
                thread::spawn(move || {
                    for i in 0..25 {
                        let path = if (s + i) % 2 == 0 {
                            "/metrics"
                        } else {
                            "/metrics.json"
                        };
                        let body = http_get(&addr.to_string(), path).expect("scrape");
                        if path == "/metrics" {
                            let snap = Snapshot::from_prometheus(&body);
                            assert!(
                                snap.gauges
                                    .iter()
                                    .any(|(id, _)| id.name() == "engine_resident_bytes"),
                                "scrape {s}/{i} lost the resident gauge"
                            );
                        } else {
                            assert!(body.starts_with('{'), "scrape {s}/{i} not JSON");
                        }
                    }
                })
            })
            .collect();
        for scraper in scrapers {
            scraper.join().expect("scraper");
        }
        stop.store(true, Ordering::Relaxed);
        for writer in writers {
            writer.join().expect("writer");
        }
    }

    #[test]
    fn oversized_and_malformed_request_lines_get_typed_errors() {
        let (addr, _registry, _restoring) = endpoint();
        // A request line past the cap, never newline-terminated.
        let long = vec![b'A'; MAX_REQUEST_LINE + 100];
        let response = raw_request(addr, &long);
        assert!(
            response.starts_with("HTTP/1.0 414"),
            "oversized line answered with: {response:.60}"
        );
        // Invalid UTF-8 in the request line.
        let response = raw_request(addr, b"GET /\xff\xfe HTTP/1.0\r\n\r\n");
        assert!(
            response.starts_with("HTTP/1.0 400"),
            "non-UTF-8 line answered with: {response:.60}"
        );
        // An empty request line (no method, no path).
        let response = raw_request(addr, b"\r\n\r\n");
        assert!(
            response.starts_with("HTTP/1.0 400"),
            "empty line answered with: {response:.60}"
        );
        // Method but no path.
        let response = raw_request(addr, b"GET\r\n\r\n");
        assert!(
            response.starts_with("HTTP/1.0 400"),
            "pathless line answered with: {response:.60}"
        );
        // The endpoint still serves normal scrapes afterwards.
        assert!(http_get(&addr.to_string(), "/healthz").is_ok());
    }

    #[test]
    fn healthz_reports_restore_in_flight() {
        let (addr, _registry, restoring) = endpoint();
        assert_eq!(
            http_get(&addr.to_string(), "/healthz").expect("healthy"),
            "ok\n"
        );
        restoring.store(true, Ordering::SeqCst);
        let response = raw_request(addr, b"GET /healthz HTTP/1.0\r\n\r\n");
        assert!(
            response.starts_with("HTTP/1.0 503"),
            "restoring healthz answered with: {response:.60}"
        );
        assert!(response.ends_with("restoring\n"));
        // Metrics stay scrapeable during the restore — only readiness
        // flips, observability does not go dark.
        assert!(http_get(&addr.to_string(), "/metrics").is_ok());
        restoring.store(false, Ordering::SeqCst);
        assert_eq!(
            http_get(&addr.to_string(), "/healthz").expect("healthy again"),
            "ok\n"
        );
    }
}
