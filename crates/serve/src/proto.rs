//! Typed request/response frames of the admission service protocol.
//!
//! The vocabulary mirrors the paper's §4.1 signaling verbs, promoted
//! from in-process calls to wire frames: SETUP (unicast), SETUP-MCAST
//! (point-to-multipoint), RELEASE, QUERY, plus the service-management
//! verbs HELLO, STATS, DRAIN and DUMP (force a flight-recorder black
//! box to disk). Requests use type bytes `0x01..=0x08`, responses
//! `0x81..=0x88` and `0xEF` (ERROR), so a frame's direction is visible
//! in its type byte alone.
//!
//! Routes travel as raw link-index lists: the server re-validates them
//! against its own topology (`Route::new` / `MulticastTree::new`), so a
//! client can never make the engine touch a link that does not exist —
//! a bad route is a typed [`Response::Error`], not a panic.

use rtcac_bitstream::{CbrParams, Time, TrafficContract, VbrParams};
use rtcac_cac::Priority;
use rtcac_signaling::{SetupRejection, SetupRequest};

use crate::wire::{Dec, Enc, WireError, PROTO_VERSION};

/// Frame type bytes. Kept in one place so the codec and the fuzz loop
/// agree about what "every known frame" means.
pub mod frame_type {
    /// Client hello / topology discovery request.
    pub const HELLO: u8 = 0x01;
    /// Unicast connection setup request.
    pub const SETUP: u8 = 0x02;
    /// Point-to-multipoint connection setup request.
    pub const SETUP_MCAST: u8 = 0x03;
    /// Connection release request.
    pub const RELEASE: u8 = 0x04;
    /// Connection query request.
    pub const QUERY: u8 = 0x05;
    /// Drain request: stop admitting, keep guarantees, shut down.
    pub const DRAIN: u8 = 0x06;
    /// Service statistics request.
    pub const STATS: u8 = 0x07;
    /// Force a flight-recorder dump (the wire form of SIGUSR1, which
    /// a std-only binary cannot catch).
    pub const DUMP: u8 = 0x08;

    /// Topology description reply to HELLO.
    pub const SERVER_INFO: u8 = 0x81;
    /// Setup succeeded.
    pub const ADMITTED: u8 = 0x82;
    /// Setup was refused by admission control.
    pub const REJECTED: u8 = 0x83;
    /// Release succeeded.
    pub const RELEASED: u8 = 0x84;
    /// Query reply.
    pub const QUERY_RESULT: u8 = 0x85;
    /// Drain acknowledged; the server is shutting down.
    pub const DRAINING: u8 = 0x86;
    /// Statistics reply.
    pub const STATS_REPLY: u8 = 0x87;
    /// Flight dump written; the reply carries its path.
    pub const DUMPED: u8 = 0x88;
    /// Typed request failure.
    pub const ERROR: u8 = 0xEF;
}

/// Why a request failed at the service layer (as opposed to a CAC
/// rejection, which is a [`Response::Rejected`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// The frame's version byte is not this server's.
    UnsupportedVersion = 1,
    /// The frame type byte is unknown.
    UnknownFrame = 2,
    /// The body did not decode.
    BadPayload = 3,
    /// The submitted link list is not a valid route/tree here.
    BadRoute = 4,
    /// The session tried to release a connection it does not own.
    NotOwner = 5,
    /// The named connection is not established.
    UnknownConnection = 6,
    /// The admission engine failed internally.
    Internal = 7,
    /// The server is restoring its state from a snapshot; the request
    /// was not processed. Clients should back off and retry — the
    /// restore finishes (or the server refuses the snapshot and goes
    /// down) within bounded time.
    SnapshotRestoring = 8,
}

impl ErrorCode {
    /// Decodes a wire error-code byte (`None` for unknown codes).
    pub fn from_u8(v: u8) -> Option<ErrorCode> {
        Some(match v {
            1 => ErrorCode::UnsupportedVersion,
            2 => ErrorCode::UnknownFrame,
            3 => ErrorCode::BadPayload,
            4 => ErrorCode::BadRoute,
            5 => ErrorCode::NotOwner,
            6 => ErrorCode::UnknownConnection,
            7 => ErrorCode::Internal,
            8 => ErrorCode::SnapshotRestoring,
            _ => return None,
        })
    }
}

/// A client-to-server frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Topology discovery: the load generator rebuilds the server's
    /// star-ring locally from the reply, so routes can be expressed as
    /// link indices both sides agree on.
    Hello,
    /// Establish a unicast connection over the given links.
    Setup {
        /// Link indices of the route, in travel order.
        links: Vec<u32>,
        /// The §4.1 connection parameters.
        request: SetupRequest,
    },
    /// Establish a point-to-multipoint connection over the given tree.
    SetupMcast {
        /// Link indices of the tree (parent-before-child order).
        links: Vec<u32>,
        /// The §4.1 connection parameters.
        request: SetupRequest,
    },
    /// Release an established connection owned by this session.
    Release {
        /// The raw connection id (as returned by `Admitted`).
        id: u64,
    },
    /// Look up an established connection's guaranteed delay.
    Query {
        /// The raw connection id.
        id: u64,
    },
    /// Stop admitting (existing guarantees are kept), then shut the
    /// service down once every session has cleaned up.
    Drain,
    /// Service statistics snapshot.
    Stats,
    /// Force the server's flight recorder to write a black box now
    /// (bypasses the per-reason once-latch). Fails with a typed error
    /// when the server runs without a flight recorder.
    Dump,
}

/// A server-to-client frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Reply to [`Request::Hello`].
    ServerInfo {
        /// Ring switches of the served star-ring.
        nodes: u32,
        /// Terminals per ring switch.
        terminals: u32,
        /// Priority levels each switch serves.
        levels: u8,
        /// The advertised per-hop delay bound (uniform).
        bound: Time,
    },
    /// The connection is committed on every hop.
    Admitted {
        /// The established connection's id.
        id: u64,
        /// Guaranteed end-to-end queueing delay bound.
        guaranteed_delay: Time,
        /// Crankback attempts the engine needed (0 = primary route).
        attempts: u32,
    },
    /// Admission control refused the connection.
    Rejected {
        /// The id the setup would have used.
        id: u64,
        /// Compact rejection class (see [`reject_code`]).
        code: u8,
        /// Human-readable detail (the engine's rejection display).
        detail: String,
    },
    /// The connection was released.
    Released {
        /// The released connection's id.
        id: u64,
    },
    /// Reply to [`Request::Query`].
    QueryResult {
        /// Whether the connection is established.
        found: bool,
        /// Its guaranteed delay (zero when not found).
        guaranteed_delay: Time,
    },
    /// Drain acknowledged; no further setups will be admitted.
    Draining {
        /// Connections still established at the drain point.
        active: u64,
    },
    /// Reply to [`Request::Stats`].
    StatsReply {
        /// Connections currently established.
        active: u64,
        /// Setups admitted since start.
        admitted: u64,
        /// Setups rejected since start.
        rejected: u64,
        /// Releases processed since start.
        released: u64,
        /// Orphaned reservations found by the last audit.
        orphans: u64,
        /// Whether the service is draining.
        draining: bool,
    },
    /// Reply to [`Request::Dump`]: the black box is on disk.
    Dumped {
        /// Filesystem path of the written dump (server-local).
        path: String,
        /// Dumps the recorder has written over its lifetime.
        dumps: u64,
    },
    /// The request failed at the service layer.
    Error {
        /// The typed failure class.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

/// Compact rejection classes carried in [`Response::Rejected`].
pub mod reject_code {
    /// A switch on the route failed the CAC check.
    pub const SWITCH: u8 = 1;
    /// The requested bound is below the route's achievable bound.
    pub const QOS_UNSATISFIABLE: u8 = 2;
    /// The route crosses a failed element.
    pub const ROUTE_DOWN: u8 = 3;
    /// The admission point is draining.
    pub const DRAINING: u8 = 4;
}

/// Maps an engine rejection to its wire class.
pub fn rejection_class(rejection: &SetupRejection) -> u8 {
    match rejection {
        SetupRejection::Switch { .. } => reject_code::SWITCH,
        SetupRejection::QosUnsatisfiable { .. } => reject_code::QOS_UNSATISFIABLE,
        SetupRejection::RouteDown { .. } => reject_code::ROUTE_DOWN,
        SetupRejection::Draining => reject_code::DRAINING,
        _ => reject_code::SWITCH,
    }
}

fn encode_setup_request(enc: &mut Enc, request: &SetupRequest) {
    match request.contract() {
        TrafficContract::Cbr(cbr) => {
            enc.u8(0);
            enc.rate(cbr.pcr());
        }
        TrafficContract::Vbr(vbr) => {
            enc.u8(1);
            enc.rate(vbr.pcr());
            enc.rate(vbr.scr());
            enc.u64(vbr.mbs());
        }
    }
    enc.u8(request.priority().level());
    enc.time(request.delay_bound());
}

fn decode_setup_request(dec: &mut Dec<'_>) -> Result<SetupRequest, WireError> {
    let contract = match dec.u8()? {
        0 => TrafficContract::Cbr(
            CbrParams::new(dec.rate()?)
                .map_err(|_| WireError::BadPayload("invalid CBR contract"))?,
        ),
        1 => {
            let pcr = dec.rate()?;
            let scr = dec.rate()?;
            let mbs = dec.u64()?;
            TrafficContract::Vbr(
                VbrParams::new(pcr, scr, mbs)
                    .map_err(|_| WireError::BadPayload("invalid VBR contract"))?,
            )
        }
        _ => return Err(WireError::BadPayload("unknown contract tag")),
    };
    let priority = Priority::new(dec.u8()?);
    let delay_bound = dec.time()?;
    Ok(SetupRequest::new(contract, priority, delay_bound))
}

impl Request {
    /// Encodes the request into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Request::Hello => Enc::frame(frame_type::HELLO).finish(),
            Request::Setup { links, request } => {
                let mut enc = Enc::frame(frame_type::SETUP);
                enc.u32_list(links);
                encode_setup_request(&mut enc, request);
                enc.finish()
            }
            Request::SetupMcast { links, request } => {
                let mut enc = Enc::frame(frame_type::SETUP_MCAST);
                enc.u32_list(links);
                encode_setup_request(&mut enc, request);
                enc.finish()
            }
            Request::Release { id } => {
                let mut enc = Enc::frame(frame_type::RELEASE);
                enc.u64(*id);
                enc.finish()
            }
            Request::Query { id } => {
                let mut enc = Enc::frame(frame_type::QUERY);
                enc.u64(*id);
                enc.finish()
            }
            Request::Drain => Enc::frame(frame_type::DRAIN).finish(),
            Request::Stats => Enc::frame(frame_type::STATS).finish(),
            Request::Dump => Enc::frame(frame_type::DUMP).finish(),
        }
    }

    /// Decodes a frame payload as a request.
    ///
    /// # Errors
    ///
    /// [`WireError::UnsupportedVersion`], [`WireError::UnknownFrame`],
    /// or [`WireError::BadPayload`]; never panics, whatever the bytes.
    pub fn decode(payload: &[u8]) -> Result<Request, WireError> {
        let mut dec = Dec::new(payload);
        let version = dec.u8()?;
        if version != PROTO_VERSION {
            return Err(WireError::UnsupportedVersion { got: version });
        }
        let frame = dec.u8()?;
        let request = match frame {
            frame_type::HELLO => Request::Hello,
            frame_type::SETUP => Request::Setup {
                links: dec.u32_list()?,
                request: decode_setup_request(&mut dec)?,
            },
            frame_type::SETUP_MCAST => Request::SetupMcast {
                links: dec.u32_list()?,
                request: decode_setup_request(&mut dec)?,
            },
            frame_type::RELEASE => Request::Release { id: dec.u64()? },
            frame_type::QUERY => Request::Query { id: dec.u64()? },
            frame_type::DRAIN => Request::Drain,
            frame_type::STATS => Request::Stats,
            frame_type::DUMP => Request::Dump,
            got => return Err(WireError::UnknownFrame { got }),
        };
        dec.expect_end()?;
        Ok(request)
    }
}

impl Response {
    /// Encodes the response into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Response::ServerInfo {
                nodes,
                terminals,
                levels,
                bound,
            } => {
                let mut enc = Enc::frame(frame_type::SERVER_INFO);
                enc.u32(*nodes);
                enc.u32(*terminals);
                enc.u8(*levels);
                enc.time(*bound);
                enc.finish()
            }
            Response::Admitted {
                id,
                guaranteed_delay,
                attempts,
            } => {
                let mut enc = Enc::frame(frame_type::ADMITTED);
                enc.u64(*id);
                enc.time(*guaranteed_delay);
                enc.u32(*attempts);
                enc.finish()
            }
            Response::Rejected { id, code, detail } => {
                let mut enc = Enc::frame(frame_type::REJECTED);
                enc.u64(*id);
                enc.u8(*code);
                enc.string(detail);
                enc.finish()
            }
            Response::Released { id } => {
                let mut enc = Enc::frame(frame_type::RELEASED);
                enc.u64(*id);
                enc.finish()
            }
            Response::QueryResult {
                found,
                guaranteed_delay,
            } => {
                let mut enc = Enc::frame(frame_type::QUERY_RESULT);
                enc.u8(u8::from(*found));
                enc.time(*guaranteed_delay);
                enc.finish()
            }
            Response::Draining { active } => {
                let mut enc = Enc::frame(frame_type::DRAINING);
                enc.u64(*active);
                enc.finish()
            }
            Response::StatsReply {
                active,
                admitted,
                rejected,
                released,
                orphans,
                draining,
            } => {
                let mut enc = Enc::frame(frame_type::STATS_REPLY);
                enc.u64(*active);
                enc.u64(*admitted);
                enc.u64(*rejected);
                enc.u64(*released);
                enc.u64(*orphans);
                enc.u8(u8::from(*draining));
                enc.finish()
            }
            Response::Dumped { path, dumps } => {
                let mut enc = Enc::frame(frame_type::DUMPED);
                enc.string(path);
                enc.u64(*dumps);
                enc.finish()
            }
            Response::Error { code, message } => {
                let mut enc = Enc::frame(frame_type::ERROR);
                enc.u8(*code as u8);
                enc.string(message);
                enc.finish()
            }
        }
    }

    /// Decodes a frame payload as a response.
    ///
    /// # Errors
    ///
    /// As [`Request::decode`].
    pub fn decode(payload: &[u8]) -> Result<Response, WireError> {
        let mut dec = Dec::new(payload);
        let version = dec.u8()?;
        if version != PROTO_VERSION {
            return Err(WireError::UnsupportedVersion { got: version });
        }
        let frame = dec.u8()?;
        let response = match frame {
            frame_type::SERVER_INFO => Response::ServerInfo {
                nodes: dec.u32()?,
                terminals: dec.u32()?,
                levels: dec.u8()?,
                bound: dec.time()?,
            },
            frame_type::ADMITTED => Response::Admitted {
                id: dec.u64()?,
                guaranteed_delay: dec.time()?,
                attempts: dec.u32()?,
            },
            frame_type::REJECTED => Response::Rejected {
                id: dec.u64()?,
                code: dec.u8()?,
                detail: dec.string()?,
            },
            frame_type::RELEASED => Response::Released { id: dec.u64()? },
            frame_type::QUERY_RESULT => Response::QueryResult {
                found: dec.u8()? != 0,
                guaranteed_delay: dec.time()?,
            },
            frame_type::DRAINING => Response::Draining { active: dec.u64()? },
            frame_type::STATS_REPLY => Response::StatsReply {
                active: dec.u64()?,
                admitted: dec.u64()?,
                rejected: dec.u64()?,
                released: dec.u64()?,
                orphans: dec.u64()?,
                draining: dec.u8()? != 0,
            },
            frame_type::DUMPED => Response::Dumped {
                path: dec.string()?,
                dumps: dec.u64()?,
            },
            frame_type::ERROR => Response::Error {
                code: ErrorCode::from_u8(dec.u8()?)
                    .ok_or(WireError::BadPayload("unknown error code"))?,
                message: dec.string()?,
            },
            got => return Err(WireError::UnknownFrame { got }),
        };
        dec.expect_end()?;
        Ok(response)
    }
}
