//! The resident admission server: sessions, ownership, drain.
//!
//! One OS thread per client session reads frames off the socket and
//! dispatches them; unicast setups go through the engine's resident
//! [`ServicePool`] (so admission CPU is bounded by the worker count,
//! not the session count), releases and queries hit the engine
//! directly. Every session tracks the connections *it* admitted, and a
//! session that ends for any reason — clean close, socket error, or a
//! client that simply vanishes mid-burst — releases its surviving
//! reservations before the thread exits, so a dead client can never
//! leak capacity.
//!
//! DRAIN puts the engine into drain mode (new setups are refused with a
//! typed rejection, existing guarantees are kept), stops the accept
//! loop, and gives every live session a grace window to finish its
//! releases; the shutdown path then runs the engine's
//! orphaned-reservation audit and `verify_guarantees`, so "the service
//! shut down cleanly" is a checked property, not a hope.

use std::collections::HashSet;
use std::io::{BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use rtcac_bitstream::Time;
use rtcac_cac::{ConnectionId, SwitchConfig};
use rtcac_engine::{AdmissionEngine, EngineError, EngineOutcome, ServicePool};
use rtcac_net::{builders, LinkId, MulticastTree, Route};
use rtcac_obs::series::DEFAULT_TICKS;
use rtcac_obs::{
    Counter, FlightConfig, FlightRecorder, Gauge, Histogram, Registry, Sampler, Sampling, Tracer,
};
use rtcac_signaling::CdvPolicy;

use crate::metrics_http::spawn_metrics_endpoint;
use crate::proto::{rejection_class, ErrorCode, Request, Response};
use crate::wire::{read_frame, write_frame, WireError};

/// How often blocked reads wake up to check the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(25);

/// Idle poll ticks a session survives after shutdown begins before it
/// closes (the grace window for clients still sending releases).
const DRAIN_GRACE_POLLS: u32 = 20; // 20 × 25 ms = 500 ms

/// Configuration of [`Server::start`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Address to listen on (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Optional address for the HTTP metrics exposition endpoint.
    pub metrics_addr: Option<String>,
    /// Ring switches of the served star-ring.
    pub nodes: usize,
    /// Terminals per ring switch.
    pub terminals: usize,
    /// The uniform advertised per-hop delay bound, in cell times.
    pub bound: Time,
    /// Admission worker threads in the [`ServicePool`].
    pub workers: usize,
    /// Run without metric recording: the engine gets no registry and
    /// every service-level handle is a no-op (near-zero observability
    /// cost; the exposition endpoint then serves an empty snapshot).
    pub snapshot_free: bool,
    /// Warm-restart state file. When set, the server restores from it
    /// on boot (a missing file is a cold start; a corrupt or
    /// inconsistent file is refused and the server goes down without
    /// serving) and writes it atomically on DRAIN — plus periodically,
    /// per [`ServeConfig::snapshot_every`].
    pub snapshot_path: Option<String>,
    /// Seconds between periodic snapshot saves (requires
    /// [`ServeConfig::snapshot_path`]; `None` = save on drain only).
    pub snapshot_every: Option<u64>,
    /// Flight-recorder dump directory. When set (and the server is not
    /// running snapshot-free), a 1 s registry sampler and an always-on
    /// flight recorder are armed: anomalies (orphans, lock-hold
    /// watchdog, resident-byte jumps, panics) dump a bounded black box
    /// here, and the DUMP wire op forces one on demand.
    pub flight_dir: Option<String>,
    /// Sampler tick interval in milliseconds (the flight recorder's
    /// time resolution). Tests shrink this; operators keep the 1 s
    /// default.
    pub flight_tick_ms: u64,
    /// Override of the engine's lock-hold watchdog threshold, in
    /// nanoseconds. `Some(0)` makes every setup trip the watchdog —
    /// the CI lever for forcing a flight dump on demand.
    pub lock_hold_threshold_ns: Option<u64>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:7047".into(),
            metrics_addr: None,
            nodes: 16,
            terminals: 4,
            bound: Time::from_integer(64),
            workers: 4,
            snapshot_free: false,
            snapshot_path: None,
            snapshot_every: None,
            flight_dir: None,
            flight_tick_ms: 1000,
            lock_hold_threshold_ns: None,
        }
    }
}

/// What the shutdown path found after the last session closed.
#[derive(Debug, Clone)]
pub struct DrainSummary {
    /// Client sessions served over the server's lifetime.
    pub sessions: u64,
    /// Connections released by session cleanup (dead or lazy clients).
    pub cleanup_released: u64,
    /// Orphaned reservations found by the final audit (must be 0).
    pub orphans: usize,
    /// Guarantee violations found by the final audit (must be empty).
    pub violations: usize,
    /// Connections still established after drain (guarantees kept).
    pub active: usize,
    /// Why the boot-time snapshot restore failed, when it did — the
    /// server refused the snapshot and drained without serving traffic.
    pub restore_failed: Option<String>,
}

impl DrainSummary {
    /// Whether the shutdown left the engine in a provably clean state.
    pub fn is_clean(&self) -> bool {
        self.orphans == 0 && self.violations == 0 && self.restore_failed.is_none()
    }
}

/// Service-level failures of [`Server::start`].
#[derive(Debug)]
pub enum ServeError {
    /// A listener could not be bound.
    Io(std::io::Error),
    /// The served topology could not be built.
    Build(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "cannot bind: {e}"),
            ServeError::Build(e) => write!(f, "cannot build the served network: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> ServeError {
        ServeError::Io(e)
    }
}

/// Shared state every session thread sees.
struct ServiceState {
    engine: Arc<AdmissionEngine>,
    pool: ServicePool,
    recorder: Option<Arc<FlightRecorder>>,
    shutdown: AtomicBool,
    restoring: Arc<AtomicBool>,
    restore_error: Mutex<Option<String>>,
    snapshot_path: Option<PathBuf>,
    snapshot_every: Option<Duration>,
    last_save: Mutex<Option<Instant>>,
    info: (u32, u32, u8, Time),
    admitted: AtomicU64,
    rejected: AtomicU64,
    released: AtomicU64,
    cleanup_released: AtomicU64,
    last_orphans: AtomicU64,
    m_admitted: Counter,
    m_rejected: Counter,
    m_released: Counter,
    m_cleanup: Counter,
    m_wire_errors: Counter,
    m_sessions: Counter,
    m_active: Gauge,
    m_draining: Gauge,
    m_snapshot_save_ns: Histogram,
    m_snapshot_restore_ns: Histogram,
    m_snapshot_bytes: Gauge,
    m_snapshot_age_seconds: Gauge,
    m_snapshot_restore_ok: Gauge,
}

impl ServiceState {
    fn active(&self) -> u64 {
        self.engine.connection_count() as u64
    }

    /// Restores the engine from the configured snapshot file, if any.
    /// Runs on the accept thread before any request is dispatched;
    /// sessions accepted meanwhile get the typed `SnapshotRestoring`
    /// error. A missing file is a cold start. On success the restored
    /// engine has already passed the guarantee and orphan audits; on
    /// refusal nothing was loaded and the server goes down unserved.
    fn restore_on_boot(&self) -> Result<(), String> {
        let Some(path) = &self.snapshot_path else {
            return Ok(());
        };
        if !path.exists() {
            return Ok(());
        }
        let started = Instant::now();
        let result =
            rtcac_snap::load_file(path).and_then(|doc| rtcac_snap::adopt_into(&self.engine, &doc));
        match result {
            Ok(()) => {
                self.m_snapshot_restore_ns
                    .record(started.elapsed().as_nanos() as u64);
                self.m_snapshot_restore_ok.set(1);
                self.m_active.set(self.active());
                // Seed the file gauges from the restored snapshot so a
                // scrape right after boot reads its real size and age,
                // and backdate the periodic-save clock to the file's
                // mtime so the save cadence counts from the last
                // on-disk write, not from this boot.
                if let Ok(meta) = std::fs::metadata(path) {
                    self.m_snapshot_bytes.set(meta.len());
                    let age = meta
                        .modified()
                        .ok()
                        .and_then(|t| t.elapsed().ok())
                        .unwrap_or_default();
                    self.m_snapshot_age_seconds.set(age.as_secs());
                    *self.last_save.lock().expect("snapshot clock") =
                        Instant::now().checked_sub(age);
                }
                Ok(())
            }
            Err(e) => {
                self.m_snapshot_restore_ok.set(0);
                Err(format!("snapshot {}: {e}", path.display()))
            }
        }
    }

    /// Writes the current engine state to the configured snapshot file
    /// (atomic temp-then-rename). Failures are recorded, not fatal — a
    /// full disk must not take the admission plane down.
    fn save_snapshot(&self) {
        let Some(path) = &self.snapshot_path else {
            return;
        };
        let started = Instant::now();
        let doc = rtcac_snap::snapshot_engine(&self.engine, "rtcac-serve");
        match rtcac_snap::save_atomic(&doc, path) {
            Ok(bytes) => {
                self.m_snapshot_save_ns
                    .record(started.elapsed().as_nanos() as u64);
                self.m_snapshot_bytes.set(bytes);
                self.m_snapshot_age_seconds.set(0);
                *self.last_save.lock().expect("snapshot clock") = Some(Instant::now());
            }
            Err(e) => {
                rtcac_obs::record_event("snapshot.save_failed", e.to_string());
            }
        }
    }

    /// Periodic-save tick, called from the accept loop's poll path:
    /// refreshes the age gauge and saves when the configured interval
    /// has elapsed. Gated on the boot restore: while the restore is
    /// still running — or after it was refused — a tick here would
    /// snapshot the empty pre-adopt engine and clobber the very file
    /// being restored, so it does nothing instead. (The refusal is
    /// published before the restoring gate clears, so checking the
    /// gate first makes the error check race-free.)
    fn snapshot_tick(&self) {
        if self.snapshot_path.is_none() || self.restoring.load(Ordering::SeqCst) {
            return;
        }
        if self
            .restore_error
            .lock()
            .expect("restore error slot")
            .is_some()
        {
            return;
        }
        let last = *self.last_save.lock().expect("snapshot clock");
        if let Some(last) = last {
            self.m_snapshot_age_seconds.set(last.elapsed().as_secs());
        }
        let Some(every) = self.snapshot_every else {
            return;
        };
        if last.is_none_or(|t| t.elapsed() >= every) {
            self.save_snapshot();
        }
    }
}

/// A running admission service. Start with [`Server::start`], then
/// either block in [`Server::join`] (the CLI does) or keep the handle
/// around and talk to [`Server::addr`] from the same process (tests
/// do).
pub struct Server {
    addr: SocketAddr,
    metrics_addr: Option<SocketAddr>,
    state: Arc<ServiceState>,
    registry: Arc<Registry>,
    accept: Option<thread::JoinHandle<DrainSummary>>,
    /// The 1 s registry sampler feeding the flight recorder; kept here
    /// so dropping the server joins its thread.
    sampler: Option<Sampler>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("addr", &self.addr)
            .field("metrics_addr", &self.metrics_addr)
            .finish_non_exhaustive()
    }
}

impl Server {
    /// Builds the star-ring engine, binds the listeners, and spawns the
    /// accept loop (plus the metrics endpoint when configured).
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] when an address cannot be bound,
    /// [`ServeError::Build`] when the topology parameters are invalid.
    pub fn start(config: &ServeConfig) -> Result<Server, ServeError> {
        let registry = Arc::new(Registry::new());
        let sr = builders::star_ring(config.nodes, config.terminals)
            .map_err(|e| ServeError::Build(e.to_string()))?;
        let switch_config =
            SwitchConfig::uniform(1, config.bound).map_err(|e| ServeError::Build(e.to_string()))?;
        let flight_armed = config.flight_dir.is_some() && !config.snapshot_free;
        let mut engine = if config.snapshot_free {
            AdmissionEngine::new(sr.topology().clone(), switch_config, CdvPolicy::Hard)
        } else {
            AdmissionEngine::with_registry(
                sr.topology().clone(),
                switch_config,
                CdvPolicy::Hard,
                Arc::clone(&registry),
            )
        };
        if flight_armed {
            // A flight-enabled server keeps rejection span trees: the
            // black box embeds recent spans, and the rejection-reason
            // exemplars need trace ids to point at. RejectsOnly is the
            // cheapest live setting — admitted setups pay one branch.
            engine.set_tracer(Tracer::with_registry(
                Sampling::RejectsOnly,
                Arc::clone(&registry),
            ));
        }
        if let Some(ns) = config.lock_hold_threshold_ns {
            engine.set_lock_hold_threshold_ns(ns);
        }
        let engine = Arc::new(engine);
        let pool = ServicePool::new(Arc::clone(&engine), config.workers);
        let (recorder, sampler) = if flight_armed {
            let dir = config.flight_dir.as_deref().unwrap_or("flight");
            let recorder = FlightRecorder::new(
                Arc::clone(&registry),
                FlightConfig {
                    dir: PathBuf::from(dir),
                    ..FlightConfig::default()
                },
            );
            let span_engine = Arc::clone(&engine);
            recorder.set_span_provider(Box::new(move || span_engine.tracer().snapshot()));
            let hook = Arc::clone(&recorder);
            engine.set_anomaly_hook(Arc::new(move |reason, detail| {
                hook.trigger(reason, detail);
            }));
            FlightRecorder::install_panic_hook(&recorder);
            let ticker = Arc::clone(&recorder);
            let tick_engine = Arc::clone(&engine);
            let resident_gauge = registry.gauge("engine_resident_bytes");
            let sampler = Sampler::spawn_with_observer(
                Arc::clone(&registry),
                Duration::from_millis(config.flight_tick_ms.max(10)),
                DEFAULT_TICKS,
                Some(Box::new(move |series, _snapshot| {
                    if let Some(tick) = series.latest() {
                        ticker.observe_tick(tick);
                    }
                    // Refresh the resident gauge for the *next* tick, so
                    // the jump trigger works even when nobody scrapes
                    // `/metrics` (scrapes refresh it too).
                    resident_gauge.set(tick_engine.resident_bytes() as u64);
                })),
            );
            (Some(recorder), Some(sampler))
        } else {
            (None, None)
        };
        let counter = |name: &str| {
            if config.snapshot_free {
                Counter::noop()
            } else {
                registry.counter(name)
            }
        };
        let gauge = |name: &str| {
            if config.snapshot_free {
                Gauge::noop()
            } else {
                registry.gauge(name)
            }
        };
        let snapshot_path = config.snapshot_path.as_ref().map(PathBuf::from);
        let has_snapshot = snapshot_path.as_ref().is_some_and(|p| p.exists());
        let histogram = |name: &str| {
            if config.snapshot_free {
                Histogram::noop()
            } else {
                registry.histogram(name)
            }
        };
        let state = Arc::new(ServiceState {
            engine,
            pool,
            recorder,
            shutdown: AtomicBool::new(false),
            restoring: Arc::new(AtomicBool::new(has_snapshot)),
            restore_error: Mutex::new(None),
            snapshot_path,
            snapshot_every: config.snapshot_every.map(Duration::from_secs),
            // Start the periodic-save clock at boot: the first interval
            // counts from here (or from the restored file's mtime once
            // the boot restore backdates it), never "immediately".
            last_save: Mutex::new(Some(Instant::now())),
            info: (
                config.nodes as u32,
                config.terminals as u32,
                1,
                config.bound,
            ),
            admitted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            released: AtomicU64::new(0),
            cleanup_released: AtomicU64::new(0),
            last_orphans: AtomicU64::new(0),
            m_admitted: counter("serve_setups_admitted_total"),
            m_rejected: counter("serve_setups_rejected_total"),
            m_released: counter("serve_releases_total"),
            m_cleanup: counter("serve_cleanup_releases_total"),
            m_wire_errors: counter("serve_wire_errors_total"),
            m_sessions: counter("serve_sessions_total"),
            m_active: gauge("serve_active_connections"),
            m_draining: gauge("serve_draining"),
            m_snapshot_save_ns: histogram("snapshot_save_ns"),
            m_snapshot_restore_ns: histogram("snapshot_restore_ns"),
            m_snapshot_bytes: gauge("snapshot_bytes"),
            m_snapshot_age_seconds: gauge("snapshot_age_seconds"),
            m_snapshot_restore_ok: gauge("snapshot_restore_ok"),
        });

        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let metrics_addr = match &config.metrics_addr {
            Some(maddr) => Some(spawn_metrics_endpoint(
                maddr,
                Arc::clone(&registry),
                Arc::clone(&state.engine),
                Arc::clone(&state.restoring),
            )?),
            None => None,
        };

        let accept_state = Arc::clone(&state);
        let accept = thread::spawn(move || accept_loop(&listener, &accept_state));
        Ok(Server {
            addr,
            metrics_addr,
            state,
            registry,
            accept: Some(accept),
            sampler,
        })
    }

    /// The bound service address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The bound metrics endpoint address, when configured.
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics_addr
    }

    /// The served engine (tests assert on its audits directly).
    pub fn engine(&self) -> &Arc<AdmissionEngine> {
        &self.state.engine
    }

    /// The metrics registry backing the exposition endpoint.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// The armed flight recorder, when the server was started with a
    /// flight directory (tests assert on its dump count directly).
    pub fn flight_recorder(&self) -> Option<&Arc<FlightRecorder>> {
        self.state.recorder.as_ref()
    }

    /// The registry sampler feeding the flight recorder, when armed.
    pub fn sampler(&self) -> Option<&Sampler> {
        self.sampler.as_ref()
    }

    /// Whether a DRAIN has been requested.
    pub fn is_draining(&self) -> bool {
        self.state.shutdown.load(Ordering::Relaxed)
    }

    /// Requests a drain from within the process — identical to a
    /// client's DRAIN frame.
    pub fn request_drain(&self) {
        begin_drain(&self.state);
    }

    /// Blocks until the service has drained and every session closed,
    /// returning the shutdown audit.
    pub fn join(mut self) -> DrainSummary {
        let handle = self.accept.take().expect("join called once");
        handle.join().expect("accept loop panicked")
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if let Some(handle) = self.accept.take() {
            begin_drain(&self.state);
            let _ = handle.join();
        }
    }
}

/// Flips the service into drain mode: the engine refuses new setups
/// (typed `Draining` rejection), the accept loop stops, sessions get
/// their grace window.
fn begin_drain(state: &ServiceState) {
    state.engine.set_draining(true);
    state.m_draining.set(1);
    state.shutdown.store(true, Ordering::SeqCst);
}

/// The accept loop: non-blocking accept + shutdown poll, then the
/// drain/audit sequence once shutdown is requested.
fn accept_loop(listener: &TcpListener, state: &Arc<ServiceState>) -> DrainSummary {
    // Boot-time warm restart: the listener is already bound (so a
    // restart doesn't lose the port race) and sessions are accepted
    // while the restore runs — but dispatch is gated, so every request
    // meanwhile is answered with the typed `SnapshotRestoring` error
    // and clients back off and retry instead of hanging on shard locks.
    if state.restoring.load(Ordering::SeqCst) {
        let restore_state = Arc::clone(state);
        thread::spawn(move || {
            if let Err(why) = restore_state.restore_on_boot() {
                *restore_state
                    .restore_error
                    .lock()
                    .expect("restore error slot") = Some(why);
                begin_drain(&restore_state);
            }
            restore_state.restoring.store(false, Ordering::SeqCst);
        });
    }
    let mut sessions: Vec<thread::JoinHandle<()>> = Vec::new();
    let mut served = 0u64;
    loop {
        if state.shutdown.load(Ordering::Relaxed) {
            break;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                served += 1;
                state.m_sessions.inc();
                let session_state = Arc::clone(state);
                sessions.push(thread::spawn(move || session(&session_state, stream)));
                // Opportunistically reap finished sessions so a
                // long-lived server does not accumulate dead handles.
                sessions.retain(|h| !h.is_finished());
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                state.snapshot_tick();
                thread::sleep(POLL_INTERVAL);
            }
            Err(_) => thread::sleep(POLL_INTERVAL),
        }
    }
    // Drain: every session notices the shutdown flag within one poll
    // interval and exits after its grace window, releasing whatever its
    // client left behind.
    for handle in sessions {
        let _ = handle.join();
    }
    state.pool.shutdown();
    let restore_failed = state
        .restore_error
        .lock()
        .expect("restore error slot")
        .clone();
    // The drain-point snapshot: the engine is quiescent now, so this is
    // the consistent cut a warm restart will resume from. Skipped when
    // the boot restore failed — an empty engine must not clobber the
    // (possibly repairable) snapshot that was refused.
    if restore_failed.is_none() {
        state.save_snapshot();
    }
    let orphans = state.engine.publish_orphan_audit();
    state.last_orphans.store(orphans as u64, Ordering::Relaxed);
    let violations = state
        .engine
        .verify_guarantees()
        .map(|v| v.len())
        .unwrap_or(usize::MAX);
    DrainSummary {
        sessions: served,
        cleanup_released: state.cleanup_released.load(Ordering::Relaxed),
        orphans,
        violations,
        active: state.engine.connection_count(),
        restore_failed,
    }
}

/// One client session: frame loop, dispatch, and cleanup-on-exit.
fn session(state: &Arc<ServiceState>, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
    let mut owned: HashSet<u64> = HashSet::new();
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(stream);
    let mut writer = BufWriter::new(write_half);
    let mut idle_polls = 0u32;
    loop {
        let payload = match read_frame(&mut reader) {
            Ok(payload) => payload,
            Err(e) if e.is_timeout() => {
                if state.shutdown.load(Ordering::Relaxed) {
                    idle_polls += 1;
                    if idle_polls >= DRAIN_GRACE_POLLS {
                        break; // grace window over; cleanup releases the rest
                    }
                }
                continue;
            }
            Err(WireError::Closed) => break,
            Err(e @ (WireError::Oversized { .. } | WireError::Runt { .. })) => {
                // Framing itself is broken: answer once, then close
                // (the stream can no longer be trusted to resync).
                state.m_wire_errors.inc();
                let reply = Response::Error {
                    code: ErrorCode::BadPayload,
                    message: e.to_string(),
                };
                let _ = write_frame(&mut writer, &reply.encode());
                let _ = writer.flush();
                break;
            }
            Err(_) => break, // socket-level failure
        };
        idle_polls = 0;
        let reply = match Request::decode(&payload) {
            Ok(request) => dispatch(state, &mut owned, request),
            Err(e) => {
                // The frame was well-delimited but its content is not a
                // valid request: typed error, session survives.
                state.m_wire_errors.inc();
                let code = match e {
                    WireError::UnsupportedVersion { .. } => ErrorCode::UnsupportedVersion,
                    WireError::UnknownFrame { .. } => ErrorCode::UnknownFrame,
                    _ => ErrorCode::BadPayload,
                };
                Some(Response::Error {
                    code,
                    message: e.to_string(),
                })
            }
        };
        let Some(reply) = reply else { break };
        if write_frame(&mut writer, &reply.encode()).is_err() || writer.flush().is_err() {
            break;
        }
    }
    // Session cleanup: whatever this client still owns is released, so
    // a vanished client cannot leak reservations. A release that fails
    // with `UnknownConnection` is expected here (a fault may have torn
    // the connection down first) and is not an error.
    for id in owned {
        if state.engine.release(ConnectionId::new(id)).is_ok() {
            state.cleanup_released.fetch_add(1, Ordering::Relaxed);
            state.m_cleanup.inc();
        }
    }
    state.m_active.set(state.active());
}

/// Handles one decoded request. `None` means "close the session now"
/// (never used for protocol replies today, but keeps the loop honest).
fn dispatch(
    state: &Arc<ServiceState>,
    owned: &mut HashSet<u64>,
    request: Request,
) -> Option<Response> {
    if state.restoring.load(Ordering::SeqCst) {
        // The engine is being rebuilt from a snapshot: nothing is
        // dispatched (not even HELLO — the topology answer would be
        // served from an engine mid-swap). Typed error, session
        // survives, clients retry after a backoff.
        return Some(Response::Error {
            code: ErrorCode::SnapshotRestoring,
            message: "server is restoring state from a snapshot; retry shortly".into(),
        });
    }
    let response = match request {
        Request::Hello => {
            let (nodes, terminals, levels, bound) = state.info;
            Response::ServerInfo {
                nodes,
                terminals,
                levels,
                bound,
            }
        }
        Request::Setup { links, request } => {
            let route = match Route::new(
                state.engine.topology(),
                links.iter().map(|&i| LinkId::external(i)),
            ) {
                Ok(route) => route,
                Err(e) => {
                    return Some(Response::Error {
                        code: ErrorCode::BadRoute,
                        message: e.to_string(),
                    })
                }
            };
            match state.pool.admit(route, request) {
                Ok(outcome) => setup_response(state, owned, outcome),
                Err(e) => Response::Error {
                    code: ErrorCode::Internal,
                    message: e.to_string(),
                },
            }
        }
        Request::SetupMcast { links, request } => {
            let tree = match MulticastTree::new(
                state.engine.topology(),
                links.iter().map(|&i| LinkId::external(i)),
            ) {
                Ok(tree) => tree,
                Err(e) => {
                    return Some(Response::Error {
                        code: ErrorCode::BadRoute,
                        message: e.to_string(),
                    })
                }
            };
            match state.engine.admit_multicast(&tree, request) {
                Ok(outcome) => setup_response(state, owned, outcome),
                Err(e) => Response::Error {
                    code: ErrorCode::Internal,
                    message: e.to_string(),
                },
            }
        }
        Request::Release { id } => {
            if !owned.contains(&id) {
                Response::Error {
                    code: ErrorCode::NotOwner,
                    message: format!("connection c{id} is not owned by this session"),
                }
            } else {
                match state.engine.release(ConnectionId::new(id)) {
                    Ok(()) => {
                        owned.remove(&id);
                        state.released.fetch_add(1, Ordering::Relaxed);
                        state.m_released.inc();
                        state.m_active.set(state.active());
                        Response::Released { id }
                    }
                    Err(EngineError::UnknownConnection(_)) => {
                        // Torn down underneath us by a fault; the
                        // session's claim is simply gone.
                        owned.remove(&id);
                        Response::Error {
                            code: ErrorCode::UnknownConnection,
                            message: format!("connection c{id} is not established"),
                        }
                    }
                    Err(e) => Response::Error {
                        code: ErrorCode::Internal,
                        message: e.to_string(),
                    },
                }
            }
        }
        Request::Query { id } => match state.engine.guaranteed_delay(ConnectionId::new(id)) {
            Some(delay) => Response::QueryResult {
                found: true,
                guaranteed_delay: delay,
            },
            None => Response::QueryResult {
                found: false,
                guaranteed_delay: Time::ZERO,
            },
        },
        Request::Drain => {
            begin_drain(state);
            Response::Draining {
                active: state.active(),
            }
        }
        Request::Stats => Response::StatsReply {
            active: state.active(),
            admitted: state.admitted.load(Ordering::Relaxed),
            rejected: state.rejected.load(Ordering::Relaxed),
            released: state.released.load(Ordering::Relaxed),
            orphans: state.last_orphans.load(Ordering::Relaxed),
            draining: state.shutdown.load(Ordering::Relaxed),
        },
        Request::Dump => match &state.recorder {
            Some(recorder) => match recorder.force_dump("wire", "DUMP frame") {
                Ok(path) => Response::Dumped {
                    path: path.display().to_string(),
                    dumps: recorder.dumps_written(),
                },
                Err(e) => Response::Error {
                    code: ErrorCode::Internal,
                    message: format!("flight dump failed: {e}"),
                },
            },
            None => Response::Error {
                code: ErrorCode::Internal,
                message: "no flight recorder armed (start the server with a flight dir)".into(),
            },
        },
    };
    Some(response)
}

/// Books one setup outcome: ownership, counters, and the wire reply.
fn setup_response(
    state: &Arc<ServiceState>,
    owned: &mut HashSet<u64>,
    outcome: EngineOutcome,
) -> Response {
    match outcome {
        EngineOutcome::Admitted {
            id,
            guaranteed_delay,
        } => {
            owned.insert(id.raw());
            state.admitted.fetch_add(1, Ordering::Relaxed);
            state.m_admitted.inc();
            state.m_active.set(state.active());
            Response::Admitted {
                id: id.raw(),
                guaranteed_delay,
                attempts: 0,
            }
        }
        EngineOutcome::Rerouted {
            id,
            guaranteed_delay,
            attempts,
            ..
        } => {
            owned.insert(id.raw());
            state.admitted.fetch_add(1, Ordering::Relaxed);
            state.m_admitted.inc();
            state.m_active.set(state.active());
            Response::Admitted {
                id: id.raw(),
                guaranteed_delay,
                attempts: attempts as u32,
            }
        }
        EngineOutcome::Rejected { id, rejection } => {
            state.rejected.fetch_add(1, Ordering::Relaxed);
            state.m_rejected.inc();
            Response::Rejected {
                id: id.raw(),
                code: rejection_class(&rejection),
                detail: rejection.to_string(),
            }
        }
    }
}
